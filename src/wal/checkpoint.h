#ifndef ADREC_WAL_CHECKPOINT_H_
#define ADREC_WAL_CHECKPOINT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "core/sharded_engine.h"
#include "obs/metrics.h"
#include "wal/sharded_wal.h"
#include "wal/wal.h"

namespace adrec::wal {

/// Checkpoint + recovery coordination between the engine snapshot format
/// (core/snapshot) and the WAL (wal/wal.h). Layout inside the log
/// directory:
///
///   <wal_dir>/checkpoint/MANIFEST.tsv   "K <wal_seqno> <shards> <stream_time>"
///                                       then, for a per-shard log
///                                       (wal/sharded_wal.h), one
///                                       "S <stream> <stream_seqno>" line
///                                       per stream high-water mark
///   <wal_dir>/checkpoint/shard<i>/      one core snapshot per shard
///   <wal_dir>/checkpoint.old/           previous checkpoint, kept only
///                                       during the swap window
///
/// A checkpoint is taken by sealing the active WAL segment, snapshotting
/// every shard into `checkpoint.tmp`, and swapping the directory into
/// place (old → checkpoint.old, tmp → checkpoint, fsync, delete old).
/// Recovery prefers `checkpoint`, falls back to `checkpoint.old` when the
/// former is absent or torn, and replays the WAL on top. With a
/// per-shard log, every stream is sealed/snapshotted and later replayed
/// concurrently — one thread per shard, disjoint engine state.
///
/// In CheckpointMode::kDelta the full-directory snapshot is replaced by
/// an incremental delta-chain save under `<wal_dir>/checkpoint.delta`
/// (wal/delta/delta_checkpoint.h): only snapshot files whose content
/// hash changed since the previous generation are written, bounding the
/// save pause by the *churn* since the last checkpoint instead of the
/// total state size. Recovery transparently picks whichever of the
/// classic directory and the delta head is newer, materialises a delta
/// head into `checkpoint.restore.tmp` with strict hash verification, and
/// loads it through the same per-shard snapshot path.

/// How CheckpointManager persists engine state.
enum class CheckpointMode {
  kFull,   ///< classic full-directory snapshot per checkpoint
  kDelta,  ///< delta-chain incremental snapshots (wal/delta)
};

/// Parses "full" / "delta".
Result<CheckpointMode> ParseCheckpointMode(std::string_view name);
std::string_view CheckpointModeName(CheckpointMode mode);

struct CheckpointOptions {
  /// After a successful checkpoint, sealed WAL segments fully covered by
  /// it AND older than `stream_now - analysis_retention` are deleted.
  /// Negative = never truncate: the full log is kept, which lets recovery
  /// rebuild the TFCA analysis window exactly (the checkpoint does not
  /// contain it). A non-negative retention shorter than the engine's
  /// analysis window trades window completeness for disk.
  DurationSec analysis_retention = -1;
  /// Full snapshots per checkpoint, or incremental delta chains. The
  /// daemon flag is --checkpoint-mode.
  CheckpointMode mode = CheckpointMode::kFull;
  /// Delta mode only: force a full rebase generation every N saves,
  /// bounding the chain recovery must resolve. The daemon flag is
  /// --checkpoint-rebase-every.
  size_t rebase_every = 8;
};

/// What Recover() did, for the daemon's startup report.
struct RecoveryResult {
  bool from_checkpoint = false;
  /// WAL seqno the checkpoint covers (0 when none).
  uint64_t checkpoint_seqno = 0;
  /// First seqno a new WalWriter should assign — pass to WalWriter::Open.
  uint64_t next_seqno = 1;
  /// Records ≤ checkpoint_seqno re-fed window-only (ReplayForAnalysis).
  size_t window_replayed = 0;
  /// Records > checkpoint_seqno re-applied through normal ingest.
  size_t live_replayed = 0;
  /// Bytes of torn final frame cut off the newest segment (0 = clean).
  uint64_t torn_bytes_truncated = 0;
  /// Checkpointed stream time (manifest), for seeding the stream clock.
  Timestamp checkpoint_stream_time = 0;
  /// Largest event timestamp seen across checkpoint + replay.
  Timestamp max_event_time = 0;
  /// Per-stream view, one entry per WAL stream (a single-stream recovery
  /// fills one entry mirroring the scalar fields). `stream_next_seqnos`
  /// feeds ShardedWal::Open; for a sharded log the scalar
  /// `checkpoint_seqno`/`next_seqno` hold the per-stream maxima.
  std::vector<uint64_t> stream_checkpoint_seqnos;
  std::vector<uint64_t> stream_next_seqnos;
  /// State was restored from a delta chain (from_checkpoint also true),
  /// with the head generation and the number of generations the restored
  /// file set spanned.
  bool from_delta = false;
  uint64_t delta_gen = 0;
  size_t delta_chain_len = 0;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(std::string wal_dir,
                             CheckpointOptions options = {});

  /// Takes a checkpoint of `engine` paired with the WAL position: seals
  /// and syncs the active segment, snapshots every shard, swaps the
  /// checkpoint directory atomically, then truncates sealed segments per
  /// CheckpointOptions. On failure the previous checkpoint is untouched
  /// (or survives as checkpoint.old across the swap window).
  Status Checkpoint(const core::ShardedEngine& engine, WalWriter* wal,
                    Timestamp stream_now);

  /// Per-shard-stream checkpoint: seals + syncs every stream and
  /// snapshots every shard concurrently (one thread per shard), records
  /// a per-stream high-water mark in the manifest, swaps atomically,
  /// then truncates each stream. A 1-stream wal delegates to the
  /// single-writer overload (byte-identical manifest).
  Status Checkpoint(const core::ShardedEngine& engine, ShardedWal* wal,
                    Timestamp stream_now);

  /// Restores `engine` from the newest valid checkpoint (if any) and
  /// replays the WAL tail: records the checkpoint already covers are
  /// re-fed window-only via ShardedEngine::ReplayForAnalysis (profiles /
  /// counters / inventory stay snapshot-accurate, no double counting),
  /// records past the checkpoint go through normal ingest. A torn final
  /// record is truncated off. `engine` must be freshly constructed with
  /// the shard count the checkpoint was taken with.
  Result<RecoveryResult> Recover(core::ShardedEngine* engine) const;

  /// Per-shard-stream recovery: loads every shard snapshot and replays
  /// its stream concurrently — one thread per shard, each thread
  /// touching only its own engine shard and log stream. `wal_shards`
  /// must match the layout on disk and the engine shard count;
  /// `wal_shards == 1` delegates to Recover().
  Result<RecoveryResult> Recover(core::ShardedEngine* engine,
                                 size_t wal_shards) const;

  const std::string& wal_dir() const { return wal_dir_; }
  const CheckpointOptions& options() const { return options_; }

  /// Save-side metric families, for the daemon's merged exposition:
  /// checkpoint.saves / checkpoint.rebases / checkpoint.files_written /
  /// checkpoint.bytes_written counters, checkpoint.save_ms timer,
  /// checkpoint.delta_chain_len gauge.
  const obs::MetricRegistry& metrics() const { return metrics_; }

 private:
  std::string checkpoint_dir() const { return wal_dir_ + "/checkpoint"; }

  /// The delta-mode save path shared by both Checkpoint overloads; the
  /// caller has already sealed + synced every stream and taken marks.
  Status DeltaSave(const core::ShardedEngine& engine, uint64_t wal_seqno,
                   const std::vector<uint64_t>& stream_seqnos,
                   Timestamp stream_now);
  /// Classic full-directory save (serial shard snapshots + swap).
  Status FullSave(const core::ShardedEngine& engine, uint64_t wal_seqno,
                  const std::vector<uint64_t>& stream_seqnos,
                  Timestamp stream_now);
  Status WriteFullManifest(const std::string& tmp, size_t num_shards,
                           uint64_t wal_seqno,
                           const std::vector<uint64_t>& stream_seqnos,
                           Timestamp stream_now);
  /// Publishes checkpoint.tmp (metrics + atomic directory swap).
  Status SwapFullCheckpoint(const std::string& tmp);
  void RecordSave(std::chrono::steady_clock::time_point save_start);

  const std::string wal_dir_;
  const CheckpointOptions options_;

  obs::MetricRegistry metrics_;
  /// Per-shard RecommendationEngine::mutation_epoch at the last
  /// successful delta save — the "shard unchanged" hints that let a
  /// delta save skip serializing quiet shards. In-memory only: after a
  /// restart the first delta save serializes everything (and usually
  /// still writes little, because the content hashes match).
  std::vector<uint64_t> last_epochs_;
};

}  // namespace adrec::wal

#endif  // ADREC_WAL_CHECKPOINT_H_
