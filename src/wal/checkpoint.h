#ifndef ADREC_WAL_CHECKPOINT_H_
#define ADREC_WAL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "core/sharded_engine.h"
#include "wal/sharded_wal.h"
#include "wal/wal.h"

namespace adrec::wal {

/// Checkpoint + recovery coordination between the engine snapshot format
/// (core/snapshot) and the WAL (wal/wal.h). Layout inside the log
/// directory:
///
///   <wal_dir>/checkpoint/MANIFEST.tsv   "K <wal_seqno> <shards> <stream_time>"
///                                       then, for a per-shard log
///                                       (wal/sharded_wal.h), one
///                                       "S <stream> <stream_seqno>" line
///                                       per stream high-water mark
///   <wal_dir>/checkpoint/shard<i>/      one core snapshot per shard
///   <wal_dir>/checkpoint.old/           previous checkpoint, kept only
///                                       during the swap window
///
/// A checkpoint is taken by sealing the active WAL segment, snapshotting
/// every shard into `checkpoint.tmp`, and swapping the directory into
/// place (old → checkpoint.old, tmp → checkpoint, fsync, delete old).
/// Recovery prefers `checkpoint`, falls back to `checkpoint.old` when the
/// former is absent or torn, and replays the WAL on top. With a
/// per-shard log, every stream is sealed/snapshotted and later replayed
/// concurrently — one thread per shard, disjoint engine state.

struct CheckpointOptions {
  /// After a successful checkpoint, sealed WAL segments fully covered by
  /// it AND older than `stream_now - analysis_retention` are deleted.
  /// Negative = never truncate: the full log is kept, which lets recovery
  /// rebuild the TFCA analysis window exactly (the checkpoint does not
  /// contain it). A non-negative retention shorter than the engine's
  /// analysis window trades window completeness for disk.
  DurationSec analysis_retention = -1;
};

/// What Recover() did, for the daemon's startup report.
struct RecoveryResult {
  bool from_checkpoint = false;
  /// WAL seqno the checkpoint covers (0 when none).
  uint64_t checkpoint_seqno = 0;
  /// First seqno a new WalWriter should assign — pass to WalWriter::Open.
  uint64_t next_seqno = 1;
  /// Records ≤ checkpoint_seqno re-fed window-only (ReplayForAnalysis).
  size_t window_replayed = 0;
  /// Records > checkpoint_seqno re-applied through normal ingest.
  size_t live_replayed = 0;
  /// Bytes of torn final frame cut off the newest segment (0 = clean).
  uint64_t torn_bytes_truncated = 0;
  /// Checkpointed stream time (manifest), for seeding the stream clock.
  Timestamp checkpoint_stream_time = 0;
  /// Largest event timestamp seen across checkpoint + replay.
  Timestamp max_event_time = 0;
  /// Per-stream view, one entry per WAL stream (a single-stream recovery
  /// fills one entry mirroring the scalar fields). `stream_next_seqnos`
  /// feeds ShardedWal::Open; for a sharded log the scalar
  /// `checkpoint_seqno`/`next_seqno` hold the per-stream maxima.
  std::vector<uint64_t> stream_checkpoint_seqnos;
  std::vector<uint64_t> stream_next_seqnos;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(std::string wal_dir,
                             CheckpointOptions options = {});

  /// Takes a checkpoint of `engine` paired with the WAL position: seals
  /// and syncs the active segment, snapshots every shard, swaps the
  /// checkpoint directory atomically, then truncates sealed segments per
  /// CheckpointOptions. On failure the previous checkpoint is untouched
  /// (or survives as checkpoint.old across the swap window).
  Status Checkpoint(const core::ShardedEngine& engine, WalWriter* wal,
                    Timestamp stream_now);

  /// Per-shard-stream checkpoint: seals + syncs every stream and
  /// snapshots every shard concurrently (one thread per shard), records
  /// a per-stream high-water mark in the manifest, swaps atomically,
  /// then truncates each stream. A 1-stream wal delegates to the
  /// single-writer overload (byte-identical manifest).
  Status Checkpoint(const core::ShardedEngine& engine, ShardedWal* wal,
                    Timestamp stream_now);

  /// Restores `engine` from the newest valid checkpoint (if any) and
  /// replays the WAL tail: records the checkpoint already covers are
  /// re-fed window-only via ShardedEngine::ReplayForAnalysis (profiles /
  /// counters / inventory stay snapshot-accurate, no double counting),
  /// records past the checkpoint go through normal ingest. A torn final
  /// record is truncated off. `engine` must be freshly constructed with
  /// the shard count the checkpoint was taken with.
  Result<RecoveryResult> Recover(core::ShardedEngine* engine) const;

  /// Per-shard-stream recovery: loads every shard snapshot and replays
  /// its stream concurrently — one thread per shard, each thread
  /// touching only its own engine shard and log stream. `wal_shards`
  /// must match the layout on disk and the engine shard count;
  /// `wal_shards == 1` delegates to Recover().
  Result<RecoveryResult> Recover(core::ShardedEngine* engine,
                                 size_t wal_shards) const;

  const std::string& wal_dir() const { return wal_dir_; }
  const CheckpointOptions& options() const { return options_; }

 private:
  std::string checkpoint_dir() const { return wal_dir_ + "/checkpoint"; }

  const std::string wal_dir_;
  const CheckpointOptions options_;
};

}  // namespace adrec::wal

#endif  // ADREC_WAL_CHECKPOINT_H_
