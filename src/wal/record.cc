#include "wal/record.h"

#include <array>
#include <cstdlib>

#include "common/string_util.h"
#include "feed/trace_io.h"

namespace adrec::wal {

namespace {

/// The CRC-32 (IEEE 802.3, reflected 0xEDB88320) lookup table, built once.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr std::string_view kTweetVerb = "tweet";
constexpr std::string_view kCheckInVerb = "checkin";
constexpr std::string_view kAdPutVerb = "adput";
constexpr std::string_view kAdDelVerb = "addel";

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const auto& table = CrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendFrameTo(std::string* out, uint64_t seqno,
                   std::string_view payload) {
  char seq[20];
  char* seq_end = seq + sizeof(seq);
  char* seq_begin = seq_end;
  uint64_t v = seqno;
  do {
    *--seq_begin = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  const std::string_view seq_sv(seq_begin,
                                static_cast<size_t>(seq_end - seq_begin));
  // The CRC covers "<seqno>\t<payload>", computed by chaining so the body
  // never needs to exist as one contiguous string.
  uint32_t crc = Crc32(seq_sv);
  crc = Crc32("\t", crc);
  crc = Crc32(payload, crc);

  out->reserve(out->size() + 10 + seq_sv.size() + 2 + payload.size());
  static constexpr char kHex[] = "0123456789abcdef";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out->push_back(kHex[(crc >> shift) & 0xFu]);
  }
  out->push_back('\t');
  out->append(seq_sv);
  out->push_back('\t');
  out->append(payload);
  out->push_back('\n');
}

std::string EncodeFrame(uint64_t seqno, std::string_view payload) {
  std::string out;
  AppendFrameTo(&out, seqno, payload);
  return out;
}

Result<Record> DecodeFrame(std::string_view line) {
  const size_t tab1 = line.find('\t');
  if (tab1 == std::string_view::npos) {
    return Status::InvalidArgument("frame needs <crc> <seqno> <payload>");
  }
  const std::string_view crc_field = line.substr(0, tab1);
  const std::string_view body = line.substr(tab1 + 1);
  if (crc_field.size() != 8) {
    return Status::InvalidArgument("crc field must be 8 hex digits");
  }
  char* end = nullptr;
  const std::string crc_str(crc_field);
  const unsigned long crc_claimed = std::strtoul(crc_str.c_str(), &end, 16);
  if (end != crc_str.c_str() + 8) {
    return Status::InvalidArgument("bad crc field '" + crc_str + "'");
  }
  if (Crc32(body) != static_cast<uint32_t>(crc_claimed)) {
    return Status::InvalidArgument("crc mismatch");
  }
  const size_t tab2 = body.find('\t');
  if (tab2 == std::string_view::npos) {
    return Status::InvalidArgument("frame needs <crc> <seqno> <payload>");
  }
  const std::string seqno_str(body.substr(0, tab2));
  end = nullptr;
  const unsigned long long seqno =
      std::strtoull(seqno_str.c_str(), &end, 10);
  if (end == seqno_str.c_str() || *end != '\0' || seqno == 0) {
    return Status::InvalidArgument("bad seqno '" + seqno_str + "'");
  }
  Record record;
  record.seqno = static_cast<uint64_t>(seqno);
  record.payload = std::string(body.substr(tab2 + 1));
  return record;
}

std::string EncodeEventPayload(const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
      return std::string(kTweetVerb) + "\t" +
             feed::FormatTweetFields(event.tweet);
    case feed::EventKind::kCheckIn:
      return std::string(kCheckInVerb) + "\t" +
             feed::FormatCheckInFields(event.check_in);
    case feed::EventKind::kAdInsert:
      return std::string(kAdPutVerb) + "\t" + feed::FormatAdFields(event.ad);
    case feed::EventKind::kAdDelete:
      return StringFormat("%s\t%u", std::string(kAdDelVerb).c_str(),
                          event.ad_id.value);
  }
  return {};
}

Result<feed::FeedEvent> DecodeEventPayload(std::string_view payload) {
  const size_t tab = payload.find('\t');
  const std::string_view verb =
      tab == std::string_view::npos ? payload : payload.substr(0, tab);
  const std::string_view fields =
      tab == std::string_view::npos ? std::string_view() : payload.substr(tab + 1);

  feed::FeedEvent event;
  if (verb == kTweetVerb) {
    auto t = feed::ParseTweetFields(fields);
    if (!t.ok()) return t.status();
    event.kind = feed::EventKind::kTweet;
    event.tweet = std::move(t).value();
    event.time = event.tweet.time;
    return event;
  }
  if (verb == kCheckInVerb) {
    auto c = feed::ParseCheckInFields(fields);
    if (!c.ok()) return c.status();
    event.kind = feed::EventKind::kCheckIn;
    event.check_in = c.value();
    event.time = event.check_in.time;
    return event;
  }
  if (verb == kAdPutVerb) {
    auto a = feed::ParseAdFields(fields);
    if (!a.ok()) return a.status();
    event.kind = feed::EventKind::kAdInsert;
    event.ad = std::move(a).value();
    return event;
  }
  if (verb == kAdDelVerb) {
    if (fields.empty() || fields.find('\t') != std::string_view::npos) {
      return Status::InvalidArgument("addel needs <ad>");
    }
    const std::string id_str(fields);
    char* end = nullptr;
    const unsigned long long id = std::strtoull(id_str.c_str(), &end, 10);
    if (end == id_str.c_str() || *end != '\0' || id > UINT32_MAX) {
      return Status::InvalidArgument("bad ad id '" + id_str + "'");
    }
    event.kind = feed::EventKind::kAdDelete;
    event.ad_id = AdId(static_cast<uint32_t>(id));
    return event;
  }
  return Status::InvalidArgument("unknown wal verb '" + std::string(verb) +
                                 "'");
}

}  // namespace adrec::wal
