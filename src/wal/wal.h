#ifndef ADREC_WAL_WAL_H_
#define ADREC_WAL_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "wal/record.h"

namespace adrec::wal {

/// The durable write-ahead log of the serving daemon (DESIGN.md §11).
///
/// A log directory holds segment files named `wal-<first-seqno>.log`
/// (20-digit zero-padded decimal). Each segment is an append-only run of
/// CRC-framed records (wal/record.h); seqnos are contiguous across the
/// whole directory, so the segment name doubles as its index key. The
/// newest segment is the only one ever appended to; older segments are
/// sealed and immutable, which is what makes checkpoint truncation a
/// plain unlink.
///
/// Sealed segments may additionally be *compacted* (wal/delta/compactor.h)
/// into `wal-<first-seqno>.clog` files: same frame grammar and original
/// seqnos, but records whose effects are superseded are dropped, so a
/// compacted segment may carry seqno gaps and may begin after the seqno
/// its name records (the name keeps the *original* range's first seqno so
/// ordering and truncation keys are unchanged). Scans tolerate forward
/// gaps only inside/after compacted segments; everywhere else a seqno
/// break is still hard corruption. The active (newest) segment is never
/// compacted, so torn-tail semantics are untouched.

/// When appended records reach the disk.
enum class SyncPolicy {
  /// Never fdatasync — the OS flushes when it pleases. Fastest; a crash
  /// loses up to the dirty page cache.
  kNone,
  /// fdatasync at most once per `sync_interval` seconds, piggybacked on
  /// appends/commits. Bounds loss to one interval.
  kInterval,
  /// Group commit: every record is durable before its Append returns (or
  /// before Commit returns, for the deferred event-loop interface), and
  /// concurrent waiters are batched into one fdatasync.
  kGroup,
};

/// Parses "none" / "interval" / "group".
Result<SyncPolicy> ParseSyncPolicy(std::string_view name);
std::string_view SyncPolicyName(SyncPolicy policy);

struct WalOptions {
  SyncPolicy sync = SyncPolicy::kGroup;
  /// Sync cadence for SyncPolicy::kInterval, in wall seconds.
  double sync_interval = 0.05;
  /// Rotate the active segment once it exceeds this many bytes.
  size_t segment_bytes = 4 * 1024 * 1024;
  /// Sampling rate of the wal.append_us timer on the deferred-append
  /// path: 1 in this many appends is timed (a deferred append costs a
  /// few hundred nanoseconds, so timing every one — two clock reads plus
  /// the timer mutex — would cost as much as the work being measured).
  /// 1 times every append; 0 disables the probe. The daemon flag is
  /// --wal-append-sample.
  uint64_t append_sample_every = 16;
  /// Number of per-shard log streams the directory is split into
  /// (wal/sharded_wal.h). 1 keeps the classic single-stream layout
  /// (segments directly under the log dir); N > 1 puts stream `s` under
  /// `<dir>/<s>/` with its own independent seqno space, so group commit,
  /// checkpointing, recovery and replication all parallelise per shard.
  /// Must equal the engine shard count when > 1. The daemon flag is
  /// --wal-shards.
  size_t shards = 1;
};

/// One segment file of a log directory.
struct SegmentSummary {
  std::string path;
  uint64_t first_seqno = 0;
  /// Filled by scans; 0 for an empty segment.
  uint64_t last_seqno = 0;
  size_t records = 0;
  uint64_t bytes = 0;
  /// A `.clog` segment rewritten by the compactor: may contain seqno
  /// gaps, and its first record may exceed the name's seqno.
  bool compacted = false;
};

/// The on-disk file name for a segment starting at `first_seqno`
/// (`wal-<20 digits>.log`, or `.clog` when compacted).
std::string SegmentFileName(uint64_t first_seqno, bool compacted);

/// Segment files of `dir`, sorted by first seqno; missing dir -> empty.
/// When both `wal-X.log` and `wal-X.clog` exist (a compaction swap was
/// interrupted between rename and unlink), only the compacted one is
/// listed — it is the later, durable rewrite of the same range.
std::vector<SegmentSummary> ListSegments(const std::string& dir);

/// What a full scan of a log directory found.
struct LogReport {
  std::vector<SegmentSummary> segments;
  size_t records = 0;
  uint64_t first_seqno = 0;  ///< 0 when the log is empty
  uint64_t last_seqno = 0;   ///< last *valid* seqno
  /// A torn tail was found (crash mid-append): trailing bytes of the
  /// newest segment that do not form a valid frame.
  bool torn_tail = false;
  uint64_t torn_bytes = 0;
  std::string torn_detail;
  /// Compaction bookkeeping: how many segments are compacted rewrites,
  /// and how many seqnos the scan legitimately skipped over (dropped,
  /// superseded records — only ever inside/after compacted segments).
  size_t compacted_segments = 0;
  uint64_t gap_records = 0;
  /// Segments whose every record duplicated an already-scanned seqno:
  /// superseded inputs of a compaction swap that crashed between the
  /// output rename and the input unlink. Safe to delete (and deleted,
  /// under ScanOptions::remove_stale_segments).
  std::vector<std::string> stale_segments;
};

struct ScanOptions {
  /// Physically truncate a torn tail off the newest segment (fsyncs the
  /// file). Corruption anywhere else is always a hard error.
  bool truncate_torn_tail = false;
  /// Also parse every payload with DecodeEventPayload and fail the scan
  /// on grammar errors (verification mode).
  bool decode_payloads = false;
  /// Unlink segments found fully shadowed by a crashed compaction swap
  /// (see LogReport::stale_segments) and drop them from the report's
  /// segment list. Recovery-time scans set this; read-only scans do not.
  bool remove_stale_segments = false;
};

/// Scans every segment of `dir` in seqno order, invoking `fn` (when
/// given) per valid record. Enforces CRC integrity and seqno contiguity;
/// a bad frame in the newest segment is reported (and optionally
/// truncated) as a torn tail, a bad frame anywhere else fails the scan
/// with IoError. An empty or missing directory yields an empty report.
Result<LogReport> ScanLog(const std::string& dir, const ScanOptions& options,
                          const std::function<Status(const Record&)>& fn = {});

/// Scan in verification mode: CRCs, contiguity and payload grammar, no
/// mutation. Hard corruption returns the error; a torn tail is reported
/// in the (otherwise valid) LogReport.
Result<LogReport> VerifyLog(const std::string& dir);

/// Resume state for an incremental ReadFrames cursor. Opaque to callers:
/// default-construct one per replication stream and pass the same object
/// to every call — when the hint still matches the requested seqno, the
/// read seeks straight to the remembered byte offset instead of
/// re-scanning the segment from its first record.
struct CursorHint {
  std::string path;        ///< segment file the cursor stopped in
  uint64_t offset = 0;     ///< byte offset of the next unread frame
  uint64_t next_seqno = 0; ///< seqno expected at `offset` (0 = unset)
};

/// One batch of raw replication frames read from a log directory.
struct CursorBatch {
  /// Verbatim CRC-framed bytes (LF-terminated, exactly as on disk) —
  /// ship them as-is; the follower re-verifies every CRC on apply.
  std::string frames;
  /// The cursor after this batch: seqno of the next unread record.
  uint64_t next_seqno = 0;
  size_t records = 0;
  /// No more frames were available past next_seqno at read time (caught
  /// up to limit_seqno, the log tip, or a torn tail). False means the
  /// batch stopped at max_bytes and more data is ready now.
  bool at_end = false;
};

/// Reads consecutive frames [from_seqno .. limit_seqno] from `dir`, up to
/// ~max_bytes per call (always at least one frame when available) — the
/// leader-side log shipper of DESIGN.md §12. Frames are returned as raw
/// bytes so shipping is a copy, not a re-encode; every frame is still
/// CRC-checked and contiguity-checked on the way through. Reading stops
/// cleanly (at_end) at the tip or at a torn tail; pass `limit_seqno` no
/// higher than the writer's flushed_seqno() so a mid-write frame is
/// never read. Fails NotFound when from_seqno precedes the oldest
/// retained segment, and also when the requested range crosses a seqno
/// gap left by segment compaction — replication only ships the
/// contiguous tail, so either way the follower must re-seed from a
/// checkpoint. IoError on corruption before the newest segment's tail.
Result<CursorBatch> ReadFrames(const std::string& dir, uint64_t from_seqno,
                               uint64_t limit_seqno, size_t max_bytes,
                               CursorHint* hint = nullptr);

/// The append side of the log. Thread-safe: concurrent Append calls are
/// serialized on the record write and batched on the fdatasync (classic
/// leader/follower group commit), which is what makes `kGroup` cheaper
/// than one sync per record under concurrency. The single-threaded
/// serving daemon instead uses AppendDeferred + Commit to group one event
/// -loop batch of records into one sync before any reply is released.
///
/// Exported metrics (`wal.*`, via metrics()): appends, append_bytes,
/// fsyncs, commits, rotations, torn_truncated_bytes, sealed_deleted
/// counters; append_us / fsync_us timers; active_segment_bytes,
/// synced_seqno, next_seqno gauges.
class WalWriter {
 public:
  /// Opens (creating if needed) the log directory for appending. Scans
  /// existing segments to resume seqnos, truncating a torn tail; pass
  /// `next_seqno` > 0 (e.g. from wal::Recover) to skip re-reading
  /// segment contents. When the newest existing segment is uncompacted,
  /// below the rotation threshold, frame-clean and contiguous with
  /// `next_seqno`, appends RESUME into it — without this, every restart
  /// minted a fresh segment and short-lived daemons accumulated heaps
  /// of near-empty files. Anything else (torn, gapped, full, compacted)
  /// seals it and appends go to a fresh segment.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 WalOptions options = {},
                                                 uint64_t next_seqno = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and applies the sync policy (kGroup blocks until
  /// the record is durable). Returns the record's seqno.
  Result<uint64_t> Append(std::string_view payload);

  /// Appends without applying the sync policy; pair with Commit(). The
  /// frame buffers in user space — the write(2) happens at the next
  /// Commit/Sync/Append/Rotate, so a whole event-loop batch costs one
  /// syscall. A record is not durable (not even against SIGKILL) until
  /// the buffer is flushed; that is fine because the daemon never
  /// releases the record's reply before Commit().
  Result<uint64_t> AppendDeferred(std::string_view payload);

  /// Durability barrier for deferred appends: flushes the buffered
  /// frames to the active segment (one write), then applies the sync
  /// policy — kGroup fdatasyncs everything appended so far, kInterval
  /// fdatasyncs if the interval lapsed, kNone stops at the page cache.
  Status Commit();

  /// Unconditional fdatasync barrier (checkpointing, shutdown).
  Status Sync();

  /// Seals the active segment (fdatasync + close); the next append opens
  /// a new one. No-op when the active segment is empty.
  Status Rotate();

  /// Deletes sealed segments whose records are all (a) below `seqno` and
  /// (b) timestamped before `floor_time` (pass INT64_MAX to skip the
  /// time check). Only a contiguous prefix of segments is removed, so
  /// seqno contiguity of the remaining log is preserved. Returns the
  /// number of segments deleted.
  Result<size_t> TruncateSealedBefore(uint64_t seqno, Timestamp floor_time);

  /// Snapshot of the sealed (immutable) segments, oldest first. Entries
  /// from an Open that skipped scanning carry last_seqno/records == 0.
  std::vector<SegmentSummary> sealed_segments() const;

  /// Replaces the first `count` sealed segments with `replacement` —
  /// the bookkeeping half of a compaction swap, called after the
  /// rewritten files are durably in place (wal/delta/compactor.cc).
  /// Safe against concurrent appends: rotation only ever push_backs.
  void ReplaceSealedPrefix(size_t count,
                           std::vector<SegmentSummary> replacement);

  /// The writer's registry, for subsystems that account their work
  /// against this log (the segment compactor's `compact.*` families).
  obs::MetricRegistry* mutable_metrics() { return &metrics_; }

  const std::string& dir() const { return dir_; }
  const WalOptions& options() const { return options_; }
  uint64_t next_seqno() const;
  /// Seqno of the last record appended (0 if none yet).
  uint64_t last_seqno() const;
  /// Seqno through which the log is known durable.
  uint64_t synced_seqno() const;
  /// Seqno through which frames have left user space (write(2) done, so
  /// a ReadFrames on the same directory sees complete frames up to
  /// here). Deferred appends still in the buffer are NOT included — the
  /// replication shipper uses this as its limit so it never reads a
  /// record whose reply the event loop has not released.
  uint64_t flushed_seqno() const;
  size_t active_segment_bytes() const;

  const obs::MetricRegistry& metrics() const { return metrics_; }

 private:
  WalWriter(std::string dir, WalOptions options, uint64_t next_seqno,
            std::vector<SegmentSummary> sealed);

  /// Writes one frame to the active segment (creating/rotating as
  /// needed). Caller holds mu_.
  Result<uint64_t> AppendLocked(std::string_view payload);
  /// Writes the deferred-append buffer to the active segment. Invariant:
  /// the buffer is only non-empty while the active segment is open.
  Status FlushPendingLocked();
  Status OpenActiveLocked();
  Status RotateLocked();
  /// fdatasyncs the active segment; leader/follower batched. The lock is
  /// released around the fdatasync so appenders are not blocked by it.
  Status SyncLocked(std::unique_lock<std::mutex>& lock, uint64_t want_seqno);

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  int fd_ = -1;  ///< active segment, -1 until the first append
  uint64_t active_first_seqno_ = 0;
  size_t active_bytes_ = 0;
  size_t active_records_ = 0;
  uint64_t next_seqno_ = 1;
  uint64_t synced_seqno_ = 0;
  bool sync_in_progress_ = false;
  /// Deferred-append frames not yet written to fd_ (see AppendDeferred).
  std::string pending_;
  size_t pending_records_ = 0;
  /// Sealed segments, oldest first (paths + first seqnos; contents are
  /// only read when truncation needs record times).
  std::vector<SegmentSummary> sealed_;
  std::chrono::steady_clock::time_point last_interval_sync_;

  obs::MetricRegistry metrics_;
  obs::Counter* ctr_appends_;
  obs::Counter* ctr_append_bytes_;
  obs::Counter* ctr_fsyncs_;
  obs::Counter* ctr_commits_;
  obs::Counter* ctr_rotations_;
  obs::Counter* ctr_sealed_deleted_;
  obs::Timer* tm_append_us_;
  obs::Timer* tm_fsync_us_;
  obs::Gauge* g_active_segment_bytes_;
  obs::Gauge* g_synced_seqno_;
  obs::Gauge* g_next_seqno_;
};

}  // namespace adrec::wal

#endif  // ADREC_WAL_WAL_H_
