#include "wal/sharded_wal.h"

#include <filesystem>

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::wal {

std::string StreamDir(const std::string& dir, size_t stream, size_t shards) {
  if (shards <= 1) return dir;
  return StringFormat("%s/%zu", dir.c_str(), stream);
}

Result<size_t> DetectStreamLayout(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec) || ec) return size_t{1};
  bool flat_segments = false;
  std::vector<bool> numbered;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("wal-", 0) == 0) {
      flat_segments = true;
      continue;
    }
    if (!entry.is_directory()) continue;
    // Only all-digit names count as stream directories ("checkpoint",
    // "checkpoint.old" and friends live alongside them).
    if (name.empty() ||
        name.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const size_t stream = static_cast<size_t>(std::stoull(name));
    if (stream >= numbered.size()) numbered.resize(stream + 1, false);
    numbered[stream] = true;
  }
  if (ec) return Status::IoError("scan " + dir + ": " + ec.message());
  if (numbered.empty()) return size_t{1};
  if (flat_segments) {
    return Status::InvalidArgument(
        dir + ": mixed wal layout (flat segments next to stream dirs)");
  }
  for (size_t s = 0; s < numbered.size(); ++s) {
    if (!numbered[s]) {
      return Status::InvalidArgument(
          StringFormat("%s: gappy stream layout (missing stream %zu of %zu)",
                       dir.c_str(), s, numbered.size()));
    }
  }
  return numbered.size();
}

ShardedWal::ShardedWal(std::string dir, WalOptions options,
                       std::vector<std::unique_ptr<WalWriter>> streams)
    : dir_(std::move(dir)),
      options_(options),
      streams_(std::move(streams)) {}

Result<std::unique_ptr<ShardedWal>> ShardedWal::Open(
    const std::string& dir, WalOptions options,
    const std::vector<uint64_t>& next_seqnos) {
  if (options.shards == 0) {
    return Status::InvalidArgument("wal shards must be >= 1");
  }
  if (!next_seqnos.empty() && next_seqnos.size() != options.shards) {
    return Status::InvalidArgument(StringFormat(
        "wal resume seqnos carry %zu stream(s), options say %zu",
        next_seqnos.size(), options.shards));
  }
  // Refuse to silently reinterpret an existing directory written with a
  // different stream count — that would split one shard's history across
  // incompatible seqno spaces.
  auto existing = DetectStreamLayout(dir);
  if (!existing.ok()) return existing.status();
  if (existing.value() > 1 && existing.value() != options.shards) {
    return Status::FailedPrecondition(StringFormat(
        "%s holds %zu wal stream(s); cannot open with %zu shards",
        dir.c_str(), existing.value(), options.shards));
  }
  if (options.shards > 1 && existing.value() == 1) {
    // DetectStreamLayout reports 1 both for "flat segments" and "no
    // segments yet"; only the former is a layout clash.
    std::error_code ec;
    if (std::filesystem::exists(dir, ec) && !ec) {
      for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (entry.is_regular_file() && name.rfind("wal-", 0) == 0) {
          return Status::FailedPrecondition(StringFormat(
              "%s holds a single-stream wal; cannot open with %zu shards",
              dir.c_str(), options.shards));
        }
      }
    }
  }

  std::vector<std::unique_ptr<WalWriter>> streams;
  streams.reserve(options.shards);
  for (size_t s = 0; s < options.shards; ++s) {
    const uint64_t resume = next_seqnos.empty() ? 0 : next_seqnos[s];
    auto w = WalWriter::Open(StreamDir(dir, s, options.shards), options,
                             resume);
    if (!w.ok()) {
      return Status(w.status().code(),
                    StringFormat("wal stream %zu: %s", s,
                                 w.status().ToString().c_str()));
    }
    streams.push_back(std::move(w).value());
  }
  return std::unique_ptr<ShardedWal>(
      new ShardedWal(dir, options, std::move(streams)));
}

Status ShardedWal::CommitAll() {
  Status first = Status::OK();
  for (auto& s : streams_) {
    const Status st = s->Commit();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status ShardedWal::SyncAll() {
  Status first = Status::OK();
  for (auto& s : streams_) {
    const Status st = s->Sync();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status ShardedWal::RotateAll() {
  Status first = Status::OK();
  for (auto& s : streams_) {
    const Status st = s->Rotate();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

obs::MetricsSnapshot ShardedWal::MergedMetrics() const {
  obs::MetricsSnapshot merged;
  for (const auto& s : streams_) {
    merged.MergeFrom(s->metrics().Snapshot());
  }
  return merged;
}

}  // namespace adrec::wal
