#ifndef ADREC_WAL_RECORD_H_
#define ADREC_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "feed/types.h"

namespace adrec::wal {

/// The write-ahead-log record grammar.
///
/// A WAL file is a sequence of LF-terminated frames:
///
///   <crc32-hex8> TAB <seqno> TAB <payload...> LF
///
/// where <crc32-hex8> is the zero-padded lowercase hex CRC-32 (IEEE
/// 802.3 polynomial, the zlib/`cksum -o 3` convention) of everything
/// after the first TAB ("<seqno>\t<payload>"), <seqno> is the strictly
/// increasing record sequence number (decimal, starting at 1), and
/// <payload> is the tail of the line — it may itself contain TABs but
/// never LF/CR (the trace grammar sanitises free text on write).
///
/// The payload reuses the serve wire-protocol ingest grammar verbatim:
///
///   tweet   TAB <user> TAB <time> TAB <text...>
///   checkin TAB <user> TAB <time> TAB <location>
///   adput   TAB <id> TAB <campaign> TAB <budget> TAB <bid>
///           TAB <locs;...> TAB <slots;...> TAB <copy...>
///   addel   TAB <id>
///
/// so a logged record is exactly the command the daemon executed, a
/// trace file converts to a WAL by framing, and `adrec_tool wal dump`
/// output replays through any protocol consumer.
///
/// Torn-write detection: a crash mid-append leaves either a frame with
/// no trailing LF, or an LF-terminated frame whose CRC does not match.
/// Both are detected by DecodeFrame and truncated away by recovery; a
/// CRC mismatch anywhere *before* the tail of the newest segment is
/// hard corruption (bit rot, splice), which recovery refuses by default.

/// CRC-32 (IEEE) of `data`, optionally chained from a previous value.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// One decoded WAL frame.
struct Record {
  uint64_t seqno = 0;
  /// The wire-grammar payload ("tweet\t...", "checkin\t...", ...).
  std::string payload;
};

/// Encodes one frame, including the trailing LF.
std::string EncodeFrame(uint64_t seqno, std::string_view payload);

/// Appends one encoded frame to `out` without intermediate allocations —
/// the hot-path form used by the writer's deferred-append buffer.
void AppendFrameTo(std::string* out, uint64_t seqno,
                   std::string_view payload);

/// Decodes one frame (without the trailing LF). Fails with
/// InvalidArgument on structural problems and with a "crc mismatch"
/// message on checksum failure — recovery treats both as a torn tail
/// when they occur at the end of the newest segment.
Result<Record> DecodeFrame(std::string_view line);

/// Formats a feed event as a WAL payload. Ad-delete events use the id in
/// `event.ad_id`; all other kinds use their kind's struct.
std::string EncodeEventPayload(const feed::FeedEvent& event);

/// Parses a WAL payload back into a feed event (the inverse of
/// EncodeEventPayload; also accepts any wire ingest command line).
Result<feed::FeedEvent> DecodeEventPayload(std::string_view payload);

}  // namespace adrec::wal

#endif  // ADREC_WAL_RECORD_H_
