#include "replica/follower.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "wal/record.h"

namespace adrec::replica {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

bool ParseU64Field(std::string_view field, uint64_t* out) {
  const std::string s(field);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || s.empty() || s[0] == '-') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace

Follower::Follower(core::ShardedEngine* engine, wal::WalWriter* wal,
                   FollowerOptions options)
    : engine_(engine),
      wal_(wal),
      options_(std::move(options)),
      applied_seqno_(wal->last_seqno()),
      next_attempt_(std::chrono::steady_clock::now()) {
  ADREC_CHECK(engine_ != nullptr);
  ADREC_CHECK(wal_ != nullptr);
  if (options_.shard != SIZE_MAX) {
    ADREC_CHECK(options_.shard < engine_->num_shards());
  }
  // Per-shard followers carry the stream index in their metric names so
  // the N lag gauges survive a registry merge side by side.
  const std::string prefix =
      options_.shard == SIZE_MAX
          ? std::string("replica.")
          : StringFormat("replica.s%zu.", options_.shard);
  g_lag_records_ = metrics_.GetGauge(prefix + "lag_records");
  g_lag_ms_ = metrics_.GetGauge(prefix + "lag_ms");
  g_applied_seqno_ = metrics_.GetGauge(prefix + "applied_seqno");
  g_leader_seqno_ = metrics_.GetGauge(prefix + "leader_seqno");
  g_connected_ = metrics_.GetGauge(prefix + "connected");
  ctr_bytes_received_ = metrics_.GetCounter(prefix + "bytes_received");
  ctr_records_applied_ = metrics_.GetCounter(prefix + "records_applied");
  ctr_heartbeats_ = metrics_.GetCounter(prefix + "heartbeats");
  ctr_reconnects_ = metrics_.GetCounter(prefix + "reconnects");
  ctr_apply_errors_ = metrics_.GetCounter(prefix + "apply_errors");
  g_applied_seqno_->Set(static_cast<double>(applied_seqno_));
}

std::string Follower::HandshakeLine() const {
  if (options_.shard == SIZE_MAX) {
    return StringFormat("repl\t%llu\n",
                        static_cast<unsigned long long>(wal_->last_seqno()));
  }
  return StringFormat("repl\t%zu\t%llu\n", options_.shard,
                      static_cast<unsigned long long>(wal_->last_seqno()));
}

Follower::~Follower() {
  if (fd_ >= 0) ::close(fd_);
}

bool Follower::want_write() const {
  return fd_ >= 0 && (state_ == State::kConnecting || !out_.empty());
}

void Follower::StartConnect() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0 || !SetNonBlocking(fd_)) {
    CloseAndBackoff(StringFormat("socket: %s", std::strerror(errno)));
    return;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseAndBackoff("bad leader address " + options_.host);
    return;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
      0) {
    state_ = State::kHandshake;
    out_ = HandshakeLine();
    return;
  }
  if (errno == EINPROGRESS) {
    state_ = State::kConnecting;
    return;
  }
  CloseAndBackoff(StringFormat("connect %s:%u: %s", options_.host.c_str(),
                               options_.port, std::strerror(errno)));
}

void Follower::CloseAndBackoff(const std::string& why) {
  const bool was_streaming = state_ == State::kStreaming;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
  out_.clear();
  pending_tips_.clear();
  state_ = State::kDisconnected;
  g_connected_->Set(0.0);
  if (detached_) return;
  backoff_ = backoff_ <= 0.0
                 ? options_.backoff_initial
                 : std::min(backoff_ * 2.0, options_.backoff_max);
  next_attempt_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(backoff_));
  ctr_reconnects_->Inc();
  const std::string detail = StringFormat(
      "replica: leader %s:%u unavailable (%s), retrying in %.1fs",
      options_.host.c_str(), options_.port, why.c_str(), backoff_);
  if (was_streaming) {
    ADREC_LOG(kWarning) << detail;
  } else {
    ADREC_LOG(kInfo) << detail;
  }
  UpdateLagGauges();
}

bool Follower::FlushOut() {
  while (!out_.empty()) {
    const ssize_t n =
        ::send(fd_, out_.data(), out_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      out_.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    CloseAndBackoff(StringFormat("send: %s", std::strerror(errno)));
    return false;
  }
  return true;
}

bool Follower::ReadInput() {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<size_t>(n));
      ctr_bytes_received_->Inc(static_cast<uint64_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) return true;
      continue;
    }
    if (n == 0) {
      CloseAndBackoff("leader closed the stream");
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    CloseAndBackoff(StringFormat("recv: %s", std::strerror(errno)));
    return false;
  }
}

void Follower::HandleControlLine(std::string_view line) {
  const auto fields = SplitString(line, ' ');
  if (fields.size() >= 2 && fields[1] == "OK") {
    if (state_ == State::kHandshake) {
      state_ = State::kStreaming;
      backoff_ = 0.0;
      g_connected_->Set(1.0);
      ADREC_LOG(kInfo) << "replica: streaming from " << options_.host << ":"
                       << options_.port << " at cursor "
                       << applied_seqno_;
    }
    return;
  }
  if (fields.size() >= 3 && fields[1] == "HB") {
    uint64_t tip = 0;
    if (!ParseU64Field(fields[2], &tip)) return;
    ctr_heartbeats_->Inc();
    if (tip > leader_tip_) leader_tip_ = tip;
    if (tip > applied_seqno_ &&
        (pending_tips_.empty() || tip > pending_tips_.back().first)) {
      pending_tips_.emplace_back(tip, std::chrono::steady_clock::now());
    }
    UpdateLagGauges();
    return;
  }
  // Unknown control line: tolerated for forward compatibility.
}

void Follower::ApplyEvent(const feed::FeedEvent& event) {
  // Pre-apply, so an addel observer can still look up the doomed ad's
  // metadata in the store (the server's topk cache needs its targeting
  // to compute invalidation fan-out).
  if (apply_observer_) apply_observer_(event);
  // The same apply semantics as crash recovery (wal/checkpoint.cc):
  // re-insertion and double-deletion are benign — the leader's log may
  // overlap what a checkpoint already restored.
  const size_t shard = options_.shard;
  switch (event.kind) {
    case feed::EventKind::kTweet:
    case feed::EventKind::kCheckIn:
      if (shard == SIZE_MAX) {
        engine_->OnEvent(event);
      } else {
        // Stream `shard` only carries this shard's users; ApplyToShard
        // re-checks the routing invariant.
        engine_->ApplyToShard(shard, event);
      }
      break;
    case feed::EventKind::kAdInsert: {
      const Status st = shard == SIZE_MAX
                            ? engine_->InsertAd(event.ad)
                            : engine_->InsertAdOnShard(shard, event.ad);
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
        ctr_apply_errors_->Inc();
        ADREC_LOG(kError) << "replica: adput apply failed: "
                          << st.ToString();
      }
      break;
    }
    case feed::EventKind::kAdDelete: {
      const Status st = shard == SIZE_MAX
                            ? engine_->RemoveAd(event.ad_id)
                            : engine_->RemoveAdOnShard(shard, event.ad_id);
      if (!st.ok() && st.code() != StatusCode::kNotFound) {
        ctr_apply_errors_->Inc();
        ADREC_LOG(kError) << "replica: addel apply failed: "
                          << st.ToString();
      }
      break;
    }
  }
  if (event.time > max_event_time_) max_event_time_ = event.time;
}

void Follower::ProcessInput() {
  std::vector<feed::FeedEvent> batch;
  /// Parallel to `batch`: the per-frame traces (null when tracing is
  /// off). Held open until after the batch commit so the shared barrier
  /// is attributed to every frame it made durable — same shape as the
  /// serving daemon's wave traces.
  std::vector<std::unique_ptr<obs::TraceBuilder>> traces;
  obs::TraceCollector* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  size_t start = 0;
  std::string die_why;
  bool die = false;

  while (start < in_.size()) {
    const size_t nl = in_.find('\n', start);
    if (nl == std::string::npos) {
      if (in_.size() - start > options_.max_line_bytes) {
        die = true;
        die_why = "oversized replication line";
      }
      break;
    }
    size_t end = nl;
    if (end > start && in_[end - 1] == '\r') --end;
    const std::string_view line(in_.data() + start, end - start);
    start = nl + 1;

    if (StartsWith(line, "REPL ")) {
      HandleControlLine(line);
      continue;
    }
    if (state_ != State::kStreaming) {
      // The handshake was refused (READONLY leaderless target, cursor
      // below retention, wal disabled, ...). The reply text says why.
      die = true;
      die_why = "handshake refused: " + std::string(line);
      break;
    }
    auto record = wal::DecodeFrame(line);
    if (!record.ok()) {
      die = true;
      die_why = "bad frame: " + record.status().message();
      break;
    }
    const wal::Record& r = record.value();
    const uint64_t expected = applied_seqno_ + batch.size() + 1;
    if (r.seqno != expected) {
      die = true;
      die_why = StringFormat("stream seqno %llu, expected %llu",
                             static_cast<unsigned long long>(r.seqno),
                             static_cast<unsigned long long>(expected));
      break;
    }
    auto event = wal::DecodeEventPayload(r.payload);
    if (!event.ok()) {
      die = true;
      die_why = "bad payload: " + event.status().message();
      break;
    }
    std::unique_ptr<obs::TraceBuilder> trace;
    if (tracing) {
      trace = trace_pool_.Acquire();
      trace->Start(tracer->NextTraceId(), r.payload);
    }
    // Durability before visibility: the frame goes to the follower's own
    // log (deferred; committed below, before any engine mutation).
    const uint32_t append_span =
        trace != nullptr ? trace->StartSpan("wal.append") : 0;
    auto seqno = wal_->AppendDeferred(r.payload);
    if (trace != nullptr) trace->EndSpan(append_span);
    if (!seqno.ok()) {
      die = true;
      die_why = "local wal append failed: " + seqno.status().ToString();
      if (trace != nullptr) {
        trace->SetOutcome(obs::TraceOutcome::kError);
        trace->SetReason(die_why);
        tracer->Finish(trace.get());
        trace_pool_.Release(std::move(trace));
      }
      break;
    }
    batch.push_back(std::move(event).value());
    traces.push_back(std::move(trace));
    if (r.seqno > leader_tip_) leader_tip_ = r.seqno;
  }
  in_.erase(0, start);

  if (!batch.empty()) {
    const auto commit_t0 = std::chrono::steady_clock::now();
    const Status st = wal_->Commit();
    const auto commit_t1 = std::chrono::steady_clock::now();
    if (!st.ok()) {
      // Loud, like the serving daemon: records already streamed cannot
      // be un-received, and the leader holds them durably anyway.
      ADREC_LOG(kError) << "replica: local wal commit failed: "
                        << st.ToString();
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      obs::TraceBuilder* trace = i < traces.size() ? traces[i].get()
                                                   : nullptr;
      if (trace != nullptr) {
        trace->AddSpan("wal.commit_wave", commit_t0, commit_t1);
        if (!st.ok()) {
          trace->SetOutcome(obs::TraceOutcome::kError);
          trace->SetReason("local wal commit failed");
        }
      }
      const uint32_t apply_span =
          trace != nullptr ? trace->StartSpan("replica.apply") : 0;
      {
        // Engine stage probes land under replica.apply.
        obs::ScopedActiveTrace active(trace);
        ApplyEvent(batch[i]);
      }
      if (trace != nullptr) {
        trace->EndSpan(apply_span);
        tracer->Finish(trace);
        trace_pool_.Release(std::move(traces[i]));
      }
    }
    applied_seqno_ += batch.size();
    ctr_records_applied_->Inc(batch.size());
    while (!pending_tips_.empty() &&
           pending_tips_.front().first <= applied_seqno_) {
      pending_tips_.pop_front();
    }
    UpdateLagGauges();
  }
  if (die) CloseAndBackoff(die_why);
}

void Follower::OnPollEvents(short revents) {
  if (fd_ < 0) return;
  if (state_ == State::kConnecting &&
      (revents & (POLLOUT | POLLERR | POLLHUP))) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      CloseAndBackoff(StringFormat("connect %s:%u: %s",
                                   options_.host.c_str(), options_.port,
                                   std::strerror(err != 0 ? err : errno)));
      return;
    }
    state_ = State::kHandshake;
    out_ = HandshakeLine();
  }
  if (!out_.empty() && !FlushOut()) return;
  if (revents & (POLLIN | POLLHUP)) {
    if (!ReadInput()) return;
    ProcessInput();
  }
  if (fd_ >= 0 && (revents & (POLLERR | POLLNVAL))) {
    CloseAndBackoff("socket error");
  }
}

void Follower::Tick() {
  if (detached_) return;
  if (state_ == State::kDisconnected &&
      std::chrono::steady_clock::now() >= next_attempt_) {
    StartConnect();
  }
  UpdateLagGauges();
}

int Follower::TickDelayMs() const {
  if (detached_) return 1000000;
  if (state_ == State::kDisconnected) {
    const double ms = std::chrono::duration<double, std::milli>(
                          next_attempt_ - std::chrono::steady_clock::now())
                          .count();
    return std::clamp(static_cast<int>(ms) + 1, 10, 1000);
  }
  // Streaming/connecting: wake often enough to keep the lag gauges and
  // heartbeat bookkeeping fresh.
  return 250;
}

void Follower::Detach() {
  detached_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
  out_.clear();
  pending_tips_.clear();
  state_ = State::kDisconnected;
  g_connected_->Set(0.0);
  UpdateLagGauges();
}

FollowerLag Follower::Lag() const {
  FollowerLag lag;
  lag.records =
      leader_tip_ > applied_seqno_ ? leader_tip_ - applied_seqno_ : 0;
  if (!pending_tips_.empty()) {
    lag.ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() -
                 pending_tips_.front().second)
                 .count();
  }
  return lag;
}

void Follower::UpdateLagGauges() {
  const FollowerLag lag = Lag();
  g_lag_records_->Set(static_cast<double>(lag.records));
  g_lag_ms_->Set(lag.ms);
  g_applied_seqno_->Set(static_cast<double>(applied_seqno_));
  g_leader_seqno_->Set(static_cast<double>(leader_tip_));
}

}  // namespace adrec::replica
