#ifndef ADREC_REPLICA_FOLLOWER_H_
#define ADREC_REPLICA_FOLLOWER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/sim_clock.h"
#include "common/status.h"
#include "core/sharded_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wal/wal.h"

namespace adrec::replica {

/// WAL log-shipping replication, follower side (DESIGN.md §12).
///
/// A follower is Recover + live tail apply: the daemon first recovers
/// its local log directory exactly as a restarting leader would, then a
/// Follower connects to the leader, sends `repl <cursor>` with the seqno
/// of the last record it already holds, and applies the resulting frame
/// stream through the same path recovery uses — each frame is appended
/// to the follower's OWN write-ahead log and committed before the event
/// touches the engine, so durability-before-visibility holds on the
/// replica too and a crashed follower restarts from its local log
/// without re-fetching history.
///
/// The class is event-loop furniture, not a thread: serve::Server polls
/// fd() alongside its client sockets and forwards readiness to
/// OnPollEvents(); Tick() drives reconnect backoff and the lag gauges.
/// All methods run on the server's event-loop thread — the follower
/// mutates the engine, and the loop is the engine's only writer.

struct FollowerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Reconnect backoff: first retry after `backoff_initial` seconds,
  /// doubling per consecutive failure, capped at `backoff_max`.
  double backoff_initial = 0.2;
  double backoff_max = 5.0;
  /// A control/frame line longer than this means the peer is not
  /// speaking the replication protocol; drop and reconnect.
  size_t max_line_bytes = 256 * 1024;
  /// Flight recorder (not owned; nullptr = replica tracing off). Every
  /// applied frame gets a trace: wal.append → wal.commit_wave →
  /// replica.apply with the engine stage spans nested under the apply.
  obs::TraceCollector* tracer = nullptr;
  /// Per-shard-stream replication (DESIGN.md §16): when set (!=
  /// SIZE_MAX), the follower handshakes `repl <shard> <cursor>`, its
  /// local `wal` is that shard's stream, applies touch only engine shard
  /// `shard` (ad broadcasts are duplicated into every stream by the
  /// leader), and the replica.* metrics are prefixed `replica.s<shard>.`
  /// so N followers' lag gauges stay distinguishable after a merge.
  size_t shard = SIZE_MAX;
};

/// Lag and liveness, sampled for the replica.* gauges and bench_replica.
struct FollowerLag {
  /// leader tip seqno minus applied seqno (0 when caught up).
  uint64_t records = 0;
  /// Milliseconds the oldest not-yet-applied leader tip announcement has
  /// been waiting, measured entirely on the follower's clock (a tip's
  /// local arrival time is the reference) — no leader/follower clock
  /// comparison, so skew cannot fake or hide lag.
  double ms = 0.0;
};

class Follower {
 public:
  /// `engine` and `wal` must outlive the follower. `wal` is the
  /// follower's local log (already recovered); its last_seqno() is the
  /// replication cursor.
  Follower(core::ShardedEngine* engine, wal::WalWriter* wal,
           FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// The socket to poll, or -1 while disconnected/backing off.
  int fd() const { return fd_; }
  /// Poll for writability too (connect in progress / handshake pending).
  bool want_write() const;
  /// Streaming (handshake acknowledged by the leader).
  bool streaming() const { return state_ == State::kStreaming; }
  bool detached() const { return detached_; }

  /// Handles poll readiness on fd(): completes the non-blocking connect,
  /// flushes the handshake, reads and applies frames.
  void OnPollEvents(short revents);

  /// Time-driven work: reconnect when the backoff lapses, refresh the
  /// lag gauges. Call once per event-loop iteration.
  void Tick();
  /// Upper bound (ms) the event loop may sleep without missing a
  /// reconnect deadline or a lag-gauge refresh.
  int TickDelayMs() const;

  /// Promotion: close the leader connection and stop reconnecting.
  /// Idempotent. The caller (the `promote` verb) seals the local log and
  /// lifts the server's read-only gate.
  void Detach();

  /// Seqno of the last record applied to the engine (== the local log's
  /// last_seqno once a batch commits).
  uint64_t applied_seqno() const { return applied_seqno_; }
  /// Highest leader tip seqno heard (heartbeats and applied frames).
  uint64_t leader_seqno() const { return leader_tip_; }
  /// Newest event timestamp applied — feeds the server's stream clock so
  /// time-less `topk` on the replica queries at the replicated position.
  Timestamp max_event_time() const { return max_event_time_; }
  FollowerLag Lag() const;

  /// replica.* registry: lag_records/lag_ms/applied_seqno/leader_seqno/
  /// connected gauges; bytes_received/records_applied/heartbeats/
  /// reconnects/apply_errors counters.
  const obs::MetricRegistry& metrics() const { return metrics_; }

  /// Observer invoked for every replicated event, immediately BEFORE it
  /// is applied to the engine (so an addel observer can still read the
  /// doomed ad's stored metadata). Runs on the event-loop thread. The
  /// server uses this to invalidate its topk result cache per applied
  /// frame — replicated ingest must evict exactly like local ingest.
  void set_apply_observer(std::function<void(const feed::FeedEvent&)> fn) {
    apply_observer_ = std::move(fn);
  }

 private:
  enum class State { kDisconnected, kConnecting, kHandshake, kStreaming };

  void StartConnect();
  void CloseAndBackoff(const std::string& why);
  /// Flushes pending handshake bytes; returns false if the conn died.
  bool FlushOut();
  /// Drains readable bytes; returns false if the conn died.
  bool ReadInput();
  /// Consumes complete lines from in_: control lines inline, frames
  /// batched into one local-WAL commit + engine apply.
  void ProcessInput();
  void HandleControlLine(std::string_view line);
  void ApplyEvent(const feed::FeedEvent& event);
  void UpdateLagGauges();
  /// The `repl ...` handshake for this follower's stream (legacy or
  /// per-shard form).
  std::string HandshakeLine() const;

  core::ShardedEngine* engine_;  // not owned
  wal::WalWriter* wal_;          // not owned
  const FollowerOptions options_;
  std::function<void(const feed::FeedEvent&)> apply_observer_;

  State state_ = State::kDisconnected;
  bool detached_ = false;
  int fd_ = -1;
  std::string in_;
  std::string out_;
  uint64_t applied_seqno_ = 0;
  uint64_t leader_tip_ = 0;
  Timestamp max_event_time_ = 0;
  double backoff_ = 0.0;
  std::chrono::steady_clock::time_point next_attempt_;
  /// Leader tip announcements not yet covered by applied_seqno_, with
  /// their local arrival instants (the lag_ms reference points).
  std::deque<std::pair<uint64_t, std::chrono::steady_clock::time_point>>
      pending_tips_;
  obs::TraceBuilderPool trace_pool_;

  obs::MetricRegistry metrics_;
  obs::Gauge* g_lag_records_;
  obs::Gauge* g_lag_ms_;
  obs::Gauge* g_applied_seqno_;
  obs::Gauge* g_leader_seqno_;
  obs::Gauge* g_connected_;
  obs::Counter* ctr_bytes_received_;
  obs::Counter* ctr_records_applied_;
  obs::Counter* ctr_heartbeats_;
  obs::Counter* ctr_reconnects_;
  obs::Counter* ctr_apply_errors_;
};

}  // namespace adrec::replica

#endif  // ADREC_REPLICA_FOLLOWER_H_
