#ifndef ADREC_CACHE_TOPK_CACHE_H_
#define ADREC_CACHE_TOPK_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/id_types.h"
#include "common/sim_clock.h"
#include "obs/metrics.h"

namespace adrec::cache {

/// Stream-clock-invalidated topk result cache (DESIGN.md §14).
///
/// Entries memoise the exact wire reply of a `topk` query, keyed by the
/// fully-resolved query shape — (user, time, k, text) — and stamped with
/// the cache's stream clock plus the location/slot filters the engine
/// resolved at fill time. Consistency comes from two mechanisms working
/// together:
///
///  * Eager invalidation: every ingest event advances the stream clock
///    and evicts the entries it could influence — a tweet evicts its
///    author's entries; a check-in evicts the author's entries and every
///    entry pinned to that geo cell; ad churn evicts every entry whose
///    (cell, slot) filters are compatible with the ad's targeting (an
///    invalid cell means the query ran unfiltered, so it is compatible
///    with everything — same wildcard rules as index::PassesFilters).
///  * Hit-time revalidation and charging: serving a topk reply is a
///    mutation (budget decrement + frequency-cap record), so the server
///    re-runs exactly those checks and charges through the engine before
///    a cached reply goes out (core::ChargeCachedTopK); if any served ad
///    fails, the entry is dropped and the query recomputes.
///
/// The cache is event-loop furniture like the engine it fronts: single
/// writer, no locks. Capacity 0 disables it entirely (enabled() false,
/// all mutators no-op).
///
/// Eviction and admission are pluggable. The defaults are LRU eviction
/// plus a frequency admission gate (a doorkeeper: while the cache is
/// full, a key earns a slot only on its second sighting within the
/// recent-miss window, so one-hit-wonder query shapes cannot flush the
/// hot set).

/// The fully-resolved identity of a topk query. `time` is the query's
/// effective timestamp (the server substitutes its stream clock for
/// time-less queries *before* keying), so two lookups collide only when
/// the uncached engine would see byte-identical inputs.
struct TopkKey {
  uint32_t user = 0;
  Timestamp time = 0;
  uint32_t k = 0;
  std::string text;

  bool operator==(const TopkKey& other) const = default;
};

uint64_t HashTopkKey(const TopkKey& key);

struct TopkKeyHash {
  size_t operator()(const TopkKey& key) const {
    return static_cast<size_t>(HashTopkKey(key));
  }
};

struct TopkCacheOptions {
  /// Maximum resident entries; 0 disables the cache.
  size_t capacity = 0;

  enum class Admission {
    kAlways,     ///< every computed result is inserted
    kFrequency,  ///< doorkeeper: admit under pressure on repeat sighting
  };
  Admission admission = Admission::kFrequency;
};

class TopkCache {
 public:
  /// One cached answer. Lives in the map (pointer-stable); the intrusive
  /// links belong to the eviction policy.
  struct Entry {
    TopkKey key;
    std::string reply;     ///< exact wire bytes served on a hit
    std::vector<AdId> ads; ///< ads charged each time the reply serves
    LocationId cell;       ///< resolved location filter (!valid() = none)
    SlotId slot;           ///< resolved slot filter (!valid() = none)
    uint64_t stamp = 0;    ///< stream clock at fill time
    Entry* lru_prev = nullptr;
    Entry* lru_next = nullptr;
  };

  /// Eviction policy: observes entry lifecycle, names a victim when the
  /// cache is full. Entries are pointer-stable for their lifetime.
  class EvictionPolicy {
   public:
    virtual ~EvictionPolicy() = default;
    virtual void OnInsert(Entry* entry) = 0;
    virtual void OnAccess(Entry* entry) = 0;
    virtual void OnErase(Entry* entry) = 0;
    /// The entry to evict next; nullptr if none tracked.
    virtual Entry* Victim() = 0;
  };

  /// Admission policy: called once per fill attempt with the key's hash;
  /// `has_free_slot` is true while inserting would evict nothing.
  class AdmissionPolicy {
   public:
    virtual ~AdmissionPolicy() = default;
    virtual bool Admit(uint64_t key_hash, bool has_free_slot) = 0;
  };

  /// Default-constructs policies from `options` when none are injected.
  explicit TopkCache(TopkCacheOptions options,
                     std::unique_ptr<EvictionPolicy> eviction = nullptr,
                     std::unique_ptr<AdmissionPolicy> admission = nullptr);

  TopkCache(const TopkCache&) = delete;
  TopkCache& operator=(const TopkCache&) = delete;

  bool enabled() const { return options_.capacity > 0; }
  size_t size() const { return map_.size(); }
  /// Ingest events seen so far (the invalidation stream clock). Entry
  /// stamps are values of this clock.
  uint64_t clock() const { return clock_; }

  // --- Lookup / fill (the `topk` verb path). ---

  /// The resident entry for `key`, or nullptr. No counters, no LRU
  /// touch — the server decides hit vs revalidation-miss afterwards.
  Entry* Find(const TopkKey& key);

  /// A served hit: counts it and refreshes the eviction policy.
  void RecordHit(Entry* entry);

  /// A plain miss (no resident entry).
  void RecordMiss();

  /// A resident entry that failed hit-time revalidation: counted as a
  /// miss (plus its own counter) and dropped.
  void RecordRevalidationMiss(Entry* entry);

  /// Memoises a computed reply. Admission-gated; evicts via the eviction
  /// policy when full. No-op when disabled.
  void Insert(const TopkKey& key, std::string reply, std::vector<AdId> ads,
              LocationId cell, SlotId slot);

  // --- Ingest-driven invalidation. Each call advances the stream clock
  // (whether or not anything was resident to evict). ---

  void OnTweet(UserId user);
  void OnCheckIn(UserId user, LocationId cell);
  /// Ad churn: evicts every entry whose (cell, slot) filters are
  /// compatible with the ad's targeting. Call only after the engine
  /// accepted the mutation (a rejected adput changes nothing).
  void OnAdPut(const std::vector<LocationId>& target_locations,
               const std::vector<SlotId>& target_slots);
  /// Same fan-out rule; pass the targeting of the ad *as stored* (look
  /// it up before removal — the store forgets it afterwards).
  void OnAdRemoved(const std::vector<LocationId>& target_locations,
                   const std::vector<SlotId>& target_slots);

  // --- Charge-driven invalidation (no clock advance). ---

  /// Serving ads to `user` recorded (user, ad) impressions, which can
  /// reshape frequency-cap decisions embedded in the user's *other*
  /// cached entries; those are dropped. The just-served `served` key
  /// survives (its own ads are revalidated on every hit). Only needed
  /// when the frequency cap is enabled.
  void OnUserCharged(UserId user, const TopkKey& served);

  // --- Observability. ---

  /// cache.* registry: hits/misses/revalidation_misses/invalidations/
  /// evictions/admission_rejects counters, entries/hit_ratio gauges,
  /// lookup/fill timers.
  const obs::MetricRegistry& metrics() const { return metrics_; }
  obs::Timer* lookup_timer() { return tm_lookup_; }
  obs::Timer* fill_timer() { return tm_fill_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  void IndexEntry(Entry* entry);
  void UnindexEntry(Entry* entry);
  /// Policy OnErase + unindex + map erase + entries gauge.
  void EraseEntry(Entry* entry);
  /// EraseEntry counted as an invalidation.
  void InvalidateEntry(Entry* entry);
  void InvalidateForAd(const std::vector<LocationId>& target_locations,
                       const std::vector<SlotId>& target_slots);
  void UpdateRatioGauge();

  const TopkCacheOptions options_;
  std::unique_ptr<EvictionPolicy> eviction_;
  std::unique_ptr<AdmissionPolicy> admission_;

  std::unordered_map<TopkKey, Entry, TopkKeyHash> map_;
  /// Reverse indexes for invalidation fan-out. An entry sits in exactly
  /// one bucket of each: its author's user bucket, and the bucket of its
  /// resolved cell value (LocationId::kInvalidValue = the unfiltered /
  /// wildcard bucket, which every targeted ad is compatible with).
  std::unordered_map<uint32_t, std::unordered_set<Entry*>> by_user_;
  std::unordered_map<uint32_t, std::unordered_set<Entry*>> by_cell_;

  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;

  obs::MetricRegistry metrics_;
  obs::Counter* ctr_hits_;
  obs::Counter* ctr_misses_;
  obs::Counter* ctr_revalidation_misses_;
  obs::Counter* ctr_invalidations_;
  obs::Counter* ctr_evictions_;
  obs::Counter* ctr_admission_rejects_;
  obs::Gauge* g_entries_;
  obs::Gauge* g_hit_ratio_;
  obs::Timer* tm_lookup_;
  obs::Timer* tm_fill_;
};

/// Default eviction: intrusive LRU over the entries' embedded links.
class LruEviction : public TopkCache::EvictionPolicy {
 public:
  void OnInsert(TopkCache::Entry* entry) override;
  void OnAccess(TopkCache::Entry* entry) override;
  void OnErase(TopkCache::Entry* entry) override;
  TopkCache::Entry* Victim() override { return tail_; }

 private:
  void Unlink(TopkCache::Entry* entry);
  void PushFront(TopkCache::Entry* entry);

  TopkCache::Entry* head_ = nullptr;
  TopkCache::Entry* tail_ = nullptr;
};

/// Admit everything.
class AlwaysAdmit : public TopkCache::AdmissionPolicy {
 public:
  bool Admit(uint64_t, bool) override { return true; }
};

/// Doorkeeper admission: while the cache is full, a key is admitted only
/// if its hash was already sighted within the last ~window misses (two
/// alternating generations, rotated every `window` sightings). With free
/// slots everything is admitted — the gate exists to protect a full hot
/// set, not to slow warm-up.
class FrequencyAdmission : public TopkCache::AdmissionPolicy {
 public:
  /// `window` defaults to the cache capacity (min 64).
  explicit FrequencyAdmission(size_t window);
  bool Admit(uint64_t key_hash, bool has_free_slot) override;

 private:
  const size_t window_;
  std::unordered_set<uint64_t> current_;
  std::unordered_set<uint64_t> previous_;
};

}  // namespace adrec::cache

#endif  // ADREC_CACHE_TOPK_CACHE_H_
