#include "cache/topk_cache.h"

#include <algorithm>

#include "common/hashing.h"

namespace adrec::cache {

uint64_t HashTopkKey(const TopkKey& key) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a over the text...
  for (const char c : key.text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  // ...then the fixed fields mixed in (splitmix64, common/hashing.h).
  h = Mix64(h ^ key.user);
  h = Mix64(h ^ static_cast<uint64_t>(key.time));
  return Mix64(h ^ key.k);
}

// --- LruEviction. ---

void LruEviction::PushFront(TopkCache::Entry* entry) {
  entry->lru_prev = nullptr;
  entry->lru_next = head_;
  if (head_ != nullptr) head_->lru_prev = entry;
  head_ = entry;
  if (tail_ == nullptr) tail_ = entry;
}

void LruEviction::Unlink(TopkCache::Entry* entry) {
  if (entry->lru_prev != nullptr) entry->lru_prev->lru_next = entry->lru_next;
  if (entry->lru_next != nullptr) entry->lru_next->lru_prev = entry->lru_prev;
  if (head_ == entry) head_ = entry->lru_next;
  if (tail_ == entry) tail_ = entry->lru_prev;
  entry->lru_prev = nullptr;
  entry->lru_next = nullptr;
}

void LruEviction::OnInsert(TopkCache::Entry* entry) { PushFront(entry); }

void LruEviction::OnAccess(TopkCache::Entry* entry) {
  Unlink(entry);
  PushFront(entry);
}

void LruEviction::OnErase(TopkCache::Entry* entry) { Unlink(entry); }

// --- FrequencyAdmission. ---

FrequencyAdmission::FrequencyAdmission(size_t window)
    : window_(std::max<size_t>(window, 1)) {}

bool FrequencyAdmission::Admit(uint64_t key_hash, bool has_free_slot) {
  const bool seen = current_.count(key_hash) != 0 ||
                    previous_.count(key_hash) != 0;
  current_.insert(key_hash);
  if (current_.size() >= window_) {
    previous_ = std::move(current_);
    current_.clear();
  }
  return has_free_slot || seen;
}

// --- TopkCache. ---

TopkCache::TopkCache(TopkCacheOptions options,
                     std::unique_ptr<EvictionPolicy> eviction,
                     std::unique_ptr<AdmissionPolicy> admission)
    : options_(options),
      eviction_(std::move(eviction)),
      admission_(std::move(admission)),
      ctr_hits_(metrics_.GetCounter("cache.hits")),
      ctr_misses_(metrics_.GetCounter("cache.misses")),
      ctr_revalidation_misses_(
          metrics_.GetCounter("cache.revalidation_misses")),
      ctr_invalidations_(metrics_.GetCounter("cache.invalidations")),
      ctr_evictions_(metrics_.GetCounter("cache.evictions")),
      ctr_admission_rejects_(metrics_.GetCounter("cache.admission_rejects")),
      g_entries_(metrics_.GetGauge("cache.entries")),
      g_hit_ratio_(metrics_.GetGauge("cache.hit_ratio")),
      tm_lookup_(metrics_.GetTimer("cache.lookup_us")),
      tm_fill_(metrics_.GetTimer("cache.fill_us")) {
  if (eviction_ == nullptr) eviction_ = std::make_unique<LruEviction>();
  if (admission_ == nullptr) {
    if (options_.admission == TopkCacheOptions::Admission::kFrequency) {
      admission_ = std::make_unique<FrequencyAdmission>(
          std::max<size_t>(options_.capacity, 64));
    } else {
      admission_ = std::make_unique<AlwaysAdmit>();
    }
  }
}

TopkCache::Entry* TopkCache::Find(const TopkKey& key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void TopkCache::UpdateRatioGauge() {
  const uint64_t total = hits_ + misses_;
  g_hit_ratio_->Set(total == 0 ? 0.0
                               : static_cast<double>(hits_) /
                                     static_cast<double>(total));
}

void TopkCache::RecordHit(Entry* entry) {
  ++hits_;
  ctr_hits_->Inc();
  eviction_->OnAccess(entry);
  UpdateRatioGauge();
}

void TopkCache::RecordMiss() {
  ++misses_;
  ctr_misses_->Inc();
  UpdateRatioGauge();
}

void TopkCache::RecordRevalidationMiss(Entry* entry) {
  ++misses_;
  ctr_misses_->Inc();
  ctr_revalidation_misses_->Inc();
  EraseEntry(entry);
  UpdateRatioGauge();
}

void TopkCache::Insert(const TopkKey& key, std::string reply,
                       std::vector<AdId> ads, LocationId cell, SlotId slot) {
  if (!enabled()) return;
  if (Entry* existing = Find(key)) EraseEntry(existing);
  const bool has_free_slot = map_.size() < options_.capacity;
  if (!admission_->Admit(HashTopkKey(key), has_free_slot)) {
    ctr_admission_rejects_->Inc();
    return;
  }
  while (map_.size() >= options_.capacity) {
    Entry* victim = eviction_->Victim();
    if (victim == nullptr) break;
    ctr_evictions_->Inc();
    EraseEntry(victim);
  }
  Entry& entry = map_[key];
  entry.key = key;
  entry.reply = std::move(reply);
  entry.ads = std::move(ads);
  entry.cell = cell;
  entry.slot = slot;
  entry.stamp = clock_;
  IndexEntry(&entry);
  eviction_->OnInsert(&entry);
  g_entries_->Set(static_cast<double>(map_.size()));
}

void TopkCache::IndexEntry(Entry* entry) {
  by_user_[entry->key.user].insert(entry);
  by_cell_[entry->cell.value].insert(entry);
}

void TopkCache::UnindexEntry(Entry* entry) {
  auto by_u = by_user_.find(entry->key.user);
  if (by_u != by_user_.end()) {
    by_u->second.erase(entry);
    if (by_u->second.empty()) by_user_.erase(by_u);
  }
  auto by_c = by_cell_.find(entry->cell.value);
  if (by_c != by_cell_.end()) {
    by_c->second.erase(entry);
    if (by_c->second.empty()) by_cell_.erase(by_c);
  }
}

void TopkCache::EraseEntry(Entry* entry) {
  eviction_->OnErase(entry);
  UnindexEntry(entry);
  map_.erase(entry->key);  // invalidates `entry`
  g_entries_->Set(static_cast<double>(map_.size()));
}

void TopkCache::InvalidateEntry(Entry* entry) {
  ctr_invalidations_->Inc();
  EraseEntry(entry);
}

void TopkCache::OnTweet(UserId user) {
  if (!enabled()) return;
  ++clock_;
  auto it = by_user_.find(user.value);
  if (it == by_user_.end()) return;
  const std::vector<Entry*> victims(it->second.begin(), it->second.end());
  for (Entry* entry : victims) InvalidateEntry(entry);
}

void TopkCache::OnCheckIn(UserId user, LocationId cell) {
  if (!enabled()) return;
  ++clock_;
  std::unordered_set<Entry*> victims;
  auto by_u = by_user_.find(user.value);
  if (by_u != by_user_.end()) {
    victims.insert(by_u->second.begin(), by_u->second.end());
  }
  auto by_c = by_cell_.find(cell.value);
  if (by_c != by_cell_.end()) {
    victims.insert(by_c->second.begin(), by_c->second.end());
  }
  for (Entry* entry : victims) InvalidateEntry(entry);
}

void TopkCache::OnAdPut(const std::vector<LocationId>& target_locations,
                        const std::vector<SlotId>& target_slots) {
  InvalidateForAd(target_locations, target_slots);
}

void TopkCache::OnAdRemoved(const std::vector<LocationId>& target_locations,
                            const std::vector<SlotId>& target_slots) {
  InvalidateForAd(target_locations, target_slots);
}

void TopkCache::InvalidateForAd(
    const std::vector<LocationId>& target_locations,
    const std::vector<SlotId>& target_slots) {
  if (!enabled()) return;
  ++clock_;
  if (map_.empty()) return;

  // Wildcard semantics mirror index::PassesFilters: an entry with no
  // slot filter sees every ad; an untargeted ad is visible to every
  // entry's filters.
  auto slot_compatible = [&](const Entry* entry) {
    if (!entry->slot.valid() || target_slots.empty()) return true;
    return std::find(target_slots.begin(), target_slots.end(),
                     entry->slot) != target_slots.end();
  };

  std::unordered_set<Entry*> candidates;
  if (target_locations.empty()) {
    for (auto& [key, entry] : map_) candidates.insert(&entry);
  } else {
    // Unfiltered (invalid-cell) entries match any targeted ad...
    auto wildcard = by_cell_.find(LocationId::kInvalidValue);
    if (wildcard != by_cell_.end()) {
      candidates.insert(wildcard->second.begin(), wildcard->second.end());
    }
    // ...plus the entries pinned to each targeted cell.
    for (const LocationId cell : target_locations) {
      auto by_c = by_cell_.find(cell.value);
      if (by_c != by_cell_.end()) {
        candidates.insert(by_c->second.begin(), by_c->second.end());
      }
    }
  }

  std::vector<Entry*> victims;
  victims.reserve(candidates.size());
  for (Entry* entry : candidates) {
    if (slot_compatible(entry)) victims.push_back(entry);
  }
  for (Entry* entry : victims) InvalidateEntry(entry);
}

void TopkCache::OnUserCharged(UserId user, const TopkKey& served) {
  if (!enabled()) return;
  auto it = by_user_.find(user.value);
  if (it == by_user_.end()) return;
  std::vector<Entry*> victims;
  for (Entry* entry : it->second) {
    if (!(entry->key == served)) victims.push_back(entry);
  }
  for (Entry* entry : victims) InvalidateEntry(entry);
}

}  // namespace adrec::cache
