#include "core/baselines.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace adrec::core {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : analyzer_(std::make_shared<text::Analyzer>()),
        kb_(annotate::BuildDemoKnowledgeBase(analyzer_.get())),
        engine_(std::shared_ptr<annotate::KnowledgeBase>(std::move(kb_)),
                timeline::TimeSlotScheme::PaperScheme()) {
    const Timestamp morning = 6 * kSecondsPerHour;
    // User 0: heavy volleyball tweeting, checks in at location 3 mornings.
    for (int i = 0; i < 5; ++i) {
      engine_.OnTweet({UserId(0), morning + i * 60,
                       "volleyball spike serve court match"});
    }
    engine_.OnCheckIn({UserId(0), morning, LocationId(3)});
    // User 1: single coffee tweet, checks in at location 9 afternoons.
    engine_.OnTweet({UserId(1), 15 * kSecondsPerHour, "espresso coffee"});
    engine_.OnCheckIn({UserId(1), 15 * kSecondsPerHour, LocationId(9)});
  }

  AdContext VolleyballAd() {
    feed::Ad ad;
    ad.id = AdId(1);
    ad.copy = "introducing volleyball gear spike serve";
    ad.target_locations = {LocationId(3)};
    ad.target_slots = {SlotId(1)};
    return engine_.semantic().ProcessAd(ad);
  }

  bool Contains(const std::vector<UserId>& users, uint32_t id) {
    return std::find(users.begin(), users.end(), UserId(id)) != users.end();
  }

  std::shared_ptr<text::Analyzer> analyzer_;
  std::unique_ptr<annotate::KnowledgeBase> kb_;
  RecommendationEngine engine_;
};

TEST_F(BaselinesTest, StrategyNamesAreStable) {
  EXPECT_EQ(StrategyName(StrategyKind::kTriadic), "triadic");
  EXPECT_EQ(StrategyName(StrategyKind::kContentOnly), "content-only");
  EXPECT_EQ(StrategyName(StrategyKind::kLocationOnly), "location-only");
  EXPECT_EQ(StrategyName(StrategyKind::kPopularity), "popularity");
  EXPECT_EQ(StrategyName(StrategyKind::kLdaLite), "lda-lite");
}

TEST_F(BaselinesTest, ContentOnlySelectsTopicalUsers) {
  BaselineOptions opts;
  opts.now = kSecondsPerDay;
  opts.content_threshold = 0.1;
  auto users = ContentOnlyPredict(engine_, VolleyballAd(), opts);
  EXPECT_TRUE(Contains(users, 0));
  EXPECT_FALSE(Contains(users, 1));  // coffee user has no volleyball mass
}

TEST_F(BaselinesTest, ContentThresholdControlsAdmission) {
  BaselineOptions opts;
  opts.now = kSecondsPerDay;
  opts.content_threshold = 1e9;  // impossible
  EXPECT_TRUE(ContentOnlyPredict(engine_, VolleyballAd(), opts).empty());
}

TEST_F(BaselinesTest, LocationOnlySelectsCoLocatedUsers) {
  BaselineOptions opts;
  auto users = LocationOnlyPredict(engine_, VolleyballAd(), opts);
  // User 0 checked in at location 3 in slot 1; user 1 did not.
  EXPECT_TRUE(Contains(users, 0));
  EXPECT_FALSE(Contains(users, 1));
}

TEST_F(BaselinesTest, LocationOnlyHonoursSlotTargets) {
  AdContext ad = VolleyballAd();
  ad.slots = {SlotId(2)};  // afternoon only: user 0 checked in mornings
  BaselineOptions opts;
  EXPECT_FALSE(Contains(LocationOnlyPredict(engine_, ad, opts), 0));
  // Untargeted: any slot counts.
  ad.slots.clear();
  EXPECT_TRUE(Contains(LocationOnlyPredict(engine_, ad, opts), 0));
}

TEST_F(BaselinesTest, PopularityReturnsMostActiveFraction) {
  BaselineOptions opts;
  opts.now = kSecondsPerDay;
  opts.popularity_fraction = 0.5;  // top 1 of 2 users
  auto users = PopularityPredict(engine_, opts);
  ASSERT_EQ(users.size(), 1u);
  EXPECT_EQ(users[0], UserId(0));  // five tweets beat one
}

TEST_F(BaselinesTest, PopularityReturnsAtLeastOne) {
  BaselineOptions opts;
  opts.popularity_fraction = 0.0;
  EXPECT_EQ(PopularityPredict(engine_, opts).size(), 1u);
}

TEST_F(BaselinesTest, LdaStrategyValidation) {
  EXPECT_FALSE(LdaStrategy::Train({}, analyzer_.get()).ok());
  std::vector<feed::Tweet> tweets = {{UserId(0), 0, "volleyball"}};
  EXPECT_FALSE(LdaStrategy::Train(tweets, nullptr).ok());
  EXPECT_TRUE(LdaStrategy::Train(tweets, analyzer_.get()).ok());
}

TEST_F(BaselinesTest, LdaStrategySeparatesUsers) {
  std::vector<feed::Tweet> tweets;
  for (int i = 0; i < 20; ++i) {
    tweets.push_back({UserId(0), i * 100,
                      "volleyball spike serve court block match"});
    tweets.push_back({UserId(1), i * 100,
                      "espresso latte coffee beans barista brew"});
  }
  auto lda = LdaStrategy::Train(tweets, analyzer_.get());
  ASSERT_TRUE(lda.ok());
  auto sporty = lda.value().Predict("volleyball spike serve", 0.8);
  EXPECT_TRUE(Contains(sporty, 0));
  EXPECT_FALSE(Contains(sporty, 1));
  auto caffeinated = lda.value().Predict("coffee espresso latte", 0.8);
  EXPECT_TRUE(Contains(caffeinated, 1));
  EXPECT_FALSE(Contains(caffeinated, 0));
}

}  // namespace
}  // namespace adrec::core
