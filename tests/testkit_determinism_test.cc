#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "testkit/differential.h"
#include "testkit/fault_injector.h"

namespace adrec::testkit {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  DeterminismTest() {
    feed::WorkloadOptions opts;
    opts.seed = 314;
    opts.num_users = 10;
    opts.num_places = 7;
    opts.num_ads = 3;
    opts.days = 3;
    workload_ = feed::GenerateWorkload(opts);
    events_ = SanitizeTrace(workload_.MergedEvents());
  }

  DifferentialChecker MakeChecker(DifferentialOptions diff = {}) const {
    return DifferentialChecker(workload_.kb, workload_.slots, diff);
  }

  feed::Workload workload_;
  std::vector<feed::FeedEvent> events_;
};

/// Three complete executions of the same seeded workload must agree on
/// every observable facet — probes, counters, analysis stats, and the
/// per-ad match lists — down to the score bits.
TEST_F(DeterminismTest, RepeatedSingleEngineRunsAreIdentical) {
  DifferentialOptions diff;
  diff.run_sharded = false;
  diff.run_snapshot = false;
  const DifferentialChecker checker = MakeChecker(diff);
  const RunOutcome first = checker.RunSingle(workload_.ads, events_);
  for (int run = 2; run <= 3; ++run) {
    const RunOutcome again = checker.RunSingle(workload_.ads, events_);
    const Divergence d = DifferentialChecker::CompareOutcomes(
        first, again, CompareOptions{}, "run1", "rerun");
    ASSERT_FALSE(d) << "run " << run << ": " << d.detail;
  }
}

/// ShardedEngine::RunAnalysis mines shards on concurrent threads;
/// repeated runs must nevertheless be identical (no iteration-order or
/// scheduling nondeterminism may leak into results).
TEST_F(DeterminismTest, RepeatedShardedRunsAreIdentical) {
  DifferentialOptions diff;
  diff.num_shards = 3;
  const DifferentialChecker checker = MakeChecker(diff);
  const RunOutcome first = checker.RunSharded(workload_.ads, events_);
  for (int run = 2; run <= 3; ++run) {
    const RunOutcome again = checker.RunSharded(workload_.ads, events_);
    CompareOptions compare;
    compare.tfca_full = false;
    compare.tfca_sums = true;
    compare.matches = false;
    const Divergence d = DifferentialChecker::CompareOutcomes(
        first, again, compare, "run1", "rerun");
    ASSERT_FALSE(d) << "run " << run << ": " << d.detail;
  }
}

/// A one-shard ShardedEngine is the flat engine behind a router: every
/// facet, including the full TfcaStats, must match bit for bit.
TEST_F(DeterminismTest, SingleShardMatchesFlatEngine) {
  DifferentialOptions diff;
  diff.num_shards = 1;
  const DifferentialChecker checker = MakeChecker(diff);
  const RunOutcome flat = checker.RunSingle(workload_.ads, events_);
  const RunOutcome sharded = checker.RunSharded(workload_.ads, events_);
  CompareOptions compare;
  compare.tfca_full = false;  // sharded outcomes carry only the sums...
  compare.tfca_sums = true;   // ...which for one shard are the full values
  compare.matches = false;
  const Divergence d = DifferentialChecker::CompareOutcomes(
      flat, sharded, compare, "flat", "one-shard");
  ASSERT_FALSE(d) << d.detail;
}

/// Re-running the analysis pass on an unchanged engine is idempotent:
/// same stats, same recommendation lists.
TEST_F(DeterminismTest, ReanalysisIsIdempotent) {
  core::RecommendationEngine engine(workload_.kb, workload_.slots);
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(engine.InsertAd(ad).ok());
  }
  for (const feed::FeedEvent& e : events_) engine.OnEvent(e);

  ASSERT_TRUE(engine.RunAnalysis(0.6).ok());
  const core::TfcaStats stats1 = engine.analysis().stats();
  std::vector<core::MatchResult> matches1;
  for (const feed::Ad& ad : workload_.ads) {
    Result<core::MatchResult> m = engine.RecommendUsers(ad.id);
    ASSERT_TRUE(m.ok());
    matches1.push_back(std::move(m).value());
  }

  ASSERT_TRUE(engine.RunAnalysis(0.6).ok());
  EXPECT_TRUE(engine.analysis().stats() == stats1);
  for (size_t i = 0; i < workload_.ads.size(); ++i) {
    Result<core::MatchResult> m = engine.RecommendUsers(workload_.ads[i].id);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m.value().users, matches1[i].users) << "ad #" << i;
  }
}

}  // namespace
}  // namespace adrec::testkit
