// The replication wiring, in process and over real sockets: a leader
// Server streams its WAL to a follower Server whose replica::Follower
// runs inside the follower's event loop. Covers catch-up + live tail
// convergence, the READONLY gate across the whole verb table, the
// promote flow, the replica.* lag gauges in the Prometheus exposition,
// and the client's automatic reconnect across a daemon restart.

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "feed/workload.h"
#include "replica/follower.h"
#include "serve/client.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace adrec::serve {
namespace {

/// One in-process daemon: engine + WAL + server (+ follower when it
/// replicates), the same wiring examples/adrecd.cpp does.
struct Daemon {
  /// Each in-process daemon generates its own workload (same options →
  /// identical deterministic KB), as two real adrecd processes would:
  /// the workload owns the Analyzer whose Vocabulary every analyzed
  /// tweet interns into, and that structure is single-writer —
  /// per-daemon, not per-process-pair.
  feed::Workload workload;
  std::string wal_dir;
  std::unique_ptr<wal::CheckpointManager> checkpointer;
  std::unique_ptr<wal::WalWriter> wal;
  std::unique_ptr<core::ShardedEngine> engine;
  std::unique_ptr<replica::Follower> follower;
  std::unique_ptr<Server> server;
  std::thread thread;

  void Stop() {
    if (server) {
      server->RequestDrain();
      if (thread.joinable()) thread.join();
      server.reset();
    }
    follower.reset();
    wal.reset();
  }
  ~Daemon() { Stop(); }
};

class ServeReplicaTest : public ::testing::Test {
 protected:
  ServeReplicaTest() {
    base_dir_ =
        (std::filesystem::temp_directory_path() /
         ("adrec_servereplica_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    std::filesystem::remove_all(base_dir_);
    std::filesystem::create_directories(base_dir_);

    opts_.seed = 616;
    opts_.num_users = 12;
    opts_.num_places = 8;
    opts_.num_ads = 3;
    opts_.days = 2;
    workload_ = feed::GenerateWorkload(opts_);
  }
  ~ServeReplicaTest() override { std::filesystem::remove_all(base_dir_); }

  /// Starts a daemon: recovery, WAL writer, optionally a follower of
  /// `leader_port`, then the server loop on a background thread.
  void StartDaemon(Daemon* d, const std::string& tag,
                   uint16_t leader_port = 0, uint16_t fixed_port = 0) {
    d->workload = feed::GenerateWorkload(opts_);
    d->wal_dir = base_dir_ + "/" + tag;
    d->checkpointer = std::make_unique<wal::CheckpointManager>(d->wal_dir);
    d->engine = std::make_unique<core::ShardedEngine>(d->workload.kb,
                                                      d->workload.slots, 1);
    auto recovered = d->checkpointer->Recover(d->engine.get());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    wal::WalOptions wal_options;
    wal_options.sync = wal::SyncPolicy::kNone;
    auto writer = wal::WalWriter::Open(d->wal_dir, wal_options,
                                       recovered.value().next_seqno);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    d->wal = std::move(writer).value();

    ServerOptions options;
    options.port = fixed_port;
    options.wal = d->wal.get();
    options.checkpointer = d->checkpointer.get();
    options.repl_heartbeat_interval = 0.1;  // fast lag_ms resolution
    if (leader_port != 0) {
      replica::FollowerOptions fopts;
      fopts.host = "127.0.0.1";
      fopts.port = leader_port;
      fopts.backoff_initial = 0.05;
      d->follower = std::make_unique<replica::Follower>(
          d->engine.get(), d->wal.get(), fopts);
      options.follower = d->follower.get();
    }
    d->server = std::make_unique<Server>(d->engine.get(), options);
    if (recovered.value().max_event_time > 0) {
      d->server->SeedStreamClock(recovered.value().max_event_time);
    }
    ASSERT_TRUE(d->server->Start().ok());
    d->thread = std::thread([d] { d->server->Run(); });
  }

  Client Connected(const Daemon& d) {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", d.server->port()).ok());
    return client;
  }

  /// Extracts a `adrec_...` sample value from a Prometheus payload.
  static bool MetricValue(const std::string& payload,
                          const std::string& name, double* value) {
    const size_t pos = payload.find("\n" + name + " ");
    if (pos == std::string::npos) return false;
    *value = std::strtod(payload.c_str() + pos + 1 + name.size(), nullptr);
    return true;
  }

  /// Polls the follower's metrics until it has applied `seqno`.
  void WaitForApplied(Client* client, uint64_t seqno,
                      double timeout_sec = 10.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(timeout_sec);
    for (;;) {
      auto metrics = client->Metrics();
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
      double applied = -1.0;
      if (MetricValue(metrics.value(), "adrec_replica_applied_seqno",
                      &applied) &&
          applied >= static_cast<double>(seqno)) {
        return;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "follower stuck at applied_seqno=" << applied
          << " want " << seqno;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  std::string base_dir_;
  feed::WorkloadOptions opts_;
  /// The driver's own copy of the (deterministic) workload, for the
  /// events the tests send over the wire.
  feed::Workload workload_;
};

/// Sends one raw line to the port and returns the first reply line
/// (CRLF stripped) — for verbs whose reply a Client cannot frame (the
/// `repl` stream handshake).
std::string RawFirstLine(uint16_t port, const std::string& line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "<socket failed>";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "<connect failed>";
  }
  const std::string frame = line + "\n";
  (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
  std::string in;
  char buf[512];
  while (in.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    in.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t nl = in.find('\n');
  if (nl == std::string::npos) return "<no reply>";
  size_t end = nl;
  if (end > 0 && in[end - 1] == '\r') --end;
  return in.substr(0, end);
}

TEST_F(ServeReplicaTest, FollowerCatchesUpStreamsTailAndServesReads) {
  Daemon leader;
  StartDaemon(&leader, "leader");
  uint64_t acked = 0;

  // Catch-up material: records acknowledged before the follower exists.
  {
    Client client = Connected(leader);
    for (const feed::Ad& ad : workload_.ads) {
      ASSERT_TRUE(client.PutAd(ad).ok());
      ++acked;
    }
    for (size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
      ++acked;
    }
  }

  Daemon follower;
  StartDaemon(&follower, "follower", leader.server->port());
  Client fclient = Connected(follower);
  WaitForApplied(&fclient, acked);

  // Live tail: records ingested while the stream is attached.
  {
    Client client = Connected(leader);
    for (size_t i = 20; i < 40; ++i) {
      ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
      ++acked;
    }
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(client.SendCheckIn(workload_.check_ins[i]).ok());
      ++acked;
    }
  }
  WaitForApplied(&fclient, acked);

  // The follower serves reads from replicated state: identical top-k.
  Client lclient = Connected(leader);
  const feed::Tweet& probe = workload_.tweets[5];
  auto leader_ads = lclient.TopK(probe.user, 3, probe.time, probe.text);
  auto follower_ads = fclient.TopK(probe.user, 3, probe.time, probe.text);
  ASSERT_TRUE(leader_ads.ok()) << leader_ads.status().ToString();
  ASSERT_TRUE(follower_ads.ok()) << follower_ads.status().ToString();
  ASSERT_EQ(leader_ads.value().size(), follower_ads.value().size());
  for (size_t i = 0; i < leader_ads.value().size(); ++i) {
    EXPECT_EQ(leader_ads.value()[i].ad.value,
              follower_ads.value()[i].ad.value);
    EXPECT_EQ(leader_ads.value()[i].score, follower_ads.value()[i].score);
  }

  // Acceptance: the lag gauges are visible in the follower's Prometheus
  // exposition, raw unit suffix preserved, and lag is zero at the tip.
  auto metrics = fclient.Metrics();
  ASSERT_TRUE(metrics.ok());
  double lag_records = -1.0, lag_ms = -1.0, connected = -1.0;
  ASSERT_TRUE(MetricValue(metrics.value(), "adrec_replica_lag_records",
                          &lag_records))
      << metrics.value();
  ASSERT_TRUE(MetricValue(metrics.value(), "adrec_replica_lag_ms", &lag_ms));
  ASSERT_TRUE(
      MetricValue(metrics.value(), "adrec_replica_connected", &connected));
  EXPECT_EQ(lag_records, 0.0);
  EXPECT_EQ(connected, 1.0);

  // The leader counts its replication stream.
  auto lmetrics = lclient.Metrics();
  ASSERT_TRUE(lmetrics.ok());
  double streams = -1.0;
  ASSERT_TRUE(
      MetricValue(lmetrics.value(), "adrec_serve_repl_streams", &streams));
  EXPECT_EQ(streams, 1.0);
}

/// The satellite: every verb in the table crosses the READONLY gate on a
/// live follower, so a new verb cannot be added without classifying it
/// (IsWriteVerb's switch breaks the build) nor slip past the gate
/// unnoticed (this loop breaks the test).
TEST_F(ServeReplicaTest, ReadOnlyGateCoversEveryVerbInTheTable) {
  Daemon leader;
  StartDaemon(&leader, "leader");
  {
    Client client = Connected(leader);
    ASSERT_TRUE(client.PutAd(workload_.ads[0]).ok());
    ASSERT_TRUE(client.SendTweet(workload_.tweets[0]).ok());
  }
  Daemon follower;
  StartDaemon(&follower, "follower", leader.server->port());
  Client fclient = Connected(follower);
  WaitForApplied(&fclient, 2);

  for (size_t v = 0; v < kNumVerbs; ++v) {
    const Verb verb = static_cast<Verb>(v);
    std::string line(VerbName(verb));
    if (verb == Verb::kTweet) line += "\t1\t0\tx";
    if (verb == Verb::kCheckIn) line += "\t1\t0\t2";
    if (verb == Verb::kAdPut) line += "\t9\t1\t10\t1.0\t\t\tx";
    if (verb == Verb::kAdDel || verb == Verb::kMatch) line += "\t1";
    if (verb == Verb::kTopK) line += "\t1\t3";
    if (verb == Verb::kSnapshot) line += "\t/tmp/x";
    if (verb == Verb::kRepl) line += "\t0";
    if (verb == Verb::kQuit) continue;  // closes without a reply

    const std::string reply = RawFirstLine(follower.server->port(), line);
    if (IsWriteVerb(verb)) {
      EXPECT_EQ(reply, "READONLY") << VerbName(verb);
    } else {
      EXPECT_NE(reply, "READONLY") << VerbName(verb);
      EXPECT_NE(reply, "<no reply>") << VerbName(verb);
    }
  }

  // And the counter accounts for the rejections.
  auto metrics = fclient.Metrics();
  ASSERT_TRUE(metrics.ok());
  double rejected = 0.0;
  ASSERT_TRUE(MetricValue(metrics.value(),
                          "adrec_serve_readonly_rejected_total", &rejected));
  EXPECT_EQ(rejected, 4.0);  // tweet, checkin, adput, addel
}

TEST_F(ServeReplicaTest, PromoteDetachesSealsAndAcceptsWrites) {
  Daemon leader;
  StartDaemon(&leader, "leader");
  uint64_t acked = 0;
  {
    Client client = Connected(leader);
    ASSERT_TRUE(client.PutAd(workload_.ads[0]).ok());
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
    }
    acked = 11;
  }
  Daemon follower;
  StartDaemon(&follower, "follower", leader.server->port());
  Client fclient = Connected(follower);
  WaitForApplied(&fclient, acked);

  // Pre-promotion: writes rejected; promote on a leader is an error.
  EXPECT_EQ(fclient.SendTweet(workload_.tweets[10]).code(),
            StatusCode::kFailedPrecondition);
  Client lclient = Connected(leader);
  auto leader_promote = lclient.Command("promote");
  ASSERT_TRUE(leader_promote.ok());
  EXPECT_TRUE(StartsWith(leader_promote.value(), "SERVER_ERROR"))
      << leader_promote.value();

  // The leader dies; the follower is promoted and accepts writes.
  leader.Stop();
  auto promoted = fclient.Command("promote");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted.value(), "OK");
  ASSERT_TRUE(fclient.SendTweet(workload_.tweets[10]).ok());
  // Idempotent: a second promote is still OK.
  auto again = fclient.Command("promote");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), "OK");

  // The promoted daemon's log now carries the replicated prefix plus the
  // post-promotion write, all frame-valid.
  follower.Stop();
  auto report = wal::VerifyLog(follower.wal_dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().records, acked + 1);
  EXPECT_FALSE(report.value().torn_tail);
}

/// The reconnect satellite: a client with SetReconnect rides through a
/// full daemon restart (and an initially-down daemon) transparently.
TEST_F(ServeReplicaTest, ClientReconnectRidesThroughRestart) {
  Daemon daemon;
  StartDaemon(&daemon, "solo");
  const uint16_t port = daemon.server->port();

  Client client;
  ReconnectOptions ropts;
  ropts.enabled = true;
  ropts.backoff_initial = 0.05;
  ropts.backoff_max = 0.5;
  client.SetReconnect(ropts);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ASSERT_TRUE(client.Ping().ok());

  // Restart the daemon on the same port behind the client's back.
  daemon.Stop();
  Daemon revived;
  StartDaemon(&revived, "solo", 0, port);

  // The old socket is dead; the command must reconnect and succeed.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.SendTweet(workload_.tweets[0]).ok());

  // Without reconnect the same sequence fails on the dead socket.
  revived.Stop();
  Daemon last;
  StartDaemon(&last, "solo2", 0, port);
  Client plain;
  ASSERT_TRUE(plain.Connect("127.0.0.1", port).ok());
  last.Stop();
  EXPECT_EQ(plain.Ping().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace adrec::serve
