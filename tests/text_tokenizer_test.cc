#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace adrec::text {
namespace {

std::vector<std::string> Texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (const auto& t : toks) out.push_back(t.text);
  return out;
}

TEST(TokenizerTest, BasicWords) {
  Tokenizer tok;
  auto toks = tok.Tokenize("The nation's best volleyball returns tomorrow");
  EXPECT_EQ(Texts(toks),
            (std::vector<std::string>{"the", "nation's", "best", "volleyball",
                                      "returns", "tomorrow"}));
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer tok;
  auto toks = tok.Tokenize("Adidas SHOES");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"adidas", "shoes"}));
}

TEST(TokenizerTest, PreservesCaseWhenConfigured) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Tokenizer tok(opts);
  auto toks = tok.Tokenize("Adidas");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"Adidas"}));
}

TEST(TokenizerTest, HashtagsKeptWithoutHash) {
  Tokenizer tok;
  auto toks = tok.Tokenize("watching #Volleyball tonight");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "volleyball");
  EXPECT_EQ(toks[1].kind, TokenKind::kHashtag);
}

TEST(TokenizerTest, HashtagsDroppedWhenConfigured) {
  TokenizerOptions opts;
  opts.keep_hashtags = false;
  Tokenizer tok(opts);
  auto toks = tok.Tokenize("watching #volleyball tonight");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"watching", "tonight"}));
}

TEST(TokenizerTest, MentionsDroppedByDefault) {
  Tokenizer tok;
  auto toks = tok.Tokenize("thanks @coach for everything");
  EXPECT_EQ(Texts(toks),
            (std::vector<std::string>{"thanks", "for", "everything"}));
}

TEST(TokenizerTest, MentionsKeptWhenConfigured) {
  TokenizerOptions opts;
  opts.keep_mentions = true;
  Tokenizer tok(opts);
  auto toks = tok.Tokenize("thanks @coach");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1].text, "coach");
  EXPECT_EQ(toks[1].kind, TokenKind::kMention);
}

TEST(TokenizerTest, UrlsSkippedByDefault) {
  Tokenizer tok;
  auto toks = tok.Tokenize("read this https://example.com/a?b=1 now");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"read", "this", "now"}));
}

TEST(TokenizerTest, UrlsKeptVerbatimWhenConfigured) {
  TokenizerOptions opts;
  opts.keep_urls = true;
  Tokenizer tok(opts);
  auto toks = tok.Tokenize("see http://t.co/xyz");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1].text, "http://t.co/xyz");
  EXPECT_EQ(toks[1].kind, TokenKind::kUrl);
}

TEST(TokenizerTest, NumbersDroppedByDefault) {
  Tokenizer tok;
  auto toks = tok.Tokenize("won 21 19 sets");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"won", "sets"}));
}

TEST(TokenizerTest, NumbersKeptWhenConfigured) {
  TokenizerOptions opts;
  opts.keep_numbers = true;
  Tokenizer tok(opts);
  auto toks = tok.Tokenize("won 21");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1].kind, TokenKind::kNumber);
}

TEST(TokenizerTest, MinLengthFiltersShortTokens) {
  Tokenizer tok;  // min length 2
  auto toks = tok.Tokenize("a b cd");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"cd"}));
}

TEST(TokenizerTest, OffsetsPointIntoInput) {
  Tokenizer tok;
  const std::string input = "go #team";
  auto toks = tok.Tokenize(input);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(input.substr(toks[0].offset, 2), "go");
  // Hashtag offset points at the body, not the '#'.
  EXPECT_EQ(input.substr(toks[1].offset, 4), "team");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("!!! ... ???").empty());
}

TEST(TokenizerTest, AlphanumericMix) {
  Tokenizer tok;
  auto toks = tok.Tokenize("covid19 2pac");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"covid19", "2pac"}));
}

TEST(TokenizerTest, TrailingApostropheNotKept) {
  Tokenizer tok;
  auto toks = tok.Tokenize("teams' best");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"teams", "best"}));
}

}  // namespace
}  // namespace adrec::text
