#include "testkit/differential.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "feed/workload.h"
#include "wal/checkpoint.h"

namespace adrec::testkit {
namespace {

std::string FreshDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("adrec_waldiff_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Builds a workload whose serving path is ranking-stateless (unlimited
/// budgets, no frequency cap), the precondition for RunWalCrash to equal
/// RunSingle exactly: top-k probes mutate impression counters and cap
/// histories that are intentionally NOT write-ahead logged.
feed::Workload StatelessServingWorkload(uint64_t seed) {
  feed::WorkloadOptions opts;
  opts.seed = seed;
  opts.num_users = 6 + static_cast<size_t>(seed % 4);
  opts.num_places = 5 + static_cast<size_t>(seed % 3);
  opts.num_ads = 2 + static_cast<size_t>(seed % 3);
  opts.days = 2;
  opts.tweets_per_user_day = 3.0;
  opts.checkins_per_user_day = 1.5;
  feed::Workload workload = feed::GenerateWorkload(opts);
  for (feed::Ad& ad : workload.ads) {
    ad.budget_impressions = 0;  // unlimited
  }
  return workload;
}

/// The kill-and-recover differential of the ISSUE acceptance: 20 seeded
/// crash points (several through a mid-stream checkpoint, at least one
/// with an injected torn final record) must replay to an outcome
/// bit-identical to a run that never crashed. At wal_shards == 1 the
/// reference is RunSingle with the full facet compare; at 2 and 4 the
/// engine and WAL are sharded (per-shard log streams, concurrent-replay
/// layout) and the reference is the equally-sharded no-crash run, with
/// probes and counters still compared byte-for-byte.
void TwentySeededCrashes(size_t wal_shards) {
  size_t iterations = 0;
  size_t torn_iterations = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const feed::Workload workload = StatelessServingWorkload(seed);
    const std::vector<feed::FeedEvent> events = workload.MergedEvents();
    ASSERT_GT(events.size(), 10u) << "seed " << seed;

    DifferentialOptions diff;
    diff.run_sharded = wal_shards > 1;
    diff.run_snapshot = false;
    diff.num_shards = wal_shards;
    diff.wal_shards = wal_shards;
    diff.engine.frequency_cap.max_impressions = 0;  // ranking-stateless
    diff.probe_every = 2;
    diff.wal_dir = FreshDir("iter" + std::to_string(wal_shards) + "_" +
                            std::to_string(seed));
    diff.crash_fraction = 0.25 + 0.03 * static_cast<double>(seed % 10);
    // Every third iteration recovers through a checkpoint + tail replay;
    // the rest from the log alone.
    diff.wal_checkpoint_fraction =
        (seed % 3 == 0) ? diff.crash_fraction * 0.6 : -1.0;
    // Every fourth iteration crashes mid-append, leaving a torn frame.
    diff.crash_torn_tail = (seed % 4 == 0);
    diff.crash_seed = seed;
    const DifferentialChecker checker(workload.kb, workload.slots, diff);

    const RunOutcome reference =
        wal_shards == 1 ? checker.RunSingle(workload.ads, events)
                        : checker.RunSharded(workload.ads, events);
    wal::RecoveryResult recovery;
    const RunOutcome crashed =
        checker.RunWalCrash(workload.ads, events, &recovery);
    CompareOptions compare;
    if (wal_shards > 1) {
      // Analysis facets only sum across shards; probes and counters are
      // still exact.
      compare.tfca_full = false;
      compare.tfca_sums = true;
      compare.matches = false;
    }
    const Divergence d = DifferentialChecker::CompareOutcomes(
        reference, crashed, compare,
        wal_shards == 1 ? "single" : "sharded", "wal-crash");
    ASSERT_FALSE(d) << "seed " << seed << " diverged at event "
                    << d.event_index << ": " << d.detail;

    if (diff.crash_torn_tail) {
      EXPECT_GT(recovery.torn_bytes_truncated, 0u) << "seed " << seed;
      ++torn_iterations;
    } else {
      EXPECT_EQ(recovery.torn_bytes_truncated, 0u) << "seed " << seed;
    }
    if (diff.wal_checkpoint_fraction >= 0.0) {
      EXPECT_TRUE(recovery.from_checkpoint) << "seed " << seed;
      EXPECT_GT(recovery.window_replayed, 0u) << "seed " << seed;
    } else {
      EXPECT_FALSE(recovery.from_checkpoint) << "seed " << seed;
    }
    EXPECT_GT(recovery.live_replayed, 0u) << "seed " << seed;
    EXPECT_EQ(recovery.stream_next_seqnos.size(), wal_shards)
        << "seed " << seed;

    std::filesystem::remove_all(diff.wal_dir);
    ++iterations;
  }
  EXPECT_EQ(iterations, 20u);
  EXPECT_GE(torn_iterations, 1u);
}

TEST(WalCrashDifferential, TwentySeededCrashesMatchSingleRunExactly) {
  TwentySeededCrashes(1);
}

TEST(WalCrashDifferential, TwentySeededCrashesTwoStreams) {
  TwentySeededCrashes(2);
}

TEST(WalCrashDifferential, TwentySeededCrashesFourStreams) {
  TwentySeededCrashes(4);
}

/// A sharded deployment recovers too: the summable window facets of a
/// 2-shard crash-recovered engine equal the 2-shard reference.
TEST(WalCrashDifferential, ShardedCrashRecoveryPreservesWindowSums) {
  const feed::Workload workload = StatelessServingWorkload(99);
  const std::vector<feed::FeedEvent> events = workload.MergedEvents();

  DifferentialOptions diff;
  diff.run_snapshot = false;
  diff.num_shards = 2;
  diff.wal_shards = 2;
  diff.engine.frequency_cap.max_impressions = 0;
  diff.probe_every = 2;
  diff.wal_dir = FreshDir("sharded");
  diff.crash_fraction = 0.5;
  diff.wal_checkpoint_fraction = 0.3;
  const DifferentialChecker checker(workload.kb, workload.slots, diff);

  const RunOutcome reference = checker.RunSharded(workload.ads, events);
  const RunOutcome crashed = checker.RunWalCrash(workload.ads, events);
  CompareOptions compare;
  compare.tfca_full = false;
  compare.tfca_sums = true;
  compare.matches = false;
  const Divergence d = DifferentialChecker::CompareOutcomes(
      reference, crashed, compare, "sharded", "sharded-wal-crash");
  EXPECT_FALSE(d) << "diverged at event " << d.event_index << ": "
                  << d.detail;
  std::filesystem::remove_all(diff.wal_dir);
}

}  // namespace
}  // namespace adrec::testkit
