#include "fca/implications.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace adrec::fca {
namespace {

FormalContext RandomContext(size_t g, size_t m, double density,
                            uint64_t seed) {
  Rng rng(seed);
  FormalContext ctx(g, m);
  for (size_t i = 0; i < g; ++i)
    for (size_t j = 0; j < m; ++j)
      if (rng.NextBool(density)) ctx.Set(i, j);
  return ctx;
}

Bitset Subset(size_t m, uint64_t mask) {
  Bitset b(m);
  for (size_t i = 0; i < m; ++i) {
    if ((mask >> i) & 1) b.Set(i);
  }
  return b;
}

TEST(ImplicationClosureTest, FiresTransitively) {
  // 0 -> 1, 1 -> 2: closing {0} must yield {0,1,2}.
  std::vector<Implication> imps = {
      {Subset(3, 0b001), Subset(3, 0b010)},
      {Subset(3, 0b010), Subset(3, 0b100)},
  };
  EXPECT_EQ(CloseUnderImplications(imps, Subset(3, 0b001)),
            Subset(3, 0b111));
  // Closing {2} fires nothing.
  EXPECT_EQ(CloseUnderImplications(imps, Subset(3, 0b100)),
            Subset(3, 0b100));
  // Empty implication set: identity.
  EXPECT_EQ(CloseUnderImplications({}, Subset(3, 0b010)), Subset(3, 0b010));
}

TEST(ImplicationTest, HoldsInChecksSemantics) {
  // Context: object 0 has {a,b}; object 1 has {a}.
  FormalContext ctx(2, 2);
  ctx.Set(0, 0);
  ctx.Set(0, 1);
  ctx.Set(1, 0);
  // b -> a holds (the only b-object also has a); a -> b does not.
  EXPECT_TRUE(HoldsIn(ctx, {Subset(2, 0b10), Subset(2, 0b01)}));
  EXPECT_FALSE(HoldsIn(ctx, {Subset(2, 0b01), Subset(2, 0b10)}));
}

class StemBaseParamTest : public ::testing::TestWithParam<int> {};

TEST_P(StemBaseParamTest, SoundAndCompleteOnRandomContexts) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131);
  const size_t g = 2 + rng.NextBounded(6);
  const size_t m = 2 + rng.NextBounded(5);  // <= 6 attrs: 2^m exhaustive
  const FormalContext ctx = RandomContext(g, m, 0.45, rng.NextUint64());
  auto basis = StemBase(ctx);
  ASSERT_TRUE(basis.ok());

  // Soundness: every implication of the basis holds in the context.
  for (const Implication& imp : basis.value()) {
    EXPECT_TRUE(HoldsIn(ctx, imp));
  }
  // Completeness: for every attribute subset X, closure under the basis
  // equals the context closure X''.
  for (uint64_t mask = 0; mask < (1ull << m); ++mask) {
    const Bitset x = Subset(m, mask);
    EXPECT_EQ(CloseUnderImplications(basis.value(), x),
              ctx.CloseAttributes(x))
        << "seed " << GetParam() << " mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, StemBaseParamTest, ::testing::Range(1, 21));

TEST(StemBaseTest, MinimalityOnSmallContext) {
  // Removing any implication from the stem base must break completeness.
  const FormalContext ctx = RandomContext(5, 4, 0.5, 99);
  auto basis = StemBase(ctx);
  ASSERT_TRUE(basis.ok());
  const size_t m = ctx.num_attributes();
  for (size_t drop = 0; drop < basis.value().size(); ++drop) {
    std::vector<Implication> reduced;
    for (size_t i = 0; i < basis.value().size(); ++i) {
      if (i != drop) reduced.push_back(basis.value()[i]);
    }
    bool complete = true;
    for (uint64_t mask = 0; mask < (1ull << m); ++mask) {
      const Bitset x = Subset(m, mask);
      if (!(CloseUnderImplications(reduced, x) == ctx.CloseAttributes(x))) {
        complete = false;
        break;
      }
    }
    EXPECT_FALSE(complete) << "implication " << drop << " is redundant";
  }
}

TEST(StemBaseTest, ClosedContextsHaveEmptyBasis) {
  // A context where every attribute subset is an intent (contranominal
  // scale) has no valid non-trivial implications.
  const size_t n = 4;
  FormalContext ctx(n, n);
  for (size_t g = 0; g < n; ++g)
    for (size_t m = 0; m < n; ++m)
      if (g != m) ctx.Set(g, m);
  auto basis = StemBase(ctx);
  ASSERT_TRUE(basis.ok());
  EXPECT_TRUE(basis.value().empty());
}

TEST(StemBaseTest, EmptyContextImpliesEverything) {
  // No objects: ∅ -> M (everything follows from nothing).
  FormalContext ctx(0, 3);
  auto basis = StemBase(ctx);
  ASSERT_TRUE(basis.ok());
  ASSERT_EQ(basis.value().size(), 1u);
  EXPECT_EQ(basis.value()[0].premise.Count(), 0u);
  EXPECT_EQ(CloseUnderImplications(basis.value(), Bitset(3)).Count(), 3u);
}

TEST(StemBaseTest, ChainContextYieldsChainImplications) {
  // attr i held by objects {i..n-1}: attribute i implies all j < i.
  const size_t n = 4;
  FormalContext ctx(n, n);
  for (size_t m = 0; m < n; ++m)
    for (size_t g = m; g < n; ++g) ctx.Set(g, m);
  auto basis = StemBase(ctx);
  ASSERT_TRUE(basis.ok());
  // {3} must close to {0,1,2,3} under the basis.
  Bitset just3(n);
  just3.Set(3);
  EXPECT_EQ(CloseUnderImplications(basis.value(), just3).Count(), 4u);
}

}  // namespace
}  // namespace adrec::fca
