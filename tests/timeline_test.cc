#include <gtest/gtest.h>

#include "timeline/decay.h"
#include "timeline/time_slots.h"

namespace adrec::timeline {
namespace {

TEST(TimeSlotSchemeTest, CreateValidatesCoverage) {
  // Gap between slots.
  EXPECT_FALSE(TimeSlotScheme::Create({{"a", 0, 1000}, {"b", 2000, 86400}})
                   .ok());
  // Doesn't reach end of day.
  EXPECT_FALSE(TimeSlotScheme::Create({{"a", 0, 1000}}).ok());
  // Doesn't start at 0.
  EXPECT_FALSE(TimeSlotScheme::Create({{"a", 10, 86400}}).ok());
  // Inverted slot.
  EXPECT_FALSE(
      TimeSlotScheme::Create({{"a", 0, 0}, {"b", 0, 86400}}).ok());
  // Empty.
  EXPECT_FALSE(TimeSlotScheme::Create({}).ok());
  // Valid single slot.
  EXPECT_TRUE(TimeSlotScheme::Create({{"all", 0, 86400}}).ok());
}

TEST(TimeSlotSchemeTest, PaperSchemeSlots) {
  TimeSlotScheme scheme = TimeSlotScheme::PaperScheme();
  EXPECT_EQ(scheme.size(), 4u);
  // 06:00 falls into slot1 [05:00, 13:00).
  SlotId morning = scheme.SlotOf(6 * kSecondsPerHour);
  EXPECT_EQ(scheme.slot(morning).name, "slot1_05am_01pm");
  // 15:30 falls into slot2 [13:00, 20:00).
  SlotId afternoon = scheme.SlotOf(15 * kSecondsPerHour + 1800);
  EXPECT_EQ(scheme.slot(afternoon).name, "slot2_01pm_08pm");
  // 02:00 -> night; 22:00 -> late.
  EXPECT_EQ(scheme.slot(scheme.SlotOf(2 * kSecondsPerHour)).name, "night");
  EXPECT_EQ(scheme.slot(scheme.SlotOf(22 * kSecondsPerHour)).name, "late");
}

TEST(TimeSlotSchemeTest, BoundariesAreHalfOpen) {
  TimeSlotScheme scheme = TimeSlotScheme::PaperScheme();
  // Exactly 05:00 belongs to slot1, exactly 13:00 to slot2.
  EXPECT_EQ(scheme.slot(scheme.SlotOf(5 * kSecondsPerHour)).name,
            "slot1_05am_01pm");
  EXPECT_EQ(scheme.slot(scheme.SlotOf(13 * kSecondsPerHour)).name,
            "slot2_01pm_08pm");
  // 24:00 wraps to 00:00 next day -> night.
  EXPECT_EQ(scheme.slot(scheme.SlotOf(kSecondsPerDay)).name, "night");
}

TEST(TimeSlotSchemeTest, FindByName) {
  TimeSlotScheme scheme = TimeSlotScheme::MorningAfternoonEvening();
  auto r = scheme.FindByName("afternoon");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, 1u);
  EXPECT_FALSE(scheme.FindByName("brunch").ok());
}

TEST(TimeSlotSchemeTest, SlotInstancesDistinguishDays) {
  TimeSlotScheme scheme = TimeSlotScheme::MorningAfternoonEvening();
  const Timestamp day0_morning = 8 * kSecondsPerHour;
  const Timestamp day1_morning = kSecondsPerDay + 8 * kSecondsPerHour;
  EXPECT_NE(scheme.SlotInstanceOf(day0_morning),
            scheme.SlotInstanceOf(day1_morning));
  // Same day, same slot -> same instance.
  EXPECT_EQ(scheme.SlotInstanceOf(day0_morning),
            scheme.SlotInstanceOf(day0_morning + 1000));
}

TEST(TimeSlotSchemeTest, DecomposeInstanceRoundTrips) {
  TimeSlotScheme scheme = TimeSlotScheme::MorningAfternoonEvening();
  const Timestamp t = 2 * kSecondsPerDay + 19 * kSecondsPerHour;
  const uint32_t instance = scheme.SlotInstanceOf(t);
  auto [day, slot] = scheme.DecomposeInstance(instance);
  EXPECT_EQ(day, 2);
  EXPECT_EQ(scheme.slot(slot).name, "evening");
}

TEST(TimeSlotSchemeTest, UniformFactory) {
  TimeSlotScheme five = TimeSlotScheme::Uniform(5);
  EXPECT_EQ(five.size(), 5u);
  // 86400 / 5 = 17280; the last slot absorbs nothing here.
  EXPECT_EQ(five.slot(SlotId(0)).end_second, 17280);
  EXPECT_EQ(five.slot(SlotId(4)).end_second, kSecondsPerDay);
  // Remainder case: 86400 % 7 != 0 -> last slot is wider.
  TimeSlotScheme seven = TimeSlotScheme::Uniform(7);
  EXPECT_EQ(seven.size(), 7u);
  EXPECT_EQ(seven.slot(SlotId(6)).end_second, kSecondsPerDay);
  // Degenerate inputs clamp.
  EXPECT_EQ(TimeSlotScheme::Uniform(0).size(), 1u);
}

TEST(TimeSlotSchemeTest, HourlyFactory) {
  TimeSlotScheme hourly = TimeSlotScheme::Hourly();
  EXPECT_EQ(hourly.size(), 24u);
  EXPECT_EQ(hourly.slot(hourly.SlotOf(13 * kSecondsPerHour + 59)).name,
            "h13");
  EXPECT_EQ(hourly.slot(SlotId(23)).end_second, kSecondsPerDay);
}

TEST(ExponentialDecayTest, HalfLifeSemantics) {
  ExponentialDecay decay(3600);
  EXPECT_DOUBLE_EQ(decay.WeightAtAge(0), 1.0);
  EXPECT_NEAR(decay.WeightAtAge(3600), 0.5, 1e-12);
  EXPECT_NEAR(decay.WeightAtAge(7200), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(decay.WeightAtAge(-5), 1.0);
}

TEST(ExponentialDecayTest, DecayFactorComposes) {
  ExponentialDecay decay(1000);
  const double f1 = decay.DecayFactor(0, 500);
  const double f2 = decay.DecayFactor(500, 1500);
  EXPECT_NEAR(f1 * f2, decay.DecayFactor(0, 1500), 1e-12);
}

TEST(ExponentialDecayTest, GuardsNonPositiveHalfLife) {
  ExponentialDecay decay(0);
  EXPECT_EQ(decay.half_life(), 1);
}

TEST(WindowDecayTest, RectangularWindow) {
  WindowDecay w(100);
  EXPECT_DOUBLE_EQ(w.WeightAtAge(0), 1.0);
  EXPECT_DOUBLE_EQ(w.WeightAtAge(99), 1.0);
  EXPECT_DOUBLE_EQ(w.WeightAtAge(100), 0.0);
  EXPECT_DOUBLE_EQ(w.WeightAtAge(-1), 0.0);
}

}  // namespace
}  // namespace adrec::timeline
