#include "core/snapshot.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "eval/experiment.h"

namespace adrec::core {
namespace {

/// Crash-consistency of the snapshot files themselves: a load must reject
/// — with a clear Status, not a garbled engine — any snapshot directory a
/// crashed save could have left behind.
class SnapshotAtomicTest : public ::testing::Test {
 protected:
  SnapshotAtomicTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("adrec_snapatomic_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);

    feed::WorkloadOptions opts;
    opts.seed = 311;
    opts.num_users = 8;
    opts.num_places = 6;
    opts.num_ads = 3;
    opts.days = 2;
    setup_ = eval::BuildExperiment(opts);
    for (size_t i = 0; i < 30 && i < setup_.workload.tweets.size(); ++i) {
      setup_.engine->TopKAdsForTweet(setup_.workload.tweets[i], 2);
    }
  }
  ~SnapshotAtomicTest() override { std::filesystem::remove_all(dir_); }

  RecommendationEngine NewEngine() {
    return RecommendationEngine(setup_.workload.kb, setup_.workload.slots);
  }

  std::string dir_;
  eval::ExperimentSetup setup_;
};

TEST_F(SnapshotAtomicTest, SaveLeavesNoTemporaryFiles) {
  ASSERT_TRUE(SaveEngineSnapshot(*setup_.engine, dir_).ok());
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".tsv") << entry.path();
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << "staging file survived the save: " << entry.path();
  }
  EXPECT_GE(files, 5u);  // 4 data files + manifest
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/snapshot_manifest.tsv"));
}

TEST_F(SnapshotAtomicTest, TruncatedFileIsRejectedAtAnyOffset) {
  ASSERT_TRUE(SaveEngineSnapshot(*setup_.engine, dir_).ok());
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    names.push_back(entry.path().filename().string());
  }
  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    const auto size = std::filesystem::file_size(path);
    if (size == 0) continue;
    // Save the original bytes, truncate at a deterministic interior
    // offset, expect a load failure, restore.
    std::string original;
    {
      std::ifstream in(path, std::ios::binary);
      original.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
    const uintmax_t cut = size / 2;
    std::filesystem::resize_file(path, cut);
    RecommendationEngine engine = NewEngine();
    const Status status = LoadEngineSnapshot(dir_, &engine);
    EXPECT_FALSE(status.ok()) << name << " truncated to " << cut
                              << " bytes loaded anyway";
    EXPECT_FALSE(status.ToString().empty());
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(original.data(),
                static_cast<std::streamsize>(original.size()));
    }
  }
  // Restored bytes load again.
  RecommendationEngine engine = NewEngine();
  EXPECT_TRUE(LoadEngineSnapshot(dir_, &engine).ok());
}

TEST_F(SnapshotAtomicTest, MissingDataFileIsRejected) {
  ASSERT_TRUE(SaveEngineSnapshot(*setup_.engine, dir_).ok());
  for (const char* name :
       {"snapshot_profiles.tsv", "snapshot_ads.tsv",
        "snapshot_impressions.tsv", "snapshot_freqcap.tsv"}) {
    const std::string path = dir_ + "/" + name;
    ASSERT_TRUE(std::filesystem::exists(path)) << name;
    std::string original;
    {
      std::ifstream in(path, std::ios::binary);
      original.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
    std::filesystem::remove(path);
    RecommendationEngine engine = NewEngine();
    const Status status = LoadEngineSnapshot(dir_, &engine);
    EXPECT_FALSE(status.ok()) << name << " missing but load succeeded";
    {
      std::ofstream out(path, std::ios::binary);
      out.write(original.data(),
                static_cast<std::streamsize>(original.size()));
    }
  }
}

TEST_F(SnapshotAtomicTest, ManifestlessSnapshotLoadsOnParserTrust) {
  // Pre-durability snapshots have no manifest; they load on parser trust
  // alone (documented compat). Checkpoint directories never appear
  // manifest-less: the whole directory is swapped into place at once.
  ASSERT_TRUE(SaveEngineSnapshot(*setup_.engine, dir_).ok());
  std::filesystem::remove(dir_ + "/snapshot_manifest.tsv");
  RecommendationEngine engine = NewEngine();
  EXPECT_TRUE(LoadEngineSnapshot(dir_, &engine).ok());
  EXPECT_EQ(engine.ad_store().size(), setup_.engine->ad_store().size());
}

TEST_F(SnapshotAtomicTest, MalformedManifestIsRejected) {
  ASSERT_TRUE(SaveEngineSnapshot(*setup_.engine, dir_).ok());
  {
    std::ofstream out(dir_ + "/snapshot_manifest.tsv",
                      std::ios::binary | std::ios::trunc);
    out << "S\tsnapshot_ads.tsv\tnot-a-size\n";
  }
  RecommendationEngine engine = NewEngine();
  const Status status = LoadEngineSnapshot(dir_, &engine);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotAtomicTest, TrailingGarbageIsRejected) {
  ASSERT_TRUE(SaveEngineSnapshot(*setup_.engine, dir_).ok());
  // A size mismatch in either direction means the file is not the one
  // the manifest was written against.
  {
    std::ofstream out(dir_ + "/snapshot_ads.tsv",
                      std::ios::binary | std::ios::app);
    out << "junk\n";
  }
  RecommendationEngine engine = NewEngine();
  EXPECT_FALSE(LoadEngineSnapshot(dir_, &engine).ok());
}

}  // namespace
}  // namespace adrec::core
