#include "core/engine.h"

#include <gtest/gtest.h>

#include "feed/workload.h"

namespace adrec::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    analyzer_ = std::make_shared<text::Analyzer>();
    kb_ = std::shared_ptr<annotate::KnowledgeBase>(
        annotate::BuildDemoKnowledgeBase(analyzer_.get()));
    engine_ = std::make_unique<RecommendationEngine>(
        kb_, timeline::TimeSlotScheme::PaperScheme());
  }

  feed::Tweet MakeTweet(uint32_t user, Timestamp time, std::string text) {
    feed::Tweet t;
    t.user = UserId(user);
    t.time = time;
    t.text = std::move(text);
    return t;
  }

  feed::CheckIn MakeCheckIn(uint32_t user, Timestamp time, uint32_t loc) {
    feed::CheckIn c;
    c.user = UserId(user);
    c.time = time;
    c.location = LocationId(loc);
    return c;
  }

  feed::Ad MakeAd(uint32_t id, std::string copy,
                  std::vector<LocationId> locs = {},
                  std::vector<SlotId> slots = {}, int64_t budget = 0) {
    feed::Ad ad;
    ad.id = AdId(id);
    ad.campaign = CampaignId(id);
    ad.copy = std::move(copy);
    ad.target_locations = std::move(locs);
    ad.target_slots = std::move(slots);
    ad.budget_impressions = budget;
    return ad;
  }

  std::shared_ptr<text::Analyzer> analyzer_;
  std::shared_ptr<annotate::KnowledgeBase> kb_;
  std::unique_ptr<RecommendationEngine> engine_;
};

constexpr Timestamp kMorning = 6 * kSecondsPerHour;    // slot1
constexpr Timestamp kAfternoon = 15 * kSecondsPerHour;  // slot2

TEST_F(EngineTest, IngestionCounters) {
  engine_->OnTweet(MakeTweet(0, kMorning, "volleyball match today"));
  engine_->OnCheckIn(MakeCheckIn(0, kMorning, 3));
  EXPECT_EQ(engine_->tweets_ingested(), 1u);
  EXPECT_EQ(engine_->checkins_ingested(), 1u);
}

TEST_F(EngineTest, RecommendRequiresAnalysis) {
  ASSERT_TRUE(engine_->InsertAd(MakeAd(1, "adidas shoes")).ok());
  auto r = engine_->RecommendUsers(AdId(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine_->RunAnalysis().ok());
  EXPECT_TRUE(engine_->RecommendUsers(AdId(1)).ok());
}

TEST_F(EngineTest, RecommendUnknownAdIsNotFound) {
  ASSERT_TRUE(engine_->RunAnalysis().ok());
  EXPECT_EQ(engine_->RecommendUsers(AdId(99)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(EngineTest, EndToEndTriadicMatch) {
  // User 0 tweets about volleyball every morning and checks in at loc 7;
  // user 1 tweets about coffee and checks in at loc 8.
  for (int day = 0; day < 3; ++day) {
    const Timestamp morning = day * kSecondsPerDay + kMorning;
    engine_->OnTweet(MakeTweet(0, morning,
                               "volleyball serve spike great match"));
    engine_->OnCheckIn(MakeCheckIn(0, morning, 7));
    engine_->OnTweet(MakeTweet(1, morning, "espresso coffee morning cup"));
    engine_->OnCheckIn(MakeCheckIn(1, morning, 8));
  }
  ASSERT_TRUE(engine_->InsertAd(
      MakeAd(1, "introducing volleyball gear spike serve",
             {LocationId(7)}, {SlotId(1)}))
                  .ok());
  ASSERT_TRUE(engine_->RunAnalysis(0.3).ok());
  auto r = engine_->RecommendUsers(AdId(1));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().users.size(), 1u);
  EXPECT_EQ(r.value().users[0].user, UserId(0));
}

TEST_F(EngineTest, TopKAdsForTweetRanksRelevantFirst) {
  ASSERT_TRUE(engine_->InsertAd(MakeAd(1, "volleyball gear spike")).ok());
  ASSERT_TRUE(engine_->InsertAd(MakeAd(2, "espresso coffee beans")).ok());
  auto ads = engine_->TopKAdsForTweet(
      MakeTweet(0, kMorning, "volleyball tournament tonight"), 2);
  ASSERT_GE(ads.size(), 1u);
  EXPECT_EQ(ads[0].ad, AdId(1));
}

TEST_F(EngineTest, TopKRespectsLocationTargeting) {
  ASSERT_TRUE(engine_->InsertAd(
      MakeAd(1, "volleyball gear", {LocationId(5)})).ok());
  // The user's last check-in is location 9: the ad targets 5 only.
  engine_->OnCheckIn(MakeCheckIn(0, kMorning, 9));
  auto ads = engine_->TopKAdsForTweet(
      MakeTweet(0, kMorning + 60, "volleyball tonight"), 3);
  EXPECT_TRUE(ads.empty());
  // After checking in at 5, the ad is eligible.
  engine_->OnCheckIn(MakeCheckIn(0, kMorning + 120, 5));
  ads = engine_->TopKAdsForTweet(
      MakeTweet(0, kMorning + 180, "volleyball tonight"), 3);
  ASSERT_EQ(ads.size(), 1u);
  EXPECT_EQ(ads[0].ad, AdId(1));
}

TEST_F(EngineTest, TopKChargesBudgetAndStopsWhenExhausted) {
  ASSERT_TRUE(engine_->InsertAd(
      MakeAd(1, "volleyball gear", {}, {}, /*budget=*/2)).ok());
  const feed::Tweet tweet = MakeTweet(0, kMorning, "volleyball");
  EXPECT_EQ(engine_->TopKAdsForTweet(tweet, 1).size(), 1u);
  EXPECT_EQ(engine_->TopKAdsForTweet(tweet, 1).size(), 1u);
  // Budget (2) exhausted: no more impressions.
  EXPECT_TRUE(engine_->TopKAdsForTweet(tweet, 1).empty());
}

TEST_F(EngineTest, InsertRemoveAdConsistency) {
  ASSERT_TRUE(engine_->InsertAd(MakeAd(1, "volleyball")).ok());
  EXPECT_EQ(engine_->InsertAd(MakeAd(1, "volleyball")).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(engine_->RemoveAd(AdId(1)).ok());
  EXPECT_EQ(engine_->RemoveAd(AdId(1)).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine_->ad_store().size(), 0u);
  EXPECT_EQ(engine_->ad_index().size(), 0u);
  // Removed ads never surface.
  EXPECT_TRUE(engine_->TopKAdsForTweet(
                        MakeTweet(0, kMorning, "volleyball"), 5)
                  .empty());
}

TEST_F(EngineTest, OnEventDispatches) {
  feed::FeedEvent ev;
  ev.kind = feed::EventKind::kAdInsert;
  ev.ad = MakeAd(4, "pizza margherita slice");
  engine_->OnEvent(ev);
  EXPECT_EQ(engine_->ad_store().size(), 1u);

  ev = {};
  ev.kind = feed::EventKind::kTweet;
  ev.tweet = MakeTweet(0, kAfternoon, "pizza for lunch");
  engine_->OnEvent(ev);
  EXPECT_EQ(engine_->tweets_ingested(), 1u);

  ev = {};
  ev.kind = feed::EventKind::kCheckIn;
  ev.check_in = MakeCheckIn(0, kAfternoon, 2);
  engine_->OnEvent(ev);
  EXPECT_EQ(engine_->checkins_ingested(), 1u);

  ev = {};
  ev.kind = feed::EventKind::kAdDelete;
  ev.ad_id = AdId(4);
  engine_->OnEvent(ev);
  EXPECT_EQ(engine_->ad_store().size(), 0u);
}

TEST_F(EngineTest, WorksOnGeneratedWorkload) {
  feed::WorkloadOptions opts;
  opts.num_users = 10;
  opts.num_places = 8;
  opts.num_ads = 3;
  opts.days = 4;
  opts.seed = 5;
  feed::Workload w = feed::GenerateWorkload(opts);
  RecommendationEngine engine(w.kb, w.slots);
  for (const feed::Ad& ad : w.ads) ASSERT_TRUE(engine.InsertAd(ad).ok());
  for (const feed::FeedEvent& e : w.MergedEvents()) engine.OnEvent(e);
  ASSERT_TRUE(engine.RunAnalysis(0.6).ok());
  for (const feed::Ad& ad : w.ads) {
    auto r = engine.RecommendUsers(ad.id);
    ASSERT_TRUE(r.ok());
    // Matched users are known users with valid ids.
    for (const MatchedUser& mu : r.value().users) {
      EXPECT_LT(mu.user.value, opts.num_users);
      EXPECT_GT(mu.score, 0.0);
    }
  }
}

}  // namespace
}  // namespace adrec::core
