#include "wal/delta/compactor.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "core/snapshot.h"
#include "feed/workload.h"
#include "wal/checkpoint.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace adrec::wal::delta {
namespace {

class WalCompactTest : public ::testing::Test {
 protected:
  WalCompactTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("adrec_compact_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);

    feed::WorkloadOptions opts;
    opts.seed = 99;
    opts.num_users = 8;
    opts.num_places = 6;
    opts.num_ads = 3;
    opts.days = 2;
    workload_ = feed::GenerateWorkload(opts);
    events_ = workload_.MergedEvents();
  }
  ~WalCompactTest() override { std::filesystem::remove_all(dir_); }

  feed::FeedEvent AdPut(uint32_t id, double bid) {
    feed::FeedEvent ev;
    ev.kind = feed::EventKind::kAdInsert;
    ev.ad = workload_.ads.front();
    ev.ad.id = AdId(id);
    ev.ad.bid = bid;  // distinguishes successive puts of the same id
    return ev;
  }
  feed::FeedEvent AdDel(uint32_t id) {
    feed::FeedEvent ev;
    ev.kind = feed::EventKind::kAdDelete;
    ev.ad_id = AdId(id);
    return ev;
  }
  feed::FeedEvent TweetEv(size_t i) { return events_.at(i); }

  void Append(WalWriter* w, const std::vector<feed::FeedEvent>& evs) {
    for (const feed::FeedEvent& ev : evs) {
      ASSERT_TRUE(w->Append(EncodeEventPayload(ev)).ok());
    }
  }

  /// All surviving payloads of `dir` in seqno order.
  std::vector<std::string> Payloads(const std::string& dir) {
    std::vector<std::string> out;
    auto report = ScanLog(dir, {}, [&](const Record& rec) {
      out.push_back(rec.payload);
      return Status::OK();
    });
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return out;
  }

  /// Engine recovered from `dir` by the standard recovery path.
  std::unique_ptr<core::ShardedEngine> Recover(const std::string& dir) {
    CheckpointManager manager(dir);
    auto engine = std::make_unique<core::ShardedEngine>(workload_.kb,
                                                        workload_.slots, 1);
    auto r = manager.Recover(engine.get());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return engine;
  }

  std::vector<std::string> Serialized(const core::ShardedEngine& engine) {
    std::vector<std::string> out;
    for (size_t s = 0; s < engine.num_shards(); ++s) {
      auto files = core::SerializeEngineSnapshot(engine.shard(s));
      EXPECT_TRUE(files.ok()) << files.status().ToString();
      for (const core::SnapshotFile& f : files.value()) {
        out.push_back(f.name + "\n" + f.contents);
      }
    }
    return out;
  }

  std::string dir_;
  feed::Workload workload_;
  std::vector<feed::FeedEvent> events_;
};

TEST_F(WalCompactTest, KeepSetDropsSupersededAdChurn) {
  // Ad 900: put, del, put, del, put, put -> keep {last del, first put
  // after it} = {del#2, put#3}; drop put#1, del#1, put#2, put#4.
  // Ad 901: put, put (no del) -> keep the first put, drop the second.
  // Tweets always survive.
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    WalWriter* w = writer.value().get();
    Append(w, {AdPut(900, 1.0), TweetEv(0), AdDel(900), AdPut(900, 2.0),
               AdPut(901, 1.0)});
    ASSERT_TRUE(w->Rotate().ok());
    Append(w, {TweetEv(1), AdDel(900), AdPut(900, 3.0), AdPut(900, 4.0),
               AdPut(901, 2.0)});
    ASSERT_TRUE(w->Rotate().ok());
    Append(w, {TweetEv(2)});  // newest segment: never an input
  }

  auto report = CompactLogDir(dir_, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ran);
  EXPECT_EQ(report.value().segments_in, 2u);
  EXPECT_EQ(report.value().segments_out, 1u);  // tiny inputs coalesce
  EXPECT_EQ(report.value().records_in, 10u);
  EXPECT_EQ(report.value().records_dropped, 5u);
  EXPECT_LT(report.value().bytes_out, report.value().bytes_in);

  const std::vector<std::string> payloads = Payloads(dir_);
  ASSERT_EQ(payloads.size(), 6u);  // 5 kept + newest-segment tweet
  size_t puts = 0, dels = 0, tweets = 0;
  for (const std::string& p : payloads) {
    auto ev = DecodeEventPayload(p);
    ASSERT_TRUE(ev.ok()) << p;
    switch (ev.value().kind) {
      case feed::EventKind::kAdInsert:
        ++puts;
        if (ev.value().ad.id == AdId(900)) {
          EXPECT_DOUBLE_EQ(ev.value().ad.bid, 3.0);  // put#3 survives
        } else {
          EXPECT_DOUBLE_EQ(ev.value().ad.bid, 1.0);  // first 901 put
        }
        break;
      case feed::EventKind::kAdDelete:
        ++dels;
        EXPECT_EQ(ev.value().ad_id, AdId(900));
        break;
      default:
        ++tweets;
    }
  }
  EXPECT_EQ(puts, 2u);
  EXPECT_EQ(dels, 1u);
  EXPECT_EQ(tweets, 3u);

  // The scan accounts the dropped seqnos as compaction gaps, not
  // corruption, and the seqno range is unchanged. One of the five drops
  // (put#1, the very first record of the log) leaves a LEADING gap the
  // scan cannot observe — gaps are counted between records — so 4.
  auto scan = ScanLog(dir_, {});
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().gap_records, 4u);
  EXPECT_EQ(scan.value().compacted_segments, 1u);
  EXPECT_EQ(scan.value().last_seqno, 11u);
}

TEST_F(WalCompactTest, CompactedLogRecoversIdentically) {
  // A realistic interleaving: workload tweets/check-ins plus ad churn,
  // compacted after the crash; recovery over the compacted log must be
  // byte-identical to a never-crashed reference fed the original trace.
  std::vector<feed::FeedEvent> trace;
  for (size_t i = 0; i < events_.size() / 2; ++i) {
    trace.push_back(events_[i]);
    if (i % 7 == 3) trace.push_back(AdPut(800 + (i % 3), 1.0 + i));
    if (i % 11 == 6) trace.push_back(AdDel(800 + (i % 3)));
  }

  auto reference = std::make_unique<core::ShardedEngine>(workload_.kb,
                                                         workload_.slots, 1);
  {
    WalOptions wopts;
    wopts.segment_bytes = 4 * 1024;  // force many sealed segments
    auto writer = WalWriter::Open(dir_, wopts);
    ASSERT_TRUE(writer.ok());
    for (const feed::FeedEvent& ev : trace) {
      ASSERT_TRUE(writer.value()->Append(EncodeEventPayload(ev)).ok());
      reference->OnEvent(ev);
    }
  }  // crash

  auto report = CompactLogDir(dir_, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report.value().ran);
  EXPECT_GT(report.value().records_dropped, 0u);

  auto recovered = Recover(dir_);
  EXPECT_EQ(Serialized(*reference), Serialized(*recovered));
}

TEST_F(WalCompactTest, PreserveFloorShieldsSegmentsFromRewriting) {
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    WalWriter* w = writer.value().get();
    Append(w, {AdPut(700, 1.0), AdPut(700, 2.0), TweetEv(0)});  // seq 1-3
    ASSERT_TRUE(w->Rotate().ok());
    Append(w, {AdPut(700, 3.0), TweetEv(1)});  // seq 4-5
    ASSERT_TRUE(w->Rotate().ok());
    Append(w, {TweetEv(2)});
  }

  // A follower's cursor sits at seqno 4: the second sealed segment must
  // survive verbatim as an appendable-shape .log file.
  CompactionOptions opts;
  opts.preserve_floor = 4;
  auto report = CompactLogDir(dir_, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ran);
  EXPECT_EQ(report.value().segments_in, 1u);
  EXPECT_EQ(report.value().records_dropped, 1u);  // only put#1 of 700

  const auto segments = ListSegments(dir_);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_TRUE(segments[0].compacted);
  EXPECT_FALSE(segments[1].compacted);
  EXPECT_FALSE(segments[2].compacted);
  EXPECT_EQ(segments[1].first_seqno, 4u);

  // The preserved tail is still frame-contiguous and shippable.
  auto batch = ReadFrames(dir_, 4, 6, 1 << 20);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value().records, 3u);
}

TEST_F(WalCompactTest, LiveWriterCompactsSealedPrefixAndKeepsAppending) {
  auto writer = WalWriter::Open(dir_);
  ASSERT_TRUE(writer.ok());
  WalWriter* w = writer.value().get();
  Append(w, {AdPut(600, 1.0), AdPut(600, 2.0), TweetEv(0)});
  ASSERT_TRUE(w->Rotate().ok());
  Append(w, {AdPut(600, 3.0), TweetEv(1)});
  ASSERT_TRUE(w->Rotate().ok());
  Append(w, {TweetEv(2)});  // active segment

  auto report = CompactSealed(w, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ran);
  EXPECT_EQ(report.value().segments_in, 2u);
  EXPECT_EQ(report.value().records_dropped, 2u);  // puts #1 and #2

  // Bookkeeping swapped in place: the sealed list now holds the rewrite.
  const auto sealed = w->sealed_segments();
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_TRUE(sealed[0].compacted);

  // `compact.*` accounting lands in the writer's registry.
  const obs::MetricsSnapshot snap = w->metrics().Snapshot();
  EXPECT_EQ(snap.counters.at("compact.runs"), 1u);
  EXPECT_EQ(snap.counters.at("compact.records_dropped"), 2u);

  // Appending continues seamlessly across the swap.
  Append(w, {TweetEv(3), TweetEv(4)});
  ASSERT_TRUE(w->Sync().ok());
  auto scan = ScanLog(dir_, {});
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan.value().last_seqno, 8u);
  EXPECT_FALSE(scan.value().torn_tail);
}

TEST_F(WalCompactTest, TooFewInputsSkipsTheRun) {
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    Append(writer.value().get(), {AdPut(500, 1.0), AdPut(500, 2.0)});
    ASSERT_TRUE(writer.value()->Rotate().ok());
    Append(writer.value().get(), {TweetEv(0)});
  }
  CompactionOptions opts;
  opts.min_input_segments = 5;
  auto report = CompactLogDir(dir_, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().ran);
  for (const auto& seg : ListSegments(dir_)) EXPECT_FALSE(seg.compacted);
}

TEST_F(WalCompactTest, InterruptedSwapIsFullyRecoverable) {
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    WalWriter* w = writer.value().get();
    Append(w, {AdPut(400, 1.0), AdPut(400, 2.0), TweetEv(0)});
    ASSERT_TRUE(w->Rotate().ok());
    Append(w, {AdDel(400), AdPut(400, 3.0), TweetEv(1)});
    ASSERT_TRUE(w->Rotate().ok());
    Append(w, {TweetEv(2)});
  }
  // Freeze the pre-compaction state, then compact the original.
  const std::string crashed = dir_ + ".crashed";
  std::filesystem::remove_all(crashed);
  std::filesystem::copy(dir_, crashed);
  ASSERT_TRUE(CompactLogDir(dir_, {}).value().ran);

  // Reconstruct a crash between the output rename and the input unlink:
  // the .clog outputs are durable AND every .log input still exists —
  // plus a stray staging file from a hypothetical second run.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".clog") {
      std::filesystem::copy(entry.path(), crashed + "/" +
                            entry.path().filename().string());
    }
  }
  std::ofstream(crashed + "/" + SegmentFileName(999, true) + ".tmp")
      << "partial";

  // Scan-level handling: name collisions resolve to the .clog rewrite,
  // shadowed inputs are identified as stale and removable, and the
  // record stream equals the cleanly-compacted directory's.
  ScanOptions sopts;
  sopts.remove_stale_segments = true;
  auto scan = ScanLog(crashed, sopts);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(Payloads(crashed), Payloads(dir_));

  // Recovery-level handling: both directories restore identical engines.
  auto a = Recover(dir_);
  auto b = Recover(crashed);
  EXPECT_EQ(Serialized(*a), Serialized(*b));

  // A writer reopening the crashed directory sweeps the staging stray
  // and keeps appending.
  {
    auto writer = WalWriter::Open(crashed);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    Append(writer.value().get(), {TweetEv(3)});
  }
  for (const auto& entry : std::filesystem::directory_iterator(crashed)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  auto rescan = ScanLog(crashed, {});
  ASSERT_TRUE(rescan.ok()) << rescan.status().ToString();
  std::filesystem::remove_all(crashed);
}

}  // namespace
}  // namespace adrec::wal::delta
