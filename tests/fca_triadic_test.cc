#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fca/triadic_context.h"

namespace adrec::fca {
namespace {

using Box = std::tuple<std::vector<uint32_t>, std::vector<uint32_t>,
                       std::vector<uint32_t>>;

Box KeyOf(const TriConcept& tc) {
  return {tc.objects.ToVector(), tc.attributes.ToVector(),
          tc.conditions.ToVector()};
}

std::set<Box> KeySet(const std::vector<TriConcept>& v) {
  std::set<Box> out;
  for (const TriConcept& tc : v) out.insert(KeyOf(tc));
  return out;
}

// Exponential brute-force oracle: enumerate all (A2, A3) subset pairs,
// derive A1, and keep maximal boxes. Only for tiny contexts.
std::set<Box> BruteForceTriConcepts(const TriadicContext& ctx) {
  const size_t nm = ctx.num_attributes();
  const size_t nb = ctx.num_conditions();
  const size_t ng = ctx.num_objects();
  std::set<Box> candidates;
  for (uint64_t am = 0; am < (1ull << nm); ++am) {
    for (uint64_t ab = 0; ab < (1ull << nb); ++ab) {
      Bitset attrs(nm), conds(nb);
      for (size_t i = 0; i < nm; ++i)
        if ((am >> i) & 1) attrs.Set(i);
      for (size_t i = 0; i < nb; ++i)
        if ((ab >> i) & 1) conds.Set(i);
      Bitset objects = ctx.DeriveExtent(attrs, conds);
      candidates.insert(Box{objects.ToVector(), attrs.ToVector(),
                            conds.ToVector()});
      (void)ng;
    }
  }
  // Keep only maximal boxes: no other candidate box strictly contains it
  // (componentwise) while still being a box of Y. A candidate is a box by
  // construction in the object dimension; we must also verify the
  // attribute/condition dimensions are maximal.
  auto contains = [](const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
    return std::includes(a.begin(), a.end(), b.begin(), b.end());
  };
  std::set<Box> maximal;
  for (const Box& c : candidates) {
    bool is_max = true;
    for (const Box& other : candidates) {
      if (other == c) continue;
      if (contains(std::get<0>(other), std::get<0>(c)) &&
          contains(std::get<1>(other), std::get<1>(c)) &&
          contains(std::get<2>(other), std::get<2>(c))) {
        is_max = false;
        break;
      }
    }
    if (is_max) maximal.insert(c);
  }
  return maximal;
}

TriadicContext PaperCheckInContext() {
  // Table-3-style check-in context: users {Tom=0, Luke=1, Anna=2, Sam=3,
  // Lia=4} x locations {m1=0, m2=1, m3=2} x slots {t1=0, t2=1, t3=2}.
  TriadicContext ctx(5, 3, 3);
  ctx.Set(0, 0, 0);
  ctx.Set(0, 0, 1);
  ctx.Set(0, 0, 2);  // Tom at m1 in all slots
  ctx.Set(1, 1, 0);
  ctx.Set(1, 1, 1);  // Luke at m2 in t1, t2
  ctx.Set(1, 2, 2);  // Luke at m3 in t3
  ctx.Set(3, 0, 2);  // Sam at m1 in t3
  ctx.Set(4, 1, 0);
  ctx.Set(4, 1, 1);
  ctx.Set(4, 1, 2);  // Lia at m2 in all slots
  return ctx;
}

TEST(TriadicContextTest, IncidenceAndCount) {
  TriadicContext ctx = PaperCheckInContext();
  EXPECT_TRUE(ctx.Incidence(0, 0, 0));
  EXPECT_FALSE(ctx.Incidence(2, 0, 0));  // Anna checked in nowhere
  EXPECT_EQ(ctx.IncidenceCount(), 10u);
  EXPECT_EQ(ctx.num_objects(), 5u);
  EXPECT_EQ(ctx.num_attributes(), 3u);
  EXPECT_EQ(ctx.num_conditions(), 3u);
}

TEST(TriadicContextTest, DeriveExtent) {
  TriadicContext ctx = PaperCheckInContext();
  // Who was at m2 during t1 and t2? Luke and Lia.
  Bitset attrs = Bitset::FromIndices(3, {1});
  Bitset conds = Bitset::FromIndices(3, {0, 1});
  EXPECT_EQ(ctx.DeriveExtent(attrs, conds).ToVector(),
            (std::vector<uint32_t>{1, 4}));
  // Who was at m1 during t3? Tom and Sam.
  EXPECT_EQ(ctx.DeriveExtent(Bitset::FromIndices(3, {0}),
                             Bitset::FromIndices(3, {2}))
                .ToVector(),
            (std::vector<uint32_t>{0, 3}));
  // Empty attribute/condition sets derive everyone.
  EXPECT_EQ(ctx.DeriveExtent(Bitset(3), Bitset(3)).Count(), 5u);
}

TEST(TriasTest, MatchesBruteForceOnPaperContext) {
  TriadicContext ctx = PaperCheckInContext();
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(KeySet(mined.value()), BruteForceTriConcepts(ctx));
}

TEST(TriasTest, PaperContextContainsExpectedCommunities) {
  TriadicContext ctx = PaperCheckInContext();
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  const std::set<Box> keys = KeySet(mined.value());
  // ({Luke, Lia}, {m2}, {t1, t2})
  EXPECT_TRUE(keys.count(Box{{1, 4}, {1}, {0, 1}}));
  // ({Tom}, {m1}, {t1, t2, t3})
  EXPECT_TRUE(keys.count(Box{{0}, {0}, {0, 1, 2}}));
  // ({Lia}, {m2}, {t1, t2, t3})
  EXPECT_TRUE(keys.count(Box{{4}, {1}, {0, 1, 2}}));
  // ({Luke}, {m3}, {t3})
  EXPECT_TRUE(keys.count(Box{{1}, {2}, {2}}));
  // ({Tom, Sam}, {m1}, {t3}) — the maximal form of the worked example's
  // ({Sam}, {m1}, {t3}).
  EXPECT_TRUE(keys.count(Box{{0, 3}, {0}, {2}}));
}

TEST(TriasTest, NoDuplicateTriconcepts) {
  TriadicContext ctx = PaperCheckInContext();
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(KeySet(mined.value()).size(), mined.value().size());
}

TEST(TriasTest, NaiveAgreesWithTrias) {
  TriadicContext ctx = PaperCheckInContext();
  auto fast = MineTriConcepts(ctx);
  auto naive = MineTriConceptsNaive(ctx);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(KeySet(fast.value()), KeySet(naive.value()));
}

class TriasRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TriasRandomTest, MatchesBruteForceOnRandomContexts) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  const size_t ng = 1 + rng.NextBounded(5);
  const size_t nm = 1 + rng.NextBounded(4);
  const size_t nb = 1 + rng.NextBounded(4);
  TriadicContext ctx(ng, nm, nb);
  for (size_t g = 0; g < ng; ++g)
    for (size_t m = 0; m < nm; ++m)
      for (size_t b = 0; b < nb; ++b)
        if (rng.NextBool(0.35)) ctx.Set(g, m, b);
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(KeySet(mined.value()), BruteForceTriConcepts(ctx))
      << "seed=" << GetParam() << " dims=" << ng << "x" << nm << "x" << nb;

  auto naive = MineTriConceptsNaive(ctx);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(KeySet(naive.value()), KeySet(mined.value()));
}

INSTANTIATE_TEST_SUITE_P(RandomTriadic, TriasRandomTest,
                         ::testing::Range(1, 25));

TEST(TriasTest, EmptyContext) {
  TriadicContext ctx(3, 2, 2);
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(KeySet(mined.value()), BruteForceTriConcepts(ctx));
  // Includes the trivial boxes (G, M, ∅) / (G, ∅, B) / (∅, M, B).
  EXPECT_GE(mined.value().size(), 2u);
}

TEST(TriasTest, FullContextSingleConcept) {
  TriadicContext ctx(2, 2, 2);
  for (size_t g = 0; g < 2; ++g)
    for (size_t m = 0; m < 2; ++m)
      for (size_t b = 0; b < 2; ++b) ctx.Set(g, m, b);
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  // The only maximal box is (G, M, B).
  ASSERT_EQ(mined.value().size(), 1u);
  EXPECT_EQ(mined.value()[0].objects.Count(), 2u);
  EXPECT_EQ(mined.value()[0].attributes.Count(), 2u);
  EXPECT_EQ(mined.value()[0].conditions.Count(), 2u);
}

TEST(TriasTest, TriconceptsAreMaximalBoxes) {
  Rng rng(4242);
  TriadicContext ctx(5, 3, 3);
  for (size_t g = 0; g < 5; ++g)
    for (size_t m = 0; m < 3; ++m)
      for (size_t b = 0; b < 3; ++b)
        if (rng.NextBool(0.4)) ctx.Set(g, m, b);
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  for (const TriConcept& tc : mined.value()) {
    // Box property: every (g, m, b) in the box is an incidence.
    for (uint32_t g : tc.objects.ToVector())
      for (uint32_t m : tc.attributes.ToVector())
        for (uint32_t b : tc.conditions.ToVector())
          EXPECT_TRUE(ctx.Incidence(g, m, b));
    // Object-maximality: extent equals the derived extent.
    EXPECT_EQ(ctx.DeriveExtent(tc.attributes, tc.conditions), tc.objects);
  }
}

TEST(FilterMConceptsTest, SelectsSingletonAttributeConcepts) {
  TriadicContext ctx = PaperCheckInContext();
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  // m2 (=1) communities: ({Luke,Lia},{m2},{t1,t2}) and ({Lia},{m2},{t1..t3}).
  auto m2 = FilterMConcepts(mined.value(), 1);
  ASSERT_EQ(m2.size(), 2u);
  for (const TriConcept& tc : m2) {
    EXPECT_EQ(tc.attributes.ToVector(), (std::vector<uint32_t>{1}));
  }
  // m3 (=2): only ({Luke},{m3},{t3}).
  auto m3 = FilterMConcepts(mined.value(), 2);
  ASSERT_EQ(m3.size(), 1u);
  EXPECT_EQ(m3[0].objects.ToVector(), (std::vector<uint32_t>{1}));
}

TEST(TriasTest, RespectsConceptCap) {
  // Contranominal-flavoured triadic context to blow up the concept count.
  const size_t n = 6;
  TriadicContext ctx(n, n, 2);
  for (size_t g = 0; g < n; ++g)
    for (size_t m = 0; m < n; ++m)
      for (size_t b = 0; b < 2; ++b)
        if (g != m) ctx.Set(g, m, b);
  EnumerateOptions opts;
  opts.max_concepts = 10;
  auto mined = MineTriConcepts(ctx, opts);
  EXPECT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace adrec::fca
