// Order-theoretic property tests for the concept lattice on random
// contexts: partial-order axioms, Hasse-diagram acyclicity and cover
// minimality, and the Galois connection between extents and intents.

#include <gtest/gtest.h>

#include "common/random.h"
#include "fca/lattice.h"

namespace adrec::fca {
namespace {

class LatticePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  FormalContext RandomContext() {
    Rng rng(static_cast<uint64_t>(GetParam()) * 2713);
    const size_t g = 3 + rng.NextBounded(6);
    const size_t m = 3 + rng.NextBounded(5);
    FormalContext ctx(g, m);
    for (size_t i = 0; i < g; ++i)
      for (size_t j = 0; j < m; ++j)
        if (rng.NextBool(0.45)) ctx.Set(i, j);
    return ctx;
  }
};

TEST_P(LatticePropertyTest, PartialOrderAxioms) {
  const FormalContext ctx = RandomContext();
  auto built = ConceptLattice::Build(ctx);
  ASSERT_TRUE(built.ok());
  const ConceptLattice& lat = built.value();
  const size_t n = lat.size();
  for (size_t a = 0; a < n; ++a) {
    EXPECT_TRUE(lat.LessEqual(a, a));  // reflexive
    for (size_t b = 0; b < n; ++b) {
      if (a != b && lat.LessEqual(a, b) && lat.LessEqual(b, a)) {
        ADD_FAILURE() << "antisymmetry violated: " << a << " " << b;
      }
      for (size_t c = 0; c < n; ++c) {
        if (lat.LessEqual(a, b) && lat.LessEqual(b, c)) {
          EXPECT_TRUE(lat.LessEqual(a, c));  // transitive
        }
      }
    }
  }
}

TEST_P(LatticePropertyTest, GaloisConnection) {
  const FormalContext ctx = RandomContext();
  auto built = ConceptLattice::Build(ctx);
  ASSERT_TRUE(built.ok());
  const ConceptLattice& lat = built.value();
  // Extent order and intent order are dual: A <= B iff intent(A) ⊇
  // intent(B).
  for (size_t a = 0; a < lat.size(); ++a) {
    for (size_t b = 0; b < lat.size(); ++b) {
      EXPECT_EQ(lat.LessEqual(a, b),
                lat.concepts()[b].intent.IsSubsetOf(lat.concepts()[a].intent))
          << a << " vs " << b;
    }
  }
}

TEST_P(LatticePropertyTest, CoversAreMinimalAndAcyclic) {
  const FormalContext ctx = RandomContext();
  auto built = ConceptLattice::Build(ctx);
  ASSERT_TRUE(built.ok());
  const ConceptLattice& lat = built.value();
  for (size_t i = 0; i < lat.size(); ++i) {
    for (size_t j : lat.UpperCovers(i)) {
      EXPECT_TRUE(lat.LessEqual(i, j));
      EXPECT_FALSE(lat.LessEqual(j, i));
      // Minimality: nothing strictly between i and j.
      for (size_t k = 0; k < lat.size(); ++k) {
        if (k == i || k == j) continue;
        EXPECT_FALSE(lat.LessEqual(i, k) && lat.LessEqual(k, j))
            << k << " sits between " << i << " and " << j;
      }
    }
  }
}

TEST_P(LatticePropertyTest, EveryConceptReachesTopAndBottom) {
  const FormalContext ctx = RandomContext();
  auto built = ConceptLattice::Build(ctx);
  ASSERT_TRUE(built.ok());
  const ConceptLattice& lat = built.value();
  for (size_t i = 0; i < lat.size(); ++i) {
    EXPECT_TRUE(lat.LessEqual(i, lat.TopIndex()));
    EXPECT_TRUE(lat.LessEqual(lat.BottomIndex(), i));
    // Everything except top has at least one upper cover, and dually.
    if (i != lat.TopIndex()) {
      EXPECT_FALSE(lat.UpperCovers(i).empty()) << i;
    }
    if (i != lat.BottomIndex()) {
      EXPECT_FALSE(lat.LowerCovers(i).empty()) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, LatticePropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace adrec::fca
