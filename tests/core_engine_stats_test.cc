#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "obs/stats_export.h"

namespace adrec::core {
namespace {

class EngineStatsTest : public ::testing::Test {
 protected:
  EngineStatsTest() {
    feed::WorkloadOptions opts;
    opts.seed = 313;
    opts.num_users = 15;
    opts.num_places = 10;
    opts.num_ads = 4;
    opts.days = 4;
    workload_ = feed::GenerateWorkload(opts);
  }

  /// Fresh engine with all ads inserted and the whole trace replayed.
  std::unique_ptr<RecommendationEngine> BuildAndReplay(
      EngineOptions options = {}) {
    auto engine = std::make_unique<RecommendationEngine>(
        workload_.kb, workload_.slots, options);
    for (const feed::Ad& ad : workload_.ads) {
      EXPECT_TRUE(engine->InsertAd(ad).ok());
    }
    for (const feed::FeedEvent& e : workload_.MergedEvents()) {
      engine->OnEvent(e);
    }
    return engine;
  }

  feed::Workload workload_;
};

TEST_F(EngineStatsTest, CountersMatchIngestedEvents) {
  auto engine = BuildAndReplay();
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.tweets, workload_.tweets.size());
  EXPECT_EQ(stats.checkins, workload_.check_ins.size());
  EXPECT_EQ(stats.ads_inserted, workload_.ads.size());
  EXPECT_EQ(stats.ads_removed, 0u);
  EXPECT_EQ(stats.topk_queries, 0u);
  EXPECT_EQ(stats.analyses_run, 0u);
}

TEST_F(EngineStatsTest, StageTimersPopulatedAfterReplay) {
  auto engine = BuildAndReplay();
  size_t impressions = 0;
  for (const feed::Tweet& t : workload_.tweets) {
    impressions += engine->TopKAdsForTweet(t, 3).size();
  }
  ASSERT_TRUE(engine->RunAnalysis(0.5).ok());

  const EngineStats stats = engine->Stats();
  // Every tweet passed through annotate and profile-update; ad inserts
  // also hit the annotate stage.
  EXPECT_EQ(stats.annotate_us.count(),
            workload_.tweets.size() + workload_.ads.size());
  EXPECT_EQ(stats.profile_update_us.count(),
            workload_.tweets.size() + workload_.check_ins.size());
  EXPECT_EQ(stats.index_update_us.count(), workload_.ads.size());
  EXPECT_EQ(stats.topk_us.count(), workload_.tweets.size());
  EXPECT_EQ(stats.topk_queries, workload_.tweets.size());
  EXPECT_EQ(stats.impressions_served, impressions);
  EXPECT_EQ(stats.analyses_run, 1u);
  EXPECT_EQ(stats.analysis_ms.count(), 1u);
  // Lattice gauges reflect the analysis.
  EXPECT_EQ(stats.topic_triconcepts,
            engine->analysis().stats().topic_triconcepts);
  EXPECT_EQ(stats.location_triconcepts,
            engine->analysis().stats().location_triconcepts);
  // Quantiles are ordered and positive.
  const Histogram& topk = stats.topk_us;
  EXPECT_GT(topk.Quantile(0.5), 0.0);
  EXPECT_LE(topk.Quantile(0.5), topk.Quantile(0.95));
  EXPECT_LE(topk.Quantile(0.95), topk.Quantile(0.99));
}

TEST_F(EngineStatsTest, TimingCanBeDisabledCountersRemain) {
  EngineOptions options;
  options.collect_stage_timings = false;
  auto engine = BuildAndReplay(options);
  for (const feed::Tweet& t : workload_.tweets) {
    (void)engine->TopKAdsForTweet(t, 3);
  }
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.annotate_us.count(), 0u);
  EXPECT_EQ(stats.topk_us.count(), 0u);
  EXPECT_EQ(stats.tweets, workload_.tweets.size());
  EXPECT_EQ(stats.topk_queries, workload_.tweets.size());
}

TEST_F(EngineStatsTest, EngineJsonRoundTrips) {
  auto engine = BuildAndReplay();
  for (const feed::Tweet& t : workload_.tweets) {
    (void)engine->TopKAdsForTweet(t, 2);
  }
  const obs::StatsReport report =
      obs::BuildReport(engine->metrics().Snapshot());
  const std::string json = obs::ExportJson(report);
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(obs::ExportJson(parsed.value()), json);
  EXPECT_EQ(parsed.value().counters.at("engine.tweets"),
            workload_.tweets.size());
  EXPECT_EQ(parsed.value().timers.at("engine.topk_us").count,
            workload_.tweets.size());
}

TEST_F(EngineStatsTest, ResetMetricsZeroesButKeepsIngestTotals) {
  auto engine = BuildAndReplay();
  engine->ResetMetrics();
  const EngineStats stats = engine->Stats();
  EXPECT_EQ(stats.tweets, 0u);
  EXPECT_EQ(stats.annotate_us.count(), 0u);
  EXPECT_EQ(engine->tweets_ingested(), workload_.tweets.size());
}

TEST_F(EngineStatsTest, ShardedMergeEqualsSumOfShards) {
  ShardedEngine engine(workload_.kb, workload_.slots, 3);
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(engine.InsertAd(ad).ok());
  }
  for (const feed::FeedEvent& e : workload_.MergedEvents()) {
    engine.OnEvent(e);
  }
  for (const feed::Tweet& t : workload_.tweets) {
    (void)engine.TopKAdsForTweet(t, 3);
  }
  ASSERT_TRUE(engine.RunAnalysis(0.5).ok());

  uint64_t sum_tweets = 0;
  uint64_t sum_ads = 0;
  size_t sum_topk_samples = 0;
  double sum_topk_time = 0.0;
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const EngineStats shard = engine.shard(s).Stats();
    sum_tweets += shard.tweets;
    sum_ads += shard.ads_inserted;
    sum_topk_samples += shard.topk_us.count();
    sum_topk_time += shard.topk_us.sum();
  }

  const EngineStats merged = engine.Stats();
  EXPECT_EQ(merged.tweets, sum_tweets);
  EXPECT_EQ(merged.tweets, workload_.tweets.size());
  // Ads are broadcast, so the aggregate counts one insert per shard.
  EXPECT_EQ(merged.ads_inserted, sum_ads);
  EXPECT_EQ(merged.ads_inserted, workload_.ads.size() * engine.num_shards());
  EXPECT_EQ(merged.topk_us.count(), sum_topk_samples);
  EXPECT_EQ(merged.topk_us.count(), workload_.tweets.size());
  EXPECT_DOUBLE_EQ(merged.topk_us.sum(), sum_topk_time);
  EXPECT_EQ(merged.analyses_run, engine.num_shards());

  // The generic merged snapshot agrees with the typed view.
  const obs::MetricsSnapshot snap = engine.MergedMetrics();
  EXPECT_EQ(snap.counters.at("engine.tweets"), merged.tweets);
  EXPECT_EQ(snap.timers.at("engine.topk_us").count(),
            merged.topk_us.count());
}

TEST_F(EngineStatsTest, AnalysisSubPhaseSpansAreRecorded) {
  auto engine = BuildAndReplay();
  ASSERT_TRUE(engine->RunAnalysis(0.5).ok());
  ASSERT_TRUE(engine->RunAnalysis(0.6).ok());
  const EngineStats stats = engine->Stats();

  // One sample per analysis in every sub-phase span.
  EXPECT_EQ(stats.analysis_build_ms.count(), 2u);
  EXPECT_EQ(stats.analysis_trias_location_ms.count(), 2u);
  EXPECT_EQ(stats.analysis_trias_topic_ms.count(), 2u);
  EXPECT_EQ(stats.analysis_decode_ms.count(), 2u);
  EXPECT_EQ(stats.analysis_ms.count(), 2u);

  // The sub-phases partition the analysis: their total cannot exceed the
  // end-to-end time they are carved out of.
  const double phases = stats.analysis_build_ms.sum() +
                        stats.analysis_trias_location_ms.sum() +
                        stats.analysis_trias_topic_ms.sum() +
                        stats.analysis_decode_ms.sum();
  EXPECT_LE(phases, stats.analysis_ms.sum() * 1.05);
  EXPECT_GT(phases, 0.0);

  // The spans reach the generic registry under their metric names.
  const obs::MetricsSnapshot snap = engine->metrics().Snapshot();
  EXPECT_EQ(snap.timers.at("engine.analysis_build_ms").count(), 2u);
  EXPECT_EQ(snap.timers.at("engine.analysis_trias_location_ms").count(),
            2u);
  EXPECT_EQ(snap.timers.at("engine.analysis_trias_topic_ms").count(), 2u);
  EXPECT_EQ(snap.timers.at("engine.analysis_decode_ms").count(), 2u);
}

}  // namespace
}  // namespace adrec::core
