// Edge-case and robustness tests for the engine: degenerate inputs,
// analysis boundary values, out-of-order streams, and re-analysis
// semantics.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "feed/workload.h"

namespace adrec::core {
namespace {

class EngineEdgeTest : public ::testing::Test {
 protected:
  EngineEdgeTest() {
    analyzer_ = std::make_shared<text::Analyzer>();
    kb_ = std::shared_ptr<annotate::KnowledgeBase>(
        annotate::BuildDemoKnowledgeBase(analyzer_.get()));
    engine_ = std::make_unique<RecommendationEngine>(
        kb_, timeline::TimeSlotScheme::PaperScheme());
  }

  std::shared_ptr<text::Analyzer> analyzer_;
  std::shared_ptr<annotate::KnowledgeBase> kb_;
  std::unique_ptr<RecommendationEngine> engine_;
};

TEST_F(EngineEdgeTest, AnalysisOnEmptyEngineSucceeds) {
  ASSERT_TRUE(engine_->RunAnalysis(0.5).ok());
  feed::Ad ad;
  ad.id = AdId(1);
  ad.copy = "volleyball";
  ASSERT_TRUE(engine_->InsertAd(ad).ok());
  auto r = engine_->RecommendUsers(AdId(1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().users.empty());
}

TEST_F(EngineEdgeTest, AlphaBoundaryValues) {
  engine_->OnTweet({UserId(0), 6 * kSecondsPerHour, "volleyball match"});
  EXPECT_TRUE(engine_->RunAnalysis(0.0).ok());
  EXPECT_TRUE(engine_->RunAnalysis(1.0).ok());
  EXPECT_FALSE(engine_->RunAnalysis(-0.1).ok());
  EXPECT_FALSE(engine_->RunAnalysis(1.1).ok());
}

TEST_F(EngineEdgeTest, TweetsWithNoAnnotationsAreHarmless) {
  engine_->OnTweet({UserId(0), 100, "zzz qqq unmatched verbiage"});
  engine_->OnTweet({UserId(0), 200, ""});
  EXPECT_EQ(engine_->tweets_ingested(), 2u);
  EXPECT_TRUE(engine_->RunAnalysis(0.5).ok());
  EXPECT_TRUE(engine_->TopKAdsForTweet({UserId(0), 300, ""}, 5).empty());
}

TEST_F(EngineEdgeTest, OutOfOrderEventsDoNotBreakAnalysis) {
  // Events arrive shuffled in time; the TFCA is order-insensitive (it
  // accumulates cells) and profiles clamp monotonically.
  engine_->OnTweet({UserId(0), 5 * kSecondsPerDay, "volleyball spike"});
  engine_->OnCheckIn({UserId(0), 1 * kSecondsPerDay, LocationId(3)});
  engine_->OnTweet({UserId(0), 2 * kSecondsPerDay, "volleyball serve"});
  engine_->OnCheckIn({UserId(0), 4 * kSecondsPerDay, LocationId(3)});
  ASSERT_TRUE(engine_->RunAnalysis(0.3).ok());
  EXPECT_GT(engine_->analysis().stats().checkin_incidences, 0u);
  EXPECT_GT(engine_->analysis().stats().tweet_cells, 0u);
}

TEST_F(EngineEdgeTest, ReAnalysisReplacesResults) {
  engine_->OnTweet({UserId(0), 6 * kSecondsPerHour,
                    "volleyball spike serve match"});
  ASSERT_TRUE(engine_->RunAnalysis(0.1).ok());
  const size_t loose = engine_->analysis().stats().topic_triconcepts;
  ASSERT_TRUE(engine_->RunAnalysis(1.0).ok());
  const size_t strict = engine_->analysis().stats().topic_triconcepts;
  EXPECT_GE(loose, strict);
}

TEST_F(EngineEdgeTest, NewEventsInvalidateAnalysis) {
  ASSERT_TRUE(engine_->RunAnalysis(0.5).ok());
  feed::Ad ad;
  ad.id = AdId(1);
  ad.copy = "volleyball";
  ASSERT_TRUE(engine_->InsertAd(ad).ok());
  ASSERT_TRUE(engine_->RecommendUsers(AdId(1)).ok());
  // Ingesting after analysis marks it stale.
  engine_->OnTweet({UserId(0), 100, "volleyball"});
  auto r = engine_->RecommendUsers(AdId(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineEdgeTest, ManyUsersSameText) {
  for (uint32_t u = 0; u < 64; ++u) {
    engine_->OnTweet({UserId(u), 6 * kSecondsPerHour + u,
                      "volleyball match tonight"});
    engine_->OnCheckIn({UserId(u), 6 * kSecondsPerHour + u, LocationId(1)});
  }
  ASSERT_TRUE(engine_->RunAnalysis(0.3).ok());
  // One big community: everyone at location 1 in slot 1.
  const auto& communities =
      engine_->analysis().LocationCommunities(LocationId(1));
  ASSERT_FALSE(communities.empty());
  size_t max_size = 0;
  for (const auto& c : communities) max_size = std::max(max_size, c.users.size());
  EXPECT_EQ(max_size, 64u);
}

TEST_F(EngineEdgeTest, DuplicateCheckInsAreIdempotentInContext) {
  for (int i = 0; i < 10; ++i) {
    engine_->OnCheckIn({UserId(1), 6 * kSecondsPerHour, LocationId(2)});
  }
  ASSERT_TRUE(engine_->RunAnalysis(0.5).ok());
  // The triadic context is binary: ten identical check-ins, one incidence.
  EXPECT_EQ(engine_->analysis().stats().checkin_incidences, 1u);
}

TEST_F(EngineEdgeTest, TopKWithHugeK) {
  feed::Ad ad;
  ad.id = AdId(1);
  ad.copy = "volleyball gear";
  ASSERT_TRUE(engine_->InsertAd(ad).ok());
  auto ads = engine_->TopKAdsForTweet(
      {UserId(0), 6 * kSecondsPerHour, "volleyball"}, 1000000);
  EXPECT_EQ(ads.size(), 1u);  // bounded by inventory
}

}  // namespace
}  // namespace adrec::core
