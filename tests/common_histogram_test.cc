#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace adrec {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  // Quantiles are clamped to max.
  EXPECT_LE(h.Quantile(0.99), 42.0);
}

TEST(HistogramTest, ExactStatsAreExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, QuantileErrorBounded) {
  // Uniform samples: the q-quantile of U[0,1000] is ~1000q; log-bucketed
  // approximation must stay within the bucket growth factor (~19%).
  Histogram h;
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextDouble() * 1000.0;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const double approx = h.Quantile(q);
    EXPECT_GE(approx, exact * 0.81) << q;
    EXPECT_LE(approx, exact * 1.19 + 1e-3) << q;
  }
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(1.0);
  for (int i = 0; i < 100; ++i) b.Record(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_NEAR(a.Mean(), 50.5, 1e-9);
  // Median sits at the low cluster's bucket.
  EXPECT_LT(a.Quantile(0.49), 2.0);
  EXPECT_GT(a.Quantile(0.51), 90.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  const size_t before = a.count();
  a.Merge(empty);
  EXPECT_EQ(a.count(), before);
}

TEST(HistogramTest, MergeEmptyOperandsKeepNoSentinels) {
  // Merging a non-empty histogram into an empty one must adopt the
  // source's min/max — the empty target's 0-valued min must not survive.
  Histogram empty_target, src;
  src.Record(5.0);
  src.Record(9.0);
  empty_target.Merge(src);
  EXPECT_EQ(empty_target.count(), 2u);
  EXPECT_DOUBLE_EQ(empty_target.min(), 5.0);
  EXPECT_DOUBLE_EQ(empty_target.max(), 9.0);

  // Merging an empty histogram into a non-empty one changes nothing:
  // in particular min must not drop to the empty 0 sentinel.
  Histogram target, empty_src;
  target.Record(5.0);
  target.Merge(empty_src);
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.min(), 5.0);
  EXPECT_DOUBLE_EQ(target.max(), 5.0);

  // Empty into empty stays empty.
  Histogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(HistogramTest, ResetClearsEverythingAndIsReusable) {
  Histogram h;
  for (int i = 1; i <= 50; ++i) h.Record(static_cast<double>(i));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  // Recording after Reset behaves like a fresh histogram (no stale min).
  h.Record(7.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
}

TEST(HistogramTest, NonZeroBucketsCoverEverySample) {
  Histogram h;
  h.Record(0.5);
  h.Record(10.0);
  h.Record(10.0);
  h.Record(5000.0);
  const std::vector<HistogramBucket> buckets = h.NonZeroBuckets();
  ASSERT_FALSE(buckets.empty());
  uint64_t total = 0;
  double prev_upper = 0.0;
  for (const HistogramBucket& b : buckets) {
    EXPECT_GT(b.count, 0u);             // only occupied buckets listed
    EXPECT_GT(b.upper, prev_upper);     // strictly ascending bounds
    prev_upper = b.upper;
    total += b.count;
  }
  EXPECT_EQ(total, h.count());

  EXPECT_TRUE(Histogram().NonZeroBuckets().empty());
}

TEST(HistogramTest, DeltaSinceIsolatesTheWindow) {
  Histogram earlier;
  for (int i = 0; i < 100; ++i) earlier.Record(10.0);

  Histogram later = earlier;  // snapshot, then more traffic
  for (int i = 0; i < 5; ++i) later.Record(1000.0);

  const Histogram window = later.DeltaSince(earlier);
  EXPECT_EQ(window.count(), 5u);
  // The window distribution is the new samples only: its p50 sits at the
  // 1000 bucket, unmoved by the 100 old 10us samples.
  EXPECT_GT(window.Quantile(0.5), 500.0);
  EXPECT_NEAR(window.sum(), 5000.0, 5000.0 * 0.2);
}

TEST(HistogramTest, DeltaSinceOfIdenticalSnapshotsIsEmpty) {
  Histogram h;
  for (int i = 1; i <= 20; ++i) h.Record(static_cast<double>(i));
  const Histogram window = h.DeltaSince(h);
  EXPECT_EQ(window.count(), 0u);
  EXPECT_DOUBLE_EQ(window.sum(), 0.0);
}

TEST(HistogramTest, DeltaSinceEmptyBaselineIsTheFullHistogram) {
  Histogram h;
  h.Record(3.0);
  h.Record(7.0);
  const Histogram window = h.DeltaSince(Histogram());
  EXPECT_EQ(window.count(), 2u);
  EXPECT_DOUBLE_EQ(window.sum(), h.sum());
}

TEST(HistogramTest, SummaryMentionsAllFields) {
  Histogram h;
  h.Record(5.0);
  const std::string s = h.Summary();
  for (const char* field : {"count=", "mean=", "p50=", "p95=", "p99=",
                            "max="}) {
    EXPECT_NE(s.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace adrec
