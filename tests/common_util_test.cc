#include <gtest/gtest.h>

#include "common/id_types.h"
#include "common/sim_clock.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace adrec {
namespace {

TEST(SplitStringTest, BasicSplit) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, DropsEmptyByDefault) {
  auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(SplitStringTest, KeepsEmptyWhenAsked) {
  auto parts = SplitString(",a,,b,", ',', /*keep_empty=*/true);
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", ',').empty());
  EXPECT_EQ(SplitString("", ',', true).size(), 1u);
}

TEST(JoinStringsTest, Joins) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(TrimWhitespaceTest, Trims) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
  EXPECT_EQ(TrimWhitespace("z"), "z");
}

TEST(ToLowerAsciiTest, Lowercases) {
  EXPECT_EQ(ToLowerAscii("VolleyBall 123!"), "volleyball 123!");
}

TEST(StartsEndsWithTest, Matches) {
  EXPECT_TRUE(StartsWith("http://dbpedia.org/resource/Team", "http://"));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_TRUE(EndsWith("feed.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringFormatTest, Formats) {
  EXPECT_EQ(StringFormat("%d/%d=%.2f", 1, 2, 0.5), "1/2=0.50");
  EXPECT_EQ(StringFormat("%s", ""), "");
}

TEST(TypedIdTest, DistinctTypesAndValidity) {
  UserId u(3);
  EXPECT_TRUE(u.valid());
  EXPECT_FALSE(UserId().valid());
  EXPECT_EQ(u, UserId(3));
  EXPECT_NE(u, UserId(4));
  EXPECT_LT(UserId(1), UserId(2));
  // Hashing is usable in unordered containers.
  std::hash<UserId> h;
  EXPECT_NE(h(UserId(1)), h(UserId(2)));
}

TEST(SimClockTest, MonotoneAdvance) {
  SimClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(5);
  EXPECT_EQ(clock.Now(), 105);
  clock.Advance(-50);  // ignored
  EXPECT_EQ(clock.Now(), 105);
  clock.AdvanceTo(90);  // ignored: earlier than now
  EXPECT_EQ(clock.Now(), 105);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.Now(), 200);
}

TEST(SimClockTest, DayHelpers) {
  EXPECT_EQ(SecondOfDay(0), 0);
  EXPECT_EQ(SecondOfDay(kSecondsPerDay + 5), 5);
  EXPECT_EQ(SecondOfDay(-1), kSecondsPerDay - 1);
  EXPECT_EQ(DayIndex(0), 0);
  EXPECT_EQ(DayIndex(kSecondsPerDay), 1);
  EXPECT_EQ(DayIndex(-1), -1);
}

TEST(TableWriterTest, AlignedTextAndCsv) {
  TableWriter t("demo", {"k", "value"});
  t.AddRow({"1", "alpha"});
  t.AddNumericRow({2.0, 0.12345}, 2);
  std::string text = t.ToText();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("k,value"), std::string::npos);
  EXPECT_NE(csv.find("2.00,0.12"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriterTest, CsvSanitizesCommas) {
  TableWriter t("x", {"c"});
  t.AddRow({"a,b"});
  EXPECT_NE(t.ToCsv().find("a;b"), std::string::npos);
}

}  // namespace
}  // namespace adrec
