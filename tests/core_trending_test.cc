#include "core/trending.h"

#include <gtest/gtest.h>

namespace adrec::core {
namespace {

AnnotatedTweet Tw(Timestamp time, uint32_t topic) {
  AnnotatedTweet t;
  t.user = UserId(0);
  t.time = time;
  annotate::Annotation a;
  a.topic = TopicId(topic);
  a.score = 1.0;
  t.annotations.push_back(a);
  return t;
}

TrendingOptions Opts() {
  TrendingOptions o;
  o.window = kSecondsPerHour;
  o.history_windows = 12;
  o.min_count = 3;
  o.min_z = 2.0;
  o.min_history = 6;
  return o;
}

/// Fills `w` windows where topic 0 gets `background` mentions and topic
/// `other` gets `other_count` mentions per window.
void FillWindows(TrendingDetector& d, int windows, int background,
                 uint32_t other = 1, int other_count = 0,
                 Timestamp start = 0) {
  for (int w = 0; w < windows; ++w) {
    const Timestamp base = start + w * kSecondsPerHour;
    for (int i = 0; i < background; ++i) d.OnTweet(Tw(base + i, 0));
    for (int i = 0; i < other_count; ++i) {
      d.OnTweet(Tw(base + 1800 + i, other));
    }
  }
}

TEST(TrendingTest, NothingIngestedNothingTrends) {
  TrendingDetector d(Opts());
  EXPECT_TRUE(d.Trending().empty());
}

TEST(TrendingTest, WarmupSuppressesEarlyBursts) {
  TrendingDetector d(Opts());
  // A huge burst in window 2 of 6 required: still warm-up.
  FillWindows(d, 3, 5, /*other=*/7, /*other_count=*/20);
  EXPECT_LT(d.completed_windows(), 6u);
  EXPECT_TRUE(d.Trending().empty());
}

TEST(TrendingTest, SteadyShareDoesNotTrend) {
  TrendingDetector d(Opts());
  // Topic 1 holds a constant 50% share for 8 windows + current.
  FillWindows(d, 9, 4, /*other=*/1, /*other_count=*/4);
  EXPECT_GE(d.completed_windows(), 6u);
  auto [mean, stddev] = d.Baseline(TopicId(1));
  EXPECT_NEAR(mean, 0.5, 1e-9);
  EXPECT_NEAR(stddev, 0.0, 1e-9);
  EXPECT_TRUE(d.Trending().empty());
}

TEST(TrendingTest, ShareBurstTrends) {
  TrendingDetector d(Opts());
  // History: topic 7 absent, topic 0 dominant.
  FillWindows(d, 8, 6);
  // Current window: topic 7 bursts to a large share.
  const Timestamp now = 8 * kSecondsPerHour;
  for (int i = 0; i < 10; ++i) d.OnTweet(Tw(now + i, 7));
  for (int i = 0; i < 3; ++i) d.OnTweet(Tw(now + 100 + i, 0));
  auto trending = d.Trending();
  ASSERT_EQ(trending.size(), 1u);
  EXPECT_EQ(trending[0].topic, TopicId(7));
  EXPECT_EQ(trending[0].current_count, 10u);
  EXPECT_NEAR(trending[0].baseline_share, 0.0, 1e-9);
  EXPECT_GT(trending[0].z_score, 2.0);
}

TEST(TrendingTest, VolumeSwingAloneDoesNotTrend) {
  // The diurnal case absolute-count detectors get wrong: every topic's
  // volume triples but shares are unchanged — nothing should trend.
  TrendingDetector d(Opts());
  FillWindows(d, 8, 4, /*other=*/1, /*other_count=*/4);
  const Timestamp now = 8 * kSecondsPerHour;
  for (int i = 0; i < 12; ++i) d.OnTweet(Tw(now + i, 0));
  for (int i = 0; i < 12; ++i) d.OnTweet(Tw(now + 100 + i, 1));
  EXPECT_TRUE(d.Trending().empty());
}

TEST(TrendingTest, MinCountSuppressesTinyBursts) {
  TrendingOptions opts = Opts();
  opts.min_count = 5;
  TrendingDetector d(opts);
  FillWindows(d, 8, 6);
  const Timestamp now = 8 * kSecondsPerHour;
  for (int i = 0; i < 4; ++i) d.OnTweet(Tw(now + i, 3));  // 4 < min_count
  EXPECT_TRUE(d.Trending().empty());
}

TEST(TrendingTest, HottestFirst) {
  TrendingDetector d(Opts());
  FillWindows(d, 8, 10);
  const Timestamp now = 8 * kSecondsPerHour;
  for (int i = 0; i < 12; ++i) d.OnTweet(Tw(now + i, 1));
  for (int i = 0; i < 5; ++i) d.OnTweet(Tw(now + 100 + i, 2));
  for (int i = 0; i < 3; ++i) d.OnTweet(Tw(now + 200 + i, 0));
  auto trending = d.Trending();
  ASSERT_EQ(trending.size(), 2u);
  EXPECT_EQ(trending[0].topic, TopicId(1));
  EXPECT_EQ(trending[1].topic, TopicId(2));
  EXPECT_GT(trending[0].z_score, trending[1].z_score);
}

TEST(TrendingTest, QuietGapsRollEmptyWindows) {
  TrendingDetector d(Opts());
  d.OnTweet(Tw(0, 4));
  d.OnTweet(Tw(20 * kSecondsPerHour, 4));
  EXPECT_EQ(d.completed_windows(), 12u);  // capped at history_windows
  auto [mean, stddev] = d.Baseline(TopicId(4));
  EXPECT_NEAR(mean, 0.0, 1e-9);  // the first window scrolled out
}

TEST(TrendingTest, HistoryIsBounded) {
  TrendingOptions opts = Opts();
  opts.history_windows = 3;
  TrendingDetector d(opts);
  FillWindows(d, 50, 2);
  EXPECT_EQ(d.completed_windows(), 3u);
}

}  // namespace
}  // namespace adrec::core
