// End-to-end tests of the adrecd event loop: a Server on a background
// thread, blocking Clients (and raw sockets, for the protocol-abuse
// cases) against its ephemeral port. The server thread is the only
// engine mutator; joins give the tests their happens-before edges.

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "feed/workload.h"
#include "serve/client.h"

namespace adrec::serve {
namespace {

class ServeDaemonTest : public ::testing::Test {
 protected:
  ServeDaemonTest() {
    feed::WorkloadOptions opts;
    opts.seed = 913;
    opts.num_users = 16;
    opts.num_places = 10;
    opts.num_ads = 4;
    opts.days = 3;
    workload_ = feed::GenerateWorkload(opts);
  }

  /// Starts a daemon over a fresh engine; the loop runs on thread_.
  void StartServer(ServerOptions options = {}, size_t shards = 1) {
    engine_ = std::make_unique<core::ShardedEngine>(workload_.kb,
                                                    workload_.slots, shards);
    server_ = std::make_unique<Server>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    thread_ = std::thread([this] { server_->Run(); });
  }

  void StopServer() {
    if (!server_) return;
    server_->RequestDrain();
    if (thread_.joinable()) thread_.join();
  }

  void TearDown() override { StopServer(); }

  Client Connected() {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  /// A raw blocking socket speaking bytes, for protocol-abuse tests the
  /// well-behaved Client cannot express.
  int RawConnect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  static std::string RawReadAll(int fd) {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  feed::Workload workload_;
  std::unique_ptr<core::ShardedEngine> engine_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServeDaemonTest, ServesBasicCommands) {
  StartServer();
  Client client = Connected();

  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.PutAd(workload_.ads[0]).ok());
  EXPECT_TRUE(client.SendTweet(workload_.tweets[0]).ok());
  EXPECT_TRUE(client.SendCheckIn(workload_.check_ins[0]).ok());

  auto topk = client.TopK(workload_.tweets[0].user, 3);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  EXPECT_LE(topk.value().size(), 3u);

  EXPECT_TRUE(client.Analyze(0.45).ok());
  auto match = client.Match(workload_.ads[0].id);
  EXPECT_TRUE(match.ok()) << match.status().ToString();

  // Unknown ad: NOT_FOUND surfaces as kNotFound on delete and match.
  EXPECT_EQ(client.DeleteAd(AdId(9999)).code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Match(AdId(9999)).status().code(),
            StatusCode::kNotFound);

  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("adrec_serve_cmd_ping_total"),
            std::string::npos);
  EXPECT_NE(metrics.value().find("adrec_engine_tweets_total"),
            std::string::npos);

  auto stats = client.Command("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("STAT engine.tweets 1"), std::string::npos);
  client.Quit();
}

TEST_F(ServeDaemonTest, ServesEightConcurrentConnections) {
  ServerOptions options;
  options.max_connections = 32;
  StartServer(options);
  ASSERT_TRUE(Connected().PutAd(workload_.ads[0]).ok());

  constexpr size_t kClients = 8;
  constexpr size_t kOpsEach = 40;
  std::vector<std::thread> threads;
  std::vector<size_t> failures(kClients, 0);
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures[c] = kOpsEach;
        return;
      }
      for (size_t i = 0; i < kOpsEach; ++i) {
        const auto& t = workload_.tweets[(c * kOpsEach + i) %
                                         workload_.tweets.size()];
        if (!client.SendTweet(t).ok()) ++failures[c];
        if (!client.TopK(t.user, 3, t.time, t.text).ok()) ++failures[c];
      }
      client.Quit();
    });
  }
  for (auto& t : threads) t.join();
  for (size_t c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0u);

  StopServer();  // join: makes the engine read race-free
  size_t ingested = 0;
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    ingested += engine_->shard(s).tweets_ingested();
  }
  EXPECT_EQ(ingested, kClients * kOpsEach);
}

TEST_F(ServeDaemonTest, MalformedLinesGetClientErrorAndConnectionSurvives) {
  StartServer();
  Client client = Connected();

  for (const char* bad :
       {"frobnicate", "tweet", "tweet\tx\ty\tz", "topk\t1\t0",
        "checkin\t1\t2", "analyze\t7.0", "stats\tsurplus", ""}) {
    auto reply = client.Command(bad);
    ASSERT_TRUE(reply.ok()) << bad;
    EXPECT_EQ(reply.value().rfind("CLIENT_ERROR", 0), 0u) << bad;
  }
  // Same connection still serves valid commands.
  EXPECT_TRUE(client.Ping().ok());
  client.Quit();
}

TEST_F(ServeDaemonTest, OversizedFrameIsRejectedAndConnectionClosed) {
  ServerOptions options;
  options.max_line_bytes = 1024;
  StartServer(options);

  const int fd = RawConnect();
  const std::string huge(4096, 'a');  // no newline, over the cap
  ASSERT_GT(::send(fd, huge.data(), huge.size(), MSG_NOSIGNAL), 0);
  const std::string reply = RawReadAll(fd);  // ends when server closes
  EXPECT_NE(reply.find("CLIENT_ERROR line too long"), std::string::npos);
  ::close(fd);
}

TEST_F(ServeDaemonTest, HalfClosedConnectionStillGetsResponses) {
  StartServer();
  const int fd = RawConnect();
  const std::string cmds = "ping\nping\nping\n";
  ASSERT_EQ(::send(fd, cmds.data(), cmds.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(cmds.size()));
  // Half-close: we are done sending, but the daemon must still deliver
  // every response for what it read before EOF.
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::string reply = RawReadAll(fd);
  EXPECT_EQ(reply, "PONG\r\nPONG\r\nPONG\r\n");
  ::close(fd);
}

TEST_F(ServeDaemonTest, BackpressuredPipelineDrainsWithoutFurtherReads) {
  // A pipeline whose responses overflow the write-buffer cap leaves
  // complete lines parked in the connection's read buffer. The client
  // then goes quiet, waiting for replies — no further POLLIN — so the
  // server must resume consuming the parked lines as its writes drain,
  // not wait for input that will never come.
  ServerOptions options;
  options.max_write_buffer_bytes = 64;  // well below the response volume
  StartServer(options);

  const int fd = RawConnect();
  timeval rcv_timeout{5, 0};  // a hang fails fast instead of wedging CI
  ASSERT_EQ(setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout,
                       sizeof(rcv_timeout)),
            0);
  constexpr size_t kPings = 200;
  std::string pipeline;
  for (size_t i = 0; i < kPings; ++i) pipeline += "ping\n";
  ASSERT_EQ(::send(fd, pipeline.data(), pipeline.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(pipeline.size()));

  // Read every reply with the connection still open for writing.
  const std::string expected_unit = "PONG\r\n";
  const size_t expected = kPings * expected_unit.size();
  std::string reply;
  char buf[4096];
  while (reply.size() < expected) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "pipeline stalled after " << reply.size() << "/"
                    << expected << " bytes";
    reply.append(buf, static_cast<size_t>(n));
  }
  for (size_t i = 0; i < kPings; ++i) {
    EXPECT_EQ(reply.compare(i * expected_unit.size(), expected_unit.size(),
                            expected_unit),
              0);
  }
  ::close(fd);
}

TEST_F(ServeDaemonTest, OversizedCompleteLineIsRejected) {
  // The line cap applies even when the terminator arrives in the same
  // read batch as the overrun (ReadFrom's check only covers unterminated
  // input); earlier pipelined commands still get their replies.
  ServerOptions options;
  options.max_line_bytes = 1024;
  StartServer(options);

  const int fd = RawConnect();
  const std::string batch = "ping\n" + std::string(4096, 'a') + "\n";
  ASSERT_GT(::send(fd, batch.data(), batch.size(), MSG_NOSIGNAL), 0);
  const std::string reply = RawReadAll(fd);  // ends when server closes
  EXPECT_EQ(reply.rfind("PONG\r\n", 0), 0u);
  EXPECT_NE(reply.find("CLIENT_ERROR line too long"), std::string::npos);
  ::close(fd);
}

TEST_F(ServeDaemonTest, SnapshotVerbIsGatedAndSandboxed) {
  // Default (no snapshot root): the verb is off entirely.
  StartServer();
  {
    Client client = Connected();
    auto reply = client.Command("snapshot\t/tmp/adrec_evil");
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().rfind("SERVER_ERROR snapshot disabled", 0), 0u);
    client.Quit();
  }
  StopServer();

  // With a root: absolute paths and `..` escapes are rejected, and the
  // connection stays usable.
  ServerOptions options;
  options.snapshot_root =
      (std::filesystem::temp_directory_path() / "adrec_snap_root").string();
  StartServer(options);
  Client client = Connected();
  for (const char* bad : {"snapshot\t/tmp/adrec_evil", "snapshot\t../evil",
                          "snapshot\ta/../../evil"}) {
    auto reply = client.Command(bad);
    ASSERT_TRUE(reply.ok()) << bad;
    EXPECT_EQ(reply.value().rfind("CLIENT_ERROR", 0), 0u) << bad;
  }
  EXPECT_TRUE(client.Ping().ok());
  client.Quit();
}

TEST_F(ServeDaemonTest, PipelinedCommandsAnswerInOrder) {
  StartServer();
  const int fd = RawConnect();
  // One write carrying the whole pipeline, mixed valid/invalid.
  const std::string pipeline =
      "ping\nbogus\ntweet\t1\t0\thello\nping\n";
  ASSERT_GT(::send(fd, pipeline.data(), pipeline.size(), MSG_NOSIGNAL), 0);
  ::shutdown(fd, SHUT_WR);
  const std::string reply = RawReadAll(fd);
  // Responses strictly in request order.
  const size_t p1 = reply.find("PONG");
  const size_t err = reply.find("CLIENT_ERROR");
  const size_t ok = reply.find("OK");
  const size_t p2 = reply.rfind("PONG");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(err, std::string::npos);
  ASSERT_NE(ok, std::string::npos);
  EXPECT_LT(p1, err);
  EXPECT_LT(err, ok);
  EXPECT_LT(ok, p2);
  ::close(fd);
}

TEST_F(ServeDaemonTest, InterleavedClientsDoNotCrossResponses) {
  StartServer();
  Client a = Connected();
  Client b = Connected();
  // Strict alternation on two live connections; each reply must belong
  // to its own connection's last command.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(a.SendTweet(workload_.tweets[i % workload_.tweets.size()])
                    .ok());
    auto pong = b.Command("ping");
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong.value(), "PONG");
  }
  a.Quit();
  b.Quit();
}

TEST_F(ServeDaemonTest, ConnectionLimitShedsWithBusy) {
  ServerOptions options;
  options.max_connections = 2;
  StartServer(options);
  Client a = Connected();
  Client b = Connected();
  ASSERT_TRUE(a.Ping().ok());  // both admitted connections are live
  ASSERT_TRUE(b.Ping().ok());

  const int fd = RawConnect();  // third: over the cap
  const std::string reply = RawReadAll(fd);
  EXPECT_EQ(reply, "SERVER_ERROR busy\r\n");
  ::close(fd);

  a.Quit();
  b.Quit();
}

TEST_F(ServeDaemonTest, GracefulDrainStopsAcceptingAndReturns) {
  StartServer();
  Client client = Connected();
  ASSERT_TRUE(client.Ping().ok());

  server_->RequestDrain();
  thread_.join();  // Run() must return

  // Post-drain connects are refused or reset — never served.
  Client late;
  if (late.Connect("127.0.0.1", server_->port()).ok()) {
    EXPECT_FALSE(late.Ping().ok());
  }
}

// The differential acceptance check: a trace streamed through the wire
// must leave the daemon's engine in the byte-identical state produced by
// driving a local engine directly (snapshots are canonical, so file
// bytes are the state identity).
TEST_F(ServeDaemonTest, WireIngestMatchesDirectEngineByteForByte) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "adrec_serve_diff").string();
  const std::string wire_dir = base + "/wire";
  const std::string direct_dir = base + "/direct";
  std::filesystem::remove_all(base);

  // Direct: local engine, same event order.
  core::RecommendationEngine direct(workload_.kb, workload_.slots);
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(direct.InsertAd(ad).ok());
  }
  for (const feed::FeedEvent& e : workload_.MergedEvents()) {
    if (e.kind == feed::EventKind::kTweet) direct.OnTweet(e.tweet);
    if (e.kind == feed::EventKind::kCheckIn) direct.OnCheckIn(e.check_in);
  }
  ASSERT_TRUE(core::SaveEngineSnapshot(direct, direct_dir).ok());

  // Wire: the same stream through the daemon (one shard). Snapshots are
  // confined under the configured root; the client names a relative dir.
  ServerOptions options;
  options.snapshot_root = base;
  StartServer(options, /*shards=*/1);
  Client client = Connected();
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(client.PutAd(ad).ok());
  }
  for (const feed::FeedEvent& e : workload_.MergedEvents()) {
    if (e.kind == feed::EventKind::kTweet) {
      ASSERT_TRUE(client.SendTweet(e.tweet).ok());
    }
    if (e.kind == feed::EventKind::kCheckIn) {
      ASSERT_TRUE(client.SendCheckIn(e.check_in).ok());
    }
  }
  ASSERT_TRUE(client.Snapshot("wire").ok());
  client.Quit();

  // Byte-compare every snapshot file.
  const std::string shard_dir = wire_dir + "/shard0";
  ASSERT_TRUE(std::filesystem::exists(shard_dir));
  size_t files_compared = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(direct_dir)) {
    const std::string name = entry.path().filename().string();
    std::ifstream a(entry.path(), std::ios::binary);
    std::ifstream b(shard_dir + "/" + name, std::ios::binary);
    ASSERT_TRUE(b.good()) << "missing in wire snapshot: " << name;
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b) << "snapshot file differs: " << name;
    ++files_compared;
  }
  EXPECT_GT(files_compared, 0u);
  std::filesystem::remove_all(base);
}

TEST_F(ServeDaemonTest, TopKWithoutTimeUsesStreamClock) {
  StartServer();
  Client client = Connected();
  ASSERT_TRUE(client.PutAd(workload_.ads[0]).ok());
  for (size_t i = 0; i < 20 && i < workload_.tweets.size(); ++i) {
    ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
  }
  // Time-less topk is served at the newest ingested timestamp — it must
  // parse and answer (content equivalence is covered by the timed form).
  auto r = client.TopK(workload_.tweets[0].user, 3);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  client.Quit();
}

}  // namespace
}  // namespace adrec::serve
