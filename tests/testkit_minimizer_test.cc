#include "testkit/minimizer.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "feed/workload.h"
#include "testkit/differential.h"
#include "testkit/fault_injector.h"

namespace adrec::testkit {
namespace {

std::string FreshDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("adrec_min_") + tag + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

feed::FeedEvent TweetEvent(uint32_t user, Timestamp time,
                           const std::string& text) {
  feed::FeedEvent ev;
  ev.kind = feed::EventKind::kTweet;
  ev.time = time;
  ev.tweet.user = UserId(user);
  ev.tweet.time = time;
  ev.tweet.text = text;
  return ev;
}

TEST(MinimizerTest, DdminShrinksToTheTwoCulprits) {
  // 40 events; the failure needs exactly the "alpha" and "omega" tweets.
  std::vector<feed::FeedEvent> trace;
  for (uint32_t i = 0; i < 40; ++i) {
    trace.push_back(TweetEvent(i, 100 + i, "filler " + std::to_string(i)));
  }
  trace[7] = TweetEvent(7, 107, "alpha");
  trace[29] = TweetEvent(29, 129, "omega");

  const auto fails = [](const std::vector<feed::FeedEvent>& t) {
    bool alpha = false, omega = false;
    for (const feed::FeedEvent& e : t) {
      if (e.tweet.text == "alpha") alpha = true;
      if (e.tweet.text == "omega") omega = true;
    }
    return alpha && omega;
  };

  const MinimizeOutcome out = MinimizeTrace(trace, fails);
  EXPECT_TRUE(out.input_failed);
  ASSERT_EQ(out.trace.size(), 2u);
  EXPECT_EQ(out.trace[0].tweet.text, "alpha");
  EXPECT_EQ(out.trace[1].tweet.text, "omega");
  EXPECT_GT(out.predicate_calls, 0u);
  EXPECT_LE(out.predicate_calls, MinimizeOptions{}.max_predicate_calls);
}

TEST(MinimizerTest, NonFailingInputIsReturnedUnchanged) {
  std::vector<feed::FeedEvent> trace;
  for (uint32_t i = 0; i < 5; ++i) {
    trace.push_back(TweetEvent(i, 10 + i, "t"));
  }
  const MinimizeOutcome out = MinimizeTrace(
      trace, [](const std::vector<feed::FeedEvent>&) { return false; });
  EXPECT_FALSE(out.input_failed);
  EXPECT_EQ(out.trace.size(), trace.size());
  EXPECT_EQ(out.predicate_calls, 1u);
}

TEST(MinimizerTest, BudgetCapsPredicateCalls) {
  std::vector<feed::FeedEvent> trace;
  for (uint32_t i = 0; i < 64; ++i) {
    trace.push_back(TweetEvent(i, 10 + i, "t"));
  }
  MinimizeOptions opts;
  opts.max_predicate_calls = 10;
  // Only the full trace fails — nothing can be removed, so ddmin would
  // otherwise probe every granularity up to 1-minimality.
  const MinimizeOutcome out = MinimizeTrace(
      trace,
      [&](const std::vector<feed::FeedEvent>& t) {
        return t.size() == trace.size();
      },
      opts);
  EXPECT_TRUE(out.input_failed);
  EXPECT_LE(out.predicate_calls, opts.max_predicate_calls + 1);
  EXPECT_EQ(out.trace.size(), trace.size());
}

/// The acceptance scenario: a deliberately-broken build (robust ingest
/// with the dedup stage skipped) diverges from the correct build on a
/// duplicate-injected trace; the minimizer bisects the trace to a minimal
/// reproducer, which round-trips through the trace_io golden format and
/// still fails.
TEST(MinimizerTest, BrokenDedupIsCaughtAndMinimized) {
  feed::WorkloadOptions opts;
  opts.seed = 404;
  opts.num_users = 6;
  opts.num_places = 5;
  opts.num_ads = 2;
  opts.days = 2;
  opts.tweets_per_user_day = 3.0;
  const feed::Workload workload = feed::GenerateWorkload(opts);
  const std::vector<feed::FeedEvent> pristine = workload.MergedEvents();

  FaultOptions faults;
  faults.seed = 5;
  faults.duplicate_probability = 0.1;
  FaultStats fstats;
  const std::vector<feed::FeedEvent> injected =
      InjectFaults(pristine, faults, &fstats);
  ASSERT_GT(fstats.duplicated, 0u);

  DifferentialOptions diff;
  diff.run_sharded = false;
  diff.run_snapshot = false;
  const DifferentialChecker checker(workload.kb, workload.slots, diff);

  SanitizeOptions broken;
  broken.dedup = false;  // the bug under test: dedup path skipped

  // Failure oracle: the broken ingest pipeline and the correct one
  // disagree on this (sub)trace.
  const auto broken_build_diverges =
      [&](const std::vector<feed::FeedEvent>& t) {
        const RunOutcome good =
            checker.RunSingle(workload.ads, SanitizeTrace(t));
        const RunOutcome bad =
            checker.RunSingle(workload.ads, SanitizeTrace(t, broken));
        return static_cast<bool>(DifferentialChecker::CompareOutcomes(
            good, bad, CompareOptions{}, "good", "broken"));
      };

  ASSERT_TRUE(broken_build_diverges(injected))
      << "duplicate injection did not expose the skipped dedup path";

  const MinimizeOutcome minimized = MinimizeTrace(injected,
                                                  broken_build_diverges);
  EXPECT_TRUE(minimized.input_failed);
  EXPECT_LT(minimized.trace.size(), injected.size());
  // A duplicate pair is the smallest possible reproducer.
  EXPECT_GE(minimized.trace.size(), 2u);
  EXPECT_LE(minimized.trace.size(), 4u);
  EXPECT_TRUE(broken_build_diverges(minimized.trace));

  // Golden-file round trip: write the reproducer, read it back, and the
  // replayed trace still fails.
  const std::string dir = FreshDir("repro");
  ASSERT_TRUE(WriteReproducer(dir, minimized.trace, workload.ads).ok());
  ASSERT_TRUE(std::filesystem::exists(dir + "/repro_trace.tsv"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/repro_ads.tsv"));

  Result<Reproducer> repro = ReadReproducer(dir);
  ASSERT_TRUE(repro.ok()) << repro.status().ToString();
  EXPECT_EQ(repro.value().events.size(), minimized.trace.size());
  EXPECT_EQ(repro.value().ads.size(), workload.ads.size());
  EXPECT_TRUE(broken_build_diverges(repro.value().events));
  std::filesystem::remove_all(dir);
}

TEST(MinimizerTest, WriteReproducerRejectsAdEvents) {
  feed::FeedEvent ad_event;
  ad_event.kind = feed::EventKind::kAdInsert;
  const Status s = WriteReproducer("/tmp/unused_adrec_dir", {ad_event}, {});
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace adrec::testkit
