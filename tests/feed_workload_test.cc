#include "feed/workload.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "annotate/annotator.h"

namespace adrec::feed {
namespace {

WorkloadOptions SmallOptions(uint64_t seed = 7) {
  WorkloadOptions opts;
  opts.seed = seed;
  opts.num_users = 8;
  opts.num_places = 6;
  opts.num_ads = 3;
  opts.days = 3;
  return opts;
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  Workload a = GenerateWorkload(SmallOptions(11));
  Workload b = GenerateWorkload(SmallOptions(11));
  ASSERT_EQ(a.tweets.size(), b.tweets.size());
  for (size_t i = 0; i < a.tweets.size(); ++i) {
    EXPECT_EQ(a.tweets[i].text, b.tweets[i].text);
    EXPECT_EQ(a.tweets[i].time, b.tweets[i].time);
    EXPECT_EQ(a.tweets[i].user, b.tweets[i].user);
  }
  ASSERT_EQ(a.check_ins.size(), b.check_ins.size());
  ASSERT_EQ(a.ads.size(), b.ads.size());
  for (size_t i = 0; i < a.ads.size(); ++i) {
    EXPECT_EQ(a.ads[i].copy, b.ads[i].copy);
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  Workload a = GenerateWorkload(SmallOptions(1));
  Workload b = GenerateWorkload(SmallOptions(2));
  // Extremely unlikely to coincide.
  EXPECT_TRUE(a.tweets.size() != b.tweets.size() ||
              a.tweets[0].text != b.tweets[0].text);
}

TEST(WorkloadTest, SizesMatchOptions) {
  Workload w = GenerateWorkload(SmallOptions());
  EXPECT_EQ(w.truth.size(), 8u);
  EXPECT_EQ(w.places.size(), 6u);
  EXPECT_EQ(w.ads.size(), 3u);
  EXPECT_EQ(w.ad_topics.size(), 3u);
  EXPECT_FALSE(w.tweets.empty());
  EXPECT_FALSE(w.check_ins.empty());
}

TEST(WorkloadTest, EventsAreTimeOrderedAndInRange) {
  Workload w = GenerateWorkload(SmallOptions());
  const Timestamp horizon = 3 * kSecondsPerDay;
  for (size_t i = 1; i < w.tweets.size(); ++i) {
    EXPECT_LE(w.tweets[i - 1].time, w.tweets[i].time);
  }
  for (const Tweet& t : w.tweets) {
    EXPECT_GE(t.time, 0);
    EXPECT_LT(t.time, horizon);
    EXPECT_LT(t.user.value, 8u);
    EXPECT_FALSE(t.text.empty());
  }
  for (const CheckIn& c : w.check_ins) {
    EXPECT_GE(c.time, 0);
    EXPECT_LT(c.time, horizon);
    EXPECT_LT(c.location.value, 6u);
  }
}

TEST(WorkloadTest, TruthIsConsistent) {
  Workload w = GenerateWorkload(SmallOptions());
  for (const UserTruth& t : w.truth) {
    EXPECT_GE(t.interests.size(), 2u);
    EXPECT_LE(t.interests.size(), 4u);
    std::set<uint32_t> uniq;
    for (TopicId topic : t.interests) {
      EXPECT_LT(topic.value, w.kb->size());
      uniq.insert(topic.value);
    }
    EXPECT_EQ(uniq.size(), t.interests.size());  // distinct
    ASSERT_EQ(t.frequented.size(), w.slots.size());
    for (const auto& locs : t.frequented) {
      EXPECT_GE(locs.size(), 1u);
      for (LocationId l : locs) EXPECT_LT(l.value, 6u);
    }
  }
}

TEST(WorkloadTest, CheckInsRespectFrequentedTruth) {
  Workload w = GenerateWorkload(SmallOptions());
  for (const CheckIn& c : w.check_ins) {
    const SlotId slot = w.slots.SlotOf(c.time);
    const auto& allowed = w.truth[c.user.value].frequented[slot.value];
    EXPECT_NE(std::find(allowed.begin(), allowed.end(), c.location),
              allowed.end())
        << "check-in at non-frequented location";
  }
}

TEST(WorkloadTest, SlotIntensityShapesVolume) {
  WorkloadOptions opts = SmallOptions();
  opts.num_users = 20;
  opts.days = 10;
  Workload w = GenerateWorkload(opts);
  // Count tweets per slot; slot2 (intensity 2.0) must exceed night (0.2).
  std::vector<size_t> per_slot(w.slots.size(), 0);
  for (const Tweet& t : w.tweets) ++per_slot[w.slots.SlotOf(t.time).value];
  EXPECT_GT(per_slot[2], per_slot[0] * 2);
  // And slot2 > slot1 (2.0 vs 1.0) with high probability at this volume.
  EXPECT_GT(per_slot[2], per_slot[1]);
}

TEST(WorkloadTest, TweetsAreAnnotatable) {
  Workload w = GenerateWorkload(SmallOptions());
  annotate::SpotlightAnnotator annotator(w.kb.get());
  size_t annotated = 0;
  const size_t sample = std::min<size_t>(w.tweets.size(), 100);
  for (size_t i = 0; i < sample; ++i) {
    if (!annotator.Annotate(w.tweets[i].text).empty()) ++annotated;
  }
  // Nearly every generated tweet mentions a KB entity by construction.
  EXPECT_GT(annotated, sample * 8 / 10);
}

TEST(WorkloadTest, AdsMentionTheirTopics) {
  Workload w = GenerateWorkload(SmallOptions());
  annotate::SpotlightAnnotator annotator(w.kb.get());
  for (size_t a = 0; a < w.ads.size(); ++a) {
    auto anns = annotator.Annotate(w.ads[a].copy);
    std::set<uint32_t> found;
    for (const auto& ann : anns) found.insert(ann.topic.value);
    size_t hits = 0;
    for (TopicId t : w.ad_topics[a]) hits += found.count(t.value);
    EXPECT_GE(hits, 1u) << "ad " << a << " copy: " << w.ads[a].copy;
    EXPECT_FALSE(w.ads[a].target_locations.empty());
    EXPECT_FALSE(w.ads[a].target_slots.empty());
  }
}

TEST(WorkloadTest, MergedEventsInterleaveInTimeOrder) {
  Workload w = GenerateWorkload(SmallOptions());
  auto events = w.MergedEvents();
  EXPECT_EQ(events.size(), w.tweets.size() + w.check_ins.size());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  size_t tweets = 0, checkins = 0;
  for (const FeedEvent& e : events) {
    if (e.kind == EventKind::kTweet) ++tweets;
    if (e.kind == EventKind::kCheckIn) ++checkins;
  }
  EXPECT_EQ(tweets, w.tweets.size());
  EXPECT_EQ(checkins, w.check_ins.size());
}

TEST(WorkloadTest, CaseStudyScaleMatchesReportedCrawl) {
  WorkloadOptions opts = CaseStudyOptions();
  EXPECT_EQ(opts.num_users, 31u);
  EXPECT_EQ(opts.num_places, 29u);
  EXPECT_EQ(opts.num_ads, 5u);
  EXPECT_EQ(opts.days, 30);
}

}  // namespace
}  // namespace adrec::feed
