#include "index/wand_index.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace adrec::index {
namespace {

text::SparseVector Vec(std::vector<text::SparseEntry> entries) {
  return text::SparseVector::FromUnsorted(std::move(entries));
}

AdQuery Query(text::SparseVector topics, size_t k = 10) {
  AdQuery q;
  q.topics = std::move(topics);
  q.k = k;
  return q;
}

TEST(WandIndexTest, BasicRankingAndZeroScoreExclusion) {
  WandIndex idx;
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  ASSERT_TRUE(idx.Insert(AdId(2), Vec({{0, 0.5}, {1, 0.5}}), {}, {}).ok());
  ASSERT_TRUE(idx.Insert(AdId(3), Vec({{1, 1.0}}), {}, {}).ok());
  auto top = idx.TopK(Query(Vec({{0, 1.0}})));
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].ad, AdId(1));
  EXPECT_EQ(top[1].ad, AdId(2));
}

TEST(WandIndexTest, DuplicateAndMissing) {
  WandIndex idx;
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  EXPECT_EQ(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(idx.Remove(AdId(9)).code(), StatusCode::kNotFound);
  EXPECT_TRUE(idx.Remove(AdId(1)).ok());
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(idx.TopK(Query(Vec({{0, 1.0}}))).empty());
}

TEST(WandIndexTest, FiltersApply) {
  WandIndex idx;
  ASSERT_TRUE(
      idx.Insert(AdId(1), Vec({{0, 1.0}}), {LocationId(5)}, {SlotId(1)})
          .ok());
  AdQuery q = Query(Vec({{0, 1.0}}));
  q.location = LocationId(6);
  EXPECT_TRUE(idx.TopK(q).empty());
  q.location = LocationId(5);
  q.slot = SlotId(2);
  EXPECT_TRUE(idx.TopK(q).empty());
  q.slot = SlotId(1);
  EXPECT_EQ(idx.TopK(q).size(), 1u);
}

TEST(WandIndexTest, PivotSkippingDoesFewerFullEvaluations) {
  WandIndex idx;
  const size_t n = 5000;
  Rng rng(3);
  for (uint32_t i = 0; i < n; ++i) {
    // Two-term ads over a small vocabulary with varied weights.
    ASSERT_TRUE(idx.Insert(AdId(i),
                           Vec({{i % 20, 0.1 + 0.9 * rng.NextDouble()},
                                {20 + i % 7, 0.1 + 0.9 * rng.NextDouble()}}),
                           {}, {})
                    .ok());
  }
  auto top = idx.TopK(Query(Vec({{3, 1.0}, {21, 0.8}}), 5));
  ASSERT_EQ(top.size(), 5u);
  // The lists for terms 3 and 21 hold ~250 + ~715 postings; pivoting must
  // evaluate well under the union.
  EXPECT_LT(idx.last_full_evaluations(), 800u);
  EXPECT_GT(idx.last_full_evaluations(), 0u);
}

class WandEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(WandEquivalenceTest, AgreesWithTaAndExhaustive) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 60013);
  WandIndex wand;
  AdIndex ta;
  const size_t num_ads = 40 + rng.NextBounded(160);
  const size_t num_topics = 15;
  for (uint32_t i = 0; i < num_ads; ++i) {
    std::vector<text::SparseEntry> entries;
    const size_t nnz = 1 + rng.NextBounded(4);
    for (size_t j = 0; j < nnz; ++j) {
      entries.push_back({static_cast<uint32_t>(rng.NextBounded(num_topics)),
                         rng.NextDouble()});
    }
    std::vector<LocationId> locs;
    if (rng.NextBool(0.5)) {
      locs.push_back(LocationId(static_cast<uint32_t>(rng.NextBounded(4))));
    }
    std::vector<SlotId> slots;
    if (rng.NextBool(0.5)) {
      slots.push_back(SlotId(static_cast<uint32_t>(rng.NextBounded(3))));
    }
    const double bid = 0.5 + rng.NextDouble();
    text::SparseVector v = Vec(std::move(entries));
    ASSERT_TRUE(wand.Insert(AdId(i), v, locs, slots, bid).ok());
    ASSERT_TRUE(ta.Insert(AdId(i), v, locs, slots, bid).ok());
  }
  for (int d = 0; d < 15; ++d) {
    const AdId victim(static_cast<uint32_t>(rng.NextBounded(num_ads)));
    const Status a = wand.Remove(victim);
    const Status b = ta.Remove(victim);
    EXPECT_EQ(a.code(), b.code());
  }
  for (int q = 0; q < 25; ++q) {
    AdQuery query;
    std::vector<text::SparseEntry> entries;
    const size_t nnz = 1 + rng.NextBounded(3);
    for (size_t j = 0; j < nnz; ++j) {
      entries.push_back({static_cast<uint32_t>(rng.NextBounded(num_topics)),
                         rng.NextDouble()});
    }
    query.topics = Vec(std::move(entries));
    query.k = 1 + rng.NextBounded(8);
    if (rng.NextBool(0.5)) {
      query.location = LocationId(static_cast<uint32_t>(rng.NextBounded(4)));
    }
    if (rng.NextBool(0.5)) {
      query.slot = SlotId(static_cast<uint32_t>(rng.NextBounded(3)));
    }
    auto w = wand.TopK(query);
    auto t = ta.TopK(query);
    auto e = ta.TopKExhaustive(query);
    ASSERT_EQ(w.size(), e.size()) << "query " << q;
    ASSERT_EQ(t.size(), e.size()) << "query " << q;
    for (size_t i = 0; i < e.size(); ++i) {
      EXPECT_EQ(w[i].ad, e[i].ad) << "query " << q << " rank " << i;
      EXPECT_NEAR(w[i].score, e[i].score, 1e-9);
      EXPECT_EQ(t[i].ad, e[i].ad);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCorpora, WandEquivalenceTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace adrec::index
