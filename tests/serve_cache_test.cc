// The topk result cache at the wire level: a daemon started with
// --topk-cache serves byte-identical replies on hits, surfaces the
// cache.* counters through the `metrics` exposition and the
// cache.lookup/cache.fill spans through `trace`, and invalidates on
// ingest — including a READONLY follower invalidating as replicated
// frames apply, and across `promote`. The exhaustive equivalence proof
// lives in cache_differential_test.cc; these tests pin the serving
// plumbing around it.

#include "serve/server.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "feed/workload.h"
#include "obs/trace.h"
#include "replica/follower.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace adrec::serve {
namespace {

/// One in-process daemon: engine + WAL + server (+ follower), the same
/// wiring examples/adrecd.cpp does. Per-daemon workload for the same
/// reason serve_replica_test has one: the analyzer vocabulary is
/// single-writer per daemon.
struct Daemon {
  feed::Workload workload;
  std::string wal_dir;
  std::unique_ptr<wal::CheckpointManager> checkpointer;
  std::unique_ptr<wal::WalWriter> wal;
  std::unique_ptr<core::ShardedEngine> engine;
  std::unique_ptr<replica::Follower> follower;
  std::unique_ptr<Server> server;
  std::thread thread;

  void Stop() {
    if (server) {
      server->RequestDrain();
      if (thread.joinable()) thread.join();
      server.reset();
    }
    follower.reset();
    wal.reset();
  }
  ~Daemon() { Stop(); }
};

class ServeCacheTest : public ::testing::Test {
 protected:
  ServeCacheTest() {
    base_dir_ =
        (std::filesystem::temp_directory_path() /
         ("adrec_servecache_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    std::filesystem::remove_all(base_dir_);
    std::filesystem::create_directories(base_dir_);

    opts_.seed = 808;
    opts_.num_users = 12;
    opts_.num_places = 8;
    opts_.num_ads = 3;
    opts_.days = 2;
    workload_ = feed::GenerateWorkload(opts_);
  }
  ~ServeCacheTest() override { std::filesystem::remove_all(base_dir_); }

  void StartDaemon(Daemon* d, const std::string& tag,
                   ServerOptions options = ServerOptions(),
                   uint16_t leader_port = 0) {
    d->workload = feed::GenerateWorkload(opts_);
    d->wal_dir = base_dir_ + "/" + tag;
    d->checkpointer = std::make_unique<wal::CheckpointManager>(d->wal_dir);
    d->engine = std::make_unique<core::ShardedEngine>(d->workload.kb,
                                                      d->workload.slots, 1);
    auto recovered = d->checkpointer->Recover(d->engine.get());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    wal::WalOptions wal_options;
    wal_options.sync = wal::SyncPolicy::kNone;
    auto writer = wal::WalWriter::Open(d->wal_dir, wal_options,
                                       recovered.value().next_seqno);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    d->wal = std::move(writer).value();

    options.wal = d->wal.get();
    options.checkpointer = d->checkpointer.get();
    if (leader_port != 0) {
      replica::FollowerOptions fopts;
      fopts.host = "127.0.0.1";
      fopts.port = leader_port;
      fopts.backoff_initial = 0.05;
      d->follower = std::make_unique<replica::Follower>(
          d->engine.get(), d->wal.get(), fopts);
      options.follower = d->follower.get();
    }
    d->server = std::make_unique<Server>(d->engine.get(), options);
    if (recovered.value().max_event_time > 0) {
      d->server->SeedStreamClock(recovered.value().max_event_time);
    }
    ASSERT_TRUE(d->server->Start().ok());
    d->thread = std::thread([d] { d->server->Run(); });
  }

  Client Connected(const Daemon& d) {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", d.server->port()).ok());
    return client;
  }

  static bool MetricValue(const std::string& payload,
                          const std::string& name, double* value) {
    const size_t pos = payload.find("\n" + name + " ");
    if (pos == std::string::npos) return false;
    *value = std::strtod(payload.c_str() + pos + 1 + name.size(), nullptr);
    return true;
  }

  double CounterOrDie(Client* client, const std::string& name) {
    auto metrics = client->Metrics();
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    double value = -1.0;
    EXPECT_TRUE(MetricValue(metrics.value(), name, &value))
        << name << " absent from exposition";
    return value;
  }

  void WaitForApplied(Client* client, uint64_t seqno,
                      double timeout_sec = 10.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_sec);
    for (;;) {
      auto metrics = client->Metrics();
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
      double applied = -1.0;
      if (MetricValue(metrics.value(), "adrec_replica_applied_seqno",
                      &applied) &&
          applied >= static_cast<double>(seqno)) {
        return;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "follower stuck at applied_seqno=" << applied << " want "
          << seqno;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  /// An explicit-time topk line (tab-framed): a stable query shape whose
  /// cache identity does not move with the server's stream clock.
  std::string ProbeLine(size_t user, Timestamp time) const {
    return FormatTopKCmd(UserId(static_cast<uint32_t>(user)), 3, time,
                         workload_.tweets[user % workload_.tweets.size()].text);
  }

  std::string base_dir_;
  feed::WorkloadOptions opts_;
  feed::Workload workload_;
};

TEST_F(ServeCacheTest, CacheIsOffByDefault) {
  Daemon d;
  StartDaemon(&d, "plain");
  Client client = Connected(d);
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(client.PutAd(ad).ok());
  }
  const std::string probe = ProbeLine(1, workload_.tweets.back().time);
  auto first = client.Command(probe);
  ASSERT_TRUE(first.ok());
  auto second = client.Command(probe);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  // No cache, no cache.* exposition.
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().find("adrec_cache_hits_total"),
            std::string::npos);
}

TEST_F(ServeCacheTest, HitsAndMissesSurfaceInMetricsAndRepliesMatch) {
  Daemon d;
  ServerOptions options;
  options.topk_cache.capacity = 64;
  StartDaemon(&d, "cached", options);
  Client client = Connected(d);
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(client.PutAd(ad).ok());
  }
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
  }

  const std::string probe = ProbeLine(2, workload_.tweets.back().time);
  auto first = client.Command(probe);
  ASSERT_TRUE(first.ok());
  auto second = client.Command(probe);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value())
      << "cached reply diverged from computed reply";

  EXPECT_EQ(CounterOrDie(&client, "adrec_cache_misses_total"), 1.0);
  EXPECT_EQ(CounterOrDie(&client, "adrec_cache_hits_total"), 1.0);
  double ratio = -1.0;
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(MetricValue(metrics.value(), "adrec_cache_hit_ratio", &ratio));
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST_F(ServeCacheTest, IngestInvalidatesResidentEntries) {
  Daemon d;
  ServerOptions options;
  options.topk_cache.capacity = 64;
  StartDaemon(&d, "cached", options);
  Client client = Connected(d);
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(client.PutAd(ad).ok());
  }

  const std::string probe = ProbeLine(3, workload_.tweets.back().time);
  ASSERT_TRUE(client.Command(probe).ok());  // fill
  // A tweet by the queried user evicts the entry: the next identical
  // probe misses instead of hitting.
  feed::Tweet tweet = workload_.tweets[0];
  tweet.user = UserId(3);
  ASSERT_TRUE(client.SendTweet(tweet).ok());
  ASSERT_TRUE(client.Command(probe).ok());

  EXPECT_EQ(CounterOrDie(&client, "adrec_cache_hits_total"), 0.0);
  EXPECT_EQ(CounterOrDie(&client, "adrec_cache_misses_total"), 2.0);
  EXPECT_GE(CounterOrDie(&client, "adrec_cache_invalidations_total"), 1.0);
}

TEST_F(ServeCacheTest, LookupAndFillSpansAppearInTraces) {
  obs::TraceCollectorOptions topts;
  topts.sample_every = 1;  // keep every trace
  obs::TraceCollector tracer(topts);
  Daemon d;
  ServerOptions options;
  options.topk_cache.capacity = 64;
  options.tracer = &tracer;
  StartDaemon(&d, "traced", options);
  Client client = Connected(d);
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(client.PutAd(ad).ok());
  }
  const std::string probe = ProbeLine(4, workload_.tweets.back().time);
  ASSERT_TRUE(client.Command(probe).ok());  // miss → cache.fill span
  ASSERT_TRUE(client.Command(probe).ok());  // hit → cache.lookup span
  auto trace = client.Trace();
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_NE(trace.value().find("cache.fill"), std::string::npos)
      << trace.value();
  EXPECT_NE(trace.value().find("cache.lookup"), std::string::npos)
      << trace.value();
}

TEST_F(ServeCacheTest, FollowerCachesReadsInvalidatesOnApplyAndPromotes) {
  Daemon leader;
  StartDaemon(&leader, "leader");
  uint64_t acked = 0;
  {
    Client lclient = Connected(leader);
    for (const feed::Ad& ad : workload_.ads) {
      ASSERT_TRUE(lclient.PutAd(ad).ok());
      ++acked;
    }
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(lclient.SendTweet(workload_.tweets[i]).ok());
      ++acked;
    }
  }

  Daemon follower;
  ServerOptions foptions;
  foptions.topk_cache.capacity = 64;
  StartDaemon(&follower, "follower", foptions, leader.server->port());
  Client fclient = Connected(follower);
  WaitForApplied(&fclient, acked);

  // READONLY follower still serves topk, and the cache works: the
  // repeated probe is a hit, byte-identical to the computed reply.
  const std::string probe = ProbeLine(5, workload_.tweets.back().time);
  auto first = fclient.Command(probe);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().rfind("ADS", 0) == 0) << first.value();
  auto second = fclient.Command(probe);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(CounterOrDie(&fclient, "adrec_cache_hits_total"), 1.0);

  // A replicated frame touching the queried user invalidates the cached
  // entry as it applies — the next probe misses.
  {
    Client lclient = Connected(leader);
    feed::Tweet tweet = workload_.tweets[0];
    tweet.user = UserId(5);
    ASSERT_TRUE(lclient.SendTweet(tweet).ok());
    ++acked;
  }
  WaitForApplied(&fclient, acked);
  EXPECT_GE(CounterOrDie(&fclient, "adrec_cache_invalidations_total"), 1.0);
  const double misses_before =
      CounterOrDie(&fclient, "adrec_cache_misses_total");
  ASSERT_TRUE(fclient.Command(probe).ok());
  EXPECT_EQ(CounterOrDie(&fclient, "adrec_cache_misses_total"),
            misses_before + 1.0);

  // Promote: the daemon starts accepting writes, and the cache keeps
  // invalidating on them (now via the leader-side ingest path).
  leader.Stop();
  auto promoted = fclient.Command("promote");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted.value().rfind("OK", 0), 0u) << promoted.value();

  const double invalidations_before =
      CounterOrDie(&fclient, "adrec_cache_invalidations_total");
  ASSERT_TRUE(fclient.Command(probe).ok());  // refill after the miss above
  feed::Tweet tweet = workload_.tweets[1];
  tweet.user = UserId(5);
  ASSERT_TRUE(fclient.SendTweet(tweet).ok());
  EXPECT_GT(CounterOrDie(&fclient, "adrec_cache_invalidations_total"),
            invalidations_before);
}

}  // namespace
}  // namespace adrec::serve
