#include "core/windowed_analyzer.h"

#include <gtest/gtest.h>

namespace adrec::core {
namespace {

AnnotatedTweet MakeTweet(uint32_t user, Timestamp time, uint32_t topic,
                         double score = 1.0) {
  AnnotatedTweet t;
  t.user = UserId(user);
  t.time = time;
  annotate::Annotation a;
  a.topic = TopicId(topic);
  a.score = score;
  t.annotations.push_back(a);
  return t;
}

feed::CheckIn MakeCheckIn(uint32_t user, Timestamp time, uint32_t loc) {
  feed::CheckIn c;
  c.user = UserId(user);
  c.time = time;
  c.location = LocationId(loc);
  return c;
}

class WindowedTest : public ::testing::Test {
 protected:
  WindowedTest() : slots_(timeline::TimeSlotScheme::PaperScheme()) {}

  WindowedOptions Opts(DurationSec window, DurationSec refresh) {
    WindowedOptions o;
    o.window = window;
    o.refresh_every = refresh;
    o.alpha = 0.5;
    return o;
  }

  timeline::TimeSlotScheme slots_;
};

TEST_F(WindowedTest, FirstMaybeRefreshAlwaysRuns) {
  WindowedAnalyzer wa(&slots_, 5, Opts(kSecondsPerDay, kSecondsPerHour));
  auto r = wa.MaybeRefresh(100);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  EXPECT_EQ(wa.refresh_count(), 1u);
}

TEST_F(WindowedTest, RefreshCadenceIsHonoured) {
  WindowedAnalyzer wa(&slots_, 5, Opts(kSecondsPerDay, kSecondsPerHour));
  ASSERT_TRUE(wa.MaybeRefresh(0).ok());
  // Too soon: no refresh.
  auto r = wa.MaybeRefresh(kSecondsPerHour - 1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
  // Due: refresh.
  r = wa.MaybeRefresh(kSecondsPerHour);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  EXPECT_EQ(wa.refresh_count(), 2u);
}

TEST_F(WindowedTest, EventsInsideWindowAreAnalyzed) {
  WindowedAnalyzer wa(&slots_, 5, Opts(kSecondsPerDay, kSecondsPerHour));
  const Timestamp morning = 6 * kSecondsPerHour;
  wa.OnTweet(MakeTweet(0, morning, 2));
  wa.OnCheckIn(MakeCheckIn(0, morning, 4));
  ASSERT_TRUE(wa.Refresh(morning + 100).ok());
  EXPECT_EQ(wa.analysis().TopicCommunities(TopicId(2)).size(), 1u);
  EXPECT_EQ(wa.analysis().LocationCommunities(LocationId(4)).size(), 1u);
}

TEST_F(WindowedTest, OldEventsAreEvicted) {
  WindowedAnalyzer wa(&slots_, 5, Opts(kSecondsPerDay, kSecondsPerHour));
  const Timestamp morning = 6 * kSecondsPerHour;
  wa.OnTweet(MakeTweet(0, morning, 2));
  wa.OnCheckIn(MakeCheckIn(0, morning, 4));
  // Three days later both events left the 1-day window.
  ASSERT_TRUE(wa.Refresh(morning + 3 * kSecondsPerDay).ok());
  EXPECT_TRUE(wa.analysis().TopicCommunities(TopicId(2)).empty());
  EXPECT_TRUE(wa.analysis().LocationCommunities(LocationId(4)).empty());
  EXPECT_EQ(wa.buffered_tweets(), 0u);
  EXPECT_EQ(wa.buffered_checkins(), 0u);
}

TEST_F(WindowedTest, RecentEventsSurviveEviction) {
  WindowedAnalyzer wa(&slots_, 5, Opts(kSecondsPerDay, kSecondsPerHour));
  const Timestamp old_time = 6 * kSecondsPerHour;
  const Timestamp new_time = old_time + 2 * kSecondsPerDay;
  wa.OnTweet(MakeTweet(0, old_time, 1));
  wa.OnTweet(MakeTweet(1, new_time, 2));
  ASSERT_TRUE(wa.Refresh(new_time + 100).ok());
  EXPECT_TRUE(wa.analysis().TopicCommunities(TopicId(1)).empty());
  EXPECT_EQ(wa.analysis().TopicCommunities(TopicId(2)).size(), 1u);
  EXPECT_EQ(wa.buffered_tweets(), 1u);
}

TEST_F(WindowedTest, AlphaIsForwarded) {
  WindowedOptions opts = Opts(kSecondsPerDay, kSecondsPerHour);
  opts.alpha = 0.9;
  WindowedAnalyzer wa(&slots_, 5, opts);
  const Timestamp t = 6 * kSecondsPerHour;
  wa.OnTweet(MakeTweet(0, t, 3, /*score=*/0.5));  // below alpha
  ASSERT_TRUE(wa.Refresh(t + 1).ok());
  EXPECT_TRUE(wa.analysis().TopicCommunities(TopicId(3)).empty());
}

}  // namespace
}  // namespace adrec::core
