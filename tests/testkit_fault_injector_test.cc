#include "testkit/fault_injector.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "feed/workload.h"
#include "obs/metrics.h"

namespace adrec::testkit {
namespace {

std::vector<std::string> Keys(const std::vector<feed::FeedEvent>& events) {
  std::vector<std::string> out;
  out.reserve(events.size());
  for (const feed::FeedEvent& e : events) out.push_back(EventKey(e));
  return out;
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() {
    feed::WorkloadOptions opts;
    opts.seed = 909;
    opts.num_users = 12;
    opts.num_places = 8;
    opts.num_ads = 3;
    opts.days = 3;
    workload_ = feed::GenerateWorkload(opts);
    pristine_ = workload_.MergedEvents();
  }

  feed::Workload workload_;
  std::vector<feed::FeedEvent> pristine_;
};

TEST_F(FaultInjectorTest, PristineWorkloadIsWellFormedAndOrdered) {
  ASSERT_GT(pristine_.size(), 50u);
  for (const feed::FeedEvent& e : pristine_) {
    EXPECT_TRUE(IsWellFormed(e));
  }
  for (size_t i = 1; i < pristine_.size(); ++i) {
    EXPECT_LE(pristine_[i - 1].time, pristine_[i].time);
  }
}

TEST_F(FaultInjectorTest, InjectionIsAPureFunctionOfSeed) {
  const FaultOptions opts = DefaultFaultMix(1234);
  FaultStats s1, s2;
  const auto a = InjectFaults(pristine_, opts, &s1);
  const auto b = InjectFaults(pristine_, opts, &s2);
  EXPECT_EQ(Keys(a), Keys(b));
  EXPECT_EQ(s1.reordered, s2.reordered);
  EXPECT_EQ(s1.duplicated, s2.duplicated);
  EXPECT_EQ(s1.dropped, s2.dropped);
  EXPECT_EQ(s1.skewed, s2.skewed);
  EXPECT_EQ(s1.malformed, s2.malformed);

  // A different seed draws a different fault plan.
  const auto c = InjectFaults(pristine_, DefaultFaultMix(99), nullptr);
  EXPECT_NE(Keys(a), Keys(c));
}

TEST_F(FaultInjectorTest, StatsAccountForEveryEvent) {
  FaultOptions opts = DefaultFaultMix(7);
  FaultStats stats;
  const auto injected = InjectFaults(pristine_, opts, &stats);
  EXPECT_EQ(stats.events_in, pristine_.size());
  EXPECT_EQ(stats.events_out, injected.size());
  EXPECT_EQ(injected.size(), pristine_.size() - stats.dropped +
                                 stats.duplicated + stats.malformed);
  // The default mix has every fault class switched on; on a trace this
  // size each one fires.
  EXPECT_GT(stats.reordered, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.skewed, 0u);
  EXPECT_GT(stats.malformed, 0u);
}

TEST_F(FaultInjectorTest, MalformedEventsAreDetectable) {
  FaultOptions opts;
  opts.seed = 11;
  opts.malform_probability = 0.2;
  FaultStats stats;
  const auto injected = InjectFaults(pristine_, opts, &stats);
  size_t malformed = 0;
  for (const feed::FeedEvent& e : injected) {
    if (!IsWellFormed(e)) ++malformed;
  }
  EXPECT_EQ(malformed, stats.malformed);
  EXPECT_GT(malformed, 0u);
}

TEST_F(FaultInjectorTest, ReorderPermutesWithoutLoss) {
  FaultOptions opts;
  opts.seed = 5;
  opts.reorder_probability = 0.3;
  opts.reorder_window = 4;
  FaultStats stats;
  const auto injected = InjectFaults(pristine_, opts, &stats);
  ASSERT_EQ(injected.size(), pristine_.size());
  EXPECT_GT(stats.reordered, 0u);

  // Reordering permutes the trace (no loss, no invention) and genuinely
  // changes the order...
  const auto keys_in = Keys(pristine_);
  auto keys_out = Keys(injected);
  EXPECT_NE(keys_in, keys_out);
  auto sorted_in = keys_in;
  auto sorted_out = keys_out;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);

  // ...and the canonical resort undoes it exactly.
  EXPECT_EQ(Keys(SanitizeTrace(injected)), Keys(SanitizeTrace(pristine_)));
}

TEST_F(FaultInjectorTest, SanitizeRecoversRecoverableFaultsExactly) {
  // Reordering + duplicates + malformed records are exactly undone by the
  // sanitize pipeline; the repaired trace matches the sanitized pristine
  // trace event for event.
  const auto canonical = SanitizeTrace(pristine_);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultStats fstats;
    const auto injected =
        InjectFaults(pristine_, RecoverableFaultMix(seed), &fstats);
    SanitizeStats sstats;
    const auto repaired = SanitizeTrace(injected, {}, &sstats);
    EXPECT_EQ(Keys(repaired), Keys(canonical)) << "seed " << seed;
    EXPECT_EQ(sstats.dropped_malformed, fstats.malformed) << "seed " << seed;
    EXPECT_EQ(sstats.deduplicated, fstats.duplicated) << "seed " << seed;
  }
}

TEST_F(FaultInjectorTest, SanitizeWithDedupDisabledKeepsDuplicates) {
  FaultOptions opts;
  opts.seed = 3;
  opts.duplicate_probability = 0.15;
  FaultStats fstats;
  const auto injected = InjectFaults(pristine_, opts, &fstats);
  ASSERT_GT(fstats.duplicated, 0u);

  SanitizeOptions broken;  // models a build that skipped the dedup path
  broken.dedup = false;
  SanitizeStats sstats;
  const auto kept = SanitizeTrace(injected, broken, &sstats);
  EXPECT_EQ(kept.size(), pristine_.size() + fstats.duplicated);
  EXPECT_EQ(sstats.deduplicated, 0u);
}

TEST_F(FaultInjectorTest, ReplayerDeliversInjectedTraceAndExportsCounters) {
  obs::MetricRegistry registry;
  FaultInjectingReplayer replayer(DefaultFaultMix(21), {}, &registry);
  size_t delivered = 0;
  const feed::ReplayStats rstats = replayer.Replay(
      pristine_, [&](const feed::FeedEvent&) { ++delivered; });
  const FaultStats& fstats = replayer.fault_stats();
  EXPECT_EQ(delivered, fstats.events_out);
  EXPECT_EQ(rstats.events_delivered, fstats.events_out);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  const auto counter = [&](const std::string& name) -> uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("testkit.reordered"), fstats.reordered);
  EXPECT_EQ(counter("testkit.duplicated"), fstats.duplicated);
  EXPECT_EQ(counter("testkit.dropped"), fstats.dropped);
  EXPECT_EQ(counter("testkit.skewed"), fstats.skewed);
  EXPECT_EQ(counter("testkit.malformed"), fstats.malformed);
  EXPECT_EQ(counter("testkit.events_delivered"), fstats.events_out);
}

}  // namespace
}  // namespace adrec::testkit
