#include "wal/delta/delta_checkpoint.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "core/snapshot.h"
#include "feed/workload.h"
#include "wal/checkpoint.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace adrec::wal::delta {
namespace {

class WalDeltaCheckpointTest : public ::testing::Test {
 protected:
  WalDeltaCheckpointTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("adrec_delta_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    feed::WorkloadOptions opts;
    opts.seed = 77;
    opts.num_users = 8;
    opts.num_places = 6;
    opts.num_ads = 3;
    opts.days = 2;
    workload_ = feed::GenerateWorkload(opts);
    events_ = workload_.MergedEvents();
  }
  ~WalDeltaCheckpointTest() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<core::ShardedEngine> NewEngine(size_t shards = 2) {
    return std::make_unique<core::ShardedEngine>(workload_.kb,
                                                 workload_.slots, shards);
  }

  /// Feeds ads + events[from, upto) into `engine` (no logging — these
  /// tests exercise the snapshot chain, not the WAL).
  void Feed(core::ShardedEngine* engine, size_t from, size_t upto) {
    if (from == 0) {
      for (const feed::Ad& ad : workload_.ads) (void)engine->InsertAd(ad);
    }
    for (size_t i = from; i < upto && i < events_.size(); ++i) {
      engine->OnEvent(events_[i]);
    }
  }

  /// The engine's full serialized snapshot across shards, for
  /// byte-identity comparisons.
  std::vector<std::string> Serialized(const core::ShardedEngine& engine) {
    std::vector<std::string> out;
    for (size_t s = 0; s < engine.num_shards(); ++s) {
      auto files = core::SerializeEngineSnapshot(engine.shard(s));
      EXPECT_TRUE(files.ok()) << files.status().ToString();
      for (const core::SnapshotFile& f : files.value()) {
        out.push_back(f.name + "\n" + f.contents);
      }
    }
    return out;
  }

  /// Materializes `head` and loads it into a fresh engine.
  std::unique_ptr<core::ShardedEngine> Restore(const DeltaManifest& head) {
    const std::string staging = dir_ + "/restore.tmp";
    std::filesystem::remove_all(staging);
    const Status st = MaterializeCheckpoint(dir_, head, staging);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto engine = NewEngine(head.num_shards);
    for (size_t s = 0; s < head.num_shards; ++s) {
      const Status load = core::LoadEngineSnapshot(
          staging + "/shard" + std::to_string(s), engine->mutable_shard(s));
      EXPECT_TRUE(load.ok()) << load.ToString();
    }
    return engine;
  }

  std::string dir_;
  feed::Workload workload_;
  std::vector<feed::FeedEvent> events_;
};

TEST_F(WalDeltaCheckpointTest, FirstSaveIsRebaseAndRoundTrips) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 2);

  auto stats = SaveDeltaCheckpoint(dir_, *engine, 42, {}, 1234, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().rebase);
  EXPECT_EQ(stats.value().gen, 1u);
  EXPECT_EQ(stats.value().files_written, stats.value().files_total);
  EXPECT_EQ(stats.value().chain_len, 1u);

  auto head = ResolveHead(dir_);
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head.value().gen, 1u);
  EXPECT_EQ(head.value().wal_seqno, 42u);
  EXPECT_EQ(head.value().stream_time, 1234);
  EXPECT_EQ(head.value().num_shards, 2u);
  EXPECT_EQ(head.value().base_gen, 0u);
  EXPECT_EQ(head.value().depth, 0u);

  auto restored = Restore(head.value());
  EXPECT_EQ(Serialized(*engine), Serialized(*restored));
}

TEST_F(WalDeltaCheckpointTest, UnchangedStateCarriesEverythingByReference) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 2);
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 10, {}, 0, {}).ok());

  // Nothing mutated: the second generation writes zero snapshot bytes.
  auto stats = SaveDeltaCheckpoint(dir_, *engine, 11, {}, 0, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats.value().rebase);
  EXPECT_EQ(stats.value().gen, 2u);
  EXPECT_EQ(stats.value().files_written, 0u);
  EXPECT_EQ(stats.value().bytes_written, 0u);
  // chain_len counts generations the head pins on disk: gen 2 (holding
  // only the manifest) plus gen 1, where every file ref points.
  EXPECT_EQ(stats.value().chain_len, 2u);

  auto head = ResolveHead(dir_);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head.value().gen, 2u);
  EXPECT_EQ(head.value().base_gen, 1u);
  EXPECT_EQ(head.value().depth, 1u);
  for (const FileRef& f : head.value().files) EXPECT_EQ(f.src_gen, 1u);

  auto restored = Restore(head.value());
  EXPECT_EQ(Serialized(*engine), Serialized(*restored));
}

TEST_F(WalDeltaCheckpointTest, DeltaWritesOnlyChangedFiles) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 2);
  auto first = SaveDeltaCheckpoint(dir_, *engine, 10, {}, 0, {});
  ASSERT_TRUE(first.ok());

  Feed(engine.get(), events_.size() / 2, events_.size());
  auto second = SaveDeltaCheckpoint(dir_, *engine, 20, {}, 0, {});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second.value().rebase);
  // Some files changed (profiles/counters moved), but constant files
  // (e.g. an untouched facet) carry over — strictly fewer bytes than a
  // rebase would write.
  EXPECT_GT(second.value().files_written, 0u);
  EXPECT_LE(second.value().files_written, second.value().files_total);
  EXPECT_LT(second.value().bytes_written, second.value().bytes_total);

  auto head = ResolveHead(dir_);
  ASSERT_TRUE(head.ok());
  auto restored = Restore(head.value());
  EXPECT_EQ(Serialized(*engine), Serialized(*restored));
}

TEST_F(WalDeltaCheckpointTest, ShardCleanHintSkipsSerialization) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 2);
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 10, {}, 0, {}).ok());

  DeltaSaveOptions opts;
  opts.shard_clean = {true, true};
  auto stats = SaveDeltaCheckpoint(dir_, *engine, 11, {}, 0, opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().files_written, 0u);

  auto restored = Restore(ResolveHead(dir_).value());
  EXPECT_EQ(Serialized(*engine), Serialized(*restored));
}

TEST_F(WalDeltaCheckpointTest, RebaseEveryBoundsTheChain) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 3);
  DeltaSaveOptions opts;
  opts.rebase_every = 2;

  auto s1 = SaveDeltaCheckpoint(dir_, *engine, 1, {}, 0, opts);
  Feed(engine.get(), events_.size() / 3, events_.size() / 2);
  auto s2 = SaveDeltaCheckpoint(dir_, *engine, 2, {}, 0, opts);
  Feed(engine.get(), events_.size() / 2, events_.size());
  auto s3 = SaveDeltaCheckpoint(dir_, *engine, 3, {}, 0, opts);
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_TRUE(s1.value().rebase);
  EXPECT_FALSE(s2.value().rebase);
  EXPECT_TRUE(s3.value().rebase);  // depth 1 + 1 >= rebase_every
  EXPECT_EQ(s3.value().chain_len, 1u);

  auto restored = Restore(ResolveHead(dir_).value());
  EXPECT_EQ(Serialized(*engine), Serialized(*restored));
}

TEST_F(WalDeltaCheckpointTest, RebaseGarbageCollectsUnreferencedGens) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 2);
  DeltaSaveOptions opts;
  opts.rebase_every = 2;
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 1, {}, 0, opts).ok());
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 2, {}, 0, opts).ok());
  // Gen 3 rebases: gens 1 and 2 are no longer referenced.
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 3, {}, 0, opts).ok());

  EXPECT_FALSE(std::filesystem::exists(DeltaDir(dir_) + "/" + GenDirName(1)));
  EXPECT_FALSE(std::filesystem::exists(DeltaDir(dir_) + "/" + GenDirName(2)));
  EXPECT_TRUE(std::filesystem::exists(DeltaDir(dir_) + "/" + GenDirName(3)));

  auto gens = ListGenerations(dir_);
  ASSERT_TRUE(gens.ok());
  ASSERT_EQ(gens.value().size(), 1u);
  EXPECT_EQ(gens.value().front().gen, 3u);
}

TEST_F(WalDeltaCheckpointTest, MissingCurrentFallsBackToNewestGen) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 2);
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 1, {}, 0, {}).ok());
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 2, {}, 0, {}).ok());

  // Simulated crash between the generation rename and the CURRENT
  // update: the hint file is gone, the generations are durable.
  std::filesystem::remove(DeltaDir(dir_) + "/CURRENT");
  auto head = ResolveHead(dir_);
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head.value().gen, 2u);
}

TEST_F(WalDeltaCheckpointTest, StagingLeftoverIsIgnoredAndSweptByNextSave) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 2);
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 1, {}, 0, {}).ok());

  // Simulated crash mid-staging: a half-written tmp generation.
  const std::string stray = DeltaDir(dir_) + "/gen-" + std::string(18, '0') +
                            "99.tmp";
  std::filesystem::create_directories(stray);
  std::ofstream(stray + "/MANIFEST.tsv") << "garbage\n";

  auto head = ResolveHead(dir_);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head.value().gen, 1u);

  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 2, {}, 0, {}).ok());
  EXPECT_FALSE(std::filesystem::exists(stray));
}

TEST_F(WalDeltaCheckpointTest, TruncatedHeadFileFallsBackToPreviousGen) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 3);
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 1, {}, 0, {}).ok());
  Feed(engine.get(), events_.size() / 3, events_.size());
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 2, {}, 0, {}).ok());

  // Damage a file gen 2 physically owns: size check fails, ResolveHead
  // falls back to gen 1 (still fully loadable).
  auto head = ResolveHead(dir_);
  ASSERT_TRUE(head.ok());
  std::string victim;
  for (const FileRef& f : head.value().files) {
    if (f.src_gen == 2) {
      victim = DeltaDir(dir_) + "/" + GenDirName(2) + "/" + f.rel;
      break;
    }
  }
  ASSERT_FALSE(victim.empty()) << "gen 2 wrote nothing?";
  std::filesystem::resize_file(victim, 1);

  auto fallback = ResolveHead(dir_);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback.value().gen, 1u);
}

TEST_F(WalDeltaCheckpointTest, HashMismatchFailsMaterializeStrictly) {
  auto engine = NewEngine();
  Feed(engine.get(), 0, events_.size() / 2);
  ASSERT_TRUE(SaveDeltaCheckpoint(dir_, *engine, 1, {}, 0, {}).ok());

  auto head = ResolveHead(dir_);
  ASSERT_TRUE(head.ok());
  // Flip one byte, size preserved: the size pre-check passes, the
  // strict hash verification at materialization must not.
  const FileRef& f = head.value().files.front();
  const std::string path = DeltaDir(dir_) + "/" + GenDirName(f.src_gen) +
                           "/" + f.rel;
  std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(io.good());
  char c = 0;
  io.read(&c, 1);
  io.seekp(0);
  c = static_cast<char>(c ^ 0x5a);
  io.write(&c, 1);
  io.close();

  const std::string staging = dir_ + "/restore.tmp";
  const Status st = MaterializeCheckpoint(dir_, head.value(), staging);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST_F(WalDeltaCheckpointTest, ManagerDeltaModeRecoversLikeFullMode) {
  // Two identical streams into two log dirs, one checkpointed full and
  // one delta; both recoveries must yield byte-identical engines.
  const std::string full_dir = dir_ + "/full";
  const std::string delta_dir = dir_ + "/delta";
  const size_t mark = events_.size() / 2;
  const size_t crash = events_.size() * 3 / 4;

  for (int mode = 0; mode < 2; ++mode) {
    const std::string& d = mode == 0 ? full_dir : delta_dir;
    CheckpointOptions copts;
    copts.mode = mode == 0 ? CheckpointMode::kFull : CheckpointMode::kDelta;
    copts.rebase_every = 4;
    CheckpointManager manager(d, copts);
    auto writer = WalWriter::Open(d);
    ASSERT_TRUE(writer.ok());
    WalWriter* w = writer.value().get();
    auto engine = NewEngine(1);
    for (const feed::Ad& ad : workload_.ads) {
      feed::FeedEvent ev;
      ev.kind = feed::EventKind::kAdInsert;
      ev.ad = ad;
      ASSERT_TRUE(w->Append(EncodeEventPayload(ev)).ok());
      (void)engine->InsertAd(ad);
    }
    for (size_t i = 0; i < crash; ++i) {
      ASSERT_TRUE(w->Append(EncodeEventPayload(events_[i])).ok());
      engine->OnEvent(events_[i]);
      if (i == mark / 2 || i == mark) {
        ASSERT_TRUE(manager.Checkpoint(*engine, w, events_[i].time).ok());
      }
    }
  }  // crash both

  CheckpointOptions delta_opts;
  delta_opts.mode = CheckpointMode::kDelta;
  CheckpointManager full_mgr(full_dir);
  CheckpointManager delta_mgr(delta_dir, delta_opts);
  auto full_engine = NewEngine(1);
  auto delta_engine = NewEngine(1);
  auto full_rec = full_mgr.Recover(full_engine.get());
  auto delta_rec = delta_mgr.Recover(delta_engine.get());
  ASSERT_TRUE(full_rec.ok()) << full_rec.status().ToString();
  ASSERT_TRUE(delta_rec.ok()) << delta_rec.status().ToString();
  EXPECT_TRUE(full_rec.value().from_checkpoint);
  EXPECT_FALSE(full_rec.value().from_delta);
  EXPECT_TRUE(delta_rec.value().from_checkpoint);
  EXPECT_TRUE(delta_rec.value().from_delta);
  EXPECT_GE(delta_rec.value().delta_chain_len, 1u);
  EXPECT_EQ(full_rec.value().checkpoint_seqno,
            delta_rec.value().checkpoint_seqno);
  EXPECT_EQ(full_rec.value().next_seqno, delta_rec.value().next_seqno);

  EXPECT_EQ(Serialized(*full_engine), Serialized(*delta_engine));

  // Save-side metric families are populated on the delta manager that
  // streamed (re-create one to checkpoint once and check).
  CheckpointManager fresh(delta_dir, delta_opts);
  auto probe_writer = WalWriter::Open(delta_dir, {},
                                      delta_rec.value().next_seqno);
  ASSERT_TRUE(probe_writer.ok());
  ASSERT_TRUE(
      fresh.Checkpoint(*delta_engine, probe_writer.value().get(), 0).ok());
  const obs::MetricsSnapshot snap = fresh.metrics().Snapshot();
  EXPECT_EQ(snap.counters.at("checkpoint.saves"), 1u);
  EXPECT_TRUE(snap.gauges.count("checkpoint.delta_chain_len"));
  EXPECT_TRUE(snap.timers.count("checkpoint.save_ms"));
}

}  // namespace
}  // namespace adrec::wal::delta
