#include "core/semantic.h"

#include <gtest/gtest.h>

namespace adrec::core {
namespace {

class SemanticTest : public ::testing::Test {
 protected:
  SemanticTest()
      : kb_(annotate::BuildDemoKnowledgeBase(&analyzer_)),
        semantic_(kb_.get()) {}

  text::Analyzer analyzer_;
  std::unique_ptr<annotate::KnowledgeBase> kb_;
  SemanticRepresentation semantic_;
};

TEST_F(SemanticTest, ProcessTweetCarriesIdentityAndAnnotations) {
  feed::Tweet tweet;
  tweet.user = UserId(9);
  tweet.time = 12345;
  tweet.text = "volleyball match and a coffee afterwards";
  AnnotatedTweet at = semantic_.ProcessTweet(tweet);
  EXPECT_EQ(at.user, UserId(9));
  EXPECT_EQ(at.time, 12345);
  ASSERT_GE(at.annotations.size(), 2u);
  bool volleyball = false, coffee = false;
  for (const auto& a : at.annotations) {
    volleyball |= a.uri.ends_with("/Volleyball");
    coffee |= a.uri.ends_with("/Coffee");
  }
  EXPECT_TRUE(volleyball);
  EXPECT_TRUE(coffee);
}

TEST_F(SemanticTest, ProcessAdBuildsContext) {
  feed::Ad ad;
  ad.id = AdId(4);
  ad.copy = "introducing adidas volleyball gear";
  ad.target_locations = {LocationId(2), LocationId(5)};
  ad.target_slots = {SlotId(1)};
  ad.bid = 2.0;
  AdContext ctx = semantic_.ProcessAd(ad);
  EXPECT_EQ(ctx.id, AdId(4));
  EXPECT_EQ(ctx.locations.size(), 2u);
  EXPECT_EQ(ctx.slots.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.bid, 2.0);
  // The topic vector has positive weights on the mentioned entities.
  auto adidas = kb_->FindByUri("http://dbpedia.org/resource/Adidas");
  auto volleyball = kb_->FindByUri("http://dbpedia.org/resource/Volleyball");
  ASSERT_TRUE(adidas.ok());
  ASSERT_TRUE(volleyball.ok());
  EXPECT_GT(ctx.topics.Get(adidas.value().value), 0.0);
  EXPECT_GT(ctx.topics.Get(volleyball.value().value), 0.0);
}

TEST_F(SemanticTest, EmptyTextsYieldEmptyRepresentations) {
  feed::Tweet tweet;
  tweet.user = UserId(0);
  tweet.text = "";
  EXPECT_TRUE(semantic_.ProcessTweet(tweet).annotations.empty());
  feed::Ad ad;
  ad.copy = "nothing matches here zzz";
  EXPECT_TRUE(semantic_.ProcessAd(ad).topics.empty());
}

TEST_F(SemanticTest, AnnotatorOptionsAreForwarded) {
  annotate::AnnotatorOptions opts;
  opts.min_score = 0.99;  // drop everything
  SemanticRepresentation strict(kb_.get(), opts);
  feed::Tweet tweet;
  tweet.text = "nation team";
  EXPECT_TRUE(strict.ProcessTweet(tweet).annotations.empty());
}

}  // namespace
}  // namespace adrec::core
