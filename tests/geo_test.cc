#include <gtest/gtest.h>
#include <set>

#include "geo/geohash.h"
#include "geo/grid_index.h"
#include "geo/places.h"
#include "geo/point.h"

namespace adrec::geo {
namespace {

// Reference points.
const GeoPoint kRome{41.9028, 12.4964};
const GeoPoint kMilan{45.4642, 9.1900};
const GeoPoint kNaples{40.8518, 14.2681};

TEST(HaversineTest, ZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(HaversineMeters(kRome, kRome), 0.0);
}

TEST(HaversineTest, KnownDistances) {
  // Rome-Milan great-circle distance is ~477 km.
  EXPECT_NEAR(HaversineMeters(kRome, kMilan), 477000, 5000);
  // Symmetric.
  EXPECT_DOUBLE_EQ(HaversineMeters(kRome, kMilan),
                   HaversineMeters(kMilan, kRome));
}

TEST(HaversineTest, TriangleInequalityHolds) {
  const double rm = HaversineMeters(kRome, kMilan);
  const double rn = HaversineMeters(kRome, kNaples);
  const double mn = HaversineMeters(kMilan, kNaples);
  EXPECT_LE(rm, rn + mn + 1e-6);
  EXPECT_LE(rn, rm + mn + 1e-6);
}

TEST(PointTest, Validation) {
  EXPECT_TRUE(IsValidPoint(kRome));
  EXPECT_FALSE(IsValidPoint({91.0, 0.0}));
  EXPECT_FALSE(IsValidPoint({0.0, -181.0}));
  EXPECT_TRUE(IsValidPoint({-90.0, 180.0}));
}

TEST(GeohashTest, KnownEncoding) {
  // Well-known reference: (57.64911, 10.40744) -> "u4pruydqqvj".
  EXPECT_EQ(GeohashEncode({57.64911, 10.40744}, 11), "u4pruydqqvj");
}

TEST(GeohashTest, RoundTripWithinCellError) {
  for (const GeoPoint& p : {kRome, kMilan, kNaples, GeoPoint{-33.86, 151.21}}) {
    auto decoded = GeohashDecode(GeohashEncode(p, 9));
    ASSERT_TRUE(decoded.ok());
    EXPECT_NEAR(decoded.value().lat, p.lat, 1e-3);
    EXPECT_NEAR(decoded.value().lon, p.lon, 1e-3);
  }
}

TEST(GeohashTest, PrefixContainment) {
  const std::string h9 = GeohashEncode(kRome, 9);
  const std::string h5 = GeohashEncode(kRome, 5);
  EXPECT_EQ(h9.substr(0, 5), h5);
}

TEST(GeohashTest, PrecisionClamped) {
  EXPECT_EQ(GeohashEncode(kRome, 0).size(), 1u);
  EXPECT_EQ(GeohashEncode(kRome, 99).size(), 12u);
}

TEST(GeohashTest, DecodeRejectsBadInput) {
  EXPECT_FALSE(GeohashDecode("").ok());
  EXPECT_FALSE(GeohashDecode("abc!").ok());
  EXPECT_FALSE(GeohashDecode("ai").ok());  // 'a' and 'i' not in base32 set
}

TEST(GeohashTest, BoundsContainTheirCenter) {
  const std::string h = GeohashEncode(kRome, 7);
  auto bounds = GeohashDecodeBounds(h);
  ASSERT_TRUE(bounds.ok());
  const auto& b = bounds.value();
  EXPECT_LE(b.lat_lo, kRome.lat);
  EXPECT_GE(b.lat_hi, kRome.lat);
  EXPECT_LE(b.lon_lo, kRome.lon);
  EXPECT_GE(b.lon_hi, kRome.lon);
  EXPECT_FALSE(GeohashDecodeBounds("").ok());
}

TEST(GeohashTest, NeighborsAreDistinctAdjacentCells) {
  const std::string h = GeohashEncode(kRome, 6);
  auto neighbors = GeohashNeighbors(h);
  ASSERT_TRUE(neighbors.ok());
  ASSERT_EQ(neighbors.value().size(), 8u);
  std::set<std::string> unique(neighbors.value().begin(),
                               neighbors.value().end());
  EXPECT_EQ(unique.size(), 8u);       // all distinct away from the poles
  EXPECT_EQ(unique.count(h), 0u);     // the cell itself is not a neighbor
  for (const std::string& n : neighbors.value()) {
    EXPECT_EQ(n.size(), h.size());
    // Each neighbor's center is within ~2 cell diagonals of the center.
    auto c = GeohashDecode(h);
    auto cn = GeohashDecode(n);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(cn.ok());
    EXPECT_LT(HaversineMeters(c.value(), cn.value()), 3000.0);
  }
}

TEST(GeohashTest, NeighborhoodIsSymmetric) {
  // If b is the east neighbor of a, then a is the west neighbor of b.
  const std::string a = GeohashEncode(kMilan, 5);
  auto na = GeohashNeighbors(a);
  ASSERT_TRUE(na.ok());
  const std::string east = na.value()[2];  // E
  auto nb = GeohashNeighbors(east);
  ASSERT_TRUE(nb.ok());
  EXPECT_EQ(nb.value()[6], a);  // W
}

TEST(GeohashTest, NeighborsRejectBadInput) {
  EXPECT_FALSE(GeohashNeighbors("").ok());
  EXPECT_FALSE(GeohashNeighbors("a!").ok());
}

TEST(GridIndexTest, InsertAndRadiusQuery) {
  GridIndex grid(0.05);
  ASSERT_TRUE(grid.Insert(1, kRome).ok());
  ASSERT_TRUE(grid.Insert(2, kMilan).ok());
  ASSERT_TRUE(grid.Insert(3, kNaples).ok());
  EXPECT_EQ(grid.size(), 3u);

  // 250 km around Rome: Rome and Naples (188 km), not Milan (477 km).
  auto hits = grid.QueryRadius(kRome, 250000);
  EXPECT_EQ(hits, (std::vector<uint32_t>{1, 3}));
}

TEST(GridIndexTest, ResultsSortedByDistance) {
  GridIndex grid(0.05);
  ASSERT_TRUE(grid.Insert(10, kNaples).ok());
  ASSERT_TRUE(grid.Insert(20, kRome).ok());
  ASSERT_TRUE(grid.Insert(30, kMilan).ok());
  auto hits = grid.QueryRadius(kRome, 1000000);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 20u);
  EXPECT_EQ(hits[1], 10u);
  EXPECT_EQ(hits[2], 30u);
}

TEST(GridIndexTest, RemoveWorksAndReportsMissing) {
  GridIndex grid;
  ASSERT_TRUE(grid.Insert(1, kRome).ok());
  EXPECT_TRUE(grid.Remove(1, kRome).ok());
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_EQ(grid.Remove(1, kRome).code(), StatusCode::kNotFound);
  EXPECT_EQ(grid.Remove(9, kMilan).code(), StatusCode::kNotFound);
}

TEST(GridIndexTest, RejectsInvalidPoint) {
  GridIndex grid;
  EXPECT_EQ(grid.Insert(1, {95.0, 0.0}).code(), StatusCode::kInvalidArgument);
}

TEST(GridIndexTest, EmptyQuery) {
  GridIndex grid;
  EXPECT_TRUE(grid.QueryRadius(kRome, 1000).empty());
}

TEST(PlaceRegistryTest, AddFindSnap) {
  PlaceRegistry places;
  auto rome = places.AddPlace("rome_center", kRome);
  auto milan = places.AddPlace("milan_duomo", kMilan);
  ASSERT_TRUE(rome.ok());
  ASSERT_TRUE(milan.ok());
  EXPECT_EQ(places.size(), 2u);
  EXPECT_EQ(places.place(rome.value()).name, "rome_center");

  auto found = places.FindByName("milan_duomo");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), milan.value());
  EXPECT_FALSE(places.FindByName("venice").ok());

  // A GPS fix 200 m from the Rome point snaps to rome_center.
  GeoPoint nearby{41.9041, 12.4980};
  auto snapped = places.Nearest(nearby, 500);
  ASSERT_TRUE(snapped.ok());
  EXPECT_EQ(snapped.value(), rome.value());

  // Nothing within 1 km of the open sea.
  EXPECT_FALSE(places.Nearest({40.0, 6.0}, 1000).ok());
}

TEST(PlaceRegistryTest, DuplicateNameRejected) {
  PlaceRegistry places;
  ASSERT_TRUE(places.AddPlace("x", kRome).ok());
  EXPECT_EQ(places.AddPlace("x", kMilan).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(PlaceRegistryTest, WithinReturnsNearestFirst) {
  PlaceRegistry places;
  ASSERT_TRUE(places.AddPlace("a", kRome).ok());
  ASSERT_TRUE(places.AddPlace("b", kNaples).ok());
  auto within = places.Within(kRome, 300000);
  ASSERT_EQ(within.size(), 2u);
  EXPECT_EQ(places.place(within[0]).name, "a");
}

}  // namespace
}  // namespace adrec::geo
