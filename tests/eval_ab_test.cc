#include "eval/ab_test.h"

#include <gtest/gtest.h>

namespace adrec::eval {
namespace {

TEST(AbTestTest, IdenticalArmsNotSignificant) {
  ArmStats a{10000, 300};
  AbResult r = TwoProportionZTest(a, a);
  EXPECT_DOUBLE_EQ(r.ctr_a, 0.03);
  EXPECT_DOUBLE_EQ(r.lift, 0.0);
  EXPECT_NEAR(r.z, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
  EXPECT_FALSE(r.significant_95);
}

TEST(AbTestTest, LargeLiftAtVolumeIsSignificant) {
  ArmStats control{10000, 300};    // 3%
  ArmStats treatment{10000, 450};  // 4.5%
  AbResult r = TwoProportionZTest(control, treatment);
  EXPECT_NEAR(r.lift, 0.5, 1e-9);
  EXPECT_GT(r.z, 3.0);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_TRUE(r.significant_95);
}

TEST(AbTestTest, SmallSampleIsNotSignificant) {
  ArmStats control{50, 2};
  ArmStats treatment{50, 4};  // 2x lift but tiny n
  AbResult r = TwoProportionZTest(control, treatment);
  EXPECT_FALSE(r.significant_95);
}

TEST(AbTestTest, DirectionOfZ) {
  ArmStats control{10000, 500};
  ArmStats worse{10000, 300};
  AbResult r = TwoProportionZTest(control, worse);
  EXPECT_LT(r.z, 0.0);
  EXPECT_LT(r.lift, 0.0);
}

TEST(AbTestTest, DegenerateInputs) {
  AbResult empty = TwoProportionZTest({}, {});
  EXPECT_DOUBLE_EQ(empty.p_value, 1.0);
  EXPECT_FALSE(empty.significant_95);
  // Zero pooled variance: nobody ever clicks.
  AbResult novar = TwoProportionZTest({100, 0}, {100, 0});
  EXPECT_DOUBLE_EQ(novar.p_value, 1.0);
  // One empty arm.
  AbResult onearm = TwoProportionZTest({100, 10}, {});
  EXPECT_DOUBLE_EQ(onearm.p_value, 1.0);
}

TEST(AbTestTest, SymmetryOfPValue) {
  ArmStats a{5000, 200};
  ArmStats b{5000, 260};
  AbResult ab = TwoProportionZTest(a, b);
  AbResult ba = TwoProportionZTest(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.z, -ba.z, 1e-12);
}

}  // namespace
}  // namespace adrec::eval
