#include "serve/protocol.h"

#include <gtest/gtest.h>

namespace adrec::serve {
namespace {

TEST(ServeProtocolTest, ParsesTweet) {
  auto req = ParseRequest("tweet\t4\t86400\tcoffee and music");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().verb, Verb::kTweet);
  EXPECT_EQ(req.value().tweet.user, UserId(4));
  EXPECT_EQ(req.value().tweet.time, 86400);
  EXPECT_EQ(req.value().tweet.text, "coffee and music");
}

TEST(ServeProtocolTest, TweetFormatterRoundTrips) {
  feed::Tweet t;
  t.user = UserId(9);
  t.time = 1234;
  t.text = "brunch at the park";
  auto req = ParseRequest(FormatTweetCmd(t));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().tweet.user, t.user);
  EXPECT_EQ(req.value().tweet.time, t.time);
  EXPECT_EQ(req.value().tweet.text, t.text);
}

TEST(ServeProtocolTest, ParsesCheckIn) {
  auto req = ParseRequest("checkin\t4\t86500\t7");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().verb, Verb::kCheckIn);
  EXPECT_EQ(req.value().check_in.user, UserId(4));
  EXPECT_EQ(req.value().check_in.location, LocationId(7));
}

TEST(ServeProtocolTest, AdRoundTripsThroughWire) {
  feed::Ad ad;
  ad.id = AdId(12);
  ad.campaign = CampaignId(3);
  ad.budget_impressions = 100;
  ad.bid = 1.25;
  ad.target_locations = {LocationId(1), LocationId(5)};
  ad.target_slots = {SlotId(2)};
  ad.copy = "fresh coffee downtown";
  auto req = ParseRequest(FormatAdPutCmd(ad));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().verb, Verb::kAdPut);
  EXPECT_EQ(req.value().ad.id, ad.id);
  EXPECT_EQ(req.value().ad.campaign, ad.campaign);
  EXPECT_EQ(req.value().ad.budget_impressions, ad.budget_impressions);
  EXPECT_DOUBLE_EQ(req.value().ad.bid, ad.bid);
  EXPECT_EQ(req.value().ad.target_locations, ad.target_locations);
  EXPECT_EQ(req.value().ad.target_slots, ad.target_slots);
  EXPECT_EQ(req.value().ad.copy, ad.copy);
}

TEST(ServeProtocolTest, ParsesTopKVariants) {
  auto bare = ParseRequest("topk\t4\t3");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().verb, Verb::kTopK);
  EXPECT_EQ(bare.value().tweet.user, UserId(4));
  EXPECT_EQ(bare.value().k, 3u);
  EXPECT_FALSE(bare.value().has_time);

  auto timed = ParseRequest("topk\t4\t3\t7200");
  ASSERT_TRUE(timed.ok());
  EXPECT_TRUE(timed.value().has_time);
  EXPECT_EQ(timed.value().tweet.time, 7200);
  EXPECT_TRUE(timed.value().tweet.text.empty());

  // Text after the time is the free-text tail (may contain spaces).
  auto texted = ParseRequest("topk\t4\t3\t7200\tlive jazz tonight");
  ASSERT_TRUE(texted.ok());
  EXPECT_EQ(texted.value().tweet.text, "live jazz tonight");
}

TEST(ServeProtocolTest, RejectsBadTopK) {
  EXPECT_FALSE(ParseRequest("topk").ok());
  EXPECT_FALSE(ParseRequest("topk\t4").ok());
  EXPECT_FALSE(ParseRequest("topk\t4\t0").ok());      // k out of range
  EXPECT_FALSE(ParseRequest("topk\t4\t1001").ok());   // k out of range
  EXPECT_FALSE(ParseRequest("topk\t4\t3\t-5").ok());  // negative time
  EXPECT_FALSE(ParseRequest("topk\tx\t3").ok());      // bad user
}

TEST(ServeProtocolTest, ParsesAdminVerbs) {
  EXPECT_EQ(ParseRequest("stats").value().verb, Verb::kStats);
  EXPECT_EQ(ParseRequest("metrics").value().verb, Verb::kMetrics);
  EXPECT_EQ(ParseRequest("ping").value().verb, Verb::kPing);
  EXPECT_EQ(ParseRequest("quit").value().verb, Verb::kQuit);

  auto def = ParseRequest("analyze");
  ASSERT_TRUE(def.ok());
  EXPECT_LT(def.value().alpha, 0.0);  // default-alpha sentinel

  auto explicit_alpha = ParseRequest("analyze\t0.45");
  ASSERT_TRUE(explicit_alpha.ok());
  EXPECT_DOUBLE_EQ(explicit_alpha.value().alpha, 0.45);

  auto snap = ParseRequest("snapshot\t/tmp/snap");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().dir, "/tmp/snap");
}

TEST(ServeProtocolTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("frobnicate").ok());
  EXPECT_FALSE(ParseRequest("tweet").ok());             // missing payload
  EXPECT_FALSE(ParseRequest("tweet\tnotanum\t1\tx").ok());
  EXPECT_FALSE(ParseRequest("checkin\t1\t2").ok());     // missing location
  EXPECT_FALSE(ParseRequest("addel").ok());
  EXPECT_FALSE(ParseRequest("addel\t1\t2").ok());       // extra field
  EXPECT_FALSE(ParseRequest("analyze\t1.5").ok());      // alpha > 1
  EXPECT_FALSE(ParseRequest("analyze\t-0.1").ok());
  EXPECT_FALSE(ParseRequest("snapshot").ok());
  EXPECT_FALSE(ParseRequest("stats\textra").ok());      // no-arg verbs
  EXPECT_FALSE(ParseRequest("ping\textra").ok());
  EXPECT_FALSE(ParseRequest("quit\textra").ok());
}

TEST(ServeProtocolTest, VerbNamesMatchWireTokens) {
  for (size_t v = 0; v < kNumVerbs; ++v) {
    const Verb verb = static_cast<Verb>(v);
    std::string line(VerbName(verb));
    // Give payload-carrying verbs a minimal valid payload.
    if (verb == Verb::kTweet) line += "\t1\t0\tx";
    if (verb == Verb::kCheckIn) line += "\t1\t0\t2";
    if (verb == Verb::kAdPut) line += "\t1\t1\t10\t1.0\t\t\tx";
    if (verb == Verb::kAdDel || verb == Verb::kMatch) line += "\t1";
    if (verb == Verb::kTopK) line += "\t1\t3";
    if (verb == Verb::kSnapshot) line += "\t/tmp/x";
    if (verb == Verb::kRepl) line += "\t0";
    auto req = ParseRequest(line);
    ASSERT_TRUE(req.ok()) << line << ": " << req.status().ToString();
    EXPECT_EQ(req.value().verb, verb);
  }
}

TEST(ServeProtocolTest, TopKFormatterSanitizesText) {
  const std::string cmd =
      FormatTopKCmd(UserId(1), 3, 100, "tabs\there\nand newlines");
  auto req = ParseRequest(cmd);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().tweet.text, "tabs here and newlines");
}

}  // namespace
}  // namespace adrec::serve
