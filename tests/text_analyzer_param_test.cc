// Parameterized sweeps over analyzer/tokenizer configurations: for every
// option combination, the lexical pipeline must uphold its basic
// contracts (determinism, vocabulary consistency, stopword and length
// policies).

#include <gtest/gtest.h>

#include "text/analyzer.h"

namespace adrec::text {
namespace {

struct AnalyzerCase {
  bool remove_stopwords;
  bool stem;
  bool keep_hashtags;
  bool keep_mentions;
  bool keep_numbers;
};

class AnalyzerParamTest : public ::testing::TestWithParam<int> {
 protected:
  AnalyzerCase Case() const {
    const int bits = GetParam();
    return AnalyzerCase{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                        (bits & 8) != 0, (bits & 16) != 0};
  }

  AnalyzerOptions Options() const {
    const AnalyzerCase c = Case();
    AnalyzerOptions opts;
    opts.remove_stopwords = c.remove_stopwords;
    opts.stem = c.stem;
    opts.tokenizer.keep_hashtags = c.keep_hashtags;
    opts.tokenizer.keep_mentions = c.keep_mentions;
    opts.tokenizer.keep_numbers = c.keep_numbers;
    return opts;
  }
};

constexpr const char* kCorpus[] = {
    "The nation's best volleyball returns tomorrow night!",
    "thanks @coach for the #win 21 points",
    "RT this if you love pizza and coffee http://t.co/x",
    "running Running RUNNING runs ran",
    "",
    "a b c",
};

TEST_P(AnalyzerParamTest, DeterministicAcrossInstances) {
  Analyzer a(Options());
  Analyzer b(Options());
  for (const char* text : kCorpus) {
    EXPECT_EQ(a.AnalyzeToStrings(text), b.AnalyzeToStrings(text)) << text;
  }
}

TEST_P(AnalyzerParamTest, InternedIdsRoundTrip) {
  Analyzer analyzer(Options());
  for (const char* text : kCorpus) {
    const auto ids = analyzer.Analyze(text);
    const auto strings = analyzer.AnalyzeToStrings(text);
    ASSERT_EQ(ids.size(), strings.size()) << text;
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(analyzer.vocabulary().TermOf(ids[i]), strings[i]);
    }
  }
}

TEST_P(AnalyzerParamTest, ReadOnlyNeverGrowsVocabulary) {
  Analyzer analyzer(Options());
  analyzer.Analyze(kCorpus[0]);
  const size_t size_before = analyzer.vocabulary().size();
  for (const char* text : kCorpus) {
    const auto ids = analyzer.AnalyzeReadOnly(text);
    for (TermId id : ids) EXPECT_LT(id, size_before);
  }
  EXPECT_EQ(analyzer.vocabulary().size(), size_before);
}

TEST_P(AnalyzerParamTest, StopwordPolicyHonoured) {
  Analyzer analyzer(Options());
  const auto terms = analyzer.AnalyzeToStrings("the and of volleyball");
  const bool has_the =
      std::find(terms.begin(), terms.end(), "the") != terms.end();
  EXPECT_EQ(has_the, !Case().remove_stopwords);
}

TEST_P(AnalyzerParamTest, StemmingPolicyHonoured) {
  Analyzer analyzer(Options());
  const auto a = analyzer.AnalyzeToStrings("running");
  const auto b = analyzer.AnalyzeToStrings("runs");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  if (Case().stem) {
    EXPECT_EQ(a[0], b[0]);  // variants collapse
  } else {
    EXPECT_EQ(a[0], "running");
    EXPECT_EQ(b[0], "runs");
  }
}

TEST_P(AnalyzerParamTest, TokenKindPoliciesHonoured) {
  Analyzer analyzer(Options());
  const auto terms = analyzer.AnalyzeToStrings("@coach #win 21");
  auto contains = [&](const char* w) {
    return std::find(terms.begin(), terms.end(),
                     Case().stem ? PorterStem(w) : std::string(w)) !=
           terms.end();
  };
  EXPECT_EQ(contains("coach"), Case().keep_mentions);
  EXPECT_EQ(contains("win"), Case().keep_hashtags);
  EXPECT_EQ(contains("21"), Case().keep_numbers);
}

INSTANTIATE_TEST_SUITE_P(AllOptionCombos, AnalyzerParamTest,
                         ::testing::Range(0, 32));

}  // namespace
}  // namespace adrec::text
