#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "feed/workload.h"
#include "testkit/differential.h"
#include "testkit/fault_injector.h"

namespace adrec::testkit {
namespace {

std::string FreshDir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("adrec_snapprop_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Property: for randomized workloads and arbitrary snapshot points, a
/// save -> restart -> load -> window-replay -> continue execution is
/// indistinguishable from one that never restarted — identical probes,
/// counters, TfcaStats and match lists, with frequency-cap state carried
/// across the restart.
TEST(SnapshotProperty, RestartMidStreamIsInvisible) {
  const std::string dir = FreshDir();
  const double fractions[] = {0.2, 0.5, 0.8};

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    feed::WorkloadOptions opts;
    opts.seed = 5000 + seed;
    opts.num_users = 6 + static_cast<size_t>(seed % 5);
    opts.num_places = 4 + static_cast<size_t>(seed % 4);
    opts.num_ads = 2 + static_cast<size_t>(seed % 3);
    opts.days = 2 + static_cast<int>(seed % 2);
    opts.tweets_per_user_day = 3.0;
    const feed::Workload workload = feed::GenerateWorkload(opts);
    const std::vector<feed::FeedEvent> events =
        SanitizeTrace(workload.MergedEvents());

    for (double fraction : fractions) {
      DifferentialOptions diff;
      diff.snapshot_dir = dir;
      diff.snapshot_fraction = fraction;
      diff.run_sharded = false;
      // A tight frequency cap makes the capper state load-bearing: if the
      // restart lost the impression histories, the restored engine would
      // serve ads the uninterrupted engine suppresses.
      diff.engine.frequency_cap.max_impressions = 2;
      const DifferentialChecker checker(workload.kb, workload.slots, diff);

      const RunOutcome uninterrupted =
          checker.RunSingle(workload.ads, events);
      const RunOutcome restarted =
          checker.RunSnapshotRestore(workload.ads, events);
      const Divergence d = DifferentialChecker::CompareOutcomes(
          uninterrupted, restarted, CompareOptions{}, "uninterrupted",
          "restarted");
      ASSERT_FALSE(d) << "seed " << seed << " fraction " << fraction << ": "
                      << d.detail;
    }
  }
  std::filesystem::remove_all(dir);
}

/// The restart must also be invisible on fault-injected (then sanitized)
/// traces — the regime the differential sweep runs in CI.
TEST(SnapshotProperty, RestartIsInvisibleOnInjectedTraces) {
  const std::string dir = FreshDir();
  feed::WorkloadOptions opts;
  opts.seed = 606;
  opts.num_users = 8;
  opts.num_places = 6;
  opts.num_ads = 3;
  opts.days = 2;
  const feed::Workload workload = feed::GenerateWorkload(opts);
  const std::vector<feed::FeedEvent> pristine = workload.MergedEvents();

  DifferentialOptions diff;
  diff.snapshot_dir = dir;
  diff.run_sharded = false;
  const DifferentialChecker checker(workload.kb, workload.slots, diff);

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const std::vector<feed::FeedEvent> events =
        SanitizeTrace(InjectFaults(pristine, DefaultFaultMix(seed)));
    const RunOutcome uninterrupted = checker.RunSingle(workload.ads, events);
    const RunOutcome restarted =
        checker.RunSnapshotRestore(workload.ads, events);
    const Divergence d = DifferentialChecker::CompareOutcomes(
        uninterrupted, restarted, CompareOptions{}, "uninterrupted",
        "restarted");
    ASSERT_FALSE(d) << "fault seed " << seed << ": " << d.detail;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace adrec::testkit
