#include "testkit/differential.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "feed/workload.h"
#include "testkit/fault_injector.h"

namespace adrec::testkit {
namespace {

std::string FreshDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("adrec_diff_") + tag + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// The differential CI sweep (ISSUE acceptance): >= 200 seeded injected
/// traces through single / sharded / snapshot-restored engines with zero
/// divergence. 8 base workloads x 25 fault seeds = 200 traces; every
/// trace is injected, sanitized (the robust-ingest front end), then run
/// through all three variants.
TEST(DifferentialSweep, TwoHundredInjectedTracesZeroDivergence) {
  const std::string dir = FreshDir("sweep");
  constexpr uint64_t kBaseWorkloads = 8;
  constexpr uint64_t kFaultSeedsPerWorkload = 25;
  size_t traces = 0;

  for (uint64_t w = 0; w < kBaseWorkloads; ++w) {
    feed::WorkloadOptions opts;
    opts.seed = 1000 + w;
    opts.num_users = 6 + static_cast<size_t>(w % 4);
    opts.num_places = 5 + static_cast<size_t>(w % 3);
    opts.num_ads = 2 + static_cast<size_t>(w % 2);
    opts.days = 2;
    opts.tweets_per_user_day = 3.0;
    opts.checkins_per_user_day = 1.5;
    const feed::Workload workload = feed::GenerateWorkload(opts);
    const std::vector<feed::FeedEvent> pristine = workload.MergedEvents();

    DifferentialOptions diff;
    diff.snapshot_dir = dir;
    diff.num_shards = 2 + static_cast<size_t>(w % 3);
    diff.snapshot_fraction = 0.3 + 0.05 * static_cast<double>(w);
    diff.probe_every = 2;
    const DifferentialChecker checker(workload.kb, workload.slots, diff);

    for (uint64_t f = 0; f < kFaultSeedsPerWorkload; ++f) {
      const uint64_t fault_seed = w * 100 + f + 1;
      // Alternate the full fault mix (drops + skew included) with the
      // recoverable-only mix, so both regimes stay covered.
      const FaultOptions faults = (f % 2 == 0)
                                      ? DefaultFaultMix(fault_seed)
                                      : RecoverableFaultMix(fault_seed);
      const std::vector<feed::FeedEvent> sanitized =
          SanitizeTrace(InjectFaults(pristine, faults, nullptr));
      ASSERT_FALSE(sanitized.empty());

      const Divergence d = checker.Check(workload.ads, sanitized);
      ASSERT_FALSE(d) << "workload " << w << " fault seed " << fault_seed
                      << " diverged at event " << d.event_index << ": "
                      << d.detail;
      ++traces;
    }
  }
  EXPECT_GE(traces, 200u);
  std::filesystem::remove_all(dir);
}

/// Recovery differential: for *recoverable* fault mixes (reorder +
/// duplicate + malform), the sanitized injected trace must produce an
/// outcome identical to the sanitized pristine trace — the repair
/// pipeline loses nothing.
TEST(DifferentialSweep, SanitizedInjectedTraceMatchesPristineRun) {
  feed::WorkloadOptions opts;
  opts.seed = 2024;
  opts.num_users = 8;
  opts.num_places = 6;
  opts.num_ads = 3;
  opts.days = 3;
  const feed::Workload workload = feed::GenerateWorkload(opts);
  const std::vector<feed::FeedEvent> pristine = workload.MergedEvents();

  DifferentialOptions diff;
  diff.run_sharded = false;
  diff.run_snapshot = false;
  const DifferentialChecker checker(workload.kb, workload.slots, diff);
  const RunOutcome reference =
      checker.RunSingle(workload.ads, SanitizeTrace(pristine));

  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<feed::FeedEvent> repaired =
        SanitizeTrace(InjectFaults(pristine, RecoverableFaultMix(seed)));
    const RunOutcome outcome = checker.RunSingle(workload.ads, repaired);
    const Divergence d = DifferentialChecker::CompareOutcomes(
        reference, outcome, CompareOptions{}, "pristine", "repaired");
    ASSERT_FALSE(d) << "seed " << seed << ": " << d.detail;
  }
}

/// The checker must actually be able to see a divergence: feed the
/// variants *different* traces and expect a report naming the first
/// divergent event.
TEST(DifferentialSweep, CheckerReportsFirstDivergentEvent) {
  feed::WorkloadOptions opts;
  opts.seed = 77;
  opts.num_users = 6;
  opts.num_places = 5;
  opts.num_ads = 2;
  opts.days = 2;
  const feed::Workload workload = feed::GenerateWorkload(opts);
  const std::vector<feed::FeedEvent> events =
      SanitizeTrace(workload.MergedEvents());
  ASSERT_GT(events.size(), 10u);

  DifferentialOptions diff;
  diff.run_sharded = false;
  diff.run_snapshot = false;
  const DifferentialChecker checker(workload.kb, workload.slots, diff);

  const RunOutcome a = checker.RunSingle(workload.ads, events);
  // Drop one mid-trace event: the truncated run must diverge, and the
  // report must point at (or before) the index where traces differ.
  std::vector<feed::FeedEvent> truncated = events;
  const size_t removed = truncated.size() / 2;
  truncated.erase(truncated.begin() + static_cast<ptrdiff_t>(removed));
  const RunOutcome b = checker.RunSingle(workload.ads, truncated);

  const Divergence d = DifferentialChecker::CompareOutcomes(
      a, b, CompareOptions{}, "full", "truncated");
  ASSERT_TRUE(d);
  EXPECT_FALSE(d.detail.empty());
}

}  // namespace
}  // namespace adrec::testkit
