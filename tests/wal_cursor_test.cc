// wal::ReadFrames — the replication cursor reader: raw frame batches by
// seqno range, opaque resume hints, retention and torn-tail semantics.

#include "wal/wal.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "wal/record.h"

namespace adrec::wal {
namespace {

class WalCursorTest : public ::testing::Test {
 protected:
  WalCursorTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("adrec_walcursor_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  ~WalCursorTest() override { std::filesystem::remove_all(dir_); }

  /// Writes `n` records over small segments (forcing rotations).
  std::unique_ptr<WalWriter> WriteLog(int n, size_t segment_bytes = 256) {
    WalOptions options;
    options.segment_bytes = segment_bytes;
    auto writer = WalWriter::Open(dir_, options);
    EXPECT_TRUE(writer.ok()) << writer.status().ToString();
    for (int i = 1; i <= n; ++i) {
      EXPECT_TRUE(writer.value()
                      ->Append("tweet\t1\t" + std::to_string(i) + "\tpayload")
                      .ok());
    }
    return std::move(writer).value();
  }

  /// Decodes a raw frame blob back into its seqnos.
  static std::vector<uint64_t> Seqnos(const std::string& frames) {
    std::vector<uint64_t> seqnos;
    size_t pos = 0;
    while (pos < frames.size()) {
      const size_t nl = frames.find('\n', pos);
      EXPECT_NE(nl, std::string::npos);
      auto record = DecodeFrame(std::string_view(frames).substr(
          pos, nl - pos));
      EXPECT_TRUE(record.ok()) << record.status().ToString();
      seqnos.push_back(record.value().seqno);
      pos = nl + 1;
    }
    return seqnos;
  }

  std::string dir_;
};

TEST_F(WalCursorTest, StreamsWholeLogInBatchesWithHintResume) {
  auto w = WriteLog(50);
  CursorHint hint;
  uint64_t next = 1;
  std::vector<uint64_t> seen;
  size_t calls = 0;
  for (;;) {
    auto batch = ReadFrames(dir_, next, UINT64_MAX, 300, &hint);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    const std::vector<uint64_t> seqnos = Seqnos(batch.value().frames);
    EXPECT_EQ(seqnos.size(), batch.value().records);
    seen.insert(seen.end(), seqnos.begin(), seqnos.end());
    ASSERT_GE(batch.value().next_seqno, next);
    next = batch.value().next_seqno;
    ++calls;
    if (batch.value().at_end) break;
    ASSERT_LT(calls, 200u) << "no forward progress";
  }
  // Contiguous 1..50, across many batches (max_bytes bounded each) and
  // many segments (segment_bytes bounded each).
  ASSERT_EQ(seen.size(), 50u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
  EXPECT_GT(calls, 3u);
  EXPECT_EQ(next, 51u);
  // The hint landed at the tip: resuming from it is a cheap no-frame
  // call, not a rescan.
  auto tip = ReadFrames(dir_, next, UINT64_MAX, 300, &hint);
  ASSERT_TRUE(tip.ok());
  EXPECT_EQ(tip.value().records, 0u);
  EXPECT_TRUE(tip.value().at_end);
}

TEST_F(WalCursorTest, HintlessAndHintedReadsAgree) {
  auto w = WriteLog(30);
  CursorHint hint;
  // Warm the hint mid-log.
  auto warm = ReadFrames(dir_, 10, 20, 1 << 20, &hint);
  ASSERT_TRUE(warm.ok());
  // Same range with and without the hint.
  auto hinted = ReadFrames(dir_, 21, 25, 1 << 20, &hint);
  auto fresh = ReadFrames(dir_, 21, 25, 1 << 20, nullptr);
  ASSERT_TRUE(hinted.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(hinted.value().frames, fresh.value().frames);
  EXPECT_EQ(hinted.value().next_seqno, fresh.value().next_seqno);
}

TEST_F(WalCursorTest, LimitSeqnoStopsExactly) {
  auto w = WriteLog(40);
  auto batch = ReadFrames(dir_, 5, 17, 1 << 20, nullptr);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  const std::vector<uint64_t> seqnos = Seqnos(batch.value().frames);
  ASSERT_EQ(seqnos.size(), 13u);
  EXPECT_EQ(seqnos.front(), 5u);
  EXPECT_EQ(seqnos.back(), 17u);
  EXPECT_EQ(batch.value().next_seqno, 18u);
  EXPECT_TRUE(batch.value().at_end);
}

TEST_F(WalCursorTest, TinyMaxBytesStillMakesProgress) {
  auto w = WriteLog(5);
  // max_bytes smaller than any frame: each call must still return at
  // least one frame, or a catching-up follower would spin forever.
  CursorHint hint;
  uint64_t next = 1;
  for (int i = 0; i < 5; ++i) {
    auto batch = ReadFrames(dir_, next, UINT64_MAX, 1, &hint);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch.value().records, 1u);
    next = batch.value().next_seqno;
  }
  EXPECT_EQ(next, 6u);
}

TEST_F(WalCursorTest, CursorBelowRetentionIsNotFound) {
  auto w = WriteLog(60, 200);
  ASSERT_TRUE(w->Rotate().ok());
  auto deleted = w->TruncateSealedBefore(30, INT64_MAX);
  ASSERT_TRUE(deleted.ok());
  ASSERT_GT(deleted.value(), 0u);
  auto scan = ScanLog(dir_, {});
  ASSERT_TRUE(scan.ok());
  const uint64_t oldest = scan.value().first_seqno;
  ASSERT_GT(oldest, 1u);

  // A cursor before the oldest retained record cannot be served — the
  // follower must re-seed, not silently skip records.
  auto below = ReadFrames(dir_, oldest - 1, UINT64_MAX, 1 << 20, nullptr);
  ASSERT_FALSE(below.ok());
  EXPECT_EQ(below.status().code(), StatusCode::kNotFound);

  // From the oldest retained record on, everything streams.
  auto from_oldest = ReadFrames(dir_, oldest, UINT64_MAX, 1 << 20, nullptr);
  ASSERT_TRUE(from_oldest.ok()) << from_oldest.status().ToString();
  const std::vector<uint64_t> seqnos = Seqnos(from_oldest.value().frames);
  ASSERT_FALSE(seqnos.empty());
  EXPECT_EQ(seqnos.front(), oldest);
  EXPECT_EQ(seqnos.back(), 60u);
}

TEST_F(WalCursorTest, TornTailReadsAsEndOfLogNotError) {
  {
    auto w = WriteLog(10);
  }  // sealed by destructor
  // A torn half-frame at the very end, as a crash mid-append leaves.
  const std::string frame = EncodeFrame(11, "tweet\t1\t999\ttorn");
  auto scan = ScanLog(dir_, {});
  ASSERT_TRUE(scan.ok() && !scan.value().segments.empty());
  {
    std::ofstream torn(scan.value().segments.back().path,
                       std::ios::binary | std::ios::app);
    torn.write(frame.data(),
               static_cast<std::streamsize>(frame.size() / 2));
  }

  auto batch = ReadFrames(dir_, 1, UINT64_MAX, 1 << 20, nullptr);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  const std::vector<uint64_t> seqnos = Seqnos(batch.value().frames);
  ASSERT_EQ(seqnos.size(), 10u);
  EXPECT_EQ(seqnos.back(), 10u);
  EXPECT_TRUE(batch.value().at_end);
  EXPECT_EQ(batch.value().next_seqno, 11u);
}

TEST_F(WalCursorTest, EmptyLogIsAtEnd) {
  auto w = WriteLog(0);
  auto batch = ReadFrames(dir_, 1, UINT64_MAX, 1 << 20, nullptr);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value().records, 0u);
  EXPECT_TRUE(batch.value().at_end);
}

TEST_F(WalCursorTest, RejectsZeroCursor) {
  auto w = WriteLog(3);
  auto batch = ReadFrames(dir_, 0, UINT64_MAX, 1 << 20, nullptr);
  EXPECT_FALSE(batch.ok());
}

}  // namespace
}  // namespace adrec::wal
