#include "serve/reporter.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace adrec::serve {
namespace {

TEST(PeriodicReporterTest, ReportsCounterDeltasNotTotals) {
  obs::MetricRegistry registry;
  obs::Counter* events = registry.GetCounter("engine.tweets");
  events->Inc(100);  // before the reporter's baseline

  PeriodicReporter reporter([&registry] { return registry.Snapshot(); },
                            /*interval_seconds=*/0.0,
                            [](const WindowReport&) {});

  events->Inc(7);
  WindowReport w1 = reporter.Tick();
  EXPECT_EQ(w1.counter_deltas.at("engine.tweets"), 7u);

  // Second window starts from the last snapshot, not from zero.
  events->Inc(3);
  WindowReport w2 = reporter.Tick();
  EXPECT_EQ(w2.counter_deltas.at("engine.tweets"), 3u);

  // An idle window reports zero, not the cumulative 110.
  WindowReport w3 = reporter.Tick();
  EXPECT_EQ(w3.counter_deltas.at("engine.tweets"), 0u);
}

TEST(PeriodicReporterTest, TimerWindowsAreDeltasOfTheHistogram) {
  obs::MetricRegistry registry;
  obs::Timer* timer = registry.GetTimer("serve.cmd_topk_us");
  for (int i = 0; i < 50; ++i) timer->Record(10.0);  // slow history

  PeriodicReporter reporter([&registry] { return registry.Snapshot(); },
                            0.0, [](const WindowReport&) {});

  for (int i = 0; i < 5; ++i) timer->Record(1000.0);  // this window only
  WindowReport w = reporter.Tick();
  ASSERT_TRUE(w.timers.count("serve.cmd_topk_us"));
  const obs::TimerStat& stat = w.timers.at("serve.cmd_topk_us");
  EXPECT_EQ(stat.count, 5u);
  // Window p50 reflects the 1000us samples, not the 10us history that a
  // cumulative view would be dominated by.
  EXPECT_GT(stat.p50, 500.0);

  // No samples since → the timer is omitted from the next window.
  WindowReport idle = reporter.Tick();
  EXPECT_EQ(idle.timers.count("serve.cmd_topk_us"), 0u);
}

TEST(PeriodicReporterTest, RatesUseWallSeconds) {
  obs::MetricRegistry registry;
  obs::Counter* c = registry.GetCounter("serve.cmd_ping");
  PeriodicReporter reporter([&registry] { return registry.Snapshot(); },
                            0.0, [](const WindowReport&) {});
  c->Inc(10);
  WindowReport w = reporter.Tick();
  ASSERT_GT(w.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(w.rates.at("serve.cmd_ping"),
                   10.0 / w.wall_seconds);
}

TEST(PeriodicReporterTest, TickIfDueHonoursInterval) {
  obs::MetricRegistry registry;
  int reports = 0;
  PeriodicReporter reporter([&registry] { return registry.Snapshot(); },
                            /*interval_seconds=*/3600.0,
                            [&reports](const WindowReport&) { ++reports; });
  EXPECT_FALSE(reporter.TickIfDue());  // an hour has not passed
  EXPECT_EQ(reports, 0);

  PeriodicReporter eager([&registry] { return registry.Snapshot(); },
                         /*interval_seconds=*/0.0,
                         [&reports](const WindowReport&) { ++reports; });
  EXPECT_TRUE(eager.TickIfDue());
  EXPECT_EQ(reports, 1);
}

}  // namespace
}  // namespace adrec::serve
