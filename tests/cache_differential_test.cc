// The cached≡uncached differential that pins the topk result cache
// (DESIGN.md §14): twenty seeded traces drive a cache-enabled daemon A
// and an uncached oracle B in lockstep over real sockets — every write
// mirrored to both, every probe issued to both in the same order — and
// every reply must match byte-for-byte at every stream clock. Probes are
// deliberately hit-heavy (hot-user repeats, replays of earlier shapes)
// and the trace interleaves tweets, check-ins and ad churn so entries
// are filled, hit, revalidated and invalidated throughout.
//
// Serving charges (budget decrements, frequency-cap records) are real
// state, so the oracle is subjected to exactly the same query sequence:
// a probe that hits in A still charges A's engine (ChargeCachedTopK),
// and B charges through the ordinary topk path — divergence in either
// direction breaks the byte comparison.
//
// Restart phase: serve-time charges are intentionally not write-ahead
// logged (see wal_crash_differential_test), so A and B restart
// *together* — both recover the identical ingest-only state (even seeds
// through a mid-run `checkpoint` + tail replay, odd seeds from the log
// alone), A comes back with a cold cache, and equivalence must still
// hold for the rest of the trace.
//
// Follower phase: a cache-enabled follower FA replicates from A while an
// uncached follower FB replicates from B. Both apply the same frames, so
// they hold identical ingest-only engine state; probing them in lockstep
// pins that a READONLY follower's cache invalidates on applied frames.
//
// A never-hitting cache would pass all of this trivially, so each seed
// also asserts a floor on A's cache.hits.

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "common/random.h"
#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "replica/follower.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace adrec::serve {
namespace {

struct Daemon {
  feed::Workload workload;
  std::string wal_dir;
  std::unique_ptr<wal::CheckpointManager> checkpointer;
  std::unique_ptr<wal::WalWriter> wal;
  std::unique_ptr<core::ShardedEngine> engine;
  std::unique_ptr<replica::Follower> follower;
  std::unique_ptr<Server> server;
  std::thread thread;

  void Stop() {
    if (server) {
      server->RequestDrain();
      if (thread.joinable()) thread.join();
      server.reset();
    }
    follower.reset();
    wal.reset();
    engine.reset();
    checkpointer.reset();
  }
  ~Daemon() { Stop(); }
};

class CacheDifferentialTest : public ::testing::Test {
 protected:
  CacheDifferentialTest() {
    base_dir_ = (std::filesystem::temp_directory_path() /
                 ("adrec_cachediff_" + std::to_string(::getpid())))
                    .string();
    std::filesystem::remove_all(base_dir_);
    std::filesystem::create_directories(base_dir_);
  }
  ~CacheDifferentialTest() override {
    std::filesystem::remove_all(base_dir_);
  }

  /// Starts (or restarts, when its wal_dir already has history) one
  /// daemon. Cache capacity 0 = the uncached oracle.
  void StartDaemon(Daemon* d, const feed::WorkloadOptions& wopts,
                   const std::string& tag, size_t num_shards,
                   const core::EngineOptions& eopts,
                   const cache::TopkCacheOptions& cache_opts,
                   uint16_t leader_port = 0) {
    d->workload = feed::GenerateWorkload(wopts);
    d->wal_dir = base_dir_ + "/" + tag;
    d->checkpointer = std::make_unique<wal::CheckpointManager>(d->wal_dir);
    d->engine = std::make_unique<core::ShardedEngine>(
        d->workload.kb, d->workload.slots, num_shards, eopts);
    auto recovered = d->checkpointer->Recover(d->engine.get());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    wal::WalOptions wal_options;
    wal_options.sync = wal::SyncPolicy::kNone;
    auto writer = wal::WalWriter::Open(d->wal_dir, wal_options,
                                       recovered.value().next_seqno);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    d->wal = std::move(writer).value();

    ServerOptions options;
    options.wal = d->wal.get();
    options.checkpointer = d->checkpointer.get();
    options.topk_cache = cache_opts;
    if (leader_port != 0) {
      replica::FollowerOptions fopts;
      fopts.host = "127.0.0.1";
      fopts.port = leader_port;
      fopts.backoff_initial = 0.05;
      d->follower = std::make_unique<replica::Follower>(
          d->engine.get(), d->wal.get(), fopts);
      options.follower = d->follower.get();
    }
    d->server = std::make_unique<Server>(d->engine.get(), options);
    if (recovered.value().max_event_time > 0) {
      d->server->SeedStreamClock(recovered.value().max_event_time);
    }
    ASSERT_TRUE(d->server->Start().ok());
    d->thread = std::thread([d] { d->server->Run(); });
  }

  Client Connected(const Daemon& d) {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", d.server->port()).ok());
    return client;
  }

  static bool MetricValue(const std::string& payload,
                          const std::string& name, double* value) {
    const size_t pos = payload.find("\n" + name + " ");
    if (pos == std::string::npos) return false;
    *value = std::strtod(payload.c_str() + pos + 1 + name.size(), nullptr);
    return true;
  }

  double CacheHits(Client* client) {
    auto metrics = client->Metrics();
    EXPECT_TRUE(metrics.ok());
    double hits = 0.0;
    MetricValue(metrics.value(), "adrec_cache_hits_total", &hits);
    return hits;
  }

  void WaitForApplied(Client* client, uint64_t seqno) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
      auto metrics = client->Metrics();
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
      double applied = -1.0;
      if (MetricValue(metrics.value(), "adrec_replica_applied_seqno",
                      &applied) &&
          applied >= static_cast<double>(seqno)) {
        return;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "follower stuck at applied_seqno=" << applied << " want "
          << seqno;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  std::string base_dir_;
};

/// One lockstep pair: the same line goes to both daemons; replies must
/// agree byte-for-byte.
void MirrorAndCompare(Client* a, Client* b, const std::string& line,
                      uint64_t seed, size_t step) {
  auto ra = a->Command(line);
  auto rb = b->Command(line);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_EQ(ra.value(), rb.value())
      << "seed " << seed << " step " << step << " diverged on: " << line;
}

TEST_F(CacheDifferentialTest, TwentySeededTracesMatchUncachedExactly) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const size_t num_shards = (seed % 3 == 0) ? 2 : 1;

    feed::WorkloadOptions wopts;
    wopts.seed = 9000 + seed;
    wopts.num_users = 8 + static_cast<size_t>(seed % 5);
    wopts.num_places = 6 + static_cast<size_t>(seed % 3);
    wopts.num_ads = 3 + static_cast<size_t>(seed % 3);
    wopts.days = 2;
    wopts.tweets_per_user_day = 2.0;
    wopts.checkins_per_user_day = 1.0;
    const feed::Workload workload = feed::GenerateWorkload(wopts);

    core::EngineOptions eopts;
    // Odd seeds serve with a tight frequency cap (exercises hit-time
    // revalidation, charge mirroring and OnUserCharged fan-out); even
    // seeds disable it.
    eopts.frequency_cap.max_impressions = (seed % 2 == 1) ? 3 : 0;
    eopts.frequency_cap.window = 6 * 3600;

    cache::TopkCacheOptions cache_opts;
    cache_opts.capacity = (seed % 4 == 0) ? 4 : 64;  // tiny = evictions
    cache_opts.admission = (seed % 2 == 0)
                               ? cache::TopkCacheOptions::Admission::kAlways
                               : cache::TopkCacheOptions::Admission::kFrequency;

    const std::string tag = "s" + std::to_string(seed);
    Daemon a;  // cached
    Daemon b;  // the uncached oracle
    StartDaemon(&a, wopts, tag + "_a", num_shards, eopts, cache_opts);
    StartDaemon(&b, wopts, tag + "_b", num_shards, eopts, {});
    auto ca = std::make_unique<Client>(Connected(a));
    auto cb = std::make_unique<Client>(Connected(b));

    // Inventory over the wire so it is WAL-logged (the followers replay
    // it). Every third seed tightens some budgets so entries go stale by
    // exhaustion and must be caught by hit-time revalidation.
    std::vector<feed::Ad> live_ads = workload.ads;
    uint64_t acked = 0;
    for (feed::Ad& ad : live_ads) {
      if (seed % 3 == 0 && ad.id.value % 2 == 0) ad.budget_impressions = 7;
      ASSERT_TRUE(ca->PutAd(ad).ok());
      ASSERT_TRUE(cb->PutAd(ad).ok());
      ++acked;
    }

    const std::vector<feed::FeedEvent> events = workload.MergedEvents();
    Rng rng(seed * 77 + 5);
    ZipfSampler hot_users(wopts.num_users, 1.1);
    std::vector<std::string> replayable;  // explicit-time shapes seen
    uint32_t next_ad_id = 10000;
    size_t step = 0;

    // Issues one probe batch: a hot-user time-less repeat (the hit
    // generator), a random-user probe, and sometimes a replay of an
    // earlier explicit-time shape.
    auto probe_batch = [&]() {
      const uint32_t hot = static_cast<uint32_t>(hot_users.Sample(rng));
      // Issued twice back-to-back: the immediate repeat is the
      // guaranteed-hit shape (nothing can invalidate in between), and
      // serving it from cache still charges the engine — the repeat is
      // where hit-time revalidation equivalence gets exercised.
      MirrorAndCompare(ca.get(), cb.get(),
                       FormatTopKCmd(UserId(hot), 3), seed, step);
      MirrorAndCompare(ca.get(), cb.get(),
                       FormatTopKCmd(UserId(hot), 3), seed, step);
      const uint32_t user =
          static_cast<uint32_t>(rng.NextBounded(wopts.num_users));
      const size_t k = 1 + static_cast<size_t>(rng.NextBounded(5));
      if (rng.NextBool(0.5)) {
        const feed::Tweet& t =
            workload.tweets[rng.NextBounded(workload.tweets.size())];
        const std::string line =
            FormatTopKCmd(UserId(user), k, t.time, t.text);
        replayable.push_back(line);
        MirrorAndCompare(ca.get(), cb.get(), line, seed, step);
      } else {
        MirrorAndCompare(ca.get(), cb.get(), FormatTopKCmd(UserId(user), k),
                         seed, step);
      }
      if (!replayable.empty() && rng.NextBool(0.4)) {
        MirrorAndCompare(
            ca.get(), cb.get(),
            replayable[rng.NextBounded(replayable.size())], seed, step);
      }
    };

    // One trace step: a few ingest events into both daemons, sometimes
    // ad churn, then a probe batch with byte comparison.
    auto run_steps = [&](size_t first_event, size_t last_event) {
      for (size_t i = first_event; i < last_event; ++i) {
        const feed::FeedEvent& event = events[i];
        if (event.kind == feed::EventKind::kTweet) {
          ASSERT_TRUE(ca->SendTweet(event.tweet).ok());
          ASSERT_TRUE(cb->SendTweet(event.tweet).ok());
          ++acked;
        } else if (event.kind == feed::EventKind::kCheckIn) {
          ASSERT_TRUE(ca->SendCheckIn(event.check_in).ok());
          ASSERT_TRUE(cb->SendCheckIn(event.check_in).ok());
          ++acked;
        }
        if (rng.NextBool(0.08)) {  // ad churn
          if (!live_ads.empty() && rng.NextBool(0.4)) {
            const size_t victim = rng.NextBounded(live_ads.size());
            const AdId doomed = live_ads[victim].id;
            live_ads.erase(live_ads.begin() + victim);
            ASSERT_TRUE(ca->DeleteAd(doomed).ok());
            ASSERT_TRUE(cb->DeleteAd(doomed).ok());
            ++acked;
          } else {
            feed::Ad ad = workload.ads[rng.NextBounded(workload.ads.size())];
            ad.id = AdId(next_ad_id++);
            if (rng.NextBool(0.3)) ad.target_locations.clear();
            if (rng.NextBool(0.3)) ad.target_slots.clear();
            if (rng.NextBool(0.3)) ad.budget_impressions = 5;
            ASSERT_TRUE(ca->PutAd(ad).ok());
            ASSERT_TRUE(cb->PutAd(ad).ok());
            live_ads.push_back(ad);
            ++acked;
          }
        }
        if (i % 2 == 0) {
          probe_batch();
          if (::testing::Test::HasFatalFailure()) return;
        }
        ++step;
      }
    };

    const size_t phase1_end = events.size() / 2;
    run_steps(0, phase1_end);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());

    // Counters die with the process; bank the pre-restart hits.
    const double phase1_hits = CacheHits(ca.get());

    // --- Restart phase: both daemons bounce together. Even seeds write
    // a checkpoint first (snapshot restore + tail replay); odd seeds
    // recover from the log alone. A's cache comes back cold.
    if (seed % 2 == 0) {
      auto cpa = ca->Command("checkpoint");
      ASSERT_TRUE(cpa.ok()) << cpa.status().ToString();
      ASSERT_EQ(cpa.value().rfind("OK", 0), 0u) << cpa.value();
      auto cpb = cb->Command("checkpoint");
      ASSERT_TRUE(cpb.ok());
      ASSERT_EQ(cpb.value().rfind("OK", 0), 0u) << cpb.value();
    }
    ca.reset();
    cb.reset();
    a.Stop();
    b.Stop();
    StartDaemon(&a, wopts, tag + "_a", num_shards, eopts, cache_opts);
    StartDaemon(&b, wopts, tag + "_b", num_shards, eopts, {});
    ca = std::make_unique<Client>(Connected(a));
    cb = std::make_unique<Client>(Connected(b));

    run_steps(phase1_end, events.size());
    ASSERT_FALSE(::testing::Test::HasFatalFailure());

    const double leader_hits = phase1_hits + CacheHits(ca.get());
    EXPECT_GE(leader_hits, 5.0)
        << "cache never hit — the differential is vacuous";

    // --- Follower phase: cached follower FA tails A, uncached follower
    // FB tails B. Identical applied frames → identical ingest-only
    // state; probes must agree while frames keep arriving.
    Daemon fa;
    Daemon fb;
    StartDaemon(&fa, wopts, tag + "_fa", num_shards, eopts, cache_opts,
                a.server->port());
    StartDaemon(&fb, wopts, tag + "_fb", num_shards, eopts, {},
                b.server->port());
    Client cfa = Connected(fa);
    Client cfb = Connected(fb);
    WaitForApplied(&cfa, acked);
    WaitForApplied(&cfb, acked);

    auto follower_probes = [&]() {
      for (int round = 0; round < 6; ++round) {
        const uint32_t hot = static_cast<uint32_t>(hot_users.Sample(rng));
        MirrorAndCompare(&cfa, &cfb, FormatTopKCmd(UserId(hot), 3), seed,
                         step);
        MirrorAndCompare(&cfa, &cfb, FormatTopKCmd(UserId(hot), 3), seed,
                         step);
        if (!replayable.empty()) {
          MirrorAndCompare(&cfa, &cfb,
                           replayable[rng.NextBounded(replayable.size())],
                           seed, step);
        }
        ++step;
      }
    };
    follower_probes();
    ASSERT_FALSE(::testing::Test::HasFatalFailure());

    // More leader writes: the frames reach the followers, FA's cache
    // invalidates on apply, and the probes must still agree.
    for (size_t i = 0; i < std::min<size_t>(events.size(), 10); ++i) {
      feed::Tweet tweet = workload.tweets[i % workload.tweets.size()];
      tweet.user = UserId(static_cast<uint32_t>(hot_users.Sample(rng)));
      ASSERT_TRUE(ca->SendTweet(tweet).ok());
      ASSERT_TRUE(cb->SendTweet(tweet).ok());
      ++acked;
    }
    WaitForApplied(&cfa, acked);
    WaitForApplied(&cfb, acked);
    follower_probes();
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    EXPECT_GE(CacheHits(&cfa), 1.0) << "follower cache never hit";
  }
}

}  // namespace
}  // namespace adrec::serve
