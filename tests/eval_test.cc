#include <algorithm>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/oracle.h"

namespace adrec::eval {
namespace {

std::vector<UserId> Users(std::vector<uint32_t> ids) {
  std::vector<UserId> out;
  for (uint32_t i : ids) out.push_back(UserId(i));
  return out;
}

TEST(MetricsTest, PerfectPrediction) {
  Prf prf = ComputePrf(Users({1, 2, 3}), Users({1, 2, 3}));
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f_score, 1.0);
  EXPECT_EQ(prf.hits, 3u);
}

TEST(MetricsTest, PartialOverlap) {
  // predicted {1,2,3,4}, relevant {3,4,5}: P=2/4, R=2/3.
  Prf prf = ComputePrf(Users({1, 2, 3, 4}), Users({3, 4, 5}));
  EXPECT_DOUBLE_EQ(prf.precision, 0.5);
  EXPECT_NEAR(prf.recall, 2.0 / 3.0, 1e-12);
  const double expected_f =
      2.0 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0);
  EXPECT_NEAR(prf.f_score, expected_f, 1e-12);
}

TEST(MetricsTest, EmptyCases) {
  // Nothing predicted, something relevant: all zeros.
  Prf prf = ComputePrf({}, Users({1}));
  EXPECT_DOUBLE_EQ(prf.f_score, 0.0);
  // Something predicted, nothing relevant: all zeros.
  prf = ComputePrf(Users({1}), {});
  EXPECT_DOUBLE_EQ(prf.precision, 0.0);
  EXPECT_DOUBLE_EQ(prf.f_score, 0.0);
  // Both empty: the system was right to predict nobody.
  prf = ComputePrf({}, {});
  EXPECT_DOUBLE_EQ(prf.f_score, 1.0);
}

TEST(MetricsTest, DuplicatesAreCollapsed) {
  Prf prf = ComputePrf(Users({1, 1, 1}), Users({1}));
  EXPECT_EQ(prf.predicted, 1u);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
}

TEST(MetricsTest, MacroAverage) {
  Prf a = ComputePrf(Users({1}), Users({1}));       // 1.0
  Prf b = ComputePrf(Users({1}), Users({2}));       // 0.0
  Prf avg = MacroAverage({a, b});
  EXPECT_DOUBLE_EQ(avg.f_score, 0.5);
  EXPECT_DOUBLE_EQ(avg.precision, 0.5);
  EXPECT_TRUE(MacroAverage({}).f_score == 0.0);
}

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() {
    feed::WorkloadOptions opts;
    opts.seed = 13;
    opts.num_users = 12;
    opts.num_places = 8;
    opts.num_ads = 4;
    opts.days = 2;
    workload_ = feed::GenerateWorkload(opts);
  }
  feed::Workload workload_;
};

TEST_F(OracleTest, RelevantUsersSatisfyBothConditions) {
  GroundTruthOracle oracle(&workload_);
  for (size_t a = 0; a < workload_.ads.size(); ++a) {
    for (SlotId slot : workload_.ads[a].target_slots) {
      for (UserId u : oracle.RelevantUsers(a, slot)) {
        const feed::UserTruth& truth = workload_.truth[u.value];
        // Topical condition.
        bool topical = false;
        for (TopicId t : truth.interests) {
          topical |= std::find(workload_.ad_topics[a].begin(),
                               workload_.ad_topics[a].end(),
                               t) != workload_.ad_topics[a].end();
        }
        EXPECT_TRUE(topical);
        // Location condition.
        bool located = false;
        for (LocationId m : truth.frequented[slot.value]) {
          located |= std::find(workload_.ads[a].target_locations.begin(),
                               workload_.ads[a].target_locations.end(),
                               m) != workload_.ads[a].target_locations.end();
        }
        EXPECT_TRUE(located);
      }
    }
  }
}

TEST_F(OracleTest, NonTargetedSlotHasNoRelevantUsers) {
  GroundTruthOracle oracle(&workload_);
  for (size_t a = 0; a < workload_.ads.size(); ++a) {
    const auto& targets = workload_.ads[a].target_slots;
    ASSERT_FALSE(targets.empty());
    // Slot 0 (night) is never targeted by the generator.
    if (std::find(targets.begin(), targets.end(), SlotId(0)) ==
        targets.end()) {
      EXPECT_TRUE(oracle.RelevantUsers(a, SlotId(0)).empty());
    }
  }
}

TEST_F(OracleTest, TopicallyInterestedIsSupersetOfRelevant) {
  GroundTruthOracle oracle(&workload_);
  for (size_t a = 0; a < workload_.ads.size(); ++a) {
    auto topical = oracle.TopicallyInterested(a);
    for (SlotId slot : workload_.ads[a].target_slots) {
      for (UserId u : oracle.RelevantUsers(a, slot)) {
        EXPECT_NE(std::find(topical.begin(), topical.end(), u),
                  topical.end());
      }
    }
  }
}

TEST_F(OracleTest, LabelNoiseFlipsDeterministically) {
  OracleOptions noisy;
  noisy.label_noise = 0.5;
  GroundTruthOracle a(&workload_, noisy);
  GroundTruthOracle b(&workload_, noisy);
  GroundTruthOracle clean(&workload_);
  const SlotId slot = workload_.ads[0].target_slots[0];
  EXPECT_EQ(a.RelevantUsers(0, slot), b.RelevantUsers(0, slot));
  // With 50% noise over 12 users the sets almost surely differ.
  EXPECT_NE(a.RelevantUsers(0, slot), clean.RelevantUsers(0, slot));
}

TEST(ExperimentTest, BuildIngestsEverything) {
  feed::WorkloadOptions opts;
  opts.seed = 21;
  opts.num_users = 8;
  opts.num_places = 6;
  opts.num_ads = 2;
  opts.days = 2;
  ExperimentSetup setup = BuildExperiment(opts);
  EXPECT_EQ(setup.engine->tweets_ingested(), setup.workload.tweets.size());
  EXPECT_EQ(setup.engine->checkins_ingested(),
            setup.workload.check_ins.size());
  EXPECT_EQ(setup.engine->ad_store().size(), 2u);
}

TEST(ExperimentTest, AlphaSweepProducesCurve) {
  feed::WorkloadOptions opts;
  opts.seed = 23;
  opts.num_users = 10;
  opts.num_places = 6;
  opts.num_ads = 3;
  opts.days = 5;
  ExperimentSetup setup = BuildExperiment(opts);
  GroundTruthOracle oracle(&setup.workload);
  auto points = RunAlphaSweep(setup, oracle, SlotId(2), {0.2, 0.6, 0.95});
  ASSERT_EQ(points.size(), 3u);
  for (const AlphaPoint& p : points) {
    EXPECT_GE(p.prf.f_score, 0.0);
    EXPECT_LE(p.prf.f_score, 1.0);
  }
  // Extreme alpha kills the topic side entirely: F at 0.95 should not
  // beat a mid alpha on this seed (weak assertion: curve is not flat-max).
  EXPECT_LE(points[2].prf.recall, points[1].prf.recall + 1e-9);
}

TEST(ExperimentTest, StrategiesRunAndTriadicUsesBothContexts) {
  feed::WorkloadOptions opts;
  opts.seed = 29;
  opts.num_users = 10;
  opts.num_places = 6;
  opts.num_ads = 3;
  opts.days = 5;
  ExperimentSetup setup = BuildExperiment(opts);
  GroundTruthOracle oracle(&setup.workload);
  ASSERT_TRUE(setup.engine->RunAnalysis(0.6).ok());
  core::BaselineOptions bopts;
  bopts.now = opts.days * kSecondsPerDay;
  for (core::StrategyKind kind :
       {core::StrategyKind::kTriadic, core::StrategyKind::kContentOnly,
        core::StrategyKind::kLocationOnly, core::StrategyKind::kPopularity}) {
    Prf prf = EvaluateStrategy(kind, setup, oracle, bopts);
    EXPECT_GE(prf.f_score, 0.0);
    EXPECT_LE(prf.f_score, 1.0);
  }
}

}  // namespace
}  // namespace adrec::eval
