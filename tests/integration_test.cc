// Cross-module integration tests: the full pipeline driven end-to-end on
// generated workloads, checking determinism, consistency between the
// triadic path and its inputs, and windowed-vs-batch agreement.

#include <gtest/gtest.h>

#include "core/windowed_analyzer.h"
#include "eval/experiment.h"

namespace adrec {
namespace {

feed::WorkloadOptions SmallWorkload(uint64_t seed) {
  feed::WorkloadOptions opts;
  opts.seed = seed;
  opts.num_users = 12;
  opts.num_places = 8;
  opts.num_ads = 4;
  opts.days = 4;
  return opts;
}

TEST(IntegrationTest, FullPipelineIsDeterministic) {
  auto run = [] {
    eval::ExperimentSetup setup = eval::BuildExperiment(SmallWorkload(50));
    EXPECT_TRUE(setup.engine->RunAnalysis(0.5).ok());
    std::vector<std::vector<uint32_t>> per_ad;
    for (const feed::Ad& ad : setup.workload.ads) {
      auto r = setup.engine->RecommendUsers(ad.id);
      EXPECT_TRUE(r.ok());
      std::vector<uint32_t> users;
      for (const auto& mu : r.value().users) users.push_back(mu.user.value);
      per_ad.push_back(std::move(users));
    }
    return per_ad;
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationTest, MatchedUsersActuallyTweetedAndCheckedIn) {
  eval::ExperimentSetup setup = eval::BuildExperiment(SmallWorkload(51));
  ASSERT_TRUE(setup.engine->RunAnalysis(0.4).ok());
  for (const feed::Ad& ad : setup.workload.ads) {
    auto r = setup.engine->RecommendUsers(ad.id);
    ASSERT_TRUE(r.ok());
    for (const auto& mu : r.value().users) {
      // Location side: the user checked in at one of the ad's target
      // locations at some point (any slot).
      bool checked_in_at_target = false;
      for (const feed::CheckIn& c : setup.workload.check_ins) {
        if (c.user != mu.user) continue;
        for (LocationId m : ad.target_locations) {
          checked_in_at_target |= (c.location == m);
        }
      }
      EXPECT_TRUE(checked_in_at_target)
          << "user " << mu.user.value << " matched ad " << ad.id.value
          << " without ever visiting a target location";
      // Both support counters are positive by construction of the join.
      EXPECT_GT(mu.topic_support, 0);
      EXPECT_GT(mu.location_support, 0);
    }
  }
}

TEST(IntegrationTest, WindowedAnalyzerAgreesWithBatchOnFullWindow) {
  // A window covering the whole trace and one refresh at the end must
  // produce exactly the communities of the batch analysis.
  feed::Workload w = feed::GenerateWorkload(SmallWorkload(52));
  core::SemanticRepresentation semantic(w.kb.get());

  core::TimeAwareConceptAnalysis batch(&w.slots, w.kb->size());
  core::WindowedOptions wopts;
  wopts.window = 365 * kSecondsPerDay;
  wopts.alpha = 0.5;
  core::WindowedAnalyzer windowed(&w.slots, w.kb->size(), wopts);

  for (const feed::Tweet& t : w.tweets) {
    const core::AnnotatedTweet at = semantic.ProcessTweet(t);
    batch.AddTweet(at);
    windowed.OnTweet(at);
  }
  for (const feed::CheckIn& c : w.check_ins) {
    batch.AddCheckIn(c);
    windowed.OnCheckIn(c);
  }
  core::TfcaOptions topts;
  topts.alpha = 0.5;
  ASSERT_TRUE(batch.Analyze(topts).ok());
  ASSERT_TRUE(windowed.Refresh(5 * kSecondsPerDay).ok());

  auto communities_equal = [](const std::vector<core::Community>& a,
                              const std::vector<core::Community>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].users.size() != b[i].users.size()) return false;
      for (size_t j = 0; j < a[i].users.size(); ++j) {
        if (!(a[i].users[j] == b[i].users[j])) return false;
      }
    }
    return true;
  };
  for (uint32_t m = 0; m < 8; ++m) {
    EXPECT_TRUE(communities_equal(
        batch.LocationCommunities(LocationId(m)),
        windowed.analysis().LocationCommunities(LocationId(m))))
        << "location " << m;
  }
  for (uint32_t t = 0; t < w.kb->size(); ++t) {
    EXPECT_TRUE(
        communities_equal(batch.TopicCommunities(TopicId(t)),
                          windowed.analysis().TopicCommunities(TopicId(t))))
        << "topic " << t;
  }
}

TEST(IntegrationTest, StreamingTopKNeverExceedsBudgets) {
  eval::ExperimentSetup setup = eval::BuildExperiment(SmallWorkload(53));
  // Re-insert ads with tiny budgets.
  for (const feed::Ad& ad : setup.workload.ads) {
    ASSERT_TRUE(setup.engine->RemoveAd(ad.id).ok());
    feed::Ad limited = ad;
    limited.budget_impressions = 3;
    ASSERT_TRUE(setup.engine->InsertAd(limited).ok());
  }
  size_t impressions = 0;
  for (const feed::Tweet& t : setup.workload.tweets) {
    impressions += setup.engine->TopKAdsForTweet(t, 2).size();
  }
  EXPECT_LE(impressions, 3 * setup.workload.ads.size());
  // And the store agrees.
  setup.engine->ad_store().ForEach([](const ads::StoredAd& stored) {
    EXPECT_LE(stored.impressions_served, 3);
  });
}

TEST(IntegrationTest, AlphaMonotonicityOfTopicCells) {
  // Raising alpha can only remove topic incidences, so the total number
  // of users in topic communities (summed multiplicity) must not grow.
  eval::ExperimentSetup setup = eval::BuildExperiment(SmallWorkload(54));
  auto total_members = [&](double alpha) {
    EXPECT_TRUE(setup.engine->RunAnalysis(alpha).ok());
    size_t total = 0;
    for (uint32_t t = 0; t < setup.workload.kb->size(); ++t) {
      for (const auto& c :
           setup.engine->analysis().TopicCommunities(TopicId(t))) {
        total += c.users.size();
      }
    }
    return total;
  };
  const size_t low = total_members(0.2);
  const size_t high = total_members(0.9);
  EXPECT_GE(low, high);
}

}  // namespace
}  // namespace adrec
