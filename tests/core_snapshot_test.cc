#include "core/snapshot.h"

#include <deque>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace adrec::core {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("adrec_snap_" + std::to_string(::getpid())))
               .string();
  }
  ~SnapshotTest() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(SnapshotTest, RoundTripPreservesServingState) {
  feed::WorkloadOptions opts;
  opts.seed = 81;
  opts.num_users = 10;
  opts.num_places = 8;
  opts.num_ads = 4;
  opts.days = 3;
  eval::ExperimentSetup setup = eval::BuildExperiment(opts);
  RecommendationEngine& original = *setup.engine;

  // Serve a few impressions so counters are non-trivial.
  for (size_t i = 0; i < 20 && i < setup.workload.tweets.size(); ++i) {
    original.TopKAdsForTweet(setup.workload.tweets[i], 1);
  }

  ASSERT_TRUE(SaveEngineSnapshot(original, dir_).ok());

  RecommendationEngine restored(setup.workload.kb, setup.workload.slots);
  ASSERT_TRUE(LoadEngineSnapshot(dir_, &restored).ok());

  // Ad inventory and impression counters match.
  EXPECT_EQ(restored.ad_store().size(), original.ad_store().size());
  original.ad_store().ForEach([&](const ads::StoredAd& stored) {
    const ads::StoredAd* r = restored.ad_store().Find(stored.ad.id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->impressions_served, stored.impressions_served);
    EXPECT_EQ(r->ad.copy, stored.ad.copy);
    EXPECT_EQ(r->ad.target_locations, stored.ad.target_locations);
  });

  // Profiles match: interests and visit masses at a probe time.
  const Timestamp probe = opts.days * kSecondsPerDay;
  for (UserId user : original.profiles().KnownUsers()) {
    const auto a = original.profiles().InterestsAt(user, probe);
    const auto b = restored.profiles().InterestsAt(user, probe);
    ASSERT_EQ(a.size(), b.size()) << user.value;
    for (size_t i = 0; i < a.entries().size(); ++i) {
      EXPECT_EQ(a.entries()[i].id, b.entries()[i].id);
      EXPECT_NEAR(a.entries()[i].weight, b.entries()[i].weight, 1e-6);
    }
    for (uint32_t s = 0; s < setup.workload.slots.size(); ++s) {
      EXPECT_EQ(original.profiles().TopLocation(user, SlotId(s)),
                restored.profiles().TopLocation(user, SlotId(s)))
          << "user " << user.value << " slot " << s;
    }
  }

  // The streaming path produces identical results post-restore.
  const feed::Tweet& probe_tweet = setup.workload.tweets.back();
  auto orig_ads = original.TopKAdsForTweetExhaustive(probe_tweet, 5);
  auto rest_ads = restored.TopKAdsForTweetExhaustive(probe_tweet, 5);
  ASSERT_EQ(orig_ads.size(), rest_ads.size());
  for (size_t i = 0; i < orig_ads.size(); ++i) {
    EXPECT_EQ(orig_ads[i].ad, rest_ads[i].ad);
    EXPECT_NEAR(orig_ads[i].score, rest_ads[i].score, 1e-6);
  }
}

TEST_F(SnapshotTest, FrequencyCapHistoryRoundTrips) {
  feed::WorkloadOptions opts;
  opts.seed = 93;
  opts.num_users = 8;
  opts.num_places = 6;
  opts.num_ads = 3;
  opts.days = 2;
  eval::ExperimentSetup setup = eval::BuildExperiment(opts);
  RecommendationEngine& original = *setup.engine;

  // Serve repeatedly so some (user, ad) pairs accumulate history and the
  // default cap (5/day) starts to bind.
  for (size_t i = 0; i < 60 && i < setup.workload.tweets.size(); ++i) {
    original.TopKAdsForTweet(setup.workload.tweets[i], 2);
  }
  ASSERT_GT(original.frequency_capper().tracked_pairs(), 0u);

  ASSERT_TRUE(SaveEngineSnapshot(original, dir_).ok());
  RecommendationEngine restored(setup.workload.kb, setup.workload.slots);
  ASSERT_TRUE(LoadEngineSnapshot(dir_, &restored).ok());

  EXPECT_EQ(restored.frequency_capper().tracked_pairs(),
            original.frequency_capper().tracked_pairs());
  std::vector<std::pair<UserId, AdId>> pairs;
  original.frequency_capper().ForEach(
      [&](UserId user, AdId ad, const std::deque<Timestamp>&) {
        pairs.emplace_back(user, ad);
      });
  const Timestamp probe = setup.workload.tweets.back().time;
  for (const auto& [user, ad] : pairs) {
    EXPECT_EQ(restored.frequency_capper().CountInWindow(user, ad, probe),
              original.frequency_capper().CountInWindow(user, ad, probe))
        << "user " << user.value << " ad " << ad.value;
  }
}

TEST_F(SnapshotTest, SnapshotFilesAreCanonical) {
  // save -> load -> save again must reproduce every file byte for byte:
  // emission is sorted and floats are written with exact round-trip
  // precision, so no hash-map iteration order leaks into the files.
  feed::WorkloadOptions opts;
  opts.seed = 57;
  opts.num_users = 9;
  opts.num_places = 7;
  opts.num_ads = 3;
  opts.days = 2;
  eval::ExperimentSetup setup = eval::BuildExperiment(opts);
  for (size_t i = 0; i < 30 && i < setup.workload.tweets.size(); ++i) {
    setup.engine->TopKAdsForTweet(setup.workload.tweets[i], 1);
  }
  ASSERT_TRUE(SaveEngineSnapshot(*setup.engine, dir_).ok());

  RecommendationEngine restored(setup.workload.kb, setup.workload.slots);
  ASSERT_TRUE(LoadEngineSnapshot(dir_, &restored).ok());
  const std::string dir2 = dir_ + "_again";
  ASSERT_TRUE(SaveEngineSnapshot(restored, dir2).ok());

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  for (const char* name :
       {"/snapshot_profiles.tsv", "/snapshot_ads.tsv",
        "/snapshot_impressions.tsv", "/snapshot_freqcap.tsv"}) {
    EXPECT_EQ(slurp(dir_ + name), slurp(dir2 + name)) << name;
  }
  std::filesystem::remove_all(dir2);
}

TEST_F(SnapshotTest, LoadFailsCleanlyOnMissingDir) {
  auto analyzer = std::make_shared<text::Analyzer>();
  std::shared_ptr<annotate::KnowledgeBase> kb(
      annotate::BuildDemoKnowledgeBase(analyzer.get()));
  RecommendationEngine engine(kb, timeline::TimeSlotScheme::PaperScheme());
  EXPECT_FALSE(LoadEngineSnapshot(dir_ + "/nope", &engine).ok());
  EXPECT_EQ(engine.ad_store().size(), 0u);
  EXPECT_EQ(LoadEngineSnapshot(dir_, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, EmptyEngineRoundTrips) {
  auto analyzer = std::make_shared<text::Analyzer>();
  std::shared_ptr<annotate::KnowledgeBase> kb(
      annotate::BuildDemoKnowledgeBase(analyzer.get()));
  RecommendationEngine engine(kb, timeline::TimeSlotScheme::PaperScheme());
  ASSERT_TRUE(SaveEngineSnapshot(engine, dir_).ok());
  RecommendationEngine restored(kb, timeline::TimeSlotScheme::PaperScheme());
  ASSERT_TRUE(LoadEngineSnapshot(dir_, &restored).ok());
  EXPECT_EQ(restored.ad_store().size(), 0u);
  EXPECT_EQ(restored.profiles().size(), 0u);
}

TEST_F(SnapshotTest, MalformedProfilesRejectedBeforeMutation) {
  std::filesystem::create_directories(dir_);
  // Valid empty ads + impressions, malformed profiles.
  { std::ofstream(dir_ + "/snapshot_ads.tsv"); }
  { std::ofstream(dir_ + "/snapshot_impressions.tsv"); }
  {
    std::ofstream out(dir_ + "/snapshot_profiles.tsv");
    out << "I\t5\t0:1.0\n";  // I before P
  }
  auto analyzer = std::make_shared<text::Analyzer>();
  std::shared_ptr<annotate::KnowledgeBase> kb(
      annotate::BuildDemoKnowledgeBase(analyzer.get()));
  RecommendationEngine engine(kb, timeline::TimeSlotScheme::PaperScheme());
  EXPECT_FALSE(LoadEngineSnapshot(dir_, &engine).ok());
  EXPECT_EQ(engine.profiles().size(), 0u);  // nothing applied
}

}  // namespace
}  // namespace adrec::core
