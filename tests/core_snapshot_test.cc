#include "core/snapshot.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace adrec::core {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("adrec_snap_" + std::to_string(::getpid())))
               .string();
  }
  ~SnapshotTest() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(SnapshotTest, RoundTripPreservesServingState) {
  feed::WorkloadOptions opts;
  opts.seed = 81;
  opts.num_users = 10;
  opts.num_places = 8;
  opts.num_ads = 4;
  opts.days = 3;
  eval::ExperimentSetup setup = eval::BuildExperiment(opts);
  RecommendationEngine& original = *setup.engine;

  // Serve a few impressions so counters are non-trivial.
  for (size_t i = 0; i < 20 && i < setup.workload.tweets.size(); ++i) {
    original.TopKAdsForTweet(setup.workload.tweets[i], 1);
  }

  ASSERT_TRUE(SaveEngineSnapshot(original, dir_).ok());

  RecommendationEngine restored(setup.workload.kb, setup.workload.slots);
  ASSERT_TRUE(LoadEngineSnapshot(dir_, &restored).ok());

  // Ad inventory and impression counters match.
  EXPECT_EQ(restored.ad_store().size(), original.ad_store().size());
  original.ad_store().ForEach([&](const ads::StoredAd& stored) {
    const ads::StoredAd* r = restored.ad_store().Find(stored.ad.id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->impressions_served, stored.impressions_served);
    EXPECT_EQ(r->ad.copy, stored.ad.copy);
    EXPECT_EQ(r->ad.target_locations, stored.ad.target_locations);
  });

  // Profiles match: interests and visit masses at a probe time.
  const Timestamp probe = opts.days * kSecondsPerDay;
  for (UserId user : original.profiles().KnownUsers()) {
    const auto a = original.profiles().InterestsAt(user, probe);
    const auto b = restored.profiles().InterestsAt(user, probe);
    ASSERT_EQ(a.size(), b.size()) << user.value;
    for (size_t i = 0; i < a.entries().size(); ++i) {
      EXPECT_EQ(a.entries()[i].id, b.entries()[i].id);
      EXPECT_NEAR(a.entries()[i].weight, b.entries()[i].weight, 1e-6);
    }
    for (uint32_t s = 0; s < setup.workload.slots.size(); ++s) {
      EXPECT_EQ(original.profiles().TopLocation(user, SlotId(s)),
                restored.profiles().TopLocation(user, SlotId(s)))
          << "user " << user.value << " slot " << s;
    }
  }

  // The streaming path produces identical results post-restore.
  const feed::Tweet& probe_tweet = setup.workload.tweets.back();
  auto orig_ads = original.TopKAdsForTweetExhaustive(probe_tweet, 5);
  auto rest_ads = restored.TopKAdsForTweetExhaustive(probe_tweet, 5);
  ASSERT_EQ(orig_ads.size(), rest_ads.size());
  for (size_t i = 0; i < orig_ads.size(); ++i) {
    EXPECT_EQ(orig_ads[i].ad, rest_ads[i].ad);
    EXPECT_NEAR(orig_ads[i].score, rest_ads[i].score, 1e-6);
  }
}

TEST_F(SnapshotTest, LoadFailsCleanlyOnMissingDir) {
  auto analyzer = std::make_shared<text::Analyzer>();
  std::shared_ptr<annotate::KnowledgeBase> kb(
      annotate::BuildDemoKnowledgeBase(analyzer.get()));
  RecommendationEngine engine(kb, timeline::TimeSlotScheme::PaperScheme());
  EXPECT_FALSE(LoadEngineSnapshot(dir_ + "/nope", &engine).ok());
  EXPECT_EQ(engine.ad_store().size(), 0u);
  EXPECT_EQ(LoadEngineSnapshot(dir_, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, EmptyEngineRoundTrips) {
  auto analyzer = std::make_shared<text::Analyzer>();
  std::shared_ptr<annotate::KnowledgeBase> kb(
      annotate::BuildDemoKnowledgeBase(analyzer.get()));
  RecommendationEngine engine(kb, timeline::TimeSlotScheme::PaperScheme());
  ASSERT_TRUE(SaveEngineSnapshot(engine, dir_).ok());
  RecommendationEngine restored(kb, timeline::TimeSlotScheme::PaperScheme());
  ASSERT_TRUE(LoadEngineSnapshot(dir_, &restored).ok());
  EXPECT_EQ(restored.ad_store().size(), 0u);
  EXPECT_EQ(restored.profiles().size(), 0u);
}

TEST_F(SnapshotTest, MalformedProfilesRejectedBeforeMutation) {
  std::filesystem::create_directories(dir_);
  // Valid empty ads + impressions, malformed profiles.
  { std::ofstream(dir_ + "/snapshot_ads.tsv"); }
  { std::ofstream(dir_ + "/snapshot_impressions.tsv"); }
  {
    std::ofstream out(dir_ + "/snapshot_profiles.tsv");
    out << "I\t5\t0:1.0\n";  // I before P
  }
  auto analyzer = std::make_shared<text::Analyzer>();
  std::shared_ptr<annotate::KnowledgeBase> kb(
      annotate::BuildDemoKnowledgeBase(analyzer.get()));
  RecommendationEngine engine(kb, timeline::TimeSlotScheme::PaperScheme());
  EXPECT_FALSE(LoadEngineSnapshot(dir_, &engine).ok());
  EXPECT_EQ(engine.profiles().size(), 0u);  // nothing applied
}

}  // namespace
}  // namespace adrec::core
