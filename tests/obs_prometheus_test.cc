#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/stats_export.h"

namespace adrec::obs {
namespace {

/// A minimal 0.0.4 exposition checker: every non-comment line must be
/// `name[{label}] value`, every series must follow its own # TYPE line.
void CheckParseable(const std::string& payload) {
  std::string current_family;
  for (std::string_view line : SplitString(payload, '\n')) {
    if (line.empty()) continue;
    if (StartsWith(line, "# TYPE ")) {
      const auto parts = SplitString(line, ' ');
      ASSERT_EQ(parts.size(), 4u) << line;
      current_family = std::string(parts[2]);
      EXPECT_TRUE(parts[3] == "counter" || parts[3] == "gauge" ||
                  parts[3] == "histogram")
          << line;
      continue;
    }
    ASSERT_FALSE(StartsWith(line, "#")) << "unknown comment: " << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string_view::npos) << line;
    const std::string_view series = line.substr(0, space);
    const std::string_view value = line.substr(space + 1);
    // Series must belong to the current TYPE family.
    EXPECT_TRUE(StartsWith(series, current_family))
        << series << " after TYPE " << current_family;
    // Value must parse as a number.
    char* end = nullptr;
    const std::string value_str(value);
    std::strtod(value_str.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
  }
}

TEST(PrometheusExportTest, CountersGetTotalSuffixAndSanitizedNames) {
  MetricsSnapshot snapshot;
  snapshot.counters["engine.tweets"] = 42;
  const std::string out = ExportPrometheus(snapshot);
  EXPECT_NE(out.find("# TYPE adrec_engine_tweets_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("adrec_engine_tweets_total 42\n"), std::string::npos);
  CheckParseable(out);
}

TEST(PrometheusExportTest, GaugesAreVerbatim) {
  MetricsSnapshot snapshot;
  snapshot.gauges["serve.connections_active"] = 3.0;
  const std::string out = ExportPrometheus(snapshot);
  EXPECT_NE(out.find("# TYPE adrec_serve_connections_active gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("adrec_serve_connections_active 3\n"),
            std::string::npos);
}

TEST(PrometheusExportTest, MicrosecondTimersBecomeSeconds) {
  MetricsSnapshot snapshot;
  Histogram h;
  h.Record(1000.0);  // 1000us = 1ms
  h.Record(1000.0);
  snapshot.timers["engine.annotate_us"] = h;
  const std::string out = ExportPrometheus(snapshot);

  // Renamed with base-unit suffix; no _us remnant.
  EXPECT_NE(out.find("# TYPE adrec_engine_annotate_seconds histogram\n"),
            std::string::npos);
  EXPECT_EQ(out.find("annotate_us"), std::string::npos);

  // The sum is scaled to seconds: 2000us → 0.002s.
  EXPECT_NE(out.find("adrec_engine_annotate_seconds_sum 0.002\n"),
            std::string::npos);
  EXPECT_NE(out.find("adrec_engine_annotate_seconds_count 2\n"),
            std::string::npos);
  // Bucket bounds are scaled too: every le is well under one second.
  EXPECT_EQ(out.find("le=\"1000"), std::string::npos);
  CheckParseable(out);
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeAndEndWithInf) {
  MetricsSnapshot snapshot;
  Histogram h;
  h.Record(1.0);
  h.Record(100.0);
  h.Record(10000.0);
  snapshot.timers["serve.cmd_topk_us"] = h;
  const std::string out = ExportPrometheus(snapshot);

  // Collect the bucket counts in order; they must be non-decreasing and
  // finish at the +Inf bucket with the total count.
  std::vector<uint64_t> counts;
  for (std::string_view line : SplitString(out, '\n')) {
    if (line.find("_bucket{") == std::string_view::npos) continue;
    const size_t space = line.rfind(' ');
    counts.push_back(
        std::strtoull(std::string(line.substr(space + 1)).c_str(),
                      nullptr, 10));
  }
  ASSERT_GE(counts.size(), 2u);
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], counts[i - 1]);
  }
  EXPECT_EQ(counts.back(), 3u);  // +Inf == _count
  EXPECT_NE(out.find("_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
}

TEST(PrometheusExportTest, FullRegistryRoundIsParseable) {
  MetricRegistry registry;
  registry.GetCounter("engine.tweets")->Inc(10);
  registry.GetCounter("serve.bytes_in")->Inc(1 << 20);
  registry.GetGauge("tfca.lattice_size")->Set(128);
  Timer* t = registry.GetTimer("engine.topk_us");
  for (int i = 1; i <= 100; ++i) t->Record(static_cast<double>(i));
  CheckParseable(ExportPrometheus(registry.Snapshot()));
}

TEST(PrometheusExportTest, EmptySnapshotIsEmptyPayload) {
  EXPECT_EQ(ExportPrometheus(MetricsSnapshot{}), "");
}

// A timer that exists but was never recorded (a daemon scraped before
// its first request) must still expose a complete, parseable histogram:
// zero count, zero sum, and a zero +Inf bucket — not a missing family.
TEST(PrometheusExportTest, EmptyHistogramExposesZeroSeries) {
  MetricRegistry registry;
  registry.GetTimer("serve.cmd_trace_us");  // created, never recorded
  const std::string out = ExportPrometheus(registry.Snapshot());

  EXPECT_NE(out.find("# TYPE adrec_serve_cmd_trace_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("adrec_serve_cmd_trace_seconds_count 0\n"),
            std::string::npos);
  EXPECT_NE(out.find("adrec_serve_cmd_trace_seconds_sum 0\n"),
            std::string::npos);
  EXPECT_NE(out.find("_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  CheckParseable(out);
}

// The exposition is sparse: zero-count interior buckets are skipped
// (Prometheus's cumulative-bucket semantics tolerate missing `le`s).
// Samples far apart — a run of empty buckets between them — must still
// yield a monotone cumulative run, strictly ascending bounds, and a
// +Inf bucket equal to _count.
TEST(PrometheusExportTest, ZeroCountBucketsSkipSafely) {
  MetricsSnapshot snapshot;
  Histogram h;
  h.Record(1.0);  // lowest bucket
  h.Record(1e6);  // far up the range; everything between is zero-count
  snapshot.timers["wal.fsync_us"] = h;
  const std::string out = ExportPrometheus(snapshot);

  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  for (std::string_view line : SplitString(out, '\n')) {
    const size_t le = line.find("_bucket{le=\"");
    if (le == std::string_view::npos) continue;
    const std::string bound(line.substr(le + 12, line.find('"', le + 12)));
    bounds.push_back(bound.substr(0, 4) == "+Inf"
                         ? std::numeric_limits<double>::infinity()
                         : std::strtod(bound.c_str(), nullptr));
    counts.push_back(std::strtoull(
        std::string(line.substr(line.rfind(' ') + 1)).c_str(), nullptr, 10));
  }
  ASSERT_GE(counts.size(), 3u);  // two samples + +Inf, empty run skipped
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], counts[i - 1]) << "cumulative count regressed";
    EXPECT_GT(bounds[i], bounds[i - 1]) << "bucket bounds not ascending";
  }
  for (size_t i = 0; i + 1 < counts.size(); ++i) {
    EXPECT_GT(counts[i], 0u) << "sparse exposition leaked an empty bucket";
  }
  EXPECT_EQ(counts.back(), 2u);  // +Inf == _count
  CheckParseable(out);
}

// Raw metric names with characters Prometheus forbids must survive the
// JSON report round-trip verbatim (the JSON carries raw names) and then
// sanitise identically on exposition — the `stats.json` a daemon writes
// and the `metrics` payload it serves must never disagree on a name.
TEST(PrometheusExportTest, NameSanitisationRoundTripsThroughParseJson) {
  MetricRegistry registry;
  registry.GetCounter("serve.cmd-weird/name.events")->Inc(7);
  registry.GetGauge("replica.lag ms")->Set(2.5);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string prom = ExportPrometheus(snapshot);
  EXPECT_NE(prom.find("adrec_serve_cmd_weird_name_events_total 7\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_replica_lag_ms 2.5\n"), std::string::npos);
  CheckParseable(prom);

  // Through the JSON reporter and back: raw names intact.
  const StatsReport report = BuildReport(snapshot);
  const std::string json = ExportJson(report);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(ExportJson(parsed.value()), json);
  ASSERT_EQ(parsed.value().counters.count("serve.cmd-weird/name.events"), 1u);
  EXPECT_EQ(parsed.value().counters.at("serve.cmd-weird/name.events"), 7u);
  ASSERT_EQ(parsed.value().gauges.count("replica.lag ms"), 1u);
  EXPECT_EQ(parsed.value().gauges.at("replica.lag ms"), 2.5);

  // Re-exposing the parsed counters yields the same sanitised families.
  MetricsSnapshot round;
  for (const auto& [name, value] : parsed.value().counters) {
    round.counters[name] = static_cast<int64_t>(value);
  }
  for (const auto& [name, value] : parsed.value().gauges) {
    round.gauges[name] = value;
  }
  const std::string prom2 = ExportPrometheus(round);
  EXPECT_NE(prom2.find("adrec_serve_cmd_weird_name_events_total 7\n"),
            std::string::npos);
  EXPECT_NE(prom2.find("adrec_replica_lag_ms 2.5\n"), std::string::npos);
}

// The topk cache's metric families (PR: --topk-cache): counters get the
// adrec_ prefix and _total suffix, the hit-ratio gauge keeps its raw
// value, and the lookup/fill timers expose as _seconds histograms — and
// all of them survive the JSON round-trip with raw names intact.
TEST(PrometheusExportTest, CacheMetricFamiliesExposeAndRoundTrip) {
  MetricRegistry registry;
  registry.GetCounter("cache.hits")->Inc(9);
  registry.GetCounter("cache.misses")->Inc(3);
  registry.GetCounter("cache.invalidations")->Inc(2);
  registry.GetCounter("cache.evictions")->Inc(1);
  registry.GetGauge("cache.hit_ratio")->Set(0.75);
  registry.GetTimer("cache.lookup_us")->Record(12.5);
  registry.GetTimer("cache.fill_us")->Record(80.0);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string prom = ExportPrometheus(snapshot);
  EXPECT_NE(prom.find("# TYPE adrec_cache_hits_total counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_cache_hits_total 9\n"), std::string::npos);
  EXPECT_NE(prom.find("adrec_cache_misses_total 3\n"), std::string::npos);
  EXPECT_NE(prom.find("adrec_cache_invalidations_total 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_cache_evictions_total 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE adrec_cache_hit_ratio gauge\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_cache_hit_ratio 0.75\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE adrec_cache_lookup_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_cache_lookup_seconds_count 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE adrec_cache_fill_seconds histogram\n"),
            std::string::npos);
  CheckParseable(prom);

  const StatsReport report = BuildReport(snapshot);
  auto parsed = ParseJson(ExportJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().counters.at("cache.hits"), 9u);
  EXPECT_EQ(parsed.value().gauges.at("cache.hit_ratio"), 0.75);
  ASSERT_EQ(parsed.value().timers.count("cache.lookup_us"), 1u);
  EXPECT_EQ(parsed.value().timers.at("cache.lookup_us").count, 1u);
}

// The checkpoint saver's and WAL compactor's metric families (PR:
// --checkpoint-mode=delta): save counters get the adrec_ prefix and
// _total suffix, the delta-chain-length gauge keeps its raw value, the
// save/run timers expose as _seconds histograms, and raw names survive
// the JSON round-trip.
TEST(PrometheusExportTest, CheckpointMetricFamiliesExposeAndRoundTrip) {
  MetricRegistry registry;
  registry.GetCounter("checkpoint.saves")->Inc(4);
  registry.GetCounter("checkpoint.rebases")->Inc(1);
  registry.GetCounter("checkpoint.files_written")->Inc(12);
  registry.GetCounter("checkpoint.bytes_written")->Inc(65536);
  registry.GetGauge("checkpoint.delta_chain_len")->Set(3);
  registry.GetTimer("checkpoint.save_ms")->Record(7.5);
  registry.GetCounter("compact.runs")->Inc(2);
  registry.GetCounter("compact.segments_in")->Inc(6);
  registry.GetCounter("compact.segments_out")->Inc(2);
  registry.GetCounter("compact.records_dropped")->Inc(40);
  registry.GetCounter("compact.bytes_reclaimed")->Inc(2048);
  registry.GetTimer("compact.run_us")->Record(900.0);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string prom = ExportPrometheus(snapshot);
  EXPECT_NE(prom.find("# TYPE adrec_checkpoint_saves_total counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_checkpoint_saves_total 4\n"), std::string::npos);
  EXPECT_NE(prom.find("adrec_checkpoint_rebases_total 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_checkpoint_files_written_total 12\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_checkpoint_bytes_written_total 65536\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE adrec_checkpoint_delta_chain_len gauge\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_checkpoint_delta_chain_len 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE adrec_checkpoint_save_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_checkpoint_save_seconds_count 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_compact_runs_total 2\n"), std::string::npos);
  EXPECT_NE(prom.find("adrec_compact_records_dropped_total 40\n"),
            std::string::npos);
  EXPECT_NE(prom.find("adrec_compact_bytes_reclaimed_total 2048\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE adrec_compact_run_seconds histogram\n"),
            std::string::npos);
  CheckParseable(prom);

  const StatsReport report = BuildReport(snapshot);
  auto parsed = ParseJson(ExportJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().counters.at("checkpoint.saves"), 4u);
  EXPECT_EQ(parsed.value().counters.at("compact.records_dropped"), 40u);
  EXPECT_EQ(parsed.value().gauges.at("checkpoint.delta_chain_len"), 3.0);
  ASSERT_EQ(parsed.value().timers.count("checkpoint.save_ms"), 1u);
  EXPECT_EQ(parsed.value().timers.at("checkpoint.save_ms").count, 1u);
}

// The cache trace span names (cache.lookup, cache.fill, and the
// engine's cached-charge probe) follow the span-name grammar the trace
// exporters rely on: single token, no whitespace, no tabs.
TEST(PrometheusExportTest, CacheSpanNamesAreSingleCleanTokens) {
  for (const std::string name :
       {"cache.lookup", "cache.fill", "engine.topk_cached"}) {
    EXPECT_EQ(name.find(' '), std::string::npos) << name;
    EXPECT_EQ(name.find('\t'), std::string::npos) << name;
    EXPECT_EQ(name.find('\n'), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace adrec::obs
