#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fca/formal_context.h"
#include "fca/fuzzy_context.h"
#include "fca/lattice.h"

namespace adrec::fca {
namespace {

// Brute-force concept enumeration: all maximal rectangles, via all subsets
// of attributes (exponential; tiny contexts only).
std::vector<Concept> BruteForceConcepts(const FormalContext& ctx) {
  std::set<std::vector<uint32_t>> seen_intents;
  std::vector<Concept> out;
  const size_t m = ctx.num_attributes();
  for (uint64_t mask = 0; mask < (1ull << m); ++mask) {
    Bitset attrs(m);
    for (size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1) attrs.Set(i);
    }
    Bitset intent = ctx.CloseAttributes(attrs);
    if (seen_intents.insert(intent.ToVector()).second) {
      out.push_back(Concept{ctx.DeriveAttributes(intent), intent});
    }
  }
  return out;
}

bool SameConceptSet(std::vector<Concept> a, std::vector<Concept> b) {
  auto key = [](const Concept& c) {
    return std::make_pair(c.extent.ToVector(), c.intent.ToVector());
  };
  auto cmp = [&](const Concept& x, const Concept& y) {
    return key(x) < key(y);
  };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

TEST(FormalContextTest, DerivationsOnKnownContext) {
  // Objects: 0,1,2. Attributes: a=0 (all), b=1 (0,1), c=2 (2 only).
  FormalContext ctx(3, 3);
  ctx.Set(0, 0);
  ctx.Set(1, 0);
  ctx.Set(2, 0);
  ctx.Set(0, 1);
  ctx.Set(1, 1);
  ctx.Set(2, 2);

  EXPECT_TRUE(ctx.Incidence(0, 0));
  EXPECT_FALSE(ctx.Incidence(0, 2));

  // {0,1}' = {a,b}
  Bitset objs = Bitset::FromIndices(3, {0, 1});
  EXPECT_EQ(ctx.DeriveObjects(objs).ToVector(),
            (std::vector<uint32_t>{0, 1}));
  // {a}' = all objects
  Bitset attr_a = Bitset::FromIndices(3, {0});
  EXPECT_EQ(ctx.DeriveAttributes(attr_a).Count(), 3u);
  // {b,c}' = ∅, closure = full attribute set
  Bitset bc = Bitset::FromIndices(3, {1, 2});
  EXPECT_TRUE(ctx.DeriveAttributes(bc).Empty());
  EXPECT_EQ(ctx.CloseAttributes(bc).Count(), 3u);
}

TEST(FormalContextTest, EmptyDerivations) {
  FormalContext ctx(3, 2);
  // ∅ of objects derives all attributes; ∅ of attributes derives all objects.
  EXPECT_EQ(ctx.DeriveObjects(Bitset(3)).Count(), 2u);
  EXPECT_EQ(ctx.DeriveAttributes(Bitset(2)).Count(), 3u);
}

TEST(NextClosureTest, MatchesBruteForceOnHandContext) {
  FormalContext ctx(4, 4);
  // A small "animals" style context.
  ctx.Set(0, 0);
  ctx.Set(0, 1);
  ctx.Set(1, 0);
  ctx.Set(1, 2);
  ctx.Set(2, 1);
  ctx.Set(2, 2);
  ctx.Set(3, 0);
  ctx.Set(3, 1);
  ctx.Set(3, 3);
  auto mined = EnumerateConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(SameConceptSet(mined.value(), BruteForceConcepts(ctx)));
}

class NextClosureRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(NextClosureRandomTest, MatchesBruteForceOnRandomContexts) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t objects = 1 + rng.NextBounded(7);
  const size_t attrs = 1 + rng.NextBounded(8);
  FormalContext ctx(objects, attrs);
  for (size_t g = 0; g < objects; ++g) {
    for (size_t m = 0; m < attrs; ++m) {
      if (rng.NextBool(0.4)) ctx.Set(g, m);
    }
  }
  auto mined = EnumerateConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(SameConceptSet(mined.value(), BruteForceConcepts(ctx)))
      << "seed " << GetParam() << " objects=" << objects
      << " attrs=" << attrs;
}

INSTANTIATE_TEST_SUITE_P(RandomContexts, NextClosureRandomTest,
                         ::testing::Range(1, 33));

TEST(NextClosureTest, EmptyContextHasOneConcept) {
  FormalContext ctx(3, 3);  // no incidences
  auto mined = EnumerateConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  // Concepts: (G, ∅) and (∅, M).
  EXPECT_EQ(mined.value().size(), 2u);
}

TEST(NextClosureTest, FullContextHasOneConcept) {
  FormalContext ctx(2, 2);
  for (size_t g = 0; g < 2; ++g)
    for (size_t m = 0; m < 2; ++m) ctx.Set(g, m);
  auto mined = EnumerateConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().size(), 1u);  // (G, M) only
}

TEST(NextClosureTest, RespectsConceptCap) {
  // A contranominal scale (complement of identity) has 2^n concepts.
  const size_t n = 10;
  FormalContext ctx(n, n);
  for (size_t g = 0; g < n; ++g) {
    for (size_t m = 0; m < n; ++m) {
      if (g != m) ctx.Set(g, m);
    }
  }
  EnumerateOptions opts;
  opts.max_concepts = 100;
  auto mined = EnumerateConcepts(ctx, opts);
  ASSERT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), StatusCode::kResourceExhausted);
}

TEST(NextClosureTest, ContranominalScaleCountIsPowerOfTwo) {
  const size_t n = 6;
  FormalContext ctx(n, n);
  for (size_t g = 0; g < n; ++g) {
    for (size_t m = 0; m < n; ++m) {
      if (g != m) ctx.Set(g, m);
    }
  }
  auto mined = EnumerateConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().size(), 1u << n);
}

TEST(ConceptInvariantTest, ExtentIntentAreClosedFixpoints) {
  Rng rng(77);
  FormalContext ctx(6, 6);
  for (size_t g = 0; g < 6; ++g)
    for (size_t m = 0; m < 6; ++m)
      if (rng.NextBool(0.5)) ctx.Set(g, m);
  auto mined = EnumerateConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  for (const Concept& c : mined.value()) {
    EXPECT_EQ(ctx.DeriveObjects(c.extent), c.intent);
    EXPECT_EQ(ctx.DeriveAttributes(c.intent), c.extent);
  }
}

TEST(FuzzyContextTest, DegreesClampAndKeepMax) {
  FuzzyContext f(2, 2);
  f.SetDegree(0, 0, 0.5);
  f.SetDegree(0, 0, 0.3);  // lower value does not overwrite
  EXPECT_DOUBLE_EQ(f.Degree(0, 0), 0.5);
  f.SetDegree(0, 0, 0.9);
  EXPECT_DOUBLE_EQ(f.Degree(0, 0), 0.9);
  f.SetDegree(1, 1, 7.0);  // clamped
  EXPECT_DOUBLE_EQ(f.Degree(1, 1), 1.0);
  f.SetDegree(1, 0, -2.0);
  EXPECT_DOUBLE_EQ(f.Degree(1, 0), 0.0);
}

TEST(FuzzyContextTest, AlphaCutIsInclusiveAndMonotone) {
  FuzzyContext f(2, 2);
  f.SetDegree(0, 0, 1.0);
  f.SetDegree(0, 1, 0.6);
  f.SetDegree(1, 0, 0.2);
  FormalContext c06 = f.AlphaCut(0.6);
  EXPECT_TRUE(c06.Incidence(0, 0));
  EXPECT_TRUE(c06.Incidence(0, 1));  // inclusive boundary
  EXPECT_FALSE(c06.Incidence(1, 0));
  FormalContext c07 = f.AlphaCut(0.7);
  EXPECT_FALSE(c07.Incidence(0, 1));
  // Monotonicity: higher alpha ⇒ fewer incidences.
  FormalContext c00 = f.AlphaCut(0.0);
  size_t count00 = 0, count07 = 0;
  for (size_t g = 0; g < 2; ++g)
    for (size_t m = 0; m < 2; ++m) {
      count00 += c00.Incidence(g, m);
      count07 += c07.Incidence(g, m);
    }
  EXPECT_GE(count00, count07);
  EXPECT_EQ(count00, 4u);  // alpha=0 includes the never-set zero cells too
}

TEST(LatticeTest, HandContextStructure) {
  // Objects {0,1}, attributes {a,b}: 0 has a, 1 has b.
  FormalContext ctx(2, 2);
  ctx.Set(0, 0);
  ctx.Set(1, 1);
  auto built = ConceptLattice::Build(ctx);
  ASSERT_TRUE(built.ok());
  const ConceptLattice& lat = built.value();
  // Concepts: (∅,{a,b}), ({0},{a}), ({1},{b}), ({0,1},∅) — a diamond.
  ASSERT_EQ(lat.size(), 4u);
  EXPECT_EQ(lat.concepts()[lat.TopIndex()].extent.Count(), 2u);
  EXPECT_EQ(lat.concepts()[lat.BottomIndex()].extent.Count(), 0u);
  EXPECT_EQ(lat.UpperCovers(lat.BottomIndex()).size(), 2u);
  EXPECT_EQ(lat.LowerCovers(lat.TopIndex()).size(), 2u);
  EXPECT_TRUE(lat.LessEqual(lat.BottomIndex(), lat.TopIndex()));
  EXPECT_FALSE(lat.LessEqual(lat.TopIndex(), lat.BottomIndex()));
}

TEST(LatticeTest, ChainContext) {
  // Nested extents produce a chain: attr i held by objects {i, .., n-1}.
  const size_t n = 4;
  FormalContext ctx(n, n);
  for (size_t m = 0; m < n; ++m) {
    for (size_t g = m; g < n; ++g) ctx.Set(g, m);
  }
  auto built = ConceptLattice::Build(ctx);
  ASSERT_TRUE(built.ok());
  const ConceptLattice& lat = built.value();
  // Every non-top concept has exactly one upper cover in a chain.
  for (size_t i = 0; i < lat.size(); ++i) {
    if (i != lat.TopIndex()) {
      EXPECT_EQ(lat.UpperCovers(i).size(), 1u) << i;
    }
  }
}

TEST(LatticeTest, CoversAreIrreflexiveAndConsistent) {
  Rng rng(99);
  FormalContext ctx(6, 5);
  for (size_t g = 0; g < 6; ++g)
    for (size_t m = 0; m < 5; ++m)
      if (rng.NextBool(0.45)) ctx.Set(g, m);
  auto built = ConceptLattice::Build(ctx);
  ASSERT_TRUE(built.ok());
  const ConceptLattice& lat = built.value();
  for (size_t i = 0; i < lat.size(); ++i) {
    for (size_t j : lat.UpperCovers(i)) {
      EXPECT_NE(i, j);
      EXPECT_TRUE(lat.LessEqual(i, j));
      // Mutual registration.
      const auto& lower = lat.LowerCovers(j);
      EXPECT_NE(std::find(lower.begin(), lower.end(), i), lower.end());
    }
  }
}

}  // namespace
}  // namespace adrec::fca
