// End-to-end flight-recorder coverage over real sockets: a WAL-backed
// daemon with a TraceCollector attached must produce, for every wire
// request, a span tree covering serve dispatch → engine stages → the
// WAL commit wave (and replica apply, for a follower pair) — plus the
// `trace` / `slow` / `conns` operational verbs that expose it.

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "feed/workload.h"
#include "obs/trace.h"
#include "replica/follower.h"
#include "serve/client.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace adrec::serve {
namespace {

using std::chrono::steady_clock;

/// Finds the first trace whose captured request line starts with
/// `prefix`; nullptr when none does.
const obs::TraceRecord* FindTrace(const std::vector<obs::TraceRecord>& traces,
                                  std::string_view prefix) {
  for (const obs::TraceRecord& rec : traces) {
    if (StartsWith(rec.detail, prefix)) return &rec;
  }
  return nullptr;
}

/// Index (1-based span token) of the first span named `name`; 0 if none.
uint32_t SpanIndex(const obs::TraceRecord& rec, std::string_view name) {
  for (uint32_t i = 0; i < rec.num_spans; ++i) {
    if (rec.spans[i].name != nullptr && name == rec.spans[i].name) {
      return i + 1;
    }
  }
  return 0;
}

/// The structural invariants every exported trace must satisfy: spans
/// fit inside the root duration, children fit inside their parents, and
/// the children of any one parent sum to no more than that parent.
void CheckSpanTreeInvariants(const obs::TraceRecord& rec) {
  for (uint32_t i = 0; i < rec.num_spans; ++i) {
    const obs::SpanRecord& span = rec.spans[i];
    ASSERT_NE(span.name, nullptr);
    EXPECT_LE(span.start_ns + span.dur_ns, rec.dur_ns)
        << span.name << " escapes the root";
    ASSERT_LE(span.parent, rec.num_spans);
    ASSERT_NE(span.parent, i + 1) << span.name << " is its own parent";
    if (span.parent != 0) {
      const obs::SpanRecord& parent = rec.spans[span.parent - 1];
      EXPECT_GE(span.start_ns, parent.start_ns)
          << span.name << " starts before " << parent.name;
      EXPECT_LE(span.start_ns + span.dur_ns, parent.start_ns + parent.dur_ns)
          << span.name << " escapes " << parent.name;
    }
  }
  for (uint32_t parent = 0; parent <= rec.num_spans; ++parent) {
    uint64_t child_sum = 0;
    for (uint32_t i = 0; i < rec.num_spans; ++i) {
      if (rec.spans[i].parent == parent) child_sum += rec.spans[i].dur_ns;
    }
    const uint64_t budget =
        parent == 0 ? rec.dur_ns : rec.spans[parent - 1].dur_ns;
    EXPECT_LE(child_sum, budget) << "children of "
                                 << (parent == 0 ? "<root>"
                                                 : rec.spans[parent - 1].name)
                                 << " oversubscribe it";
  }
}

class ServeTraceTest : public ::testing::Test {
 protected:
  ServeTraceTest() {
    base_dir_ =
        (std::filesystem::temp_directory_path() /
         ("adrec_servetrace_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    std::filesystem::remove_all(base_dir_);
    std::filesystem::create_directories(base_dir_);

    opts_.seed = 717;
    opts_.num_users = 12;
    opts_.num_places = 8;
    opts_.num_ads = 3;
    opts_.days = 2;
    workload_ = feed::GenerateWorkload(opts_);
  }
  ~ServeTraceTest() override {
    StopServer();
    std::filesystem::remove_all(base_dir_);
  }

  /// Starts a WAL-backed daemon with the given collector (nullptr runs
  /// without tracing, for the disabled-verb test).
  void StartServer(obs::TraceCollector* tracer,
                   ServerOptions options = ServerOptions()) {
    engine_ = std::make_unique<core::ShardedEngine>(workload_.kb,
                                                    workload_.slots, 1);
    wal::WalOptions wal_options;
    wal_options.sync = wal::SyncPolicy::kNone;
    auto writer = wal::WalWriter::Open(base_dir_ + "/wal", wal_options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    wal_ = std::move(writer).value();

    options.wal = wal_.get();
    options.tracer = tracer;
    server_ = std::make_unique<Server>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    thread_ = std::thread([this] { server_->Run(); });
  }

  void StopServer() {
    if (!server_) return;
    server_->RequestDrain();
    if (thread_.joinable()) thread_.join();
    server_.reset();
    wal_.reset();
  }

  Client Connected() {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  int RawConnect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  }

  /// Keep-everything collector options: no sampling, nothing "slow".
  static obs::TraceCollectorOptions KeepAll() {
    obs::TraceCollectorOptions topts;
    topts.sample_every = 1;
    topts.slow_us = 1e12;
    return topts;
  }

  /// Collectors live in the fixture, not the test body: the fixture
  /// destructor joins the server thread (StopServer) before members are
  /// destroyed, whereas a TestBody local dies first and races with
  /// in-flight TraceCollector::Finish calls on the server thread.
  obs::TraceCollector& NewCollector(
      obs::TraceCollectorOptions topts = KeepAll()) {
    collectors_.push_back(std::make_unique<obs::TraceCollector>(topts));
    return *collectors_.back();
  }

  /// Drives one of each request shape through a connected client.
  void IngestAndQuery(Client* client) {
    ASSERT_TRUE(client->PutAd(workload_.ads[0]).ok());
    ASSERT_TRUE(client->SendTweet(workload_.tweets[0]).ok());
    ASSERT_TRUE(client->SendCheckIn(workload_.check_ins[0]).ok());
    auto topk = client->TopK(workload_.tweets[0].user, 3);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  }

  std::string base_dir_;
  feed::WorkloadOptions opts_;
  feed::Workload workload_;
  std::unique_ptr<core::ShardedEngine> engine_;
  std::unique_ptr<wal::WalWriter> wal_;
  std::vector<std::unique_ptr<obs::TraceCollector>> collectors_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

// The tentpole proof: a wire `tweet` yields a trace whose span tree
// covers serve (parse + dispatch) → engine (annotate, profile update)
// → WAL (append + the group-commit wave), with the engine stages nested
// under the dispatch span and everything inside the root duration.
TEST_F(ServeTraceTest, IngestTraceCoversServeEngineAndWal) {
  auto& collector = NewCollector();
  StartServer(&collector);
  Client client = Connected();
  IngestAndQuery(&client);

  const auto traces = collector.Recent();
  const obs::TraceRecord* tweet = FindTrace(traces, "tweet\t");
  ASSERT_NE(tweet, nullptr) << "no tweet trace in "
                            << obs::ExportTracesTsv(traces);
  CheckSpanTreeInvariants(*tweet);
  EXPECT_EQ(tweet->outcome, obs::TraceOutcome::kOk);

  const uint32_t parse = SpanIndex(*tweet, "serve.parse");
  const uint32_t append = SpanIndex(*tweet, "wal.append");
  const uint32_t dispatch = SpanIndex(*tweet, "serve.dispatch");
  const uint32_t annotate = SpanIndex(*tweet, "engine.annotate");
  const uint32_t profile = SpanIndex(*tweet, "engine.profile_update");
  const uint32_t wave = SpanIndex(*tweet, "wal.commit_wave");
  ASSERT_NE(parse, 0u);
  ASSERT_NE(append, 0u);
  ASSERT_NE(dispatch, 0u);
  ASSERT_NE(annotate, 0u);
  ASSERT_NE(profile, 0u);
  ASSERT_NE(wave, 0u);

  // Engine stages nest under the dispatch span; the serve-level spans
  // are children of the root.
  EXPECT_EQ(tweet->spans[annotate - 1].parent, dispatch);
  EXPECT_EQ(tweet->spans[profile - 1].parent, dispatch);
  EXPECT_EQ(tweet->spans[parse - 1].parent, 0u);
  EXPECT_EQ(tweet->spans[append - 1].parent, 0u);
  EXPECT_EQ(tweet->spans[wave - 1].parent, 0u);

  // The wave resolves after execution: the root duration extends to the
  // commit barrier, past the end of the dispatch span.
  const obs::SpanRecord& d = tweet->spans[dispatch - 1];
  EXPECT_GE(tweet->dur_ns, d.start_ns + d.dur_ns);
}

TEST_F(ServeTraceTest, QueryTraceNestsEngineTopkWithoutWalSpans) {
  auto& collector = NewCollector();
  StartServer(&collector);
  Client client = Connected();
  IngestAndQuery(&client);

  const auto traces = collector.Recent();
  const obs::TraceRecord* topk = FindTrace(traces, "topk\t");
  ASSERT_NE(topk, nullptr);
  CheckSpanTreeInvariants(*topk);

  const uint32_t dispatch = SpanIndex(*topk, "serve.dispatch");
  const uint32_t engine_topk = SpanIndex(*topk, "engine.topk");
  ASSERT_NE(dispatch, 0u);
  ASSERT_NE(engine_topk, 0u);
  EXPECT_EQ(topk->spans[engine_topk - 1].parent, dispatch);
  // Reads don't touch the log.
  EXPECT_EQ(SpanIndex(*topk, "wal.append"), 0u);
  EXPECT_EQ(SpanIndex(*topk, "wal.commit_wave"), 0u);
}

TEST_F(ServeTraceTest, AnalyzeTraceCarriesSubPhaseSpans) {
  auto& collector = NewCollector();
  StartServer(&collector);
  Client client = Connected();
  IngestAndQuery(&client);
  ASSERT_TRUE(client.Analyze(0.45).ok());

  const auto traces = collector.Recent();
  const obs::TraceRecord* analyze = FindTrace(traces, "analyze");
  ASSERT_NE(analyze, nullptr);
  CheckSpanTreeInvariants(*analyze);
  const uint32_t analysis = SpanIndex(*analyze, "engine.analysis");
  ASSERT_NE(analysis, 0u);
  for (const char* phase :
       {"engine.analysis.build", "engine.analysis.trias_location",
        "engine.analysis.trias_topic", "engine.analysis.decode"}) {
    const uint32_t idx = SpanIndex(*analyze, phase);
    ASSERT_NE(idx, 0u) << phase;
    EXPECT_EQ(analyze->spans[idx - 1].parent, analysis) << phase;
  }
}

TEST_F(ServeTraceTest, TraceVerbReturnsTsvOverTheWire) {
  auto& collector = NewCollector();
  StartServer(&collector);
  Client client = Connected();
  IngestAndQuery(&client);

  auto tsv = client.Trace();
  ASSERT_TRUE(tsv.ok()) << tsv.status().ToString();
  EXPECT_NE(tsv.value().find("TRACE\t"), std::string::npos);
  EXPECT_NE(tsv.value().find("SPAN\t"), std::string::npos);
  EXPECT_NE(tsv.value().find("engine.topk"), std::string::npos);
  EXPECT_NE(tsv.value().find("wal.commit_wave"), std::string::npos);
}

TEST_F(ServeTraceTest, TraceChromeOverTheWireIsLoadableJson) {
  auto& collector = NewCollector();
  StartServer(&collector);
  Client client = Connected();
  IngestAndQuery(&client);

  auto json = client.Trace(/*chrome=*/true);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  const std::string& payload = json.value();
  EXPECT_EQ(payload.front(), '{');
  EXPECT_NE(payload.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(payload.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(payload.find("\"engine.annotate\""), std::string::npos);

  // Structurally valid JSON: balanced containers, no raw control bytes
  // outside strings (Perfetto's parser rejects both).
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < payload.size(); ++i) {
    const char c = payload[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else {
        ASSERT_GE(static_cast<unsigned char>(c), 0x20u) << "ctrl at " << i;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') stack.push_back('}');
    if (c == '[') stack.push_back(']');
    if (c == '}' || c == ']') {
      ASSERT_FALSE(stack.empty());
      ASSERT_EQ(stack.back(), c);
      stack.pop_back();
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

TEST_F(ServeTraceTest, SlowThresholdPinsTracesIntoSlowLog) {
  obs::TraceCollectorOptions topts;
  topts.sample_every = 1000000;  // sampling alone would keep nothing
  topts.slow_us = 0.0;           // every request counts as slow
  auto& collector = NewCollector(topts);
  StartServer(&collector);
  Client client = Connected();
  IngestAndQuery(&client);

  auto slow = client.Slow();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_NE(slow.value().find("TRACE\t"), std::string::npos);
  EXPECT_NE(slow.value().find("\ttopk\t"), std::string::npos);
  EXPECT_GT(collector.metrics()
                .Snapshot()
                .counters.at("trace.traces_pinned_slow"),
            0);
}

TEST_F(ServeTraceTest, ParseErrorTraceIsPinnedWithReason) {
  obs::TraceCollectorOptions topts;
  topts.sample_every = 1000000;  // only the pinned path can retain it
  auto& collector = NewCollector(topts);
  StartServer(&collector);
  Client client = Connected();
  auto reply = client.Command("tweet\tnot-enough-fields");
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(StartsWith(reply.value(), "CLIENT_ERROR"));

  const auto slow = collector.Slow();
  const obs::TraceRecord* bad = FindTrace(slow, "tweet\tnot-enough");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->outcome, obs::TraceOutcome::kError);
  EXPECT_TRUE(StartsWith(bad->reason, "CLIENT_ERROR"))
      << "reason: " << bad->reason;
}

TEST_F(ServeTraceTest, ShedRequestIsPinnedWithBusyReason) {
  obs::TraceCollectorOptions topts;
  topts.sample_every = 1000000;
  auto& collector = NewCollector(topts);
  ServerOptions options;
  options.max_inflight_bytes = 0;  // any queued reply sheds the next cmd
  StartServer(&collector, options);

  // Pipelined pings over a raw socket: the first reply is still queued
  // when the later commands dispatch, so they shed.
  const int fd = RawConnect();
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += "ping\r\n";
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));

  const obs::TraceRecord* shed = nullptr;
  const auto deadline = steady_clock::now() + std::chrono::seconds(5);
  std::vector<obs::TraceRecord> slow;
  while (shed == nullptr && steady_clock::now() < deadline) {
    slow = collector.Slow();
    shed = FindTrace(slow, "ping");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  ASSERT_NE(shed, nullptr) << "no shed trace pinned";
  EXPECT_EQ(shed->outcome, obs::TraceOutcome::kShed);
  EXPECT_STREQ(shed->reason, "SERVER_ERROR busy");
}

TEST_F(ServeTraceTest, ConnsVerbReportsPerConnectionDiagnostics) {
  auto& collector = NewCollector();
  StartServer(&collector);
  Client client = Connected();
  ASSERT_TRUE(client.Ping().ok());

  auto reply = client.Command("conns");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const std::string& out = reply.value();
  EXPECT_TRUE(StartsWith(out, "CONNS ")) << out;
  EXPECT_NE(out.find("\nCONN "), std::string::npos);
  // The conns command itself is the connection's latest verb by the
  // time the report renders — self-observation.
  EXPECT_NE(out.find("last=conns"), std::string::npos);
  EXPECT_NE(out.find("cmds="), std::string::npos);
  EXPECT_NE(out.find("bytes_in="), std::string::npos);
  EXPECT_NE(out.find("flags=self"), std::string::npos);
}

TEST_F(ServeTraceTest, TraceVerbWithoutCollectorFailsCleanly) {
  StartServer(nullptr);
  Client client = Connected();
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_FALSE(client.Trace().ok());
  EXPECT_FALSE(client.Slow().ok());
  // conns needs no collector.
  auto conns = client.Command("conns");
  ASSERT_TRUE(conns.ok());
  EXPECT_TRUE(StartsWith(conns.value(), "CONNS "));
}

TEST_F(ServeTraceTest, TracerMetricsJoinTheExposition) {
  auto& collector = NewCollector();
  StartServer(&collector);
  Client client = Connected();
  IngestAndQuery(&client);
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("adrec_trace_traces_started_total"),
            std::string::npos);
}

// A replicated pair: every frame the follower applies gets its own
// trace — local wal.append, the shared commit wave, and the engine
// stages nested under replica.apply.
TEST_F(ServeTraceTest, ReplicaAppliedFramesAreTraced) {
  auto& leader_collector = NewCollector();
  StartServer(&leader_collector);

  // Follower daemon wired by hand, the same shape examples/adrecd.cpp
  // builds: own workload (same seed), own WAL, a Follower polled by its
  // own Server, and its own collector.
  feed::Workload follower_workload = feed::GenerateWorkload(opts_);
  auto follower_engine = std::make_unique<core::ShardedEngine>(
      follower_workload.kb, follower_workload.slots, 1);
  wal::WalOptions wal_options;
  wal_options.sync = wal::SyncPolicy::kNone;
  auto writer = wal::WalWriter::Open(base_dir_ + "/wal_follower", wal_options);
  ASSERT_TRUE(writer.ok());
  std::unique_ptr<wal::WalWriter> follower_wal = std::move(writer).value();

  auto& follower_collector = NewCollector();
  replica::FollowerOptions fopts;
  fopts.host = "127.0.0.1";
  fopts.port = server_->port();
  fopts.backoff_initial = 0.05;
  fopts.tracer = &follower_collector;
  auto follower = std::make_unique<replica::Follower>(
      follower_engine.get(), follower_wal.get(), fopts);

  ServerOptions foptions;
  foptions.wal = follower_wal.get();
  foptions.follower = follower.get();
  auto follower_server =
      std::make_unique<Server>(follower_engine.get(), foptions);
  ASSERT_TRUE(follower_server->Start().ok());
  std::thread follower_thread([&] { follower_server->Run(); });

  // Ingest on the leader; the frames ship to the follower.
  Client client = Connected();
  IngestAndQuery(&client);

  const obs::TraceRecord* applied = nullptr;
  const auto deadline = steady_clock::now() + std::chrono::seconds(10);
  std::vector<obs::TraceRecord> traces;
  while (applied == nullptr && steady_clock::now() < deadline) {
    traces = follower_collector.Recent();
    applied = FindTrace(traces, "tweet\t");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(applied, nullptr) << "follower never traced an applied frame";
  CheckSpanTreeInvariants(*applied);

  const uint32_t append = SpanIndex(*applied, "wal.append");
  const uint32_t wave = SpanIndex(*applied, "wal.commit_wave");
  const uint32_t apply = SpanIndex(*applied, "replica.apply");
  const uint32_t annotate = SpanIndex(*applied, "engine.annotate");
  EXPECT_NE(append, 0u);
  EXPECT_NE(wave, 0u);
  ASSERT_NE(apply, 0u);
  ASSERT_NE(annotate, 0u);
  EXPECT_EQ(applied->spans[annotate - 1].parent, apply);

  follower_server->RequestDrain();
  follower_thread.join();
  follower_server.reset();
  follower.reset();
  follower_wal.reset();
}

}  // namespace
}  // namespace adrec::serve
