#include "core/lda.h"

#include <cmath>

#include <gtest/gtest.h>

namespace adrec::core {
namespace {

// Two sharply separated word clusters: words 0-4 vs words 5-9.
std::vector<std::vector<uint32_t>> ClusteredDocs() {
  std::vector<std::vector<uint32_t>> docs;
  for (int d = 0; d < 10; ++d) {
    std::vector<uint32_t> doc;
    for (int i = 0; i < 30; ++i) {
      doc.push_back(static_cast<uint32_t>((d % 2 == 0 ? 0 : 5) + i % 5));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

LdaOptions SmallOptions() {
  LdaOptions opts;
  opts.num_topics = 2;
  opts.train_iterations = 80;
  opts.seed = 7;
  return opts;
}

TEST(LdaTest, ValidatesArguments) {
  LdaOptions opts;
  opts.num_topics = 0;
  EXPECT_FALSE(LdaModel::Train({{0}}, 5, opts).ok());
  EXPECT_FALSE(LdaModel::Train({{0}}, 0, LdaOptions{}).ok());
  EXPECT_EQ(LdaModel::Train({{7}}, 5, LdaOptions{}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(LdaTest, DistributionsAreNormalized) {
  auto model = LdaModel::Train(ClusteredDocs(), 10, SmallOptions());
  ASSERT_TRUE(model.ok());
  for (size_t d = 0; d < 10; ++d) {
    const auto dist = model.value().DocTopicDistribution(d);
    double sum = 0;
    for (double p : dist) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Topic-word rows are proper distributions too.
  for (size_t z = 0; z < 2; ++z) {
    double sum = 0;
    for (uint32_t w = 0; w < 10; ++w) {
      sum += model.value().TopicWordProbability(z, w);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LdaTest, SeparatesObviousClusters) {
  auto model = LdaModel::Train(ClusteredDocs(), 10, SmallOptions());
  ASSERT_TRUE(model.ok());
  // Same-cluster documents should be much more similar than cross-cluster.
  const auto d0 = model.value().DocTopicDistribution(0);
  const auto d2 = model.value().DocTopicDistribution(2);
  const auto d1 = model.value().DocTopicDistribution(1);
  EXPECT_GT(LdaModel::Similarity(d0, d2), 0.9);
  EXPECT_LT(LdaModel::Similarity(d0, d1), 0.7);
}

TEST(LdaTest, InferenceMatchesTraining) {
  auto model = LdaModel::Train(ClusteredDocs(), 10, SmallOptions());
  ASSERT_TRUE(model.ok());
  // An unseen doc from cluster A should land near cluster-A training docs.
  std::vector<uint32_t> doc_a = {0, 1, 2, 3, 4, 0, 1, 2, 3, 4};
  const auto inferred = model.value().Infer(doc_a);
  EXPECT_GT(LdaModel::Similarity(inferred,
                                 model.value().DocTopicDistribution(0)),
            0.9);
}

TEST(LdaTest, InferDropsUnknownWordsAndHandlesEmpty) {
  auto model = LdaModel::Train(ClusteredDocs(), 10, SmallOptions());
  ASSERT_TRUE(model.ok());
  const auto dist = model.value().Infer({999, 1000});
  double sum = 0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);  // uniform prior fallback, still normalised
  const auto empty = model.value().Infer({});
  EXPECT_EQ(empty.size(), 2u);
}

TEST(LdaTest, EmptyDocumentGetsPriorDistribution) {
  auto docs = ClusteredDocs();
  docs.push_back({});  // empty doc
  auto model = LdaModel::Train(docs, 10, SmallOptions());
  ASSERT_TRUE(model.ok());
  const auto dist = model.value().DocTopicDistribution(10);
  EXPECT_NEAR(dist[0], 0.5, 1e-9);
  EXPECT_NEAR(dist[1], 0.5, 1e-9);
}

TEST(LdaTest, SimilarityBasics) {
  EXPECT_NEAR(LdaModel::Similarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(LdaModel::Similarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(LdaModel::Similarity({0, 0}, {1, 0}), 0.0);
}

TEST(LdaTest, DeterministicForFixedSeed) {
  auto a = LdaModel::Train(ClusteredDocs(), 10, SmallOptions());
  auto b = LdaModel::Train(ClusteredDocs(), 10, SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t d = 0; d < 10; ++d) {
    const auto da = a.value().DocTopicDistribution(d);
    const auto db = b.value().DocTopicDistribution(d);
    for (size_t z = 0; z < 2; ++z) EXPECT_DOUBLE_EQ(da[z], db[z]);
  }
}

}  // namespace
}  // namespace adrec::core
