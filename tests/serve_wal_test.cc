// The serving daemon's durability wiring, in process: a Server with a
// WalWriter + CheckpointManager attached must log every ingest verb
// before applying it, survive a restart via Recover, and expose the
// `checkpoint` admin verb and wal.* metrics over the wire.

#include "serve/server.h"

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>
#include <unistd.h>

#include "feed/workload.h"
#include "serve/client.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace adrec::serve {
namespace {

class ServeWalTest : public ::testing::Test {
 protected:
  ServeWalTest() {
    wal_dir_ =
        (std::filesystem::temp_directory_path() /
         ("adrec_servewal_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    std::filesystem::remove_all(wal_dir_);

    feed::WorkloadOptions opts;
    opts.seed = 515;
    opts.num_users = 12;
    opts.num_places = 8;
    opts.num_ads = 3;
    opts.days = 2;
    workload_ = feed::GenerateWorkload(opts);
  }
  ~ServeWalTest() override {
    StopServer();
    std::filesystem::remove_all(wal_dir_);
  }

  /// Recovers (as the daemon's startup does) and starts a server wired to
  /// the log directory.
  void StartServer() {
    checkpointer_ = std::make_unique<wal::CheckpointManager>(wal_dir_);
    engine_ = std::make_unique<core::ShardedEngine>(workload_.kb,
                                                    workload_.slots, 1);
    auto recovered = checkpointer_->Recover(engine_.get());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    recovery_ = recovered.value();

    wal::WalOptions wal_options;
    wal_options.sync = wal::SyncPolicy::kNone;  // tests need speed, not D
    auto writer =
        wal::WalWriter::Open(wal_dir_, wal_options, recovery_.next_seqno);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    wal_ = std::move(writer).value();

    ServerOptions options;
    options.wal = wal_.get();
    options.checkpointer = checkpointer_.get();
    server_ = std::make_unique<Server>(engine_.get(), options);
    if (recovery_.max_event_time > 0) {
      server_->SeedStreamClock(recovery_.max_event_time);
    }
    ASSERT_TRUE(server_->Start().ok());
    thread_ = std::thread([this] { server_->Run(); });
  }

  void StopServer() {
    if (server_) {
      server_->RequestDrain();
      if (thread_.joinable()) thread_.join();
      server_.reset();
    }
    wal_.reset();  // destructor flushes + seals, like process exit
  }

  Client Connected() {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  std::string wal_dir_;
  feed::Workload workload_;
  std::unique_ptr<wal::CheckpointManager> checkpointer_;
  std::unique_ptr<wal::WalWriter> wal_;
  std::unique_ptr<core::ShardedEngine> engine_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  wal::RecoveryResult recovery_;
};

TEST_F(ServeWalTest, IngestVerbsAreLoggedQueriesAreNot) {
  StartServer();
  {
    Client client = Connected();
    ASSERT_TRUE(client.PutAd(workload_.ads[0]).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
    }
    ASSERT_TRUE(client.SendCheckIn(workload_.check_ins[0]).ok());
    ASSERT_TRUE(client.DeleteAd(workload_.ads[0].id).ok());
    // Queries must not grow the log.
    ASSERT_TRUE(client.Ping().ok());
    (void)client.TopK(workload_.tweets[0].user, 2);
  }
  StopServer();

  auto report = wal::VerifyLog(wal_dir_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().torn_tail);
  // adput + 5 tweets + checkin + addel = 8 records, nothing else.
  EXPECT_EQ(report.value().records, 8u);
}

TEST_F(ServeWalTest, RestartRecoversLoggedState) {
  ASSERT_GE(workload_.tweets.size(), 21u);
  ASSERT_GE(workload_.check_ins.size(), 20u);
  StartServer();
  {
    Client client = Connected();
    for (const feed::Ad& ad : workload_.ads) {
      ASSERT_TRUE(client.PutAd(ad).ok());
    }
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
      ASSERT_TRUE(client.SendCheckIn(workload_.check_ins[i]).ok());
    }
  }
  StopServer();
  const core::EngineStats before = engine_->Stats();
  EXPECT_EQ(before.tweets, 20u);

  // Restart: a fresh engine recovers purely from the log.
  StartServer();
  EXPECT_FALSE(recovery_.from_checkpoint);
  EXPECT_EQ(recovery_.live_replayed,
            workload_.ads.size() + 40);
  const core::EngineStats after = engine_->Stats();
  EXPECT_EQ(after.tweets, before.tweets);
  EXPECT_EQ(after.checkins, before.checkins);
  EXPECT_EQ(after.ads_inserted, before.ads_inserted);

  // And the recovered daemon keeps serving (the stream clock was seeded,
  // so time does not run backwards for the decay machinery).
  Client client = Connected();
  EXPECT_TRUE(client.SendTweet(workload_.tweets[20]).ok());
  auto topk = client.TopK(workload_.tweets[20].user, 3);
  EXPECT_TRUE(topk.ok()) << topk.status().ToString();
}

TEST_F(ServeWalTest, CheckpointVerbCoordinatesSnapshotAndMark) {
  StartServer();
  {
    Client client = Connected();
    for (const feed::Ad& ad : workload_.ads) {
      ASSERT_TRUE(client.PutAd(ad).ok());
    }
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
    }
    auto reply = client.Command("checkpoint");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply.value(), "OK");
    // More traffic after the mark: the restart must replay exactly this
    // tail through live ingest.
    for (int i = 10; i < 16; ++i) {
      ASSERT_TRUE(client.SendTweet(workload_.tweets[i]).ok());
    }
  }
  StopServer();
  ASSERT_TRUE(
      std::filesystem::exists(wal_dir_ + "/checkpoint/MANIFEST.tsv"));

  StartServer();
  EXPECT_TRUE(recovery_.from_checkpoint);
  EXPECT_EQ(recovery_.checkpoint_seqno, workload_.ads.size() + 10);
  EXPECT_EQ(recovery_.live_replayed, 6u);
  // Engine counters restart at the checkpoint: the snapshot carries
  // serving state, not event counters, so only the live-replayed tail
  // is counted here.
  EXPECT_EQ(engine_->Stats().tweets, 6u);
}

TEST_F(ServeWalTest, CheckpointVerbRequiresCoordinator) {
  // A server without durability wiring refuses the verb instead of
  // silently acking a checkpoint that never happened.
  engine_ = std::make_unique<core::ShardedEngine>(workload_.kb,
                                                  workload_.slots, 1);
  server_ = std::make_unique<Server>(engine_.get(), ServerOptions{});
  ASSERT_TRUE(server_->Start().ok());
  thread_ = std::thread([this] { server_->Run(); });
  Client client = Connected();
  auto reply = client.Command("checkpoint");
  ASSERT_TRUE(reply.ok());  // transport-level success: a reply arrived
  EXPECT_EQ(reply.value().rfind("SERVER_ERROR", 0), 0u) << reply.value();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServeWalTest, WalMetricsExposedOverTheWire) {
  StartServer();
  Client client = Connected();
  ASSERT_TRUE(client.PutAd(workload_.ads[0]).ok());
  ASSERT_TRUE(client.SendTweet(workload_.tweets[0]).ok());
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics.value().find("adrec_wal_appends_total"),
            std::string::npos);
  EXPECT_NE(metrics.value().find("adrec_wal_commits_total"),
            std::string::npos);
}

}  // namespace
}  // namespace adrec::serve
