#include "eval/click_model.h"

#include <gtest/gtest.h>

#include "profile/user_profile.h"

namespace adrec::eval {
namespace {

class ClickModelTest : public ::testing::Test {
 protected:
  ClickModelTest() {
    feed::WorkloadOptions opts;
    opts.seed = 17;
    opts.num_users = 10;
    opts.num_places = 6;
    opts.num_ads = 3;
    opts.days = 2;
    workload_ = feed::GenerateWorkload(opts);
  }
  feed::Workload workload_;
};

TEST_F(ClickModelTest, TiersMatchTruth) {
  ClickModel model(&workload_);
  for (size_t a = 0; a < workload_.ads.size(); ++a) {
    for (size_t u = 0; u < workload_.truth.size(); ++u) {
      const Timestamp noon = 12 * kSecondsPerHour;
      const int tier = model.RelevanceTier(UserId(static_cast<uint32_t>(u)),
                                           a, noon);
      // Recompute expectations directly from truth.
      const feed::UserTruth& truth = workload_.truth[u];
      bool topical = false;
      for (TopicId t : truth.interests) {
        for (TopicId at : workload_.ad_topics[a]) topical |= (t == at);
      }
      if (!topical) {
        EXPECT_EQ(tier, 0);
        continue;
      }
      const SlotId slot = workload_.slots.SlotOf(noon);
      bool located = false;
      for (LocationId m : truth.frequented[slot.value]) {
        for (LocationId am : workload_.ads[a].target_locations) {
          located |= (m == am);
        }
      }
      EXPECT_EQ(tier, located ? 2 : 1);
    }
  }
}

TEST_F(ClickModelTest, ProbabilitiesFollowTiers) {
  ClickModelOptions opts;
  opts.ctr_relevant = 0.5;
  opts.ctr_topical = 0.2;
  opts.ctr_irrelevant = 0.01;
  ClickModel model(&workload_, opts);
  for (size_t a = 0; a < workload_.ads.size(); ++a) {
    for (size_t u = 0; u < workload_.truth.size(); ++u) {
      const UserId user(static_cast<uint32_t>(u));
      const double p = model.ClickProbability(user, a, 1000);
      const int tier = model.RelevanceTier(user, a, 1000);
      EXPECT_DOUBLE_EQ(p, tier == 2 ? 0.5 : (tier == 1 ? 0.2 : 0.01));
    }
  }
}

TEST_F(ClickModelTest, SampledRateApproachesProbability) {
  ClickModelOptions opts;
  opts.ctr_relevant = 1.0;
  opts.ctr_topical = 0.3;
  opts.ctr_irrelevant = 0.0;
  ClickModel model(&workload_, opts);
  // Find a (user, ad) pair per tier and check empirical frequency.
  for (size_t a = 0; a < workload_.ads.size(); ++a) {
    for (size_t u = 0; u < workload_.truth.size(); ++u) {
      const UserId user(static_cast<uint32_t>(u));
      const int tier = model.RelevanceTier(user, a, 0);
      if (tier == 0) {
        EXPECT_FALSE(model.SampleClick(user, a, 0));
      } else if (tier == 2) {
        EXPECT_TRUE(model.SampleClick(user, a, 0));
      }
    }
  }
}

TEST(TopLocationTest, PicksHeaviestSlotLocation) {
  timeline::TimeSlotScheme slots = timeline::TimeSlotScheme::PaperScheme();
  profile::UserProfileStore store(&slots, 30 * kSecondsPerDay);
  const Timestamp morning = 6 * kSecondsPerHour;
  store.ObserveCheckIn(UserId(1), morning, LocationId(4));
  store.ObserveCheckIn(UserId(1), morning + 60, LocationId(4));
  store.ObserveCheckIn(UserId(1), morning + 120, LocationId(9));
  EXPECT_EQ(store.TopLocation(UserId(1), SlotId(1)), LocationId(4));
  // No check-ins in slot 2 for this user.
  EXPECT_FALSE(store.TopLocation(UserId(1), SlotId(2)).valid());
  // Unknown user.
  EXPECT_FALSE(store.TopLocation(UserId(7), SlotId(1)).valid());
}

}  // namespace
}  // namespace adrec::eval
