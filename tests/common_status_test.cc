#include "common/status.h"

#include <gtest/gtest.h>

namespace adrec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("alpha must be in [0,1]");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "alpha must be in [0,1]");
  EXPECT_EQ(s.ToString(), "InvalidArgument: alpha must be in [0,1]");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int v) {
  ADREC_RETURN_NOT_OK(FailsWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chained(3).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no such ad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace adrec
