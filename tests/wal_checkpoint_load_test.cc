#include "wal/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "common/logging.h"
#include "core/snapshot.h"
#include "feed/workload.h"
#include "wal/delta/delta_checkpoint.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace adrec::wal {
namespace {

/// Table-driven rejection coverage for checkpoint loading: every way a
/// checkpoint directory can be damaged (missing file, truncation, size
/// mismatch, corrupt manifest, delta hash mismatch) must cause recovery
/// to REJECT the damaged state and fall back — never to load a wrong
/// engine, and never to fail outright while the log can still rebuild
/// everything (analysis_retention defaults to keep-everything, so the
/// full log is always behind the checkpoint).
class WalCheckpointLoadTest : public ::testing::Test {
 protected:
  WalCheckpointLoadTest() {
    root_ = (std::filesystem::temp_directory_path() /
             ("adrec_ckptload_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);

    feed::WorkloadOptions opts;
    opts.seed = 321;
    opts.num_users = 8;
    opts.num_places = 6;
    opts.num_ads = 3;
    opts.days = 2;
    workload_ = feed::GenerateWorkload(opts);
    events_ = workload_.MergedEvents();
  }
  ~WalCheckpointLoadTest() override { std::filesystem::remove_all(root_); }

  /// Streams ads + events with a mid-stream checkpoint into `dir`, and
  /// returns the never-crashed reference engine.
  std::unique_ptr<core::ShardedEngine> BuildLog(const std::string& dir,
                                                CheckpointMode mode) {
    CheckpointOptions copts;
    copts.mode = mode;
    CheckpointManager manager(dir, copts);
    auto writer = WalWriter::Open(dir);
    ADREC_CHECK(writer.ok());
    WalWriter* w = writer.value().get();
    auto engine = NewEngine();
    const size_t mark = events_.size() / 2;
    const size_t crash = events_.size() * 3 / 4;
    for (const feed::Ad& ad : workload_.ads) {
      feed::FeedEvent ev;
      ev.kind = feed::EventKind::kAdInsert;
      ev.ad = ad;
      ADREC_CHECK(w->Append(EncodeEventPayload(ev)).ok());
      (void)engine->InsertAd(ad);
    }
    for (size_t i = 0; i < crash; ++i) {
      ADREC_CHECK(w->Append(EncodeEventPayload(events_[i])).ok());
      engine->OnEvent(events_[i]);
      if (i == mark) {
        ADREC_CHECK(manager.Checkpoint(*engine, w, events_[i].time).ok());
      }
    }
    return engine;
  }

  std::unique_ptr<core::ShardedEngine> NewEngine() {
    return std::make_unique<core::ShardedEngine>(workload_.kb,
                                                 workload_.slots, 1);
  }

  std::vector<std::string> Serialized(const core::ShardedEngine& engine) {
    std::vector<std::string> out;
    for (size_t s = 0; s < engine.num_shards(); ++s) {
      auto files = core::SerializeEngineSnapshot(engine.shard(s));
      EXPECT_TRUE(files.ok()) << files.status().ToString();
      for (const core::SnapshotFile& f : files.value()) {
        out.push_back(f.name + "\n" + f.contents);
      }
    }
    return out;
  }

  std::string root_;
  feed::Workload workload_;
  std::vector<feed::FeedEvent> events_;
};

struct RejectionCase {
  const char* name;
  CheckpointMode mode;
  /// True: recovery must REFUSE outright (the manifest promised state
  /// the files cannot deliver — replaying the log instead could be
  /// silently wrong if the checkpoint had truncated it). False: the
  /// damage is detected before commitment, so recovery falls back to
  /// the log alone and still rebuilds the exact pre-crash state.
  bool hard_fail;
  /// Damages the checkpoint state under the log dir.
  std::function<void(const std::string& dir)> corrupt;
};

TEST_F(WalCheckpointLoadTest, DamagedCheckpointsAreRejectedNotLoaded) {
  const std::vector<RejectionCase> cases = {
      {"classic_missing_snapshot_file", CheckpointMode::kFull,
       /*hard_fail=*/true,
       [](const std::string& dir) {
         std::filesystem::remove(dir + "/checkpoint/shard0/snapshot_ads.tsv");
       }},
      {"classic_truncated_snapshot_file", CheckpointMode::kFull,
       /*hard_fail=*/true,
       [](const std::string& dir) {
         const std::string f = dir + "/checkpoint/shard0/snapshot_profiles.tsv";
         std::filesystem::resize_file(f,
                                      std::filesystem::file_size(f) / 2);
       }},
      {"classic_size_mismatch_grown_file", CheckpointMode::kFull,
       /*hard_fail=*/true,
       [](const std::string& dir) {
         std::ofstream out(dir + "/checkpoint/shard0/snapshot_ads.tsv",
                           std::ios::app);
         out << "X trailing garbage past the manifest-recorded size\n";
       }},
      {"classic_corrupt_manifest_line", CheckpointMode::kFull,
       /*hard_fail=*/false,
       [](const std::string& dir) {
         std::ofstream out(dir + "/checkpoint/MANIFEST.tsv",
                           std::ios::trunc);
         out << "K not-a-number\n";
       }},
      {"classic_manifest_missing", CheckpointMode::kFull,
       /*hard_fail=*/false,
       [](const std::string& dir) {
         std::filesystem::remove(dir + "/checkpoint/MANIFEST.tsv");
       }},
      {"delta_missing_referenced_file", CheckpointMode::kDelta,
       /*hard_fail=*/false,
       [](const std::string& dir) {
         auto head = delta::ResolveHead(dir);
         ASSERT_TRUE(head.ok());
         const delta::FileRef& f = head.value().files.front();
         std::filesystem::remove(delta::DeltaDir(dir) + "/" +
                                 delta::GenDirName(f.src_gen) + "/" + f.rel);
       }},
      {"delta_hash_mismatch_same_size", CheckpointMode::kDelta,
       /*hard_fail=*/false,
       [](const std::string& dir) {
         auto head = delta::ResolveHead(dir);
         ASSERT_TRUE(head.ok());
         const delta::FileRef& f = head.value().files.front();
         const std::string path = delta::DeltaDir(dir) + "/" +
                                  delta::GenDirName(f.src_gen) + "/" + f.rel;
         std::fstream io(path,
                         std::ios::in | std::ios::out | std::ios::binary);
         char c = 0;
         io.read(&c, 1);
         io.seekp(0);
         c = static_cast<char>(c ^ 0x5a);
         io.write(&c, 1);
       }},
      {"delta_current_points_nowhere", CheckpointMode::kDelta,
       /*hard_fail=*/false,
       [](const std::string& dir) {
         auto head = delta::ResolveHead(dir);
         ASSERT_TRUE(head.ok());
         std::filesystem::remove_all(delta::DeltaDir(dir) + "/" +
                                     delta::GenDirName(head.value().gen));
       }},
      {"delta_corrupt_manifest_line", CheckpointMode::kDelta,
       /*hard_fail=*/false,
       [](const std::string& dir) {
         auto head = delta::ResolveHead(dir);
         ASSERT_TRUE(head.ok());
         std::ofstream out(delta::DeltaDir(dir) + "/" +
                               delta::GenDirName(head.value().gen) +
                               "/MANIFEST.tsv",
                           std::ios::trunc);
         out << "F dangling.tsv not-a-size zz 1\n";
       }},
  };

  for (const RejectionCase& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string dir = root_ + "/" + c.name;
    auto reference = BuildLog(dir, c.mode);

    // checkpoint.old would legitimately satisfy a classic fallback; this
    // table is about REJECTION, so leave only the damaged head.
    std::filesystem::remove_all(dir + "/checkpoint.old");
    c.corrupt(dir);

    CheckpointOptions copts;
    copts.mode = c.mode;
    CheckpointManager manager(dir, copts);
    auto engine = NewEngine();
    auto r = manager.Recover(engine.get());
    if (c.hard_fail) {
      EXPECT_FALSE(r.ok()) << "damaged checkpoint was loaded anyway";
      continue;
    }
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // The damaged checkpoint was not used...
    EXPECT_FALSE(r.value().from_checkpoint);
    EXPECT_FALSE(r.value().from_delta);
    EXPECT_EQ(r.value().window_replayed, 0u);
    // ...and the log alone rebuilt the exact pre-crash state.
    EXPECT_GT(r.value().live_replayed, 0u);
    EXPECT_EQ(Serialized(*reference), Serialized(*engine));
  }
}

TEST_F(WalCheckpointLoadTest, IntactCheckpointIsUsedAsPositiveControl) {
  for (const CheckpointMode mode :
       {CheckpointMode::kFull, CheckpointMode::kDelta}) {
    SCOPED_TRACE(CheckpointModeName(mode));
    const std::string dir =
        root_ + "/control_" + std::string(CheckpointModeName(mode));
    auto reference = BuildLog(dir, mode);

    CheckpointOptions copts;
    copts.mode = mode;
    CheckpointManager manager(dir, copts);
    auto engine = NewEngine();
    auto r = manager.Recover(engine.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().from_checkpoint);
    EXPECT_EQ(r.value().from_delta, mode == CheckpointMode::kDelta);
    EXPECT_GT(r.value().window_replayed, 0u);
    EXPECT_EQ(Serialized(*reference), Serialized(*engine));
  }
}

}  // namespace
}  // namespace adrec::wal
