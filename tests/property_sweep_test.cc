// Cross-module property sweeps: the full pipeline run over a range of
// generator seeds, checking invariants that must hold for ANY workload
// (not just the pinned fixtures).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "eval/experiment.h"

namespace adrec {
namespace {

class PipelinePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  feed::WorkloadOptions Options() {
    feed::WorkloadOptions opts;
    opts.seed = static_cast<uint64_t>(GetParam()) * 7001;
    opts.num_users = 8 + GetParam() % 7;
    opts.num_places = 5 + GetParam() % 5;
    opts.num_ads = 2 + GetParam() % 3;
    opts.days = 2 + GetParam() % 3;
    opts.clustered_interest_probability = (GetParam() % 2) * 0.7;
    return opts;
  }
};

TEST_P(PipelinePropertyTest, CommunitiesContainOnlyActiveUsers) {
  eval::ExperimentSetup setup = eval::BuildExperiment(Options());
  ASSERT_TRUE(setup.engine->RunAnalysis(0.4).ok());
  // The set of users with any event.
  std::set<uint32_t> active;
  for (const auto& t : setup.workload.tweets) active.insert(t.user.value);
  for (const auto& c : setup.workload.check_ins) active.insert(c.user.value);

  const auto& analysis = setup.engine->analysis();
  for (uint32_t m = 0; m < setup.workload.places.size(); ++m) {
    for (const core::Community& c :
         analysis.LocationCommunities(LocationId(m))) {
      EXPECT_FALSE(c.users.empty());
      for (UserId u : c.users) EXPECT_TRUE(active.count(u.value));
      for (SlotId s : c.slots) {
        EXPECT_LT(s.value, setup.workload.slots.size());
      }
    }
  }
  for (uint32_t t = 0; t < setup.workload.kb->size(); ++t) {
    for (const core::Community& c : analysis.TopicCommunities(TopicId(t))) {
      for (UserId u : c.users) EXPECT_TRUE(active.count(u.value));
    }
  }
}

TEST_P(PipelinePropertyTest, LocationCommunityMembersVisitedTheLocation) {
  eval::ExperimentSetup setup = eval::BuildExperiment(Options());
  ASSERT_TRUE(setup.engine->RunAnalysis(0.4).ok());
  for (uint32_t m = 0; m < setup.workload.places.size(); ++m) {
    for (const core::Community& c :
         setup.engine->analysis().LocationCommunities(LocationId(m))) {
      for (UserId u : c.users) {
        for (SlotId s : c.slots) {
          // Every (member, slot) pair must be witnessed by a check-in at
          // this location in this slot.
          bool witnessed = false;
          for (const feed::CheckIn& ci : setup.workload.check_ins) {
            if (ci.user == u && ci.location == LocationId(m) &&
                setup.workload.slots.SlotOf(ci.time) == s) {
              witnessed = true;
              break;
            }
          }
          EXPECT_TRUE(witnessed)
              << "user " << u.value << " location " << m << " slot "
              << s.value << " seed " << GetParam();
        }
      }
    }
  }
}

TEST_P(PipelinePropertyTest, MatchResultsAreWellFormed) {
  eval::ExperimentSetup setup = eval::BuildExperiment(Options());
  ASSERT_TRUE(setup.engine->RunAnalysis(0.4).ok());
  for (const feed::Ad& ad : setup.workload.ads) {
    auto r = setup.engine->RecommendUsers(ad.id);
    ASSERT_TRUE(r.ok());
    std::set<uint32_t> seen;
    double prev_score = 1e300;
    for (const core::MatchedUser& mu : r.value().users) {
      EXPECT_TRUE(seen.insert(mu.user.value).second);  // no duplicates
      EXPECT_GT(mu.topic_support, 0);
      EXPECT_GT(mu.location_support, 0);
      EXPECT_LE(mu.score, prev_score);  // ranked descending
      prev_score = mu.score;
    }
  }
}

TEST_P(PipelinePropertyTest, AnnotationScoresAreConfidences) {
  eval::ExperimentSetup setup = eval::BuildExperiment(Options());
  const auto& semantic = setup.engine->semantic();
  for (size_t i = 0; i < std::min<size_t>(setup.workload.tweets.size(), 50);
       ++i) {
    for (const auto& a :
         semantic.ProcessTweet(setup.workload.tweets[i]).annotations) {
      EXPECT_GE(a.score, 0.0);
      EXPECT_LE(a.score, 1.0);
      EXPECT_LT(a.topic.value, setup.workload.kb->size());
    }
  }
}

TEST_P(PipelinePropertyTest, StreamingTopKIsBoundedAndSorted) {
  eval::ExperimentSetup setup = eval::BuildExperiment(Options());
  for (size_t i = 0; i < std::min<size_t>(setup.workload.tweets.size(), 30);
       ++i) {
    auto ads = setup.engine->TopKAdsForTweet(setup.workload.tweets[i], 3);
    EXPECT_LE(ads.size(), 3u);
    for (size_t j = 1; j < ads.size(); ++j) {
      EXPECT_LE(ads[j].score, ads[j - 1].score);
    }
    for (const auto& sa : ads) {
      EXPECT_GT(sa.score, 0.0);
      EXPECT_NE(setup.engine->ad_store().Find(sa.ad), nullptr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace adrec
