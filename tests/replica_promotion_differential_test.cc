#include "testkit/differential.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "feed/workload.h"
#include "wal/wal.h"

namespace adrec::testkit {
namespace {

std::string FreshDir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("adrec_repldiff_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

feed::Workload SmallWorkload(uint64_t seed) {
  feed::WorkloadOptions opts;
  opts.seed = seed;
  opts.num_users = 6 + static_cast<size_t>(seed % 4);
  opts.num_places = 5 + static_cast<size_t>(seed % 3);
  opts.num_ads = 2 + static_cast<size_t>(seed % 3);
  opts.days = 2;
  opts.tweets_per_user_day = 3.0;
  opts.checkins_per_user_day = 1.5;
  return feed::GenerateWorkload(opts);
}

/// The kill-the-leader differential of the ISSUE acceptance: 20 seeded
/// leader deaths — several leaving a torn final frame, several killing
/// the leader while the follower is still mid-catch-up — after which the
/// promoted follower must be byte-identical (canonical snapshot compare)
/// to a reference engine fed the replicated prefix of acknowledged
/// records, and must stay identical through post-failover writes. At
/// wal_shards > 1 the leader logs per-shard streams and the follower
/// runs one replication cursor per stream (`repl <shard> <cursor>`),
/// promotion sealing every stream; every shard's snapshot is compared.
void TwentySeededLeaderKills(size_t wal_shards) {
  size_t iterations = 0;
  size_t torn_iterations = 0;
  size_t midcatchup_iterations = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const feed::Workload workload = SmallWorkload(seed);
    const std::vector<feed::FeedEvent> events = workload.MergedEvents();
    ASSERT_GT(events.size(), 10u) << "seed " << seed;

    const std::string tag =
        std::to_string(wal_shards) + "_" + std::to_string(seed);
    DifferentialOptions diff;
    diff.wal_shards = wal_shards;
    diff.wal_dir = FreshDir("leader" + tag);
    diff.replica_wal_dir = FreshDir("follower" + tag);
    diff.replica_snapshot_dir = FreshDir("snap" + tag);
    diff.crash_fraction = 0.25 + 0.03 * static_cast<double>(seed % 10);
    // Every fourth leader dies mid-append, leaving a torn final frame
    // the replication cursor must stop short of.
    diff.crash_torn_tail = (seed % 4 == 0);
    diff.crash_seed = seed;
    // Every third kill happens while the follower is still catching up:
    // promotion from a strict prefix of the acknowledged records.
    diff.replica_catchup_fraction =
        (seed % 3 == 0) ? 0.4 + 0.05 * static_cast<double>(seed % 5) : 1.0;
    // Tiny segments + tiny batches: the cursor crosses many segment
    // boundaries and the hint resumes across many ReadFrames calls.
    diff.wal_segment_bytes = 4 * 1024;
    diff.replica_batch_bytes = 1024;
    const DifferentialChecker checker(workload.kb, workload.slots, diff);

    const ReplicaPromotionReport report =
        checker.RunReplicaPromotion(workload.ads, events);
    ASSERT_TRUE(report.identical)
        << "seed " << seed << ": " << report.detail;
    EXPECT_GT(report.acknowledged, 0u) << "seed " << seed;
    EXPECT_GT(report.post_promote, 0u) << "seed " << seed;
    if (diff.replica_catchup_fraction < 1.0) {
      EXPECT_LT(report.replicated, report.acknowledged) << "seed " << seed;
      ++midcatchup_iterations;
    } else {
      // Fully caught up: the follower holds every acknowledged record —
      // nothing durable was lost in the failover.
      EXPECT_EQ(report.replicated, report.acknowledged) << "seed " << seed;
    }
    if (diff.crash_torn_tail) ++torn_iterations;

    std::filesystem::remove_all(diff.wal_dir);
    std::filesystem::remove_all(diff.replica_wal_dir);
    std::filesystem::remove_all(diff.replica_snapshot_dir);
    ++iterations;
  }
  EXPECT_EQ(iterations, 20u);
  EXPECT_GE(torn_iterations, 1u);
  EXPECT_GE(midcatchup_iterations, 1u);
}

TEST(ReplicaPromotionDifferential, TwentySeededLeaderKillsPromoteExactly) {
  TwentySeededLeaderKills(1);
}

TEST(ReplicaPromotionDifferential, TwentySeededLeaderKillsTwoStreams) {
  TwentySeededLeaderKills(2);
}

TEST(ReplicaPromotionDifferential, TwentySeededLeaderKillsFourStreams) {
  TwentySeededLeaderKills(4);
}

/// The follower's own log is itself recoverable: after promotion, a
/// crash-restart of the promoted follower from its replica WAL rebuilds
/// the identical engine (the replicated records were durably logged
/// before they were applied).
TEST(ReplicaPromotionDifferential, FollowerLogSupportsItsOwnRecovery) {
  const feed::Workload workload = SmallWorkload(7);
  const std::vector<feed::FeedEvent> events = workload.MergedEvents();

  DifferentialOptions diff;
  diff.wal_dir = FreshDir("ownrec_leader");
  diff.replica_wal_dir = FreshDir("ownrec_follower");
  diff.replica_snapshot_dir = FreshDir("ownrec_snap");
  diff.crash_fraction = 0.6;
  const DifferentialChecker checker(workload.kb, workload.slots, diff);
  const ReplicaPromotionReport report =
      checker.RunReplicaPromotion(workload.ads, events);
  ASSERT_TRUE(report.identical) << report.detail;

  // The follower WAL must carry the replicated prefix plus the
  // post-promotion writes, frame-contiguous from seqno 1.
  wal::CursorHint hint;
  uint64_t next = 1;
  uint64_t records = 0;
  for (;;) {
    auto batch =
        wal::ReadFrames(diff.replica_wal_dir, next, UINT64_MAX, 64 * 1024,
                        &hint);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    records += batch.value().records;
    next = batch.value().next_seqno;
    if (batch.value().at_end) break;
  }
  EXPECT_EQ(records, report.replicated + report.post_promote);

  std::filesystem::remove_all(diff.wal_dir);
  std::filesystem::remove_all(diff.replica_wal_dir);
  std::filesystem::remove_all(diff.replica_snapshot_dir);
}

}  // namespace
}  // namespace adrec::testkit
