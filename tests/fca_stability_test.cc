#include "fca/stability.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace adrec::fca {
namespace {

// Brute-force stability for verification.
double BruteStability(const FormalContext& ctx, const Concept& c) {
  const auto extent = c.extent.ToVector();
  const size_t n = extent.size();
  size_t hits = 0;
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    Bitset derived = Bitset::Full(ctx.num_attributes());
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) derived &= ctx.Row(extent[i]);
    }
    if (derived == c.intent) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(1ull << n);
}

TEST(StabilityTest, MatchesBruteForceOnRandomContexts) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 17);
    FormalContext ctx(8, 6);
    for (size_t g = 0; g < 8; ++g)
      for (size_t m = 0; m < 6; ++m)
        if (rng.NextBool(0.5)) ctx.Set(g, m);
    auto mined = EnumerateConcepts(ctx);
    ASSERT_TRUE(mined.ok());
    for (const Concept& c : mined.value()) {
      EXPECT_NEAR(ConceptStability(ctx, c), BruteStability(ctx, c), 1e-12)
          << "seed " << seed;
    }
  }
}

TEST(StabilityTest, RedundantEvidenceIsStable) {
  // Three identical objects {a,b}: every subset (including ∅, which
  // derives the full attribute set = this intent) yields {a,b}.
  // Stability = 8/8 = 1 — maximal robustness.
  FormalContext ctx(3, 2);
  for (size_t g = 0; g < 3; ++g) {
    ctx.Set(g, 0);
    ctx.Set(g, 1);
  }
  auto mined = EnumerateConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  ASSERT_EQ(mined.value().size(), 1u);
  EXPECT_DOUBLE_EQ(ConceptStability(ctx, mined.value()[0]), 1.0);
}

TEST(StabilityTest, FragileConceptScoresLow) {
  // Intent {a,b} held jointly only via the intersection of two different
  // objects: row0={a,b,c}, row1={a,b,d}. The concept ({0,1},{a,b}) needs
  // BOTH objects: only 1 of 4 subsets derives exactly {a,b}.
  FormalContext ctx(2, 4);
  ctx.Set(0, 0);
  ctx.Set(0, 1);
  ctx.Set(0, 2);
  ctx.Set(1, 0);
  ctx.Set(1, 1);
  ctx.Set(1, 3);
  Concept c;
  c.extent = Bitset::FromIndices(2, {0, 1});
  c.intent = Bitset::FromIndices(4, {0, 1});
  EXPECT_NEAR(ConceptStability(ctx, c), 0.25, 1e-12);
}

TEST(StabilityTest, MonteCarloApproximatesExact) {
  Rng rng(5);
  FormalContext ctx(20, 6);
  for (size_t g = 0; g < 20; ++g)
    for (size_t m = 0; m < 6; ++m)
      if (rng.NextBool(0.6)) ctx.Set(g, m);
  auto mined = EnumerateConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  // Pick a mid-size concept and compare exact vs sampled.
  for (const Concept& c : mined.value()) {
    const size_t n = c.extent.Count();
    if (n < 10 || n > 16) continue;
    StabilityOptions exact;
    exact.max_exact_extent = 20;
    StabilityOptions sampled;
    sampled.max_exact_extent = 4;
    sampled.samples = 20000;
    EXPECT_NEAR(ConceptStability(ctx, c, sampled),
                ConceptStability(ctx, c, exact), 0.05);
    break;
  }
}

TEST(TriStabilityTest, SingleObjectBoxesAreHalfStable) {
  // One object's box: subsets {∅, {g}}; {g} derives the reference, ∅
  // derives the full set (different unless the context is degenerate).
  TriadicContext ctx(3, 2, 2);
  ctx.Set(0, 0, 0);
  ctx.Set(1, 1, 1);
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  for (const TriConcept& tc : mined.value()) {
    if (tc.objects.Count() == 1) {
      EXPECT_NEAR(TriConceptStability(ctx, tc), 0.5, 1e-12);
    }
  }
}

TEST(TriStabilityTest, SharedBoxesMoreStableThanFragileOnes) {
  // Users 0,1,2 all at (m0, t0); users 3,4 share (m1, t1) only jointly
  // through different extra cells.
  TriadicContext ctx(5, 2, 2);
  for (uint32_t u : {0u, 1u, 2u}) ctx.Set(u, 0, 0);
  ctx.Set(3, 1, 1);
  ctx.Set(3, 0, 1);
  ctx.Set(4, 1, 1);
  ctx.Set(4, 1, 0);
  auto mined = MineTriConcepts(ctx);
  ASSERT_TRUE(mined.ok());
  double redundant = -1, fragile = -1;
  for (const TriConcept& tc : mined.value()) {
    if (tc.objects.Count() == 3) redundant = TriConceptStability(ctx, tc);
    if (tc.objects.Count() == 2) fragile = TriConceptStability(ctx, tc);
  }
  ASSERT_GE(redundant, 0.0);
  ASSERT_GE(fragile, 0.0);
  EXPECT_GT(redundant, fragile);
}

}  // namespace
}  // namespace adrec::fca
