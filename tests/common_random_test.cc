#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace adrec {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.NextInt(5, 5), 5);
  EXPECT_EQ(rng.NextInt(5, 4), 5);  // degenerate range returns lo
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyNearP) {
  Rng rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsSane) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(ZipfSamplerTest, UniformWhenSkewZero) {
  ZipfSampler z(4, 0.0);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(z.Pmf(k), 0.25, 1e-12);
  }
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.1);
  double total = 0;
  for (size_t k = 0; k < z.size(); ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(z.Pmf(100), 0.0);
}

TEST(ZipfSamplerTest, HeadIsHeavierThanTail) {
  ZipfSampler z(1000, 1.0);
  Rng rng(21);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.Sample(rng)];
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(ZipfSamplerTest, SampleWithinRange) {
  ZipfSampler z(10, 1.5);
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Sample(rng), 10u);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchPmf) {
  // The load generator's realism rests on Sample() actually following
  // Pmf(): check every rank's empirical frequency against a 5-sigma
  // binomial band (sigma = sqrt(p(1-p)/N)), wide enough to never flake
  // yet tight enough to catch an off-by-one in the CDF inversion.
  const size_t n = 50;
  const int draws = 200000;
  ZipfSampler z(n, 0.99);
  Rng rng(29);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) ++counts[z.Sample(rng)];
  for (size_t k = 0; k < n; ++k) {
    const double p = z.Pmf(k);
    const double sigma = std::sqrt(p * (1.0 - p) / draws);
    EXPECT_NEAR(static_cast<double>(counts[k]) / draws, p, 5.0 * sigma)
        << "rank " << k;
  }
}

TEST(ZipfSamplerTest, SkewZeroSamplesUniformly) {
  const size_t n = 8;
  const int draws = 80000;
  ZipfSampler z(n, 0.0);
  Rng rng(31);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) ++counts[z.Sample(rng)];
  const double expected = static_cast<double>(draws) / n;
  const double sigma = std::sqrt(expected * (1.0 - 1.0 / n));
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], expected, 5.0 * sigma) << "rank " << k;
  }
}

TEST(ZipfSamplerTest, SingleItemDegenerate) {
  ZipfSampler z(1, 1.2);
  EXPECT_EQ(z.size(), 1u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(z.Sample(rng), 0u);
  }
}

TEST(PermutationTest, IsAPermutation) {
  Rng rng(25);
  auto perm = RandomPermutation(50, rng);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(PermutationTest, EmptyAndSingleton) {
  Rng rng(27);
  EXPECT_TRUE(RandomPermutation(0, rng).empty());
  auto one = RandomPermutation(1, rng);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

}  // namespace
}  // namespace adrec
