#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "core/tfca.h"

namespace adrec::core {
namespace {

// The worked example: users Tom=0, Luke=1, Anna=2, Sam=3, Lia=4;
// locations m1=0, m2=1, m3=2; slots morning=0, afternoon=1, evening=2;
// topics URI1=0 .. URI5=4.
class WorkedExampleTest : public ::testing::Test {
 protected:
  WorkedExampleTest()
      : slots_(timeline::TimeSlotScheme::MorningAfternoonEvening()),
        tfca_(&slots_, /*num_topics=*/5) {
    // Check-in context (Table-3-style).
    AddCheckIn(0, 0, 0);
    AddCheckIn(0, 0, 1);
    AddCheckIn(0, 0, 2);  // Tom at m1, all slots
    AddCheckIn(1, 1, 0);
    AddCheckIn(1, 1, 1);  // Luke at m2 morning+afternoon
    AddCheckIn(1, 2, 2);  // Luke at m3 evening
    AddCheckIn(3, 0, 2);  // Sam at m1 evening
    AddCheckIn(4, 1, 0);
    AddCheckIn(4, 1, 1);
    AddCheckIn(4, 1, 2);  // Lia at m2, all slots

    // Fuzzy topic context (Table-4-style membership degrees).
    AddTweet(0, 0, 0, 1.0);   // Tom URI1 morning
    AddTweet(1, 0, 0, 1.0);   // Luke URI1 morning
    AddTweet(2, 2, 0, 0.9);   // Anna URI3 morning
    AddTweet(3, 1, 0, 1.0);   // Sam URI2 morning
    AddTweet(4, 4, 0, 1.0);   // Lia URI5 morning
    AddTweet(0, 0, 1, 1.0);   // Tom URI1 afternoon
    AddTweet(1, 3, 1, 0.8);   // Luke URI4 afternoon
    AddTweet(2, 2, 1, 0.8);   // Anna URI3 afternoon
    AddTweet(3, 4, 1, 0.75);  // Sam URI5 afternoon
    AddTweet(4, 4, 1, 0.8);   // Lia URI5 afternoon
    AddTweet(0, 2, 2, 0.8);   // Tom URI3 evening
    AddTweet(1, 0, 2, 1.0);   // Luke URI1 evening
    AddTweet(2, 2, 2, 1.0);   // Anna URI3 evening
    AddTweet(3, 1, 2, 1.0);   // Sam URI2 evening
    AddTweet(4, 4, 2, 1.0);   // Lia URI5 evening
  }

  void AddCheckIn(uint32_t user, uint32_t loc, uint32_t slot) {
    feed::CheckIn c;
    c.user = UserId(user);
    c.location = LocationId(loc);
    c.time = SlotTime(slot);
    tfca_.AddCheckIn(c);
  }

  void AddTweet(uint32_t user, uint32_t topic, uint32_t slot, double score) {
    AnnotatedTweet t;
    t.user = UserId(user);
    t.time = SlotTime(slot);
    annotate::Annotation a;
    a.topic = TopicId(topic);
    a.score = score;
    t.annotations.push_back(a);
    tfca_.AddTweet(t);
  }

  Timestamp SlotTime(uint32_t slot) {
    // Mid-slot times of the morning/afternoon/evening scheme.
    const timeline::TimeSlot& s = tfca_stats_slot(slot);
    return (s.begin_second + s.end_second) / 2;
  }

  const timeline::TimeSlot& tfca_stats_slot(uint32_t slot) {
    return slots_.slot(SlotId(slot));
  }

  static std::set<uint32_t> UserSet(const Community& c) {
    std::set<uint32_t> out;
    for (UserId u : c.users) out.insert(u.value);
    return out;
  }

  timeline::TimeSlotScheme slots_;
  TimeAwareConceptAnalysis tfca_;
};

TEST_F(WorkedExampleTest, LocationCommunities) {
  ASSERT_TRUE(tfca_.Analyze({}).ok());
  // Comm(H, m2): ({Luke, Lia}, {t1,t2}) and ({Lia}, {t1,t2,t3}).
  const auto& m2 = tfca_.LocationCommunities(LocationId(1));
  ASSERT_EQ(m2.size(), 2u);
  std::set<std::set<uint32_t>> extents;
  for (const Community& c : m2) extents.insert(UserSet(c));
  EXPECT_TRUE(extents.count({1, 4}));
  EXPECT_TRUE(extents.count({4}));
  // Comm(H, m3): ({Luke}, {t3}).
  const auto& m3 = tfca_.LocationCommunities(LocationId(2));
  ASSERT_EQ(m3.size(), 1u);
  EXPECT_EQ(UserSet(m3[0]), (std::set<uint32_t>{1}));
  // Comm(H, m1): Tom always, Tom+Sam evening.
  const auto& m1 = tfca_.LocationCommunities(LocationId(0));
  std::set<std::set<uint32_t>> m1_extents;
  for (const Community& c : m1) m1_extents.insert(UserSet(c));
  EXPECT_TRUE(m1_extents.count({0}));
  EXPECT_TRUE(m1_extents.count({0, 3}));
  // Anna checked in nowhere: no singleton-location community contains 2.
  for (uint32_t m = 0; m < 3; ++m) {
    for (const Community& c : tfca_.LocationCommunities(LocationId(m))) {
      EXPECT_FALSE(UserSet(c).count(2));
    }
  }
}

TEST_F(WorkedExampleTest, TopicCommunitiesAtAlpha06) {
  TfcaOptions opts;
  opts.alpha = 0.6;
  ASSERT_TRUE(tfca_.Analyze(opts).ok());
  // URI1: ({Tom,Luke},{t1}), ({Tom},{t1,t2}), ({Luke},{t1,t3}).
  const auto& uri1 = tfca_.TopicCommunities(TopicId(0));
  std::set<std::set<uint32_t>> extents;
  for (const Community& c : uri1) extents.insert(UserSet(c));
  EXPECT_TRUE(extents.count({0, 1}));
  EXPECT_TRUE(extents.count({0}));
  EXPECT_TRUE(extents.count({1}));
  // URI2: Sam in t1 and t3.
  const auto& uri2 = tfca_.TopicCommunities(TopicId(1));
  ASSERT_EQ(uri2.size(), 1u);
  EXPECT_EQ(UserSet(uri2[0]), (std::set<uint32_t>{3}));
  EXPECT_EQ(uri2[0].slots.size(), 2u);
  // URI5: ({Lia},{t1,t2,t3}) and ({Sam,Lia},{t2}).
  const auto& uri5 = tfca_.TopicCommunities(TopicId(4));
  std::set<std::set<uint32_t>> uri5_extents;
  for (const Community& c : uri5) uri5_extents.insert(UserSet(c));
  EXPECT_TRUE(uri5_extents.count({4}));
  EXPECT_TRUE(uri5_extents.count({3, 4}));
}

TEST_F(WorkedExampleTest, HigherAlphaShrinksTopicContext) {
  TfcaOptions opts;
  opts.alpha = 0.85;  // drops the 0.8/0.75 cells
  ASSERT_TRUE(tfca_.Analyze(opts).ok());
  // Luke's URI4 (0.8) disappears.
  EXPECT_TRUE(tfca_.TopicCommunities(TopicId(3)).empty());
  // Sam's URI5 afternoon (0.75) disappears; only Lia remains on URI5.
  for (const Community& c : tfca_.TopicCommunities(TopicId(4))) {
    EXPECT_FALSE(UserSet(c).count(3));
  }
  // Location communities are unaffected by alpha.
  EXPECT_EQ(tfca_.LocationCommunities(LocationId(1)).size(), 2u);
}

TEST_F(WorkedExampleTest, AdidasAdMatchesExactlyLuke) {
  ASSERT_TRUE(tfca_.Analyze({}).ok());
  // The case-study ad: location m2, topics URI1 + URI2.
  AdContext ad;
  ad.id = AdId(0);
  ad.locations = {LocationId(1)};
  ad.topics = text::SparseVector::FromUnsorted({{0, 1.0}, {1, 1.0}});
  MatchOptions opts;
  opts.filter_by_slot = true;  // ad has no slot targets -> matches any slot
  MatchResult result = MatchAd(tfca_, ad, opts);
  ASSERT_EQ(result.users.size(), 1u);
  EXPECT_EQ(result.users[0].user, UserId(1));  // Luke
  // Evidence: Luke is in two URI1 communities and one m2 community.
  EXPECT_EQ(result.users[0].topic_support, 2);
  EXPECT_EQ(result.users[0].location_support, 1);
  // Diagnostics: U-L side was {Luke, Lia}; U-C side {Tom, Luke, Sam}.
  EXPECT_EQ(result.location_candidates, 2u);
  EXPECT_EQ(result.topic_candidates, 3u);
}

TEST_F(WorkedExampleTest, SlotFilterNarrowsTheMatch) {
  ASSERT_TRUE(tfca_.Analyze({}).ok());
  AdContext ad;
  ad.id = AdId(0);
  ad.locations = {LocationId(1)};
  ad.topics = text::SparseVector::FromUnsorted({{0, 1.0}, {1, 1.0}});
  // Target only the evening slot: Luke's m2 community is morning+afternoon,
  // so the U-L side keeps only Lia and the join is empty.
  ad.slots = {SlotId(2)};
  MatchResult result = MatchAd(tfca_, ad, MatchOptions{});
  EXPECT_TRUE(result.users.empty());
  // Morning targeting keeps Luke.
  ad.slots = {SlotId(0)};
  result = MatchAd(tfca_, ad, MatchOptions{});
  ASSERT_EQ(result.users.size(), 1u);
  EXPECT_EQ(result.users[0].user, UserId(1));
}

TEST_F(WorkedExampleTest, MinTopicScoreFiltersWeakAdTopics) {
  ASSERT_TRUE(tfca_.Analyze({}).ok());
  AdContext ad;
  ad.locations = {LocationId(1)};
  // URI1 weakly annotated: below min_topic_score it must not contribute.
  ad.topics = text::SparseVector::FromUnsorted({{0, 0.01}});
  MatchResult result = MatchAd(tfca_, ad, MatchOptions{});
  EXPECT_TRUE(result.users.empty());
}

TEST_F(WorkedExampleTest, StatsAreFilled) {
  ASSERT_TRUE(tfca_.Analyze({}).ok());
  const TfcaStats& s = tfca_.stats();
  EXPECT_EQ(s.users, 5u);
  EXPECT_EQ(s.locations, 3u);
  EXPECT_EQ(s.topics, 5u);
  EXPECT_EQ(s.checkin_incidences, 10u);
  EXPECT_EQ(s.tweet_cells, 15u);
  EXPECT_GT(s.location_triconcepts, 0u);
  EXPECT_GT(s.topic_triconcepts, 0u);
}

TEST_F(WorkedExampleTest, ResetClearsEverything) {
  ASSERT_TRUE(tfca_.Analyze({}).ok());
  tfca_.Reset();
  EXPECT_TRUE(tfca_.known_users().empty());
  ASSERT_TRUE(tfca_.Analyze({}).ok());
  EXPECT_TRUE(tfca_.LocationCommunities(LocationId(1)).empty());
  EXPECT_TRUE(tfca_.TopicCommunities(TopicId(0)).empty());
}

TEST_F(WorkedExampleTest, StabilityComputedWhenRequested) {
  TfcaOptions opts;
  opts.compute_stability = true;
  ASSERT_TRUE(tfca_.Analyze(opts).ok());
  bool any_below_one = false;
  for (uint32_t m = 0; m < 3; ++m) {
    for (const Community& c : tfca_.LocationCommunities(LocationId(m))) {
      EXPECT_GE(c.stability, 0.0);
      EXPECT_LE(c.stability, 1.0);
      any_below_one |= (c.stability < 1.0);
    }
  }
  EXPECT_TRUE(any_below_one);  // single-user communities score 0.5 here
  // Disabled by default: stability stays 1.0.
  ASSERT_TRUE(tfca_.Analyze({}).ok());
  for (const Community& c : tfca_.LocationCommunities(LocationId(1))) {
    EXPECT_DOUBLE_EQ(c.stability, 1.0);
  }
}

TEST_F(WorkedExampleTest, StabilityFilterNarrowsMatch) {
  TfcaOptions opts;
  opts.compute_stability = true;
  ASSERT_TRUE(tfca_.Analyze(opts).ok());
  AdContext ad;
  ad.locations = {LocationId(1)};
  ad.topics = text::SparseVector::FromUnsorted({{0, 1.0}, {1, 1.0}});
  MatchOptions strict;
  strict.min_community_stability = 0.99;  // kills every small community
  EXPECT_TRUE(MatchAd(tfca_, ad, strict).users.empty());
  MatchOptions relaxed;
  relaxed.min_community_stability = 0.0;
  EXPECT_EQ(MatchAd(tfca_, ad, relaxed).users.size(), 1u);
}

TEST_F(WorkedExampleTest, InvalidAlphaRejected) {
  TfcaOptions opts;
  opts.alpha = 1.5;
  EXPECT_EQ(tfca_.Analyze(opts).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace adrec::core
