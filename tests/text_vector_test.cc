#include <cmath>

#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/sparse_vector.h"
#include "text/stopwords.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace adrec::text {
namespace {

TEST(VocabularyTest, InternIsStable) {
  Vocabulary v;
  TermId a = v.Intern("volleyball");
  TermId b = v.Intern("team");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Intern("volleyball"), a);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.TermOf(a), "volleyball");
  EXPECT_EQ(v.Lookup("team"), b);
  EXPECT_EQ(v.Lookup("unseen"), kInvalidTerm);
}

TEST(VocabularyTest, TryTermOfOutOfRange) {
  Vocabulary v;
  v.Intern("x");
  EXPECT_TRUE(v.TryTermOf(0).ok());
  auto r = v.TryTermOf(5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(StopwordSetTest, EnglishContainsCoreWords) {
  StopwordSet s = StopwordSet::English();
  EXPECT_TRUE(s.Contains("the"));
  EXPECT_TRUE(s.Contains("and"));
  EXPECT_TRUE(s.Contains("rt"));
  EXPECT_FALSE(s.Contains("volleyball"));
  EXPECT_GT(s.size(), 100u);
}

TEST(StopwordSetTest, CustomAdditions) {
  StopwordSet s;
  EXPECT_FALSE(s.Contains("foo"));
  s.Add("foo");
  EXPECT_TRUE(s.Contains("foo"));
}

TEST(SparseVectorTest, FromUnsortedMergesDuplicates) {
  SparseVector v = SparseVector::FromUnsorted(
      {{3, 1.0}, {1, 2.0}, {3, 0.5}, {2, 1.0}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Get(1), 2.0);
  EXPECT_DOUBLE_EQ(v.Get(2), 1.0);
  EXPECT_DOUBLE_EQ(v.Get(3), 1.5);
  EXPECT_DOUBLE_EQ(v.Get(99), 0.0);
}

TEST(SparseVectorTest, AddKeepsSortedOrder) {
  SparseVector v;
  v.Add(5, 1.0);
  v.Add(1, 1.0);
  v.Add(5, 2.0);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0].id, 1u);
  EXPECT_EQ(v.entries()[1].id, 5u);
  EXPECT_DOUBLE_EQ(v.Get(5), 3.0);
}

TEST(SparseVectorTest, DotProduct) {
  SparseVector a = SparseVector::FromUnsorted({{1, 1.0}, {2, 2.0}, {4, 3.0}});
  SparseVector b = SparseVector::FromUnsorted({{2, 5.0}, {3, 7.0}, {4, 1.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 2.0 * 5.0 + 3.0 * 1.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), a.Dot(b));
  EXPECT_DOUBLE_EQ(a.Dot(SparseVector()), 0.0);
}

TEST(SparseVectorTest, CosineBoundsAndIdentity) {
  SparseVector a = SparseVector::FromUnsorted({{1, 1.0}, {2, 1.0}});
  EXPECT_NEAR(a.Cosine(a), 1.0, 1e-12);
  SparseVector orthogonal = SparseVector::FromUnsorted({{3, 1.0}});
  EXPECT_DOUBLE_EQ(a.Cosine(orthogonal), 0.0);
  EXPECT_DOUBLE_EQ(a.Cosine(SparseVector()), 0.0);
}

TEST(SparseVectorTest, JaccardSupport) {
  SparseVector a = SparseVector::FromUnsorted({{1, 1.0}, {2, 1.0}, {3, 1.0}});
  SparseVector b = SparseVector::FromUnsorted({{2, 9.0}, {3, 9.0}, {4, 9.0}});
  EXPECT_DOUBLE_EQ(a.JaccardSupport(b), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(SparseVector().JaccardSupport(SparseVector()), 0.0);
}

TEST(SparseVectorTest, AddScaledMergesDisjointAndOverlapping) {
  SparseVector a = SparseVector::FromUnsorted({{1, 1.0}, {3, 1.0}});
  SparseVector b = SparseVector::FromUnsorted({{2, 4.0}, {3, 4.0}});
  a.AddScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(a.Get(2), 2.0);
  EXPECT_DOUBLE_EQ(a.Get(3), 3.0);
}

TEST(SparseVectorTest, NormalizeL2) {
  SparseVector v = SparseVector::FromUnsorted({{1, 3.0}, {2, 4.0}});
  v.NormalizeL2();
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(v.Get(1), 0.6, 1e-12);
  SparseVector zero;
  zero.NormalizeL2();  // must not crash
  EXPECT_TRUE(zero.empty());
}

TEST(SparseVectorTest, PruneAndTruncate) {
  SparseVector v = SparseVector::FromUnsorted(
      {{1, 0.001}, {2, 0.5}, {3, 0.9}, {4, 0.2}});
  v.Prune(0.01);
  EXPECT_EQ(v.size(), 3u);
  v.TruncateTopK(2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(2), 0.5);
  EXPECT_DOUBLE_EQ(v.Get(3), 0.9);
  // Still id-sorted after truncation.
  EXPECT_LT(v.entries()[0].id, v.entries()[1].id);
}

TEST(TfIdfTest, IdfDecreasesWithDocumentFrequency) {
  TfIdfModel model;
  // Term 0 appears in all docs, term 1 in one.
  model.AddDocument({0, 1});
  model.AddDocument({0});
  model.AddDocument({0});
  EXPECT_EQ(model.num_documents(), 3u);
  EXPECT_EQ(model.DocumentFrequency(0), 3u);
  EXPECT_EQ(model.DocumentFrequency(1), 1u);
  EXPECT_LT(model.Idf(0), model.Idf(1));
  EXPECT_GT(model.Idf(0), 0.0);  // smoothed idf stays positive
}

TEST(TfIdfTest, DuplicateTermsCountOncePerDocument) {
  TfIdfModel model;
  model.AddDocument({7, 7, 7});
  EXPECT_EQ(model.DocumentFrequency(7), 1u);
}

TEST(TfIdfTest, VectorizeIsUnitNormAndRanksRareTermsHigher) {
  TfIdfModel model;
  model.AddDocument({0, 1});
  model.AddDocument({0, 2});
  model.AddDocument({0, 3});
  SparseVector v = model.Vectorize({0, 1});
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
  // Term 1 (rare) should outweigh term 0 (ubiquitous).
  EXPECT_GT(v.Get(1), v.Get(0));
}

TEST(TfIdfTest, EmptyDocumentVectorizesToEmpty) {
  TfIdfModel model;
  model.AddDocument({0});
  EXPECT_TRUE(model.Vectorize({}).empty());
}

TEST(AnalyzerTest, EndToEndPipeline) {
  Analyzer analyzer;
  auto ids = analyzer.Analyze("The nation's best volleyball teams!");
  // "the" is a stopword; possessive is stripped; remaining stems interned.
  ASSERT_EQ(ids.size(), 4u);
  const Vocabulary& v = analyzer.vocabulary();
  EXPECT_EQ(v.TermOf(ids[0]), "nation");
  EXPECT_EQ(v.TermOf(ids[1]), "best");
  EXPECT_EQ(v.TermOf(ids[2]), PorterStem("volleyball"));
  EXPECT_EQ(v.TermOf(ids[3]), PorterStem("teams"));
}

TEST(AnalyzerTest, ReadOnlyDropsUnseenTerms) {
  Analyzer analyzer;
  analyzer.Analyze("volleyball match");
  auto ids = analyzer.AnalyzeReadOnly("volleyball final");
  // "final" was never interned, so only the stem of "volleyball" survives.
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(analyzer.vocabulary().TermOf(ids[0]), PorterStem("volleyball"));
}

TEST(AnalyzerTest, StemmingCollapsesInflections) {
  Analyzer analyzer;
  auto a = analyzer.Analyze("running");
  auto b = analyzer.Analyze("runs");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0], b[0]);
}

TEST(AnalyzerTest, OptionsDisableStemmingAndStopwords) {
  AnalyzerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  Analyzer analyzer(opts);
  auto strs = analyzer.AnalyzeToStrings("the running");
  EXPECT_EQ(strs, (std::vector<std::string>{"the", "running"}));
}

}  // namespace
}  // namespace adrec::text
