#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace adrec::text {
namespace {

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemmerParamTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerParamTest, MatchesReferenceOutput) {
  const StemCase& c = GetParam();
  EXPECT_EQ(PorterStem(c.input), c.expected) << "input=" << c.input;
}

// Reference pairs from Porter's published test vocabulary.
INSTANTIATE_TEST_SUITE_P(
    ReferenceVocabulary, PorterStemmerParamTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("go"), "go");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemmerTest, CollapsesInflectionsToSameKey) {
  // The property the index relies on: morphological variants of the same
  // word map to one key. (Porter is deliberately not idempotent in general,
  // e.g. "volleyball" -> "volleybal" -> "volleyb", so we assert variant
  // collapse rather than fixed-point behaviour.)
  EXPECT_EQ(PorterStem("teams"), PorterStem("team"));
  EXPECT_EQ(PorterStem("running"), PorterStem("runs"));
  EXPECT_EQ(PorterStem("played"), PorterStem("playing"));
  EXPECT_EQ(PorterStem("coaches"), PorterStem("coach"));
  EXPECT_EQ(PorterStem("scores"), PorterStem("scored"));
}

TEST(PorterStemmerTest, SportsVocabulary) {
  EXPECT_EQ(PorterStem("volleyball"), "volleybal");
  EXPECT_EQ(PorterStem("tournament"), "tournament");  // m("tourna")==1 guard
  EXPECT_EQ(PorterStem("national"), "nation");
}

}  // namespace
}  // namespace adrec::text
