#include "profile/user_profile.h"

#include <gtest/gtest.h>

namespace adrec::profile {
namespace {

annotate::Annotation Ann(uint32_t topic, double score) {
  annotate::Annotation a;
  a.topic = TopicId(topic);
  a.score = score;
  return a;
}

class ProfileTest : public ::testing::Test {
 protected:
  ProfileTest()
      : slots_(timeline::TimeSlotScheme::PaperScheme()),
        store_(&slots_, /*half_life=*/3600) {}

  timeline::TimeSlotScheme slots_;
  UserProfileStore store_;
};

TEST_F(ProfileTest, UnknownUserIsEmpty) {
  EXPECT_TRUE(store_.InterestsAt(UserId(5), 100).empty());
  EXPECT_DOUBLE_EQ(store_.VisitMass(UserId(5), SlotId(0), LocationId(0)), 0.0);
  EXPECT_EQ(store_.size(), 0u);
}

TEST_F(ProfileTest, TweetAccumulatesInterests) {
  store_.ObserveTweet(UserId(1), 0, {Ann(3, 0.9), Ann(7, 0.5)});
  store_.ObserveTweet(UserId(1), 0, {Ann(3, 0.6)});
  auto v = store_.InterestsAt(UserId(1), 0);
  EXPECT_DOUBLE_EQ(v.Get(3), 1.5);
  EXPECT_DOUBLE_EQ(v.Get(7), 0.5);
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(ProfileTest, InterestsDecayWithHalfLife) {
  store_.ObserveTweet(UserId(1), 0, {Ann(3, 1.0)});
  auto later = store_.InterestsAt(UserId(1), 3600);
  EXPECT_NEAR(later.Get(3), 0.5, 1e-9);
  auto much_later = store_.InterestsAt(UserId(1), 7200);
  EXPECT_NEAR(much_later.Get(3), 0.25, 1e-9);
}

TEST_F(ProfileTest, FreshEvidenceOutweighsStale) {
  store_.ObserveTweet(UserId(1), 0, {Ann(3, 1.0)});
  store_.ObserveTweet(UserId(1), 7200, {Ann(9, 1.0)});
  auto v = store_.InterestsAt(UserId(1), 7200);
  EXPECT_GT(v.Get(9), v.Get(3));
  EXPECT_NEAR(v.Get(3), 0.25, 1e-9);
}

TEST_F(ProfileTest, CheckInsBucketedBySlot) {
  // Long half-life store so cross-slot decay is negligible here.
  UserProfileStore store(&slots_, 30 * kSecondsPerDay);
  const Timestamp morning = 6 * kSecondsPerHour;   // slot1
  const Timestamp evening = 15 * kSecondsPerHour;  // slot2
  store.ObserveCheckIn(UserId(2), morning, LocationId(4));
  store.ObserveCheckIn(UserId(2), morning + 60, LocationId(4));
  store.ObserveCheckIn(UserId(2), evening, LocationId(9));
  const SlotId slot1(1), slot2(2);
  EXPECT_GT(store.VisitMass(UserId(2), slot1, LocationId(4)), 1.5);
  EXPECT_DOUBLE_EQ(store.VisitMass(UserId(2), slot1, LocationId(9)), 0.0);
  EXPECT_GT(store.VisitMass(UserId(2), slot2, LocationId(9)), 0.9);
}

TEST_F(ProfileTest, VisitsDecayToo) {
  store_.ObserveCheckIn(UserId(3), 6 * kSecondsPerHour, LocationId(1));
  const double fresh = store_.VisitMass(UserId(3), SlotId(1), LocationId(1));
  // Observing a later tweet advances the state and decays the visit mass.
  store_.ObserveTweet(UserId(3), 6 * kSecondsPerHour + 3600, {});
  const double staled = store_.VisitMass(UserId(3), SlotId(1), LocationId(1));
  EXPECT_NEAR(staled, fresh * 0.5, 1e-9);
}

TEST_F(ProfileTest, KnownUsersInInsertionOrder) {
  store_.ObserveTweet(UserId(9), 0, {Ann(1, 1.0)});
  store_.ObserveCheckIn(UserId(2), 10, LocationId(0));
  store_.ObserveTweet(UserId(9), 20, {Ann(1, 1.0)});
  auto users = store_.KnownUsers();
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], UserId(9));
  EXPECT_EQ(users[1], UserId(2));
}

TEST_F(ProfileTest, OutOfOrderEventsDoNotRewindClock) {
  store_.ObserveTweet(UserId(1), 7200, {Ann(3, 1.0)});
  // A late-arriving older tweet is folded in at the current state time.
  store_.ObserveTweet(UserId(1), 100, {Ann(5, 1.0)});
  auto v = store_.InterestsAt(UserId(1), 7200);
  EXPECT_DOUBLE_EQ(v.Get(5), 1.0);  // not decayed retroactively
  EXPECT_DOUBLE_EQ(v.Get(3), 1.0);
}

}  // namespace
}  // namespace adrec::profile
