// The compressed≡uncompressed differential that pins the compressed
// posting-list inventory index (DESIGN.md §15): twenty seeded traces
// drive a --compressed-index daemon A and an uncompressed oracle B in
// lockstep over real sockets — every write mirrored to both, every topk
// probe issued to both in the same order — and every reply must match
// byte-for-byte at every stream clock. The trace interleaves tweets,
// check-ins and heavy ad churn (inserts, deletes, re-inserts of dead
// sealed ids) with a deliberately tiny seal threshold, so epochs seal
// mid-trace, tombstones accumulate and reseal, and queries span every
// delta/sealed mixture.
//
// Serving charges (budget decrements, frequency-cap records) are real
// state and flow through whichever index produced the ranking, so a
// single wrong candidate or score would compound into visibly different
// replies for the rest of the trace.
//
// Restart phase: both daemons bounce together (even seeds through a
// mid-run `checkpoint` + tail replay, odd seeds from the log alone); A
// rebuilds its compressed epochs from recovery's InsertAd replay — seal
// boundaries may land elsewhere, which must not matter — and
// equivalence must hold for the rest of the trace.
//
// Follower phase: a compressed follower FA replicates from A while an
// uncompressed follower FB replicates from B; both apply the same
// frames and must answer probes identically.
//
// A trace whose delta never seals would pass trivially, so each seed
// asserts the compressed daemon actually sealed epochs.

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "common/random.h"
#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "replica/follower.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace adrec::serve {
namespace {

struct Daemon {
  feed::Workload workload;
  std::string wal_dir;
  std::unique_ptr<wal::CheckpointManager> checkpointer;
  std::unique_ptr<wal::WalWriter> wal;
  std::unique_ptr<core::ShardedEngine> engine;
  std::unique_ptr<replica::Follower> follower;
  std::unique_ptr<Server> server;
  std::thread thread;

  void Stop() {
    if (server) {
      server->RequestDrain();
      if (thread.joinable()) thread.join();
      server.reset();
    }
    follower.reset();
    wal.reset();
    engine.reset();
    checkpointer.reset();
  }
  ~Daemon() { Stop(); }
};

class PostingsDifferentialTest : public ::testing::Test {
 protected:
  PostingsDifferentialTest() {
    base_dir_ = (std::filesystem::temp_directory_path() /
                 ("adrec_postdiff_" + std::to_string(::getpid())))
                    .string();
    std::filesystem::remove_all(base_dir_);
    std::filesystem::create_directories(base_dir_);
  }
  ~PostingsDifferentialTest() override {
    std::filesystem::remove_all(base_dir_);
  }

  void StartDaemon(Daemon* d, const feed::WorkloadOptions& wopts,
                   const std::string& tag, size_t num_shards,
                   const core::EngineOptions& eopts,
                   uint16_t leader_port = 0) {
    d->workload = feed::GenerateWorkload(wopts);
    d->wal_dir = base_dir_ + "/" + tag;
    d->checkpointer = std::make_unique<wal::CheckpointManager>(d->wal_dir);
    d->engine = std::make_unique<core::ShardedEngine>(
        d->workload.kb, d->workload.slots, num_shards, eopts);
    auto recovered = d->checkpointer->Recover(d->engine.get());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    wal::WalOptions wal_options;
    wal_options.sync = wal::SyncPolicy::kNone;
    auto writer = wal::WalWriter::Open(d->wal_dir, wal_options,
                                       recovered.value().next_seqno);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    d->wal = std::move(writer).value();

    ServerOptions options;
    options.wal = d->wal.get();
    options.checkpointer = d->checkpointer.get();
    if (leader_port != 0) {
      replica::FollowerOptions fopts;
      fopts.host = "127.0.0.1";
      fopts.port = leader_port;
      fopts.backoff_initial = 0.05;
      d->follower = std::make_unique<replica::Follower>(
          d->engine.get(), d->wal.get(), fopts);
      options.follower = d->follower.get();
    }
    d->server = std::make_unique<Server>(d->engine.get(), options);
    if (recovered.value().max_event_time > 0) {
      d->server->SeedStreamClock(recovered.value().max_event_time);
    }
    ASSERT_TRUE(d->server->Start().ok());
    d->thread = std::thread([d] { d->server->Run(); });
  }

  Client Connected(const Daemon& d) {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", d.server->port()).ok());
    return client;
  }

  static bool MetricValue(const std::string& payload,
                          const std::string& name, double* value) {
    const size_t pos = payload.find("\n" + name + " ");
    if (pos == std::string::npos) return false;
    *value = std::strtod(payload.c_str() + pos + 1 + name.size(), nullptr);
    return true;
  }

  double Metric(Client* client, const std::string& name) {
    auto metrics = client->Metrics();
    EXPECT_TRUE(metrics.ok());
    double v = 0.0;
    MetricValue(metrics.value(), name, &v);
    return v;
  }

  void WaitForApplied(Client* client, uint64_t seqno) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
      auto metrics = client->Metrics();
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
      double applied = -1.0;
      if (MetricValue(metrics.value(), "adrec_replica_applied_seqno",
                      &applied) &&
          applied >= static_cast<double>(seqno)) {
        return;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "follower stuck at applied_seqno=" << applied << " want "
          << seqno;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  std::string base_dir_;
};

void MirrorAndCompare(Client* a, Client* b, const std::string& line,
                      uint64_t seed, size_t step) {
  auto ra = a->Command(line);
  auto rb = b->Command(line);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_EQ(ra.value(), rb.value())
      << "seed " << seed << " step " << step << " diverged on: " << line;
}

TEST_F(PostingsDifferentialTest, TwentySeededTracesMatchUncompressedExactly) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const size_t num_shards = (seed % 3 == 0) ? 2 : 1;

    feed::WorkloadOptions wopts;
    wopts.seed = 4200 + seed;
    wopts.num_users = 8 + static_cast<size_t>(seed % 5);
    wopts.num_places = 6 + static_cast<size_t>(seed % 3);
    wopts.num_ads = 4 + static_cast<size_t>(seed % 4);
    wopts.days = 2;
    wopts.tweets_per_user_day = 2.0;
    wopts.checkins_per_user_day = 1.0;
    const feed::Workload workload = feed::GenerateWorkload(wopts);

    core::EngineOptions eopts;
    // Odd seeds serve with a tight frequency cap so serving charges and
    // cap records ride on the compared rankings too.
    eopts.frequency_cap.max_impressions = (seed % 2 == 1) ? 3 : 0;
    eopts.frequency_cap.window = 6 * 3600;

    core::EngineOptions eopts_a = eopts;
    eopts_a.compressed_index = true;
    // Tiny thresholds: the trace's churn forces several epoch seals and
    // (low tombstone fraction) mid-trace reseals.
    eopts_a.postings.seal_threshold = 3 + static_cast<size_t>(seed % 4);
    eopts_a.postings.tombstone_reseal_fraction = 0.3;

    const std::string tag = "s" + std::to_string(seed);
    Daemon a;  // compressed index
    Daemon b;  // the uncompressed oracle
    StartDaemon(&a, wopts, tag + "_a", num_shards, eopts_a);
    StartDaemon(&b, wopts, tag + "_b", num_shards, eopts);
    auto ca = std::make_unique<Client>(Connected(a));
    auto cb = std::make_unique<Client>(Connected(b));

    // Inventory over the wire so it is WAL-logged and replayed by the
    // followers; every third seed tightens some budgets so exhaustion
    // filtering rides on the compared rankings.
    std::vector<feed::Ad> live_ads = workload.ads;
    uint64_t acked = 0;
    for (feed::Ad& ad : live_ads) {
      if (seed % 3 == 0 && ad.id.value % 2 == 0) ad.budget_impressions = 7;
      ASSERT_TRUE(ca->PutAd(ad).ok());
      ASSERT_TRUE(cb->PutAd(ad).ok());
      ++acked;
    }

    const std::vector<feed::FeedEvent> events = workload.MergedEvents();
    Rng rng(seed * 131 + 9);
    ZipfSampler hot_users(wopts.num_users, 1.1);
    std::vector<std::string> replayable;
    std::vector<AdId> removed;  // dead sealed ids eligible for re-insert
    uint32_t next_ad_id = 20000;
    size_t step = 0;

    auto probe_batch = [&]() {
      const uint32_t hot = static_cast<uint32_t>(hot_users.Sample(rng));
      MirrorAndCompare(ca.get(), cb.get(), FormatTopKCmd(UserId(hot), 3),
                       seed, step);
      const uint32_t user =
          static_cast<uint32_t>(rng.NextBounded(wopts.num_users));
      const size_t k = 1 + static_cast<size_t>(rng.NextBounded(5));
      if (rng.NextBool(0.5)) {
        const feed::Tweet& t =
            workload.tweets[rng.NextBounded(workload.tweets.size())];
        const std::string line =
            FormatTopKCmd(UserId(user), k, t.time, t.text);
        replayable.push_back(line);
        MirrorAndCompare(ca.get(), cb.get(), line, seed, step);
      } else {
        MirrorAndCompare(ca.get(), cb.get(), FormatTopKCmd(UserId(user), k),
                         seed, step);
      }
      if (!replayable.empty() && rng.NextBool(0.4)) {
        MirrorAndCompare(ca.get(), cb.get(),
                         replayable[rng.NextBounded(replayable.size())],
                         seed, step);
      }
    };

    // One trace step: ingest into both daemons, frequent ad churn
    // (inserts, deletes, re-inserts of previously removed ids — the
    // dead-sealed-id path), then a lockstep probe batch.
    auto run_steps = [&](size_t first_event, size_t last_event) {
      for (size_t i = first_event; i < last_event; ++i) {
        const feed::FeedEvent& event = events[i];
        if (event.kind == feed::EventKind::kTweet) {
          ASSERT_TRUE(ca->SendTweet(event.tweet).ok());
          ASSERT_TRUE(cb->SendTweet(event.tweet).ok());
          ++acked;
        } else if (event.kind == feed::EventKind::kCheckIn) {
          ASSERT_TRUE(ca->SendCheckIn(event.check_in).ok());
          ASSERT_TRUE(cb->SendCheckIn(event.check_in).ok());
          ++acked;
        }
        if (rng.NextBool(0.25)) {  // ad churn, heavier than the cache test
          const double dice = rng.NextDouble();
          if (!live_ads.empty() && dice < 0.35) {
            const size_t victim = rng.NextBounded(live_ads.size());
            const AdId doomed = live_ads[victim].id;
            live_ads.erase(live_ads.begin() +
                           static_cast<ptrdiff_t>(victim));
            removed.push_back(doomed);
            ASSERT_TRUE(ca->DeleteAd(doomed).ok());
            ASSERT_TRUE(cb->DeleteAd(doomed).ok());
            ++acked;
          } else if (!removed.empty() && dice < 0.55) {
            // Re-insert a removed id: in A it may still sit tombstoned
            // inside a sealed epoch.
            feed::Ad ad = workload.ads[rng.NextBounded(workload.ads.size())];
            ad.id = removed.back();
            removed.pop_back();
            ASSERT_TRUE(ca->PutAd(ad).ok());
            ASSERT_TRUE(cb->PutAd(ad).ok());
            live_ads.push_back(ad);
            ++acked;
          } else {
            feed::Ad ad = workload.ads[rng.NextBounded(workload.ads.size())];
            ad.id = AdId(next_ad_id++);
            if (rng.NextBool(0.3)) ad.target_locations.clear();
            if (rng.NextBool(0.3)) ad.target_slots.clear();
            if (rng.NextBool(0.3)) ad.budget_impressions = 5;
            ASSERT_TRUE(ca->PutAd(ad).ok());
            ASSERT_TRUE(cb->PutAd(ad).ok());
            live_ads.push_back(ad);
            ++acked;
          }
        }
        if (i % 2 == 0) {
          probe_batch();
          if (::testing::Test::HasFatalFailure()) return;
        }
        ++step;
      }
    };

    const size_t phase1_end = events.size() / 2;
    run_steps(0, phase1_end);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());

    // Non-vacuity: the compressed daemon must have sealed epochs by now
    // (the gauge sums across shards; each shard holds every ad).
    EXPECT_GE(Metric(ca.get(), "adrec_postings_epochs"), 1.0)
        << "delta never sealed — the differential is vacuous";
    const double phase1_candidates =
        Metric(ca.get(), "adrec_postings_candidates_total");

    // --- Restart phase: both daemons bounce together. Even seeds write
    // a checkpoint first; odd seeds recover from the log alone. A's
    // epochs rebuild from InsertAd replay (boundaries may differ — the
    // answers must not).
    if (seed % 2 == 0) {
      auto cpa = ca->Command("checkpoint");
      ASSERT_TRUE(cpa.ok()) << cpa.status().ToString();
      ASSERT_EQ(cpa.value().rfind("OK", 0), 0u) << cpa.value();
      auto cpb = cb->Command("checkpoint");
      ASSERT_TRUE(cpb.ok());
      ASSERT_EQ(cpb.value().rfind("OK", 0), 0u) << cpb.value();
    }
    ca.reset();
    cb.reset();
    a.Stop();
    b.Stop();
    StartDaemon(&a, wopts, tag + "_a", num_shards, eopts_a);
    StartDaemon(&b, wopts, tag + "_b", num_shards, eopts);
    ca = std::make_unique<Client>(Connected(a));
    cb = std::make_unique<Client>(Connected(b));

    run_steps(phase1_end, events.size());
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    EXPECT_GE(Metric(ca.get(), "adrec_postings_epochs"), 1.0);
    EXPECT_GE(phase1_candidates +
                  Metric(ca.get(), "adrec_postings_candidates_total"),
              1.0)
        << "the pruned conjunction never emitted a candidate";

    // --- Follower phase: compressed follower FA tails A, uncompressed
    // follower FB tails B; identical applied frames must serve identical
    // answers.
    Daemon fa;
    Daemon fb;
    StartDaemon(&fa, wopts, tag + "_fa", num_shards, eopts_a,
                a.server->port());
    StartDaemon(&fb, wopts, tag + "_fb", num_shards, eopts,
                b.server->port());
    Client cfa = Connected(fa);
    Client cfb = Connected(fb);
    WaitForApplied(&cfa, acked);
    WaitForApplied(&cfb, acked);

    auto follower_probes = [&]() {
      for (int round = 0; round < 6; ++round) {
        const uint32_t hot = static_cast<uint32_t>(hot_users.Sample(rng));
        MirrorAndCompare(&cfa, &cfb, FormatTopKCmd(UserId(hot), 3), seed,
                         step);
        if (!replayable.empty()) {
          MirrorAndCompare(&cfa, &cfb,
                           replayable[rng.NextBounded(replayable.size())],
                           seed, step);
        }
        ++step;
      }
    };
    follower_probes();
    ASSERT_FALSE(::testing::Test::HasFatalFailure());

    // More leader writes (including churn) stream to the followers; the
    // replicated epochs keep sealing and answers must still agree.
    for (size_t i = 0; i < std::min<size_t>(events.size(), 10); ++i) {
      feed::Tweet tweet = workload.tweets[i % workload.tweets.size()];
      tweet.user = UserId(static_cast<uint32_t>(hot_users.Sample(rng)));
      ASSERT_TRUE(ca->SendTweet(tweet).ok());
      ASSERT_TRUE(cb->SendTweet(tweet).ok());
      ++acked;
      feed::Ad ad = workload.ads[rng.NextBounded(workload.ads.size())];
      ad.id = AdId(next_ad_id++);
      ASSERT_TRUE(ca->PutAd(ad).ok());
      ASSERT_TRUE(cb->PutAd(ad).ok());
      ++acked;
    }
    WaitForApplied(&cfa, acked);
    WaitForApplied(&cfb, acked);
    follower_probes();
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    EXPECT_GE(Metric(&cfa, "adrec_postings_epochs"), 1.0)
        << "follower never sealed an epoch";
  }
}

}  // namespace
}  // namespace adrec::serve
