#include "postings/codec.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace adrec::postings {
namespace {

const Codec kCodecs[] = {Codec::kVarint, Codec::kEliasFano};

/// Reference NextGEQ on the plain vector, honouring the cursor contract
/// (forward-only: never before the current position).
size_t RefNextGEQ(const std::vector<uint32_t>& v, size_t pos,
                  uint32_t target) {
  if (pos < v.size() && v[pos] >= target) return pos;
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(pos), v.end(),
                       target) -
      v.begin());
}

void ExpectRoundTrip(Codec codec, const std::vector<uint32_t>& v) {
  const CompressedList list = CompressedList::BuildWith(codec, v);
  EXPECT_EQ(list.size(), v.size());
  EXPECT_EQ(list.Decode(), v);
}

void ExpectNextGEQMatches(Codec codec, const std::vector<uint32_t>& v,
                          const std::vector<uint32_t>& targets) {
  const CompressedList list = CompressedList::BuildWith(codec, v);
  CompressedList::Cursor c = list.cursor();
  size_t ref = 0;
  for (const uint32_t t : targets) {
    c.NextGEQ(t);
    ref = RefNextGEQ(v, ref, t);
    ASSERT_EQ(c.valid(), ref < v.size()) << "target " << t;
    if (ref < v.size()) {
      ASSERT_EQ(c.value(), v[ref]) << "target " << t;
      ASSERT_EQ(c.index(), ref);
    }
  }
}

TEST(PostingsCodecTest, EmptyList) {
  for (const Codec codec : kCodecs) {
    const CompressedList list = CompressedList::BuildWith(codec, {});
    EXPECT_EQ(list.size(), 0u);
    EXPECT_TRUE(list.empty());
    EXPECT_TRUE(list.Decode().empty());
    CompressedList::Cursor c = list.cursor();
    EXPECT_FALSE(c.valid());
    c.NextGEQ(0);
    EXPECT_FALSE(c.valid());
  }
}

TEST(PostingsCodecTest, SingleElement) {
  for (const Codec codec : kCodecs) {
    for (const uint32_t v : {0u, 1u, 63u, 64u, 1u << 20, 4294967294u}) {
      ExpectRoundTrip(codec, {v});
      const CompressedList list = CompressedList::BuildWith(codec, {v});
      CompressedList::Cursor c = list.cursor();
      ASSERT_TRUE(c.valid());
      EXPECT_EQ(c.value(), v);
      c.NextGEQ(v);
      ASSERT_TRUE(c.valid());
      EXPECT_EQ(c.value(), v);
      if (v < 4294967295u) {
        c.NextGEQ(v + 1);
        EXPECT_FALSE(c.valid());
      }
    }
  }
}

TEST(PostingsCodecTest, DenseListEqualsUniverse) {
  // A maximally dense list (every value in [0, n)): the Elias-Fano
  // degenerate case l = 0, where everything lives in the unary part.
  std::vector<uint32_t> v(1000);
  for (uint32_t i = 0; i < 1000; ++i) v[i] = i;
  for (const Codec codec : kCodecs) {
    ExpectRoundTrip(codec, v);
    std::vector<uint32_t> targets;
    for (uint32_t t = 0; t <= 1001; t += 7) targets.push_back(t);
    ExpectNextGEQMatches(codec, v, targets);
  }
}

TEST(PostingsCodecTest, ExhaustiveSmallUniverse) {
  // Every subset of [0, 10): round-trip plus NextGEQ against the
  // reference for every target in [0, 11], both codecs.
  constexpr uint32_t kU = 10;
  for (uint32_t mask = 0; mask < (1u << kU); ++mask) {
    std::vector<uint32_t> v;
    for (uint32_t b = 0; b < kU; ++b) {
      if (mask & (1u << b)) v.push_back(b);
    }
    for (const Codec codec : kCodecs) {
      ExpectRoundTrip(codec, v);
      // Monotone target sweeps starting at every offset.
      for (uint32_t start = 0; start <= kU; ++start) {
        std::vector<uint32_t> targets;
        for (uint32_t t = start; t <= kU + 1; ++t) targets.push_back(t);
        ExpectNextGEQMatches(codec, v, targets);
      }
    }
  }
}

TEST(PostingsCodecTest, RandomizedRoundTripAndSkips) {
  Rng rng(20240817);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng.NextBounded(500);
    const uint32_t universe =
        1u + static_cast<uint32_t>(rng.NextBounded(1u << 22));
    std::vector<uint32_t> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<uint32_t>(rng.NextBounded(universe)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());

    for (const Codec codec : kCodecs) {
      ExpectRoundTrip(codec, v);
      // Random non-decreasing target sequence.
      std::vector<uint32_t> targets;
      uint32_t t = 0;
      while (targets.size() < 64 && t < universe + 2) {
        targets.push_back(t);
        t += static_cast<uint32_t>(rng.NextBounded(universe / 16 + 2));
      }
      ExpectNextGEQMatches(codec, v, targets);
    }

    // The two codecs must agree with each other through interleaved
    // Next / NextGEQ traversal.
    const CompressedList a = CompressedList::BuildWith(Codec::kVarint, v);
    const CompressedList b = CompressedList::BuildWith(Codec::kEliasFano, v);
    CompressedList::Cursor ca = a.cursor();
    CompressedList::Cursor cb = b.cursor();
    while (ca.valid() && cb.valid()) {
      ASSERT_EQ(ca.value(), cb.value());
      if (rng.NextBool(0.3)) {
        const uint32_t jump =
            ca.value() + static_cast<uint32_t>(rng.NextBounded(universe / 8 + 2));
        ca.NextGEQ(jump);
        cb.NextGEQ(jump);
      } else {
        ca.Next();
        cb.Next();
      }
    }
    EXPECT_EQ(ca.valid(), cb.valid());
  }
}

TEST(PostingsCodecTest, SparseHugeGaps) {
  // Values spread across the full uint32 range: varint deltas span many
  // bytes, Elias-Fano gets a large l. Both must stay exact.
  std::vector<uint32_t> v = {0,          1,         4096,      1u << 16,
                             1u << 24,   1u << 30,  3000000000u, 4294967294u};
  for (const Codec codec : kCodecs) {
    ExpectRoundTrip(codec, v);
    std::vector<uint32_t> targets = {0,        2,          5000,
                                     1u << 20, 1u << 29,   2999999999u,
                                     3000000001u, 4294967294u};
    ExpectNextGEQMatches(codec, v, targets);
  }
}

TEST(PostingsCodecTest, AutoPickChoosesSmaller) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.NextBounded(300);
    const uint32_t universe = 1u + static_cast<uint32_t>(
        rng.NextBounded(round % 2 == 0 ? 1024u : (1u << 24)));
    std::vector<uint32_t> v;
    for (size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<uint32_t>(rng.NextBounded(universe)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());

    const CompressedList picked = CompressedList::Build(v);
    const CompressedList vb = CompressedList::BuildWith(Codec::kVarint, v);
    const CompressedList ef = CompressedList::BuildWith(Codec::kEliasFano, v);
    EXPECT_EQ(picked.bytes(), std::min(vb.bytes(), ef.bytes()));
    EXPECT_EQ(picked.Decode(), v);
  }
}

}  // namespace
}  // namespace adrec::postings
