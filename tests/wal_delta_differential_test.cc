#include "testkit/differential.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "feed/workload.h"
#include "wal/checkpoint.h"
#include "wal/delta/compactor.h"
#include "wal/delta/delta_checkpoint.h"
#include "wal/sharded_wal.h"

namespace adrec::testkit {
namespace {

std::string FreshDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("adrec_deltadiff_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Ranking-stateless workload (unlimited budgets, no frequency cap), the
/// precondition for RunWalCrash to equal the no-crash run exactly.
feed::Workload StatelessServingWorkload(uint64_t seed) {
  feed::WorkloadOptions opts;
  opts.seed = seed;
  opts.num_users = 6 + static_cast<size_t>(seed % 4);
  opts.num_places = 5 + static_cast<size_t>(seed % 3);
  opts.num_ads = 2 + static_cast<size_t>(seed % 3);
  opts.days = 2;
  opts.tweets_per_user_day = 3.0;
  opts.checkins_per_user_day = 1.5;
  feed::Workload workload = feed::GenerateWorkload(opts);
  for (feed::Ad& ad : workload.ads) {
    ad.budget_impressions = 0;  // unlimited
  }
  return workload;
}

/// Interleaves repeated adput/addel churn of two extra ad ids into the
/// trace so WAL compaction has superseded records to drop — without
/// churn every record is a tweet/check-in and compaction is a no-op.
std::vector<feed::FeedEvent> WithAdChurn(const feed::Workload& workload,
                                         std::vector<feed::FeedEvent> events) {
  std::vector<feed::FeedEvent> out;
  out.reserve(events.size() + events.size() / 4);
  for (size_t i = 0; i < events.size(); ++i) {
    out.push_back(events[i]);
    const uint32_t id = 500 + static_cast<uint32_t>(i % 2);
    if (i % 9 == 4) {
      feed::FeedEvent ev;
      ev.kind = feed::EventKind::kAdInsert;
      ev.time = events[i].time;
      ev.ad = workload.ads.front();
      ev.ad.id = AdId(id);
      ev.ad.bid = 1.0 + static_cast<double>(i);
      ev.ad.budget_impressions = 0;
      out.push_back(ev);
    }
    if (i % 13 == 8) {
      feed::FeedEvent ev;
      ev.kind = feed::EventKind::kAdDelete;
      ev.time = events[i].time;
      ev.ad_id = AdId(id);
      out.push_back(ev);
    }
  }
  return out;
}

/// Post-crash surgery simulating a kill at a protocol-critical point,
/// applied while the crashed log directory is quiescent.
enum class KillPoint {
  kNone,
  kCheckpointStaging,  ///< killed mid-save: stray staging dir/file left
  kCurrentUpdate,      ///< killed before the CURRENT hint was rewritten
  kCompactionSwap,     ///< killed between output rename and input unlink
  kHeadGenDamage,      ///< head generation file truncated: older gen wins
};

/// The delta differential of the ISSUE acceptance: 20 seeded crashes per
/// shard count, each recovered twice — once from classic full
/// checkpoints, once from a delta chain (rebase + deltas, rebase_every=3
/// over 3 checkpoints) — and both must match the never-crashed reference
/// bit-identically. Crashed logs are offline-compacted before recovery
/// on even seeds, and seed-dependent kill-point surgery corrupts the
/// checkpoint/compaction swap state exactly where a real kill would.
void TwentySeededDeltaCrashes(size_t wal_shards) {
  size_t iterations = 0;
  uint64_t total_dropped = 0;
  std::map<KillPoint, size_t> kills_exercised;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const feed::Workload workload = StatelessServingWorkload(seed);
    const std::vector<feed::FeedEvent> events =
        WithAdChurn(workload, workload.MergedEvents());
    ASSERT_GT(events.size(), 10u) << "seed " << seed;

    DifferentialOptions base;
    base.run_sharded = wal_shards > 1;
    base.run_snapshot = false;
    base.num_shards = wal_shards;
    base.wal_shards = wal_shards;
    base.engine.frequency_cap.max_impressions = 0;  // ranking-stateless
    base.probe_every = 2;
    base.wal_segment_bytes = 1024;  // many sealed segments -> compactable
    base.crash_fraction = 0.35 + 0.025 * static_cast<double>(seed % 10);
    base.wal_checkpoint_fraction = base.crash_fraction * 0.6;
    base.wal_checkpoint_count = 3;  // rebase + two deltas per chain
    base.crash_torn_tail = (seed % 4 == 0);
    base.crash_seed = seed;

    const bool compact = (seed % 2 == 0);
    const KillPoint kill = static_cast<KillPoint>(seed % 5);
    kills_exercised[kill] += 1;

    const auto hook = [&](bool delta_mode) {
      return [&, delta_mode](const std::string& wal_dir) {
        for (size_t s = 0; s < wal_shards; ++s) {
          const std::string dir = wal::StreamDir(wal_dir, s, wal_shards);
          std::map<std::string, std::string> inputs;  // for kCompactionSwap
          if (compact || kill == KillPoint::kCompactionSwap) {
            if (kill == KillPoint::kCompactionSwap) {
              for (const auto& e : std::filesystem::directory_iterator(dir)) {
                if (e.path().extension() != ".log") continue;
                std::ifstream in(e.path(), std::ios::binary);
                inputs[e.path().string()] = std::string(
                    std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
              }
            }
            auto report = wal::delta::CompactLogDir(dir, {});
            ASSERT_TRUE(report.ok()) << report.status().ToString();
            if (report.value().ran) {
              total_dropped += report.value().records_dropped;
            }
          }
          switch (kill) {
            case KillPoint::kCompactionSwap: {
              // Resurrect every unlinked input next to its .clog rewrite
              // and leave a torn staging output: the on-disk state of a
              // kill between the rename pass and the unlink pass.
              for (const auto& [path, contents] : inputs) {
                if (!std::filesystem::exists(path)) {
                  std::ofstream(path, std::ios::binary) << contents;
                }
              }
              std::ofstream(dir + "/" + wal::SegmentFileName(998, true) +
                            ".tmp")
                  << "torn compaction output";
              break;
            }
            default:
              break;
          }
        }
        if (!delta_mode) {
          if (kill == KillPoint::kCheckpointStaging) {
            // Killed mid full-save: half-written checkpoint.tmp.
            std::filesystem::create_directories(wal_dir +
                                                "/checkpoint.tmp/shard0");
            std::ofstream(wal_dir + "/checkpoint.tmp/MANIFEST.tsv")
                << "K 1 1";  // no newline, torn
          }
          return;
        }
        const std::string delta_dir = wal::delta::DeltaDir(wal_dir);
        switch (kill) {
          case KillPoint::kCheckpointStaging: {
            const std::string stray =
                delta_dir + "/" + wal::delta::GenDirName(777) + ".tmp";
            std::filesystem::create_directories(stray + "/shard0");
            std::ofstream(stray + "/MANIFEST.tsv") << "K 1 1";
            break;
          }
          case KillPoint::kCurrentUpdate:
            std::filesystem::remove(delta_dir + "/CURRENT");
            break;
          case KillPoint::kHeadGenDamage: {
            auto head = wal::delta::ResolveHead(wal_dir);
            ASSERT_TRUE(head.ok()) << head.status().ToString();
            for (const wal::delta::FileRef& f : head.value().files) {
              if (f.src_gen != head.value().gen || f.bytes < 2) continue;
              std::filesystem::resize_file(
                  delta_dir + "/" +
                      wal::delta::GenDirName(head.value().gen) + "/" + f.rel,
                  f.bytes / 2);
              break;  // damaging one owned file is enough
            }
            break;
          }
          default:
            break;
        }
      };
    };

    DifferentialOptions full = base;
    full.wal_dir = FreshDir("full" + std::to_string(wal_shards) + "_" +
                            std::to_string(seed));
    full.wal_checkpoint_options.mode = wal::CheckpointMode::kFull;
    full.post_crash_hook = hook(/*delta_mode=*/false);

    DifferentialOptions delta = base;
    delta.wal_dir = FreshDir("delta" + std::to_string(wal_shards) + "_" +
                             std::to_string(seed));
    delta.wal_checkpoint_options.mode = wal::CheckpointMode::kDelta;
    delta.wal_checkpoint_options.rebase_every = 3;
    delta.post_crash_hook = hook(/*delta_mode=*/true);

    const DifferentialChecker ref_checker(workload.kb, workload.slots, base);
    const DifferentialChecker full_checker(workload.kb, workload.slots, full);
    const DifferentialChecker delta_checker(workload.kb, workload.slots,
                                            delta);

    const RunOutcome reference =
        wal_shards == 1 ? ref_checker.RunSingle(workload.ads, events)
                        : ref_checker.RunSharded(workload.ads, events);
    wal::RecoveryResult full_rec;
    const RunOutcome full_run =
        full_checker.RunWalCrash(workload.ads, events, &full_rec);
    wal::RecoveryResult delta_rec;
    const RunOutcome delta_run =
        delta_checker.RunWalCrash(workload.ads, events, &delta_rec);

    CompareOptions compare;
    if (wal_shards > 1) {
      compare.tfca_full = false;
      compare.tfca_sums = true;
      compare.matches = false;
    }
    const char* ref_name = wal_shards == 1 ? "single" : "sharded";
    const Divergence df = DifferentialChecker::CompareOutcomes(
        reference, full_run, compare, ref_name, "full-ckpt-crash");
    ASSERT_FALSE(df) << "seed " << seed << " (full) diverged at event "
                     << df.event_index << ": " << df.detail;
    const Divergence dd = DifferentialChecker::CompareOutcomes(
        reference, delta_run, compare, ref_name, "delta-ckpt-crash");
    ASSERT_FALSE(dd) << "seed " << seed << " (delta) diverged at event "
                     << dd.event_index << ": " << dd.detail;
    const Divergence dx = DifferentialChecker::CompareOutcomes(
        full_run, delta_run, compare, "full-ckpt-crash", "delta-ckpt-crash");
    ASSERT_FALSE(dx) << "seed " << seed << " full/delta diverged at event "
                     << dx.event_index << ": " << dx.detail;

    // Both recoveries restored through their checkpoint flavor.
    EXPECT_TRUE(full_rec.from_checkpoint) << "seed " << seed;
    EXPECT_FALSE(full_rec.from_delta) << "seed " << seed;
    EXPECT_TRUE(delta_rec.from_checkpoint) << "seed " << seed;
    EXPECT_TRUE(delta_rec.from_delta) << "seed " << seed;
    EXPECT_GE(delta_rec.delta_chain_len, 1u) << "seed " << seed;
    if (kill == KillPoint::kNone && !compact) {
      // Undisturbed chains resolve the newest generation with the full
      // three-checkpoint history behind it.
      EXPECT_GE(delta_rec.delta_gen, 3u) << "seed " << seed;
    }
    EXPECT_EQ(full_rec.next_seqno, delta_rec.next_seqno) << "seed " << seed;

    std::filesystem::remove_all(full.wal_dir);
    std::filesystem::remove_all(delta.wal_dir);
    ++iterations;
  }
  EXPECT_EQ(iterations, 20u);
  // The churn injection guarantees compaction had superseded records to
  // drop somewhere across the even seeds.
  EXPECT_GT(total_dropped, 0u);
  // All five kill-points ran (20 seeds mod 5).
  EXPECT_EQ(kills_exercised.size(), 5u);
}

TEST(WalDeltaDifferential, TwentySeededDeltaCrashesSingleStream) {
  TwentySeededDeltaCrashes(1);
}

TEST(WalDeltaDifferential, TwentySeededDeltaCrashesTwoStreams) {
  TwentySeededDeltaCrashes(2);
}

TEST(WalDeltaDifferential, TwentySeededDeltaCrashesFourStreams) {
  TwentySeededDeltaCrashes(4);
}

}  // namespace
}  // namespace adrec::testkit
