#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/stats_export.h"

namespace adrec::obs {
namespace {

TEST(MetricRegistryTest, HandlesAreStableAndNamed) {
  MetricRegistry registry;
  Counter* c1 = registry.GetCounter("engine.tweets");
  // Registering more metrics must not invalidate earlier handles.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i));
  }
  Counter* c2 = registry.GetCounter("engine.tweets");
  EXPECT_EQ(c1, c2);
  c1->Inc(3);
  EXPECT_EQ(c2->value(), 3u);
}

TEST(MetricRegistryTest, ConcurrentCounterIncrementsSumExactly) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Half the threads re-resolve the handle, half cache it — both are
      // legal usage patterns.
      Counter* counter = registry.GetCounter("shared.counter");
      for (int i = 0; i < kIncrements; ++i) counter->Inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricRegistryTest, ConcurrentTimerRecordsAllSamples) {
  MetricRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kSamples = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      Timer* timer = registry.GetTimer("shared.timer_us");
      for (int i = 0; i < kSamples; ++i) {
        timer->Record(static_cast<double>(t * kSamples + i) * 0.01);
      }
    });
  }
  for (auto& w : workers) w.join();
  const Histogram h = registry.GetTimer("shared.timer_us")->Snapshot();
  EXPECT_EQ(h.count(), static_cast<size_t>(kThreads) * kSamples);
}

TEST(MetricRegistryTest, TimerQuantilesSane) {
  MetricRegistry registry;
  Timer* timer = registry.GetTimer("t");
  for (int i = 1; i <= 1000; ++i) timer->Record(static_cast<double>(i));
  const Histogram h = timer->Snapshot();
  const double p50 = h.Quantile(0.50);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Log-bucketed quantiles stay within ~19% of exact.
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.2);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.2);
}

TEST(MetricRegistryTest, GaugeSetAddReset) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(4.5);
  g->Add(0.5);
  EXPECT_DOUBLE_EQ(g->value(), 5.0);
  registry.ResetAll();
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
}

TEST(MetricRegistryTest, ScopedTimerRecordsAndNullIsNoop) {
  MetricRegistry registry;
  Timer* timer = registry.GetTimer("scoped_us");
  { ScopedTimer scope(timer); }
  EXPECT_EQ(timer->count(), 1u);
  { ScopedTimer scope(nullptr); }  // must not crash
  EXPECT_EQ(timer->count(), 1u);
}

TEST(MetricRegistryTest, SnapshotMergeAddsCountersAndHistograms) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetCounter("events")->Inc(10);
  b.GetCounter("events")->Inc(5);
  b.GetCounter("only_b")->Inc(1);
  a.GetTimer("lat_us")->Record(1.0);
  b.GetTimer("lat_us")->Record(100.0);
  b.GetGauge("load")->Set(2.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.counters.at("events"), 15u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("load"), 2.0);
  EXPECT_EQ(merged.timers.at("lat_us").count(), 2u);
  EXPECT_DOUBLE_EQ(merged.timers.at("lat_us").min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.timers.at("lat_us").max(), 100.0);
}

TEST(StatsExportTest, TextExportContainsMetricNames) {
  MetricRegistry registry;
  registry.GetCounter("engine.tweets")->Inc(7);
  registry.GetTimer("engine.annotate_us")->Record(12.5);
  const std::string text =
      ExportText(BuildReport(registry.Snapshot()), "test");
  EXPECT_NE(text.find("engine.tweets"), std::string::npos);
  EXPECT_NE(text.find("engine.annotate_us"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(StatsExportTest, JsonRoundTripIsLossless) {
  MetricRegistry registry;
  registry.GetCounter("engine.tweets")->Inc(123456789);
  registry.GetGauge("tfca.topic_triconcepts")->Set(37.0);
  Timer* timer = registry.GetTimer("engine.topk_us");
  for (int i = 0; i < 500; ++i) timer->Record(0.37 * i);

  const StatsReport report = BuildReport(registry.Snapshot());
  const std::string json = ExportJson(report);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().counters.at("engine.tweets"), 123456789u);
  EXPECT_DOUBLE_EQ(parsed.value().gauges.at("tfca.topic_triconcepts"), 37.0);
  const TimerStat& t = parsed.value().timers.at("engine.topk_us");
  EXPECT_EQ(t.count, 500u);
  EXPECT_DOUBLE_EQ(t.p50, report.timers.at("engine.topk_us").p50);
  EXPECT_DOUBLE_EQ(t.p99, report.timers.at("engine.topk_us").p99);
  // Byte-identical re-export proves nothing was lost or reordered.
  EXPECT_EQ(ExportJson(parsed.value()), json);
}

TEST(StatsExportTest, JsonEscapesQuotesInNames) {
  MetricRegistry registry;
  registry.GetCounter("weird\"name\\x")->Inc(2);
  const std::string json = ExportJson(BuildReport(registry.Snapshot()));
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().counters.at("weird\"name\\x"), 2u);
}

TEST(StatsExportTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"counters\":{").ok());
  EXPECT_FALSE(ParseJson("{\"bogus_section\":{}}").ok());
  EXPECT_FALSE(ParseJson("{\"counters\":{}} trailing").ok());
}

TEST(MetricRegistryTest, ResetAllZeroesEverything) {
  MetricRegistry registry;
  registry.GetCounter("c")->Inc(9);
  registry.GetTimer("t")->Record(3.0);
  registry.ResetAll();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.timers.at("t").count(), 0u);
}

}  // namespace
}  // namespace adrec::obs
