#include "wal/wal.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "wal/record.h"

namespace adrec::wal {
namespace {

class WalLogTest : public ::testing::Test {
 protected:
  WalLogTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("adrec_wal_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  ~WalLogTest() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<WalWriter> OpenWriter(WalOptions options = {}) {
    auto writer = WalWriter::Open(dir_, options);
    EXPECT_TRUE(writer.ok()) << writer.status().ToString();
    return std::move(writer).value();
  }

  std::string dir_;
};

TEST_F(WalLogTest, AppendScanRoundTrip) {
  {
    auto w = OpenWriter();
    for (int i = 1; i <= 25; ++i) {
      auto seqno = w->Append("tweet\t1\t" + std::to_string(i * 10) + "\thello");
      ASSERT_TRUE(seqno.ok());
      EXPECT_EQ(seqno.value(), static_cast<uint64_t>(i));
    }
    EXPECT_EQ(w->last_seqno(), 25u);
    EXPECT_EQ(w->synced_seqno(), 25u);  // kGroup: durable before return
  }
  std::vector<Record> records;
  auto report = ScanLog(dir_, {}, [&](const Record& r) {
    records.push_back(r);
    return Status::OK();
  });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().records, 25u);
  EXPECT_EQ(report.value().first_seqno, 1u);
  EXPECT_EQ(report.value().last_seqno, 25u);
  EXPECT_FALSE(report.value().torn_tail);
  ASSERT_EQ(records.size(), 25u);
  EXPECT_EQ(records[7].seqno, 8u);
  EXPECT_EQ(records[7].payload, "tweet\t1\t80\thello");
}

TEST_F(WalLogTest, RotationSealsSegmentsAndResumesSeqnos) {
  WalOptions options;
  options.segment_bytes = 256;  // force frequent rotation
  {
    auto w = OpenWriter(options);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(w->Append("checkin\t2\t100\t5").ok());
    }
  }
  auto report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().segments.size(), 2u);
  EXPECT_EQ(report.value().records, 40u);
  EXPECT_EQ(report.value().last_seqno, 40u);

  // Reopen: a new writer resumes after the existing records (coalescing
  // into the partial tail segment when it is clean and under the
  // rotation threshold).
  {
    auto w = OpenWriter(options);
    auto seqno = w->Append("checkin\t2\t100\t5");
    ASSERT_TRUE(seqno.ok());
    EXPECT_EQ(seqno.value(), 41u);
  }
  report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().last_seqno, 41u);
}

TEST_F(WalLogTest, ReopenCoalescesIntoPartialTailSegment) {
  // The regression: every restart used to mint a fresh segment, so a
  // daemon restarted N times accumulated N near-empty files. Now a
  // clean, under-threshold tail is resumed — three runs, one file.
  for (int run = 0; run < 3; ++run) {
    auto w = OpenWriter();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(w->Append("tweet\t1\t10\thello").ok());
    }
  }
  const auto segments = ListSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].first_seqno, 1u);

  auto report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().records, 15u);
  EXPECT_EQ(report.value().last_seqno, 15u);
  EXPECT_FALSE(report.value().torn_tail);

  // The explicit-next_seqno fast path (recovery already scanned) also
  // resumes the tail rather than rotating.
  {
    auto w = WalWriter::Open(dir_, {}, /*next_seqno=*/16);
    ASSERT_TRUE(w.ok());
    auto seqno = w.value()->Append("tweet\t1\t10\tbye");
    ASSERT_TRUE(seqno.ok());
    EXPECT_EQ(seqno.value(), 16u);
  }
  EXPECT_EQ(ListSegments(dir_).size(), 1u);
  report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records, 16u);
}

TEST_F(WalLogTest, ReopenDoesNotCoalesceIntoFullOrCompactedTail) {
  // A tail at/over the rotation threshold is sealed, not resumed.
  WalOptions tiny;
  tiny.segment_bytes = 16;  // any one frame exceeds this
  {
    auto w = OpenWriter(tiny);
    ASSERT_TRUE(w->Append("tweet\t1\t10\tsized-past-the-threshold").ok());
  }
  {
    auto w = OpenWriter(tiny);
    ASSERT_TRUE(w->Append("tweet\t1\t10\tsized-past-the-threshold").ok());
  }
  EXPECT_EQ(ListSegments(dir_).size(), 2u);

  // A compacted tail is immutable by contract: reopening must leave it
  // untouched and append into a fresh .log segment.
  std::filesystem::remove_all(dir_);
  {
    auto w = OpenWriter();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(w->Append("tweet\t1\t10\thello").ok());
    }
  }
  const auto before = ListSegments(dir_);
  ASSERT_EQ(before.size(), 1u);
  const std::string clog =
      dir_ + "/" + SegmentFileName(before[0].first_seqno, /*compacted=*/true);
  std::filesystem::rename(before[0].path, clog);
  {
    auto w = OpenWriter();
    auto seqno = w->Append("tweet\t1\t10\tfresh");
    ASSERT_TRUE(seqno.ok());
    EXPECT_EQ(seqno.value(), 6u);
  }
  const auto after = ListSegments(dir_);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_TRUE(after[0].compacted);
  EXPECT_FALSE(after[1].compacted);
  auto report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().records, 6u);
  EXPECT_EQ(report.value().last_seqno, 6u);
}

TEST_F(WalLogTest, TornTailIsReportedAndTruncatedOnlyOnRequest) {
  {
    auto w = OpenWriter();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(w->Append("tweet\t1\t10\tabc").ok());
    }
  }
  // Simulate a crash mid-append: half a frame at the end of the newest
  // segment.
  auto clean = ScanLog(dir_, {});
  ASSERT_TRUE(clean.ok());
  const std::string tail_path = clean.value().segments.back().path;
  const std::string frame = EncodeFrame(11, "tweet\t1\t10\tabc");
  {
    std::ofstream out(tail_path, std::ios::binary | std::ios::app);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }

  auto report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().torn_tail);
  EXPECT_EQ(report.value().torn_bytes, frame.size() / 2);
  EXPECT_EQ(report.value().records, 10u);  // valid prefix still scans
  // Non-mutating scan left the bytes in place.
  EXPECT_EQ(std::filesystem::file_size(tail_path),
            clean.value().segments.back().bytes + frame.size() / 2);

  ScanOptions truncate;
  truncate.truncate_torn_tail = true;
  report = ScanLog(dir_, truncate);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().torn_tail);
  EXPECT_EQ(std::filesystem::file_size(tail_path),
            clean.value().segments.back().bytes);
  // After truncation the log is clean again.
  report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().torn_tail);
}

TEST_F(WalLogTest, CorruptionInSealedSegmentIsHardError) {
  WalOptions options;
  options.segment_bytes = 256;
  {
    auto w = OpenWriter(options);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(w->Append("tweet\t3\t50\txyz").ok());
    }
  }
  auto clean = ScanLog(dir_, {});
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean.value().segments.size(), 1u);
  // Flip a byte in the middle of the FIRST (sealed) segment: that is bit
  // rot, not a torn write, and no option may paper over it.
  const std::string sealed = clean.value().segments.front().path;
  {
    std::fstream f(sealed, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(sealed) / 2));
    f.put('#');
  }
  ScanOptions truncate;
  truncate.truncate_torn_tail = true;
  auto report = ScanLog(dir_, truncate);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIoError);
}

TEST_F(WalLogTest, VerifyChecksPayloadGrammar) {
  {
    auto w = OpenWriter();
    ASSERT_TRUE(w->Append("tweet\t1\t10\thello").ok());
    // A structurally valid frame whose payload is not wire grammar.
    ASSERT_TRUE(w->Append("not-a-verb\tstuff").ok());
  }
  EXPECT_TRUE(ScanLog(dir_, {}).ok());  // plain scan: CRC only
  auto verify = VerifyLog(dir_);
  EXPECT_FALSE(verify.ok());
}

TEST_F(WalLogTest, GroupCommitBatchesFsyncsUnderConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  auto w = OpenWriter();  // kGroup default
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(w->Append("checkin\t4\t60\t2").ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto snapshot = w->metrics().Snapshot();
  const uint64_t appends = snapshot.counters.at("wal.appends");
  const uint64_t fsyncs = snapshot.counters.at("wal.fsyncs");
  EXPECT_EQ(appends, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(w->synced_seqno(), appends);
  // Leader/follower batching: strictly fewer syncs than appends. The
  // margin is workload-dependent, but 4 spinning threads against a real
  // fdatasync must batch heavily.
  EXPECT_LT(fsyncs, appends / 2) << "group commit did not batch";
}

TEST_F(WalLogTest, DeferredAppendsBufferUntilCommit) {
  auto w = OpenWriter();
  ASSERT_TRUE(w->AppendDeferred("tweet\t1\t10\ta").ok());
  ASSERT_TRUE(w->AppendDeferred("tweet\t1\t20\tb").ok());
  EXPECT_EQ(w->last_seqno(), 2u);
  EXPECT_EQ(w->synced_seqno(), 0u);  // nothing durable yet
  // The frames are still in user space: the active segment file has not
  // grown (size counts the flushed bytes only).
  auto mid = ScanLog(dir_, {});
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.value().records, 0u);

  ASSERT_TRUE(w->Commit().ok());
  EXPECT_EQ(w->synced_seqno(), 2u);  // kGroup commit syncs
  auto report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records, 2u);
  EXPECT_EQ(report.value().last_seqno, 2u);

  // Interleaving a synchronous Append flushes the buffer first, so the
  // on-disk order equals the seqno order.
  ASSERT_TRUE(w->AppendDeferred("tweet\t1\t30\tc").ok());
  ASSERT_TRUE(w->Append("tweet\t1\t40\td").ok());
  std::vector<uint64_t> seqnos;
  report = ScanLog(dir_, {}, [&](const Record& r) {
    seqnos.push_back(r.seqno);
    return Status::OK();
  });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(seqnos, (std::vector<uint64_t>{1, 2, 3, 4}));
}

TEST_F(WalLogTest, DeferredBufferSurvivesRotationBoundary) {
  WalOptions options;
  options.segment_bytes = 128;
  auto w = OpenWriter(options);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(w->AppendDeferred("checkin\t5\t70\t3").ok());
    if (i % 7 == 0) {
      ASSERT_TRUE(w->Commit().ok());
    }
  }
  ASSERT_TRUE(w->Commit().ok());
  auto report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().segments.size(), 1u);
  EXPECT_EQ(report.value().records, 30u);
  EXPECT_EQ(report.value().last_seqno, 30u);
}

TEST_F(WalLogTest, DestructorFlushesDeferredTail) {
  {
    auto w = OpenWriter();
    ASSERT_TRUE(w->AppendDeferred("tweet\t9\t10\ttail").ok());
    // No Commit: a clean shutdown (destructor) must not lose the buffer.
  }
  auto report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records, 1u);
}

TEST_F(WalLogTest, RejectsMultilinePayloads) {
  auto w = OpenWriter();
  EXPECT_FALSE(w->Append("tweet\t1\t10\ttwo\nlines").ok());
  EXPECT_FALSE(w->AppendDeferred("tweet\t1\t10\tcr\rhere").ok());
  EXPECT_EQ(w->last_seqno(), 0u);
}

TEST_F(WalLogTest, TruncateSealedBeforeRemovesOnlyCoveredPrefix) {
  WalOptions options;
  options.segment_bytes = 200;
  auto w = OpenWriter(options);
  for (int i = 1; i <= 60; ++i) {
    ASSERT_TRUE(
        w->Append("tweet\t1\t" + std::to_string(i) + "\tpayload").ok());
  }
  ASSERT_TRUE(w->Rotate().ok());
  auto before = ScanLog(dir_, {});
  ASSERT_TRUE(before.ok());
  const size_t total_segments = before.value().segments.size();
  ASSERT_GT(total_segments, 3u);

  // Truncate below seqno 30 with no time floor: only whole segments whose
  // records are all < 30 go; contiguity of the rest is preserved.
  auto deleted = w->TruncateSealedBefore(30, INT64_MAX);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_GT(deleted.value(), 0u);
  auto after = ScanLog(dir_, {});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().segments.size(),
            total_segments - deleted.value());
  EXPECT_EQ(after.value().last_seqno, 60u);
  EXPECT_LE(after.value().first_seqno, 30u);

  // A time floor in the past blocks deletion even for covered seqnos.
  auto blocked = w->TruncateSealedBefore(60, 0);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked.value(), 0u);
}

}  // namespace
}  // namespace adrec::wal
