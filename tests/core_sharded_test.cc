#include "core/sharded_engine.h"

#include <set>

#include <gtest/gtest.h>

#include "feed/workload.h"

namespace adrec::core {
namespace {

class ShardedTest : public ::testing::Test {
 protected:
  ShardedTest() {
    feed::WorkloadOptions opts;
    opts.seed = 71;
    opts.num_users = 20;
    opts.num_places = 10;
    opts.num_ads = 4;
    opts.days = 5;
    workload_ = feed::GenerateWorkload(opts);
  }

  std::unique_ptr<ShardedEngine> Build(size_t shards) {
    auto engine = std::make_unique<ShardedEngine>(workload_.kb,
                                                  workload_.slots, shards);
    for (const feed::Ad& ad : workload_.ads) {
      EXPECT_TRUE(engine->InsertAd(ad).ok());
    }
    for (const feed::FeedEvent& e : workload_.MergedEvents()) {
      engine->OnEvent(e);
    }
    return engine;
  }

  feed::Workload workload_;
};

TEST_F(ShardedTest, RoutingIsStableAndCoversAllShards) {
  ShardedEngine engine(workload_.kb, workload_.slots, 4);
  std::set<size_t> used;
  for (uint32_t u = 0; u < 100; ++u) {
    const size_t s = engine.ShardOf(UserId(u));
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, engine.ShardOf(UserId(u)));  // stable
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 4u);  // 100 users hit every shard
}

TEST_F(ShardedTest, EventsLandOnOwnerShardOnly) {
  auto engine = Build(3);
  size_t total_tweets = 0, total_checkins = 0;
  for (size_t s = 0; s < engine->num_shards(); ++s) {
    total_tweets += engine->shard(s).tweets_ingested();
    total_checkins += engine->shard(s).checkins_ingested();
  }
  EXPECT_EQ(total_tweets, workload_.tweets.size());
  EXPECT_EQ(total_checkins, workload_.check_ins.size());
  // Ads are broadcast: every shard has the full inventory.
  for (size_t s = 0; s < engine->num_shards(); ++s) {
    EXPECT_EQ(engine->shard(s).ad_store().size(), workload_.ads.size());
  }
}

TEST_F(ShardedTest, ParallelAnalysisSucceedsOnAllShards) {
  auto engine = Build(4);
  ASSERT_TRUE(engine->RunAnalysis(0.5).ok());
  for (const feed::Ad& ad : workload_.ads) {
    EXPECT_TRUE(engine->RecommendUsers(ad.id).ok());
  }
}

TEST_F(ShardedTest, SingleShardMatchesUnshardedEngine) {
  auto sharded = Build(1);
  ASSERT_TRUE(sharded->RunAnalysis(0.5).ok());

  RecommendationEngine flat(workload_.kb, workload_.slots);
  for (const feed::Ad& ad : workload_.ads) {
    ASSERT_TRUE(flat.InsertAd(ad).ok());
  }
  for (const feed::FeedEvent& e : workload_.MergedEvents()) flat.OnEvent(e);
  ASSERT_TRUE(flat.RunAnalysis(0.5).ok());

  for (const feed::Ad& ad : workload_.ads) {
    auto a = sharded->RecommendUsers(ad.id);
    auto b = flat.RecommendUsers(ad.id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().users.size(), b.value().users.size());
    for (size_t i = 0; i < a.value().users.size(); ++i) {
      EXPECT_EQ(a.value().users[i].user, b.value().users[i].user);
      EXPECT_DOUBLE_EQ(a.value().users[i].score, b.value().users[i].score);
    }
  }
}

TEST_F(ShardedTest, ShardedMatchIsDeterministic) {
  auto run = [&] {
    auto engine = Build(4);
    EXPECT_TRUE(engine->RunAnalysis(0.5).ok());
    std::vector<std::vector<uint32_t>> out;
    for (const feed::Ad& ad : workload_.ads) {
      auto r = engine->RecommendUsers(ad.id);
      EXPECT_TRUE(r.ok());
      std::vector<uint32_t> users;
      for (const auto& mu : r.value().users) users.push_back(mu.user.value);
      out.push_back(std::move(users));
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(ShardedTest, TopKRoutesToOwnerShard) {
  auto engine = Build(3);
  const feed::Tweet& t = workload_.tweets.front();
  auto ads = engine->TopKAdsForTweet(t, 3);
  for (const auto& sa : ads) {
    EXPECT_LT(sa.ad.value, workload_.ads.size());
  }
  // Impressions were charged on the owner shard only.
  size_t charged_shards = 0;
  for (size_t s = 0; s < engine->num_shards(); ++s) {
    size_t impressions = 0;
    engine->shard(s).ad_store().ForEach(
        [&](const ads::StoredAd& a) { impressions += a.impressions_served; });
    if (impressions > 0) ++charged_shards;
  }
  EXPECT_LE(charged_shards, 1u);
}

TEST_F(ShardedTest, RemoveAdBroadcasts) {
  auto engine = Build(2);
  ASSERT_TRUE(engine->RemoveAd(workload_.ads[0].id).ok());
  for (size_t s = 0; s < engine->num_shards(); ++s) {
    EXPECT_EQ(engine->shard(s).ad_store().size(), workload_.ads.size() - 1);
  }
  EXPECT_EQ(engine->RemoveAd(workload_.ads[0].id).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace adrec::core
