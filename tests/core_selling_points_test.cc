#include "core/selling_points.h"

#include <gtest/gtest.h>

namespace adrec::core {
namespace {

class SellingPointsTest : public ::testing::Test {
 protected:
  SellingPointsTest()
      : kb_(annotate::BuildDemoKnowledgeBase(&analyzer_)),
        slots_(timeline::TimeSlotScheme::PaperScheme()),
        tfca_(&slots_, kb_->size()) {
    // Users 0-2 tweet topic 0 (heavily) and topic 1; users 3-9 tweet
    // topic 1 only. Topic 0 distinguishes the first group.
    for (uint32_t u = 0; u < 10; ++u) {
      for (int i = 0; i < 4; ++i) {
        if (u < 3) AddTweet(u, 0);
        AddTweet(u, 1);
      }
    }
  }

  void AddTweet(uint32_t user, uint32_t topic) {
    AnnotatedTweet t;
    t.user = UserId(user);
    t.time = 9 * kSecondsPerHour;
    annotate::Annotation a;
    a.topic = TopicId(topic);
    a.score = 1.0;
    t.annotations.push_back(a);
    tfca_.AddTweet(t);
  }

  text::Analyzer analyzer_;
  std::unique_ptr<annotate::KnowledgeBase> kb_;
  timeline::TimeSlotScheme slots_;
  TimeAwareConceptAnalysis tfca_;
};

TEST_F(SellingPointsTest, DistinguishingTopicTops) {
  auto points = DiscoverSellingPoints(tfca_, *kb_,
                                      {UserId(0), UserId(1), UserId(2)});
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points[0].topic, TopicId(0));
  EXPECT_GT(points[0].lift, 1.5);
  EXPECT_EQ(points[0].support, 3u);
  EXPECT_EQ(points[0].uri, kb_->entity(TopicId(0)).uri);
  // Topic 1 is universal: lift ≈ 1, below the default 1.2 cut.
  for (const SellingPoint& p : points) {
    EXPECT_NE(p.topic, TopicId(1));
  }
}

TEST_F(SellingPointsTest, WholePopulationHasNoSellingPoints) {
  std::vector<UserId> everyone;
  for (uint32_t u = 0; u < 10; ++u) everyone.push_back(UserId(u));
  auto points = DiscoverSellingPoints(tfca_, *kb_, everyone);
  // Against itself every lift is exactly 1.0.
  EXPECT_TRUE(points.empty());
}

TEST_F(SellingPointsTest, EmptyAndUnknownInputs) {
  EXPECT_TRUE(DiscoverSellingPoints(tfca_, *kb_, {}).empty());
  // Users never seen by the analysis.
  EXPECT_TRUE(
      DiscoverSellingPoints(tfca_, *kb_, {UserId(999)}).empty());
}

TEST_F(SellingPointsTest, MinSupportFilters) {
  SellingPointOptions opts;
  opts.min_support = 4;  // group has only 3 members
  EXPECT_TRUE(DiscoverSellingPoints(tfca_, *kb_,
                                    {UserId(0), UserId(1), UserId(2)}, opts)
                  .empty());
}

TEST_F(SellingPointsTest, MaxPointsTruncates) {
  SellingPointOptions opts;
  opts.min_lift = 0.0;
  opts.min_support = 1;
  opts.max_points = 1;
  auto points = DiscoverSellingPoints(tfca_, *kb_,
                                      {UserId(0), UserId(1), UserId(2)}, opts);
  EXPECT_EQ(points.size(), 1u);
}

}  // namespace
}  // namespace adrec::core
