#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fca/triadic_context.h"

namespace adrec::fca {
namespace {

FormalContext RandomDyadic(size_t g, size_t m, double density,
                           uint64_t seed) {
  Rng rng(seed);
  FormalContext ctx(g, m);
  for (size_t i = 0; i < g; ++i)
    for (size_t j = 0; j < m; ++j)
      if (rng.NextBool(density)) ctx.Set(i, j);
  return ctx;
}

TriadicContext RandomTriadic(size_t g, size_t m, size_t b, double density,
                             uint64_t seed) {
  Rng rng(seed);
  TriadicContext ctx(g, m, b);
  for (size_t i = 0; i < g; ++i)
    for (size_t j = 0; j < m; ++j)
      for (size_t k = 0; k < b; ++k)
        if (rng.NextBool(density)) ctx.Set(i, j, k);
  return ctx;
}

TEST(IcebergDyadicTest, EqualsPostFilteredFullEnumeration) {
  const FormalContext ctx = RandomDyadic(10, 8, 0.4, 7);
  auto full = EnumerateConcepts(ctx);
  ASSERT_TRUE(full.ok());
  for (size_t support : {0u, 1u, 2u, 4u, 10u}) {
    EnumerateOptions opts;
    opts.min_extent = support;
    auto iceberg = EnumerateConcepts(ctx, opts);
    ASSERT_TRUE(iceberg.ok());
    std::vector<Concept> expected;
    for (const Concept& c : full.value()) {
      if (c.extent.Count() >= support) expected.push_back(c);
    }
    ASSERT_EQ(iceberg.value().size(), expected.size()) << support;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(iceberg.value()[i], expected[i]);
    }
  }
}

TEST(IcebergDyadicTest, ZeroSupportIsFullLattice) {
  const FormalContext ctx = RandomDyadic(8, 8, 0.5, 13);
  auto a = EnumerateConcepts(ctx);
  EnumerateOptions opts;
  opts.min_extent = 0;
  auto b = EnumerateConcepts(ctx, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().size(), b.value().size());
}

using Box = std::tuple<std::vector<uint32_t>, std::vector<uint32_t>,
                       std::vector<uint32_t>>;

std::set<Box> KeySet(const std::vector<TriConcept>& v) {
  std::set<Box> out;
  for (const TriConcept& tc : v) {
    out.insert(Box{tc.objects.ToVector(), tc.attributes.ToVector(),
                   tc.conditions.ToVector()});
  }
  return out;
}

class IcebergTriadicTest : public ::testing::TestWithParam<int> {};

TEST_P(IcebergTriadicTest, EqualsPostFilteredFullMining) {
  const TriadicContext ctx =
      RandomTriadic(8, 4, 4, 0.3, static_cast<uint64_t>(GetParam()) * 31);
  auto full = MineTriConcepts(ctx);
  ASSERT_TRUE(full.ok());
  for (size_t support : {1u, 2u, 3u}) {
    EnumerateOptions opts;
    opts.min_extent = support;
    auto iceberg = MineTriConcepts(ctx, opts);
    ASSERT_TRUE(iceberg.ok());
    std::set<Box> expected;
    for (const TriConcept& tc : full.value()) {
      if (tc.objects.Count() >= support) {
        expected.insert(Box{tc.objects.ToVector(), tc.attributes.ToVector(),
                            tc.conditions.ToVector()});
      }
    }
    EXPECT_EQ(KeySet(iceberg.value()), expected)
        << "support=" << support << " seed=" << GetParam();

    // The naive miner agrees under the same support.
    auto naive = MineTriConceptsNaive(ctx, opts);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(KeySet(naive.value()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcebergTriadicTest, ::testing::Range(1, 9));

TEST(IcebergTriadicTest, HighSupportPrunesToEmpty) {
  const TriadicContext ctx = RandomTriadic(5, 3, 3, 0.3, 5);
  EnumerateOptions opts;
  opts.min_extent = 100;
  auto mined = MineTriConcepts(ctx, opts);
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(mined.value().empty());
}

}  // namespace
}  // namespace adrec::fca
