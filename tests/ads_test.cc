#include "ads/ad_store.h"

#include <gtest/gtest.h>

namespace adrec::ads {
namespace {

feed::Ad MakeAd(uint32_t id, int64_t budget = 0) {
  feed::Ad ad;
  ad.id = AdId(id);
  ad.campaign = CampaignId(id);
  ad.copy = "test ad";
  ad.budget_impressions = budget;
  return ad;
}

text::SparseVector Topics(std::vector<text::SparseEntry> entries) {
  return text::SparseVector::FromUnsorted(std::move(entries));
}

TEST(AdStoreTest, InsertFindRemove) {
  AdStore store;
  ASSERT_TRUE(store.Insert(MakeAd(1), Topics({{0, 1.0}})).ok());
  EXPECT_EQ(store.size(), 1u);
  const StoredAd* found = store.Find(AdId(1));
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->topics.Get(0), 1.0);
  EXPECT_EQ(store.Insert(MakeAd(1), {}).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(store.Remove(AdId(1)).ok());
  EXPECT_EQ(store.Find(AdId(1)), nullptr);
  EXPECT_EQ(store.Remove(AdId(1)).code(), StatusCode::kNotFound);
}

TEST(AdStoreTest, UpdateReplacesAndBumpsVersion) {
  AdStore store;
  ASSERT_TRUE(store.Insert(MakeAd(1), Topics({{0, 1.0}})).ok());
  const uint64_t v1 = store.Find(AdId(1))->version;
  ASSERT_TRUE(store.Update(MakeAd(1), Topics({{5, 0.7}})).ok());
  const StoredAd* updated = store.Find(AdId(1));
  EXPECT_GT(updated->version, v1);
  EXPECT_DOUBLE_EQ(updated->topics.Get(5), 0.7);
  EXPECT_DOUBLE_EQ(updated->topics.Get(0), 0.0);
  EXPECT_EQ(store.Update(MakeAd(9), {}).code(), StatusCode::kNotFound);
}

TEST(AdStoreTest, BudgetAccounting) {
  AdStore store;
  ASSERT_TRUE(store.Insert(MakeAd(1, /*budget=*/2), {}).ok());
  EXPECT_TRUE(store.HasBudget(AdId(1)));
  EXPECT_TRUE(store.RecordImpression(AdId(1)).ok());
  EXPECT_TRUE(store.RecordImpression(AdId(1)).ok());
  EXPECT_FALSE(store.HasBudget(AdId(1)));
  EXPECT_EQ(store.RecordImpression(AdId(1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.RecordImpression(AdId(7)).code(), StatusCode::kNotFound);
}

TEST(AdStoreTest, ZeroBudgetMeansUnlimited) {
  AdStore store;
  ASSERT_TRUE(store.Insert(MakeAd(1, 0), {}).ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(store.RecordImpression(AdId(1)).ok());
  }
  EXPECT_TRUE(store.HasBudget(AdId(1)));
}

TEST(AdStoreTest, ForEachVisitsAllAndMutationCountAdvances) {
  AdStore store;
  const uint64_t m0 = store.mutation_count();
  ASSERT_TRUE(store.Insert(MakeAd(1), {}).ok());
  ASSERT_TRUE(store.Insert(MakeAd(2), {}).ok());
  size_t visited = 0;
  store.ForEach([&](const StoredAd&) { ++visited; });
  EXPECT_EQ(visited, 2u);
  ASSERT_TRUE(store.Remove(AdId(2)).ok());
  EXPECT_EQ(store.mutation_count(), m0 + 3);
}

TEST(BudgetPacerTest, UniformSchedule) {
  BudgetPacer pacer(0, 1000, 100);
  // At t=0 nothing is allowed yet beyond the +1 slack.
  EXPECT_TRUE(pacer.ShouldServe(0, 0));
  EXPECT_FALSE(pacer.ShouldServe(0, 1));
  // Halfway: about half the budget.
  EXPECT_EQ(pacer.AllowedBy(500), 51);
  EXPECT_TRUE(pacer.ShouldServe(500, 50));
  EXPECT_FALSE(pacer.ShouldServe(500, 51));
  // At/after the end: the full budget, never more.
  EXPECT_EQ(pacer.AllowedBy(2000), 100);
  EXPECT_FALSE(pacer.ShouldServe(2000, 100));
  EXPECT_TRUE(pacer.ShouldServe(2000, 99));
}

TEST(BudgetPacerTest, UnlimitedBudgetAlwaysServes) {
  BudgetPacer pacer(0, 10, 0);
  EXPECT_TRUE(pacer.ShouldServe(0, 123456));
}

TEST(BudgetPacerTest, DegenerateWindow) {
  BudgetPacer pacer(100, 100, 10);  // end clamped to start+1
  EXPECT_EQ(pacer.AllowedBy(101), 10);
}

}  // namespace
}  // namespace adrec::ads
