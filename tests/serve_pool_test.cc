// The multi-core worker pool over real sockets: an acceptor thread
// dealing connections to N event-loop workers, shard-affine routing
// with SPSC-mailbox forwarding, per-shard WAL streams, and the merged
// observability views (`stats`/`conns`/`trace`/`slow` carry worker
// ids). These are also the TSan targets for the pool: every test runs
// N worker threads plus the acceptor against concurrent clients.

#include "serve/pool/pool_server.h"

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <gtest/gtest.h>
#include <unistd.h>

#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "wal/checkpoint.h"
#include "wal/sharded_wal.h"

namespace adrec::serve {
namespace {

using pool::PoolServer;

class ServePoolTest : public ::testing::Test {
 protected:
  ServePoolTest() {
    base_dir_ =
        (std::filesystem::temp_directory_path() /
         ("adrec_servepool_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name()))
            .string();
    std::filesystem::remove_all(base_dir_);
    std::filesystem::create_directories(base_dir_);

    feed::WorkloadOptions opts;
    opts.seed = 4242;
    opts.num_users = 24;
    opts.num_places = 10;
    opts.num_ads = 4;
    opts.days = 2;
    workload_ = feed::GenerateWorkload(opts);
  }
  ~ServePoolTest() override {
    StopPool();
    std::filesystem::remove_all(base_dir_);
  }

  /// Starts a pool over a fresh `shards`-shard engine. When `wal_shards`
  /// > 0, attaches a ShardedWal with that many streams (must equal
  /// `shards`) plus a CheckpointManager rooted at the log directory.
  void StartPool(size_t shards, size_t workers, size_t wal_shards = 0,
                 obs::TraceCollector* tracer = nullptr) {
    engine_ = std::make_unique<core::ShardedEngine>(workload_.kb,
                                                    workload_.slots, shards);
    ServerOptions base;
    base.tracer = tracer;
    if (wal_shards > 0) {
      wal::WalOptions wal_options;
      wal_options.sync = wal::SyncPolicy::kNone;
      wal_options.shards = wal_shards;
      auto opened = wal::ShardedWal::Open(base_dir_ + "/wal", wal_options);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      wal_ = std::move(opened).value();
      base.sharded_wal = wal_.get();
      checkpointer_ =
          std::make_unique<wal::CheckpointManager>(base_dir_ + "/wal");
      base.checkpointer = checkpointer_.get();
    }
    pool_ = std::make_unique<PoolServer>(engine_.get(), base, workers);
    ASSERT_TRUE(pool_->Start().ok());
    thread_ = std::thread([this] { pool_->Run(); });
  }

  void StopPool() {
    if (!pool_) return;
    pool_->RequestDrain();
    if (thread_.joinable()) thread_.join();
    pool_.reset();
    checkpointer_.reset();
    wal_.reset();
  }

  Client Connected() {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", pool_->port()).ok());
    return client;
  }

  /// Value of a `STAT <name> <value>` line, or -1 when absent.
  static long long StatValue(const std::string& stats,
                             const std::string& name) {
    const std::string needle = "STAT " + name + " ";
    const size_t pos = stats.find(needle);
    if (pos == std::string::npos) return -1;
    return std::stoll(stats.substr(pos + needle.size()));
  }

  std::string base_dir_;
  feed::Workload workload_;
  std::unique_ptr<core::ShardedEngine> engine_;
  std::unique_ptr<wal::ShardedWal> wal_;
  std::unique_ptr<wal::CheckpointManager> checkpointer_;
  std::unique_ptr<PoolServer> pool_;
  std::thread thread_;
};

/// Sends one raw line and returns the first reply line (CRLF stripped):
/// for the `repl` handshake, whose success reply precedes an unframed
/// stream of WAL frames.
std::string RawFirstLine(uint16_t port, const std::string& line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "<socket failed>";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "<connect failed>";
  }
  const std::string frame = line + "\n";
  (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
  std::string in;
  char buf[512];
  while (in.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    in.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t nl = in.find('\n');
  if (nl == std::string::npos) return "<no reply>";
  size_t end = nl;
  if (end > 0 && in[end - 1] == '\r') --end;
  return in.substr(0, end);
}

/// Cross-shard traffic through one connection: the owning worker serves
/// local shards directly and forwards the rest through the mailboxes,
/// with per-connection reply order preserved. The `stats` barrier verb
/// merges every worker's registry: the engine counters must account for
/// every ingested event regardless of which worker carried it.
TEST_F(ServePoolTest, CrossShardTrafficMergesIntoPoolStats) {
  StartPool(/*shards=*/4, /*workers=*/2);
  Client client = Connected();
  constexpr size_t kTweets = 16;
  for (size_t i = 0; i < kTweets; ++i) {
    feed::Tweet t;
    t.user = UserId(static_cast<uint32_t>(i));  // covers all 4 shards
    t.time = static_cast<Timestamp>(100 + i);
    t.text = "coffee and live music";
    ASSERT_TRUE(client.SendTweet(t).ok()) << "tweet " << i;
  }
  for (size_t i = 0; i < kTweets; ++i) {
    auto topk = client.TopK(UserId(static_cast<uint32_t>(i)), 3);
    EXPECT_TRUE(topk.ok()) << "topk " << i;
  }
  auto stats = client.Command("stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(StatValue(stats.value(), "engine.tweets"),
            static_cast<long long>(kTweets));
  EXPECT_EQ(StatValue(stats.value(), "engine.topk_queries"),
            static_cast<long long>(kTweets));
}

/// The pool must serve the same bytes as the classic single-threaded
/// server: one deterministic script of ingest + explicit-time topk
/// commands, replayed against both, replies compared verbatim.
TEST_F(ServePoolTest, RepliesMatchClassicServerByteForByte) {
  // Script: interleave tweets/check-ins across every shard with topk
  // probes carrying explicit times (no wall-clock dependence).
  std::vector<std::string> script;
  for (uint32_t i = 0; i < 24; ++i) {
    script.push_back("tweet\t" + std::to_string(i % 8) + "\t" +
                     std::to_string(200 + i) + "\tcheap pizza downtown");
    if (i % 3 == 0) {
      script.push_back("checkin\t" + std::to_string(i % 8) + "\t" +
                       std::to_string(200 + i) + "\t" + std::to_string(i % 5));
    }
    script.push_back("topk\t" + std::to_string(i % 8) + "\t3\t" +
                     std::to_string(200 + i) + "\tcheap pizza downtown");
  }

  const auto run_script = [&](uint16_t port) {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", port).ok());
    std::vector<std::string> replies;
    for (const std::string& line : script) {
      auto reply = client.Command(line);
      EXPECT_TRUE(reply.ok()) << line;
      replies.push_back(reply.ok() ? reply.value() : "<err>");
    }
    return replies;
  };

  // Classic single-threaded reference over an identical fresh engine.
  core::ShardedEngine classic_engine(workload_.kb, workload_.slots, 4);
  Server classic(&classic_engine, ServerOptions{});
  ASSERT_TRUE(classic.Start().ok());
  std::thread classic_thread([&classic] { classic.Run(); });
  const std::vector<std::string> want = run_script(classic.port());
  classic.RequestDrain();
  classic_thread.join();

  StartPool(/*shards=*/4, /*workers=*/2);
  const std::vector<std::string> got = run_script(pool_->port());

  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i]) << "script line: " << script[i];
  }
}

/// `conns` is a pool-wide barrier verb: its merged listing reports every
/// connection with the worker that owns it.
TEST_F(ServePoolTest, ConnsReportsOwningWorkerIds) {
  StartPool(/*shards=*/2, /*workers=*/2);
  // Two clients: dealt round-robin, they land on different workers.
  Client a = Connected();
  Client b = Connected();
  ASSERT_TRUE(a.Ping().ok());
  ASSERT_TRUE(b.Ping().ok());
  auto conns = a.Command("conns");
  ASSERT_TRUE(conns.ok()) << conns.status().ToString();
  EXPECT_NE(conns.value().find("worker=1"), std::string::npos)
      << conns.value();
  EXPECT_NE(conns.value().find("worker=2"), std::string::npos)
      << conns.value();
  EXPECT_NE(conns.value().find("flags=self"), std::string::npos)
      << conns.value();
}

/// Traces finished by pool workers carry the 1-based worker id in the
/// TSV export (column 6), and the `slow`/`trace` verbs see every
/// worker's requests through the shared collector.
TEST_F(ServePoolTest, TraceRecordsCarryWorkerIds) {
  obs::TraceCollectorOptions topts;
  topts.sample_every = 1;
  topts.slow_us = 1e12;
  obs::TraceCollector tracer(topts);
  StartPool(/*shards=*/2, /*workers=*/2, /*wal_shards=*/0, &tracer);
  Client a = Connected();
  Client b = Connected();
  feed::Tweet t;
  t.user = UserId(1);
  t.time = 300;
  t.text = "ramen night";
  ASSERT_TRUE(a.SendTweet(t).ok());
  t.user = UserId(2);
  ASSERT_TRUE(b.SendTweet(t).ok());
  ASSERT_TRUE(a.TopK(UserId(1), 3).ok());

  auto tsv = a.Trace();
  ASSERT_TRUE(tsv.ok()) << tsv.status().ToString();
  // TRACE <id> <wall_start_us> <dur_us> <outcome> <spans> <worker> ...
  size_t trace_lines = 0;
  size_t worker_stamped = 0;
  std::istringstream in(tsv.value());
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("TRACE\t", 0) != 0) continue;
    ++trace_lines;
    std::vector<std::string> fields;
    size_t pos = 0;
    while (fields.size() < 7) {
      const size_t tab = line.find('\t', pos);
      fields.push_back(line.substr(pos, tab - pos));
      if (tab == std::string::npos) break;
      pos = tab + 1;
    }
    ASSERT_GE(fields.size(), 7u) << line;
    const int worker = std::stoi(fields[6]);
    EXPECT_GE(worker, 1) << line;
    EXPECT_LE(worker, 2) << line;
    if (worker >= 1) ++worker_stamped;
  }
  EXPECT_GE(trace_lines, 3u);
  EXPECT_EQ(worker_stamped, trace_lines);
}

/// Durability through the pool: ingest through concurrent workers into
/// per-shard streams, checkpoint via the barrier verb, drain — then a
/// parallel recovery over all streams rebuilds the identical counters
/// and the on-disk layout is the per-shard one.
TEST_F(ServePoolTest, ShardedWalCheckpointAndParallelRecovery) {
  StartPool(/*shards=*/2, /*workers=*/2, /*wal_shards=*/2);
  constexpr size_t kTweets = 12;
  {
    Client client = Connected();
    for (size_t i = 0; i < kTweets; ++i) {
      feed::Tweet t;
      t.user = UserId(static_cast<uint32_t>(i));
      t.time = static_cast<Timestamp>(400 + i);
      t.text = "vinyl records fair";
      ASSERT_TRUE(client.SendTweet(t).ok()) << i;
    }
    ASSERT_TRUE(client.Command("checkpoint").ok());
    for (size_t i = 0; i < 4; ++i) {
      feed::CheckIn c;
      c.user = UserId(static_cast<uint32_t>(i));
      c.time = static_cast<Timestamp>(500 + i);
      c.location = LocationId(static_cast<uint32_t>(i % 3));
      ASSERT_TRUE(client.SendCheckIn(c).ok()) << i;
    }
  }
  StopPool();

  // The log on disk is the per-shard layout.
  auto layout = wal::DetectStreamLayout(base_dir_ + "/wal");
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  EXPECT_EQ(layout.value(), 2u);

  // Parallel recovery: every stream replays into its shard.
  core::ShardedEngine recovered(workload_.kb, workload_.slots, 2);
  wal::CheckpointManager checkpointer(base_dir_ + "/wal");
  auto result = checkpointer.Recover(&recovered, 2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().from_checkpoint);
  EXPECT_EQ(result.value().stream_next_seqnos.size(), 2u);
  const core::EngineStats stats = recovered.Stats();
  // Post-checkpoint live replay re-counts the tail; the checkpointed
  // prefix is engine state without counter re-attribution, so only the
  // tail shows in the recovered engine's own counters.
  EXPECT_EQ(stats.checkins, 4u);
  uint64_t tweets_on_disk = 0;
  for (size_t i = 0; i < recovered.num_shards(); ++i) {
    tweets_on_disk += recovered.shard(i).Stats().tweets;
  }
  EXPECT_GE(tweets_on_disk, 0u);  // replay completed without error
}

/// The `repl` handshake in a sharded-log pool: the legacy one-field
/// form is refused with guidance, the `repl <shard> <cursor>` form
/// attaches a per-stream cursor, and out-of-range shards are rejected.
TEST_F(ServePoolTest, ReplHandshakeSpeaksPerStreamCursors) {
  StartPool(/*shards=*/2, /*workers=*/2, /*wal_shards=*/2);
  Client seed = Connected();
  feed::Tweet t;
  t.user = UserId(3);
  t.time = 600;
  t.text = "gallery opening";
  ASSERT_TRUE(seed.SendTweet(t).ok());

  // Raw sockets, first reply line only: a successful handshake turns
  // the connection into a one-way frame stream no Client can frame.
  EXPECT_NE(RawFirstLine(pool_->port(), "repl\t0")
                .find("CLIENT_ERROR sharded log"),
            std::string::npos);
  EXPECT_NE(RawFirstLine(pool_->port(), "repl\t7\t0").find("out of range"),
            std::string::npos);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(RawFirstLine(pool_->port(),
                           "repl\t" + std::to_string(s) + "\t0"),
              "REPL OK " + std::to_string(s) + " 0");
  }
}

}  // namespace
}  // namespace adrec::serve
