#include "core/decay_topic_model.h"

#include <gtest/gtest.h>

namespace adrec::core {
namespace {

using Token = WeightedLdaModel::Token;

DecayTopicOptions SmallOptions() {
  DecayTopicOptions opts;
  opts.num_topics = 2;
  opts.train_iterations = 80;
  opts.seed = 11;
  return opts;
}

std::vector<std::vector<Token>> ClusteredDocs(double weight = 1.0) {
  std::vector<std::vector<Token>> docs;
  for (int d = 0; d < 8; ++d) {
    std::vector<Token> doc;
    for (int i = 0; i < 30; ++i) {
      doc.push_back(
          Token{static_cast<uint32_t>((d % 2 == 0 ? 0 : 5) + i % 5), weight});
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

TEST(WeightedLdaTest, Validation) {
  DecayTopicOptions opts = SmallOptions();
  opts.num_topics = 0;
  EXPECT_FALSE(WeightedLdaModel::Train({{Token{0, 1.0}}}, 5, opts).ok());
  EXPECT_FALSE(
      WeightedLdaModel::Train({{Token{0, 1.0}}}, 0, SmallOptions()).ok());
  EXPECT_FALSE(
      WeightedLdaModel::Train({{Token{9, 1.0}}}, 5, SmallOptions()).ok());
  EXPECT_FALSE(
      WeightedLdaModel::Train({{Token{0, -1.0}}}, 5, SmallOptions()).ok());
}

TEST(WeightedLdaTest, UnitWeightsSeparateClusters) {
  auto model = WeightedLdaModel::Train(ClusteredDocs(), 10, SmallOptions());
  ASSERT_TRUE(model.ok());
  const auto d0 = model.value().DocTopicDistribution(0);
  const auto d1 = model.value().DocTopicDistribution(1);
  const auto d2 = model.value().DocTopicDistribution(2);
  EXPECT_GT(WeightedLdaModel::Similarity(d0, d2), 0.9);
  EXPECT_LT(WeightedLdaModel::Similarity(d0, d1), 0.7);
}

TEST(WeightedLdaTest, ZeroWeightTokensAreInert) {
  // A document whose words are all weight-0 gets the prior distribution.
  auto docs = ClusteredDocs();
  std::vector<Token> dead;
  for (int i = 0; i < 10; ++i) dead.push_back(Token{9, 0.0});
  docs.push_back(dead);
  auto model = WeightedLdaModel::Train(docs, 10, SmallOptions());
  ASSERT_TRUE(model.ok());
  const auto dist = model.value().DocTopicDistribution(8);
  EXPECT_NEAR(dist[0], 0.5, 1e-9);
  EXPECT_NEAR(dist[1], 0.5, 1e-9);
}

TEST(WeightedLdaTest, DownWeightedEvidenceMattersLess) {
  // Mixed doc: cluster-A words at high weight, cluster-B words at tiny
  // weight. Its mixture should lean strongly toward cluster A's topic.
  auto docs = ClusteredDocs();
  std::vector<Token> mixed;
  for (int i = 0; i < 5; ++i) mixed.push_back(Token{static_cast<uint32_t>(i), 1.0});
  for (int i = 5; i < 10; ++i) {
    mixed.push_back(Token{static_cast<uint32_t>(i), 0.05});
  }
  docs.push_back(mixed);
  auto model = WeightedLdaModel::Train(docs, 10, SmallOptions());
  ASSERT_TRUE(model.ok());
  const auto mixture = model.value().DocTopicDistribution(8);
  const auto pure_a = model.value().DocTopicDistribution(0);
  const auto pure_b = model.value().DocTopicDistribution(1);
  EXPECT_GT(WeightedLdaModel::Similarity(mixture, pure_a),
            WeightedLdaModel::Similarity(mixture, pure_b));
}

class DecayStrategyTest : public ::testing::Test {
 protected:
  DecayStrategyTest() {
    // User 0: tweets about volleyball long ago, then switches to coffee.
    // User 1: consistent pizza tweets throughout.
    const Timestamp early = 1 * kSecondsPerDay + 8 * kSecondsPerHour;
    const Timestamp late = 20 * kSecondsPerDay + 8 * kSecondsPerHour;
    for (int i = 0; i < 10; ++i) {
      tweets_.push_back({UserId(0), early + i * 600,
                         "volleyball spike serve block court match"});
      tweets_.push_back({UserId(0), late + i * 600,
                         "espresso latte coffee beans barista cafe"});
      tweets_.push_back({UserId(1), early + i * 600,
                         "pizza cheese slice oven dough italian"});
      tweets_.push_back({UserId(1), late + i * 600,
                         "pizza pepperoni margherita restaurant"});
    }
    // User 2 tweets sports only in the morning, food only in the evening.
    for (int day = 0; day < 10; ++day) {
      tweets_.push_back({UserId(2),
                         day * kSecondsPerDay + 8 * kSecondsPerHour,
                         "volleyball match spike court serve"});
      tweets_.push_back({UserId(2),
                         day * kSecondsPerDay + 19 * kSecondsPerHour,
                         "pizza cheese oven slice restaurant"});
    }
  }

  bool Contains(const std::vector<UserId>& users, uint32_t id) {
    for (UserId u : users) {
      if (u.value == id) return true;
    }
    return false;
  }

  std::vector<feed::Tweet> tweets_;
  text::Analyzer analyzer_;
};

TEST_F(DecayStrategyTest, DtmPrefersRecentInterests) {
  DecayTopicOptions opts;
  opts.num_topics = 4;
  opts.half_life = 3 * kSecondsPerDay;
  opts.seed = 99;
  const Timestamp now = 21 * kSecondsPerDay;
  auto dtm = DecayTopicStrategy::TrainDtm(tweets_, &analyzer_, now, opts);
  ASSERT_TRUE(dtm.ok()) << dtm.status().ToString();
  // User 0's volleyball phase decayed away; a coffee ad should match
  // user 0, a volleyball ad should not.
  auto coffee = dtm.value().Predict("espresso coffee latte beans", 0.7);
  EXPECT_TRUE(Contains(coffee, 0));
  auto volleyball = dtm.value().Predict("volleyball spike serve court", 0.7);
  EXPECT_FALSE(Contains(volleyball, 0));
}

TEST_F(DecayStrategyTest, GdtmIsTimeOfDayAware) {
  DecayTopicOptions opts;
  opts.num_topics = 4;
  opts.sigma = 2 * kSecondsPerHour;
  opts.seed = 99;
  // Morning anchor: user 2 looks like a sports fan.
  auto morning = DecayTopicStrategy::TrainGdtm(tweets_, &analyzer_,
                                               8 * kSecondsPerHour, opts);
  ASSERT_TRUE(morning.ok());
  auto sporty = morning.value().Predict("volleyball spike court match", 0.7);
  EXPECT_TRUE(Contains(sporty, 2));
  // Evening anchor: user 2 looks like a food fan, not a sports fan.
  auto evening = DecayTopicStrategy::TrainGdtm(tweets_, &analyzer_,
                                               19 * kSecondsPerHour, opts);
  ASSERT_TRUE(evening.ok());
  auto foody = evening.value().Predict("pizza cheese oven slice", 0.7);
  EXPECT_TRUE(Contains(foody, 2));
  auto sporty_evening =
      evening.value().Predict("volleyball spike court match", 0.7);
  EXPECT_FALSE(Contains(sporty_evening, 2));
}

TEST_F(DecayStrategyTest, KernelCutoffCanEmptyTraining) {
  DecayTopicOptions opts;
  opts.half_life = 1;  // everything decays to ~0 instantly
  const Timestamp now = 100 * kSecondsPerDay;
  auto dtm = DecayTopicStrategy::TrainDtm(tweets_, &analyzer_, now, opts);
  EXPECT_FALSE(dtm.ok());
}

TEST_F(DecayStrategyTest, NullAnalyzerRejected) {
  EXPECT_FALSE(DecayTopicStrategy::TrainDtm(tweets_, nullptr, 0).ok());
}

}  // namespace
}  // namespace adrec::core
