// The flight recorder in isolation: TraceBuilder span trees, the
// lock-free TraceRing (wrap-around, concurrent writers — the TSan
// target), the TraceCollector's tail-based retention, and the TSV /
// Chrome-JSON exporters.

#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace adrec::obs {
namespace {

using std::chrono::steady_clock;

void SpinFor(std::chrono::microseconds us) {
  const auto until = steady_clock::now() + us;
  while (steady_clock::now() < until) {
  }
}

// --- TraceBuilder ---

TEST(TraceBuilderTest, RecordsNestedSpanTree) {
  TraceBuilder b;
  b.Start(7, "topk\t3\t5");
  ASSERT_TRUE(b.active());
  EXPECT_EQ(b.trace_id(), 7u);

  const uint32_t outer = b.StartSpan("serve.dispatch");
  ASSERT_NE(outer, 0u);
  SpinFor(std::chrono::microseconds(200));
  const uint32_t inner = b.StartSpan("engine.topk");
  ASSERT_NE(inner, 0u);
  SpinFor(std::chrono::microseconds(200));
  b.EndSpan(inner);
  b.EndSpan(outer);
  b.Close();

  const TraceRecord& rec = b.record();
  ASSERT_EQ(rec.num_spans, 2u);
  EXPECT_EQ(rec.spans_dropped, 0u);
  EXPECT_STREQ(rec.spans[0].name, "serve.dispatch");
  EXPECT_EQ(rec.spans[0].parent, 0u);  // child of the root
  EXPECT_STREQ(rec.spans[1].name, "engine.topk");
  EXPECT_EQ(rec.spans[1].parent, 1u);  // nested under serve.dispatch
  EXPECT_STREQ(rec.detail, "topk\t3\t5");

  // Chronology and containment: the inner span starts after the outer
  // one, fits inside it, and both fit inside the root duration.
  EXPECT_GE(rec.spans[1].start_ns, rec.spans[0].start_ns);
  EXPECT_LE(rec.spans[1].start_ns + rec.spans[1].dur_ns,
            rec.spans[0].start_ns + rec.spans[0].dur_ns);
  EXPECT_LE(rec.spans[0].start_ns + rec.spans[0].dur_ns, rec.dur_ns);
}

TEST(TraceBuilderTest, InactiveBuilderIgnoresProbes) {
  TraceBuilder b;
  EXPECT_FALSE(b.active());
  EXPECT_EQ(b.StartSpan("serve.dispatch"), 0u);
  b.EndSpan(0);  // must be a no-op, not a crash
  EXPECT_EQ(b.record().num_spans, 0u);
}

TEST(TraceBuilderTest, OverflowingSpansAreCountedNotRecorded) {
  TraceBuilder b;
  b.Start(1, "x");
  std::vector<uint32_t> tokens;
  for (size_t i = 0; i < kTraceMaxSpans + 5; ++i) {
    const uint32_t tok = b.StartSpan("engine.annotate");
    b.EndSpan(tok);
    tokens.push_back(tok);
  }
  b.Close();
  EXPECT_EQ(b.record().num_spans, kTraceMaxSpans);
  EXPECT_EQ(b.record().spans_dropped, 5u);
  // The overflowed probes got the sentinel token.
  EXPECT_EQ(tokens.back(), 0u);
}

TEST(TraceBuilderTest, DetailAndReasonAreTruncatedSafely) {
  TraceBuilder b;
  b.Start(1, std::string(kTraceDetailBytes * 2, 'd'));
  b.SetReason(std::string(kTraceReasonBytes * 2, 'r'));
  b.Close();
  EXPECT_EQ(std::strlen(b.record().detail), kTraceDetailBytes - 1);
  EXPECT_EQ(std::strlen(b.record().reason), kTraceReasonBytes - 1);
}

TEST(TraceBuilderTest, CloseForceEndsOpenSpansAndIsIdempotent) {
  TraceBuilder b;
  b.Start(1, "x");
  b.StartSpan("serve.dispatch");
  b.StartSpan("engine.topk");  // never ended explicitly
  b.Close();
  const uint64_t dur = b.record().dur_ns;
  ASSERT_EQ(b.record().num_spans, 2u);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_LE(b.record().spans[i].start_ns + b.record().spans[i].dur_ns,
              b.record().dur_ns);
  }
  b.Close();  // second close must not re-stamp
  EXPECT_EQ(b.record().dur_ns, dur);
}

TEST(TraceBuilderTest, AddSpanRecordsMeasuredIntervalAndParents) {
  TraceBuilder b;
  b.Start(1, "analyze");
  const auto t0 = steady_clock::now();
  SpinFor(std::chrono::microseconds(300));
  const auto t1 = steady_clock::now();
  const uint32_t parent = b.AddSpan("engine.analysis", t0, t1);
  ASSERT_NE(parent, 0u);
  const uint32_t child = b.AddSpan("engine.analysis.build", t0, t1, parent);
  ASSERT_NE(child, 0u);
  b.Close();
  ASSERT_EQ(b.record().num_spans, 2u);
  EXPECT_EQ(b.record().spans[child - 1].parent, parent);
  EXPECT_GT(b.record().spans[parent - 1].dur_ns, 0u);
}

TEST(TraceBuilderTest, AddSpanClampsStartBeforeTraceBegin) {
  // The commit wave of a batch can begin before a late-arriving request
  // joined it; the retroactive span must not underflow the offset.
  const auto before = steady_clock::now();
  SpinFor(std::chrono::microseconds(200));
  TraceBuilder b;
  b.Start(1, "tweet");
  const uint32_t tok =
      b.AddSpan("wal.commit_wave", before, steady_clock::now());
  ASSERT_NE(tok, 0u);
  b.Close();
  EXPECT_EQ(b.record().spans[tok - 1].start_ns, 0u);
}

TEST(TraceBuilderTest, ResetMakesBuilderReusable) {
  TraceBuilder b;
  b.Start(1, "x");
  b.StartSpan("serve.dispatch");
  b.SetOutcome(TraceOutcome::kError);
  b.Close();
  b.Reset();
  EXPECT_FALSE(b.active());
  b.Start(2, "y");
  b.Close();
  EXPECT_EQ(b.record().trace_id, 2u);
  EXPECT_EQ(b.record().num_spans, 0u);
  EXPECT_EQ(b.record().outcome, TraceOutcome::kOk);
}

// --- ActiveTrace / probes ---

TEST(ActiveTraceTest, ScopedActiveTraceNestsAndRestores) {
  ASSERT_EQ(ActiveTrace(), nullptr);
  TraceBuilder outer, inner;
  {
    ScopedActiveTrace a(&outer);
    EXPECT_EQ(ActiveTrace(), &outer);
    {
      ScopedActiveTrace b(&inner);
      EXPECT_EQ(ActiveTrace(), &inner);
    }
    EXPECT_EQ(ActiveTrace(), &outer);
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
}

TEST(ActiveTraceTest, TraceSpanAttachesToActiveBuilder) {
  TraceBuilder b;
  b.Start(1, "x");
  {
    ScopedActiveTrace active(&b);
    TraceSpan span("engine.annotate");
  }
  { TraceSpan orphan("engine.annotate"); }  // no active trace: free no-op
  b.Close();
  ASSERT_EQ(b.record().num_spans, 1u);
  EXPECT_STREQ(b.record().spans[0].name, "engine.annotate");
}

// --- TraceRing ---

TraceRecord MakeRecord(uint64_t id) {
  TraceRecord rec;
  rec.trace_id = id;
  rec.dur_ns = id * 1000;
  rec.num_spans = 1;
  rec.spans[0].name = "serve.dispatch";
  rec.spans[0].dur_ns = id;
  // Derived from the id like the other fields, so a torn read of the
  // worker stamp is detectable too.
  rec.worker = static_cast<uint32_t>(id % 7 + 1);
  std::snprintf(rec.detail, sizeof(rec.detail), "req-%llu",
                static_cast<unsigned long long>(id));
  return rec;
}

TEST(TraceRingTest, DisabledRingDropsEverything) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.Add(MakeRecord(1));
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceRingTest, WrapAroundKeepsNewestRecords) {
  TraceRing ring(4);
  for (uint64_t id = 1; id <= 10; ++id) ring.Add(MakeRecord(id));
  const std::vector<TraceRecord> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 4u);
  // Snapshot is ascending by trace_id and holds exactly the newest four.
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].trace_id, 7 + i);
    EXPECT_STREQ(got[i].spans[0].name, "serve.dispatch");
  }
}

TEST(TraceRingTest, SnapshotSkipsEmptySlots) {
  TraceRing ring(8);
  ring.Add(MakeRecord(1));
  ring.Add(MakeRecord(2));
  const auto got = ring.Snapshot();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].trace_id, 1u);
  EXPECT_EQ(got[1].trace_id, 2u);
}

// The TSan target: hammer one small ring from several writer threads —
// the pool deployment shape, every event-loop worker finishing traces
// into the shared slow ring — with a reader snapshotting concurrently.
// Correctness bar: no torn records (every snapshot slot must be
// internally consistent, including the worker stamp) and no data race
// reported.
TEST(TraceRingTest, ConcurrentWritersAndReaderStayConsistent) {
  TraceRing ring(16);
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 2000;
  std::atomic<uint64_t> next_id{1};
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceRecord& rec : ring.Snapshot()) {
        // Internal consistency: dur, worker and detail are derived from
        // the id, so a torn read (fields from two different writes) is
        // visible.
        ASSERT_EQ(rec.dur_ns, rec.trace_id * 1000);
        ASSERT_EQ(rec.worker, rec.trace_id % 7 + 1);
        char want[32];
        std::snprintf(want, sizeof(want), "req-%llu",
                      static_cast<unsigned long long>(rec.trace_id));
        ASSERT_STREQ(rec.detail, want);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        ring.Add(MakeRecord(next_id.fetch_add(1)));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Everything in the final snapshot is from the run, at most 16 slots.
  const auto got = ring.Snapshot();
  EXPECT_LE(got.size(), 16u);
  EXPECT_FALSE(got.empty());
  for (const auto& rec : got) {
    EXPECT_GE(rec.trace_id, 1u);
    EXPECT_LT(rec.trace_id, 1u + kWriters * kPerWriter);
  }
}

// --- TraceCollector: tail-based retention ---

std::unique_ptr<TraceBuilder> StartedTrace(TraceCollector* collector,
                                           std::string_view detail) {
  auto b = std::make_unique<TraceBuilder>();
  b->Start(collector->NextTraceId(), detail);
  return b;
}

TEST(TraceCollectorTest, ErrorAndShedTracesArePinnedIntoBothRings) {
  TraceCollectorOptions opts;
  opts.slow_us = 1e9;        // nothing is "slow"
  opts.sample_every = 1000;  // sampling alone would drop everything
  TraceCollector collector(opts);

  auto err = StartedTrace(&collector, "tweet\tbad");
  err->SetOutcome(TraceOutcome::kError);
  err->SetReason("CLIENT_ERROR expected 5 fields");
  collector.Finish(err.get());

  auto shed = StartedTrace(&collector, "topk\t1\t3");
  shed->SetOutcome(TraceOutcome::kShed);
  shed->SetReason("SERVER_ERROR busy");
  collector.Finish(shed.get());

  auto ro = StartedTrace(&collector, "tweet\t...");
  ro->SetOutcome(TraceOutcome::kReadonly);
  ro->SetReason("READONLY");
  collector.Finish(ro.get());

  ASSERT_EQ(collector.Recent().size(), 3u);
  ASSERT_EQ(collector.Slow().size(), 3u);
  const auto slow = collector.Slow();
  EXPECT_EQ(slow[0].outcome, TraceOutcome::kError);
  EXPECT_STREQ(slow[0].reason, "CLIENT_ERROR expected 5 fields");
  EXPECT_EQ(slow[1].outcome, TraceOutcome::kShed);
  EXPECT_EQ(slow[2].outcome, TraceOutcome::kReadonly);

  const auto snap = collector.metrics().Snapshot();
  EXPECT_EQ(snap.counters.at("trace.traces_pinned_error"), 3);
  EXPECT_EQ(snap.counters.at("trace.traces_sampled"), 0);
}

TEST(TraceCollectorTest, SlowTracesArePinnedRegardlessOfSampling) {
  TraceCollectorOptions opts;
  opts.slow_us = 0.0;  // every trace qualifies as slow
  opts.sample_every = 1000;
  TraceCollector collector(opts);

  auto b = StartedTrace(&collector, "topk\t1\t3");
  collector.Finish(b.get());

  ASSERT_EQ(collector.Recent().size(), 1u);
  ASSERT_EQ(collector.Slow().size(), 1u);
  EXPECT_EQ(collector.Slow()[0].outcome, TraceOutcome::kOk);
  EXPECT_EQ(
      collector.metrics().Snapshot().counters.at("trace.traces_pinned_slow"),
      1);
}

TEST(TraceCollectorTest, FastOkTracesAreSampledOneInN) {
  TraceCollectorOptions opts;
  opts.slow_us = 1e9;
  opts.sample_every = 4;
  TraceCollector collector(opts);

  for (int i = 0; i < 16; ++i) {
    auto b = StartedTrace(&collector, "ping");
    collector.Finish(b.get());
  }
  EXPECT_EQ(collector.Recent().size(), 4u);  // 16 / 4
  EXPECT_TRUE(collector.Slow().empty());
  const auto snap = collector.metrics().Snapshot();
  EXPECT_EQ(snap.counters.at("trace.traces_started"), 16);
  EXPECT_EQ(snap.counters.at("trace.traces_sampled"), 4);
  EXPECT_EQ(snap.counters.at("trace.traces_discarded"), 12);
}

TEST(TraceCollectorTest, FinishResetsBuilderForReuse) {
  TraceCollector collector;
  auto b = StartedTrace(&collector, "ping");
  collector.Finish(b.get());
  EXPECT_FALSE(b->active());
  collector.Finish(b.get());  // inactive: no-op, no double count
  EXPECT_EQ(collector.metrics().Snapshot().counters.at("trace.traces_started"),
            1);
}

TEST(TraceCollectorTest, DisabledCollectorShortCircuits) {
  TraceCollectorOptions opts;
  opts.ring_slots = 0;
  TraceCollector collector(opts);
  EXPECT_FALSE(collector.enabled());
  EXPECT_TRUE(collector.Recent().empty());
}

// Concurrent Finish from several threads (each with its own builder)
// must neither race nor lose pinned traces — the follower and the event
// loop can finish traces on different threads in tests.
TEST(TraceCollectorTest, ConcurrentFinishIsSafe) {
  TraceCollectorOptions opts;
  opts.ring_slots = 64;
  opts.slow_slots = 64;
  opts.slow_us = 1e9;
  opts.sample_every = 1;  // keep everything: makes loss visible
  TraceCollector collector(opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TraceBuilder b;
      for (int i = 0; i < kPerThread; ++i) {
        b.Start(collector.NextTraceId(), "ping");
        collector.Finish(&b);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto snap = collector.metrics().Snapshot();
  EXPECT_EQ(snap.counters.at("trace.traces_started"), kThreads * kPerThread);
  EXPECT_EQ(snap.counters.at("trace.traces_sampled"), kThreads * kPerThread);
  // The ring holds the tail of the id space, no duplicates.
  const auto got = collector.Recent();
  EXPECT_EQ(got.size(), 64u);
  std::set<uint64_t> ids;
  for (const auto& rec : got) ids.insert(rec.trace_id);
  EXPECT_EQ(ids.size(), got.size());
}

// --- Exporters ---

TraceRecord ExportFixture() {
  TraceRecord rec = MakeRecord(42);
  rec.wall_start_us = 1700000000000000;
  rec.num_spans = 2;
  rec.spans[0].name = "serve.dispatch";
  rec.spans[0].parent = 0;
  rec.spans[0].start_ns = 1000;
  rec.spans[0].dur_ns = 9000;
  rec.spans[1].name = "engine.topk";
  rec.spans[1].parent = 1;
  rec.spans[1].start_ns = 2000;
  rec.spans[1].dur_ns = 5000;
  std::snprintf(rec.detail, sizeof(rec.detail), "topk\t3\t5");
  return rec;
}

TEST(TraceExportTest, TsvEmitsTraceAndSpanLines) {
  const std::string tsv = ExportTracesTsv({ExportFixture()});
  EXPECT_NE(tsv.find("TRACE\t42\t"), std::string::npos);
  EXPECT_NE(tsv.find("\tok\t2\t1\t-\ttopk\t3\t5\n"), std::string::npos);
  EXPECT_NE(tsv.find("SPAN\t42\t1\t0\tserve.dispatch\t1.0\t9.0\n"),
            std::string::npos);
  EXPECT_NE(tsv.find("SPAN\t42\t2\t1\tengine.topk\t2.0\t5.0\n"),
            std::string::npos);
}

TEST(TraceExportTest, TsvSanitizesReasonButPreservesDetailTabs) {
  TraceRecord rec = ExportFixture();
  rec.outcome = TraceOutcome::kError;
  std::snprintf(rec.reason, sizeof(rec.reason), "bad\targ");
  const std::string tsv = ExportTracesTsv({rec});
  // The reason's tab must not mint an extra column...
  EXPECT_NE(tsv.find("\terror\t2\t1\tbad arg\t"), std::string::npos);
  // ...while the detail keeps its raw tabs as the trailing field.
  EXPECT_NE(tsv.find("\ttopk\t3\t5\n"), std::string::npos);
}

// A small structural JSON validator — enough to prove the exporter
// emits well-formed JSON (balanced containers, quoted strings, legal
// escapes) without a full parser.
void CheckJsonWellFormed(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ASSERT_LT(i + 1, json.size());
        const char e = json[i + 1];
        ASSERT_TRUE(e == '"' || e == '\\' || e == '/' || e == 'b' ||
                    e == 'f' || e == 'n' || e == 'r' || e == 't' || e == 'u')
            << "bad escape at " << i;
        i += (e == 'u') ? 5 : 1;
      } else if (c == '"') {
        in_string = false;
      } else {
        ASSERT_GE(static_cast<unsigned char>(c), 0x20u)
            << "raw control char at " << i;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        ASSERT_FALSE(stack.empty()) << "unbalanced at " << i;
        ASSERT_EQ(stack.back(), c) << "mismatched at " << i;
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_TRUE(stack.empty()) << "unbalanced containers";
}

TEST(TraceExportTest, ChromeJsonIsWellFormedAndCarriesSpans) {
  TraceRecord rec = ExportFixture();
  // Adversarial detail: quotes, backslashes, tabs and a control byte all
  // must survive JSON escaping.
  std::snprintf(rec.detail, sizeof(rec.detail), "topk\t\"q\"\\" "\x01" "end");
  const std::string json = ExportTracesChrome({rec});
  CheckJsonWellFormed(json);
  EXPECT_EQ(json.find('\t'), std::string::npos);  // tabs escaped
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.topk\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(TraceExportTest, ChromeJsonOfEmptySnapshotIsValid) {
  const std::string json = ExportTracesChrome({});
  CheckJsonWellFormed(json);
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(TraceExportTest, FormatTraceTreeIndentsByParent) {
  const std::string tree = FormatTraceTree(ExportFixture());
  const size_t dispatch = tree.find("serve.dispatch");
  const size_t topk = tree.find("engine.topk");
  ASSERT_NE(dispatch, std::string::npos);
  ASSERT_NE(topk, std::string::npos);
  // The child line is indented deeper than its parent's line.
  const size_t dispatch_bol = tree.rfind('\n', dispatch);
  const size_t topk_bol = tree.rfind('\n', topk);
  const size_t dispatch_indent = dispatch - (dispatch_bol + 1);
  const size_t topk_indent = topk - (topk_bol + 1);
  EXPECT_GT(topk_indent, dispatch_indent);
}

// --- TraceBuilderPool ---

TEST(TraceBuilderPoolTest, RecyclesResetBuilders) {
  TraceBuilderPool pool;
  auto a = pool.Acquire();
  TraceBuilder* raw = a.get();
  a->Start(1, "x");
  pool.Release(std::move(a));
  auto b = pool.Acquire();
  EXPECT_EQ(b.get(), raw);    // same object came back
  EXPECT_FALSE(b->active());  // reset on release
}

}  // namespace
}  // namespace adrec::obs
