#include "feed/stream_replayer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace adrec::feed {
namespace {

std::vector<FeedEvent> MakeEvents(size_t n, DurationSec spacing) {
  std::vector<FeedEvent> events;
  for (size_t i = 0; i < n; ++i) {
    FeedEvent e;
    e.kind = EventKind::kTweet;
    e.time = static_cast<Timestamp>(i) * spacing;
    e.tweet.user = UserId(static_cast<uint32_t>(i));
    e.tweet.time = e.time;
    events.push_back(e);
  }
  return events;
}

TEST(ReplayerTest, UnpacedDeliversEverythingFast) {
  StreamReplayer replayer;  // speedup 0 = as fast as possible
  const auto events = MakeEvents(1000, 60);
  size_t seen = 0;
  auto stats = replayer.Replay(events, [&](const FeedEvent&) { ++seen; });
  EXPECT_EQ(seen, 1000u);
  EXPECT_EQ(stats.events_delivered, 1000u);
  EXPECT_EQ(stats.events_dropped, 0u);
  EXPECT_LT(stats.wall_seconds, 1.0);
  EXPECT_GT(stats.events_per_second, 1000.0);
  EXPECT_EQ(stats.handler_micros.count(), 1000u);
}

TEST(ReplayerTest, EmptyStream) {
  StreamReplayer replayer;
  auto stats = replayer.Replay({}, [](const FeedEvent&) {});
  EXPECT_EQ(stats.events_delivered, 0u);
  EXPECT_DOUBLE_EQ(stats.events_per_second, 0.0);
}

TEST(ReplayerTest, PacingStretchesWallTime) {
  // 10 events spaced 1 simulated second apart at 100x speedup: the
  // replay must take at least ~90 ms of wall time.
  ReplayOptions opts;
  opts.speedup = 100.0;
  StreamReplayer replayer(opts);
  const auto events = MakeEvents(10, 1);
  const auto t0 = std::chrono::steady_clock::now();
  auto stats = replayer.Replay(events, [](const FeedEvent&) {});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(stats.events_delivered, 10u);
  EXPECT_GE(wall, 0.08);
}

TEST(ReplayerTest, SlowHandlerTriggersLoadShedding) {
  // Events 1 simulated second apart, replayed at 1000x (1 ms per event),
  // with a 5 ms handler: the replay falls behind immediately; with
  // max_lag 2 simulated seconds, later events are dropped.
  ReplayOptions opts;
  opts.speedup = 1000.0;
  opts.max_lag = 2;
  StreamReplayer replayer(opts);
  const auto events = MakeEvents(30, 1);
  auto stats = replayer.Replay(events, [](const FeedEvent&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  EXPECT_GT(stats.events_dropped, 0u);
  EXPECT_EQ(stats.events_delivered + stats.events_dropped, 30u);
}

TEST(ReplayerTest, NoSheddingWhenDisabled) {
  ReplayOptions opts;
  opts.speedup = 1000.0;
  opts.max_lag = 0;  // never drop
  StreamReplayer replayer(opts);
  const auto events = MakeEvents(20, 1);
  auto stats = replayer.Replay(events, [](const FeedEvent&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  EXPECT_EQ(stats.events_dropped, 0u);
  EXPECT_EQ(stats.events_delivered, 20u);
}

TEST(ReplayerTest, ProgressCallbackFiresAtCadence) {
  ReplayOptions opts;
  opts.progress_every = 100;
  std::vector<ReplayProgress> reports;
  opts.on_progress = [&](const ReplayProgress& p) { reports.push_back(p); };
  StreamReplayer replayer(opts);
  const auto events = MakeEvents(1000, 60);
  auto stats = replayer.Replay(events, [](const FeedEvent&) {});
  EXPECT_EQ(stats.events_delivered, 1000u);
  ASSERT_EQ(reports.size(), 10u);
  EXPECT_EQ(reports.front().events_delivered, 100u);
  EXPECT_EQ(reports.back().events_delivered, 1000u);
  for (const ReplayProgress& p : reports) {
    EXPECT_EQ(p.events_dropped, 0u);
    EXPECT_GE(p.events_per_second, 0.0);
    EXPECT_DOUBLE_EQ(p.lag_sim_seconds, 0.0);  // unpaced: never behind
  }
}

TEST(ReplayerTest, ProgressReportsLagAndDropsWhenBehind) {
  ReplayOptions opts;
  opts.speedup = 1000.0;
  opts.max_lag = 2;
  opts.progress_every = 10;
  std::vector<ReplayProgress> reports;
  opts.on_progress = [&](const ReplayProgress& p) { reports.push_back(p); };
  StreamReplayer replayer(opts);
  const auto events = MakeEvents(30, 1);
  auto stats = replayer.Replay(events, [](const FeedEvent&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  ASSERT_EQ(reports.size(), 3u);
  // Progress counts delivered + dropped events, so the cadence holds
  // even under shedding.
  EXPECT_EQ(reports.back().events_delivered + reports.back().events_dropped,
            30u);
  EXPECT_EQ(stats.events_dropped, reports.back().events_dropped);
  // The slow handler put the replay measurably behind schedule.
  EXPECT_GT(reports.back().lag_sim_seconds, 0.0);
}

TEST(ReplayerTest, ProgressReportsWindowedRate) {
  ReplayOptions opts;
  opts.progress_every = 100;
  std::vector<ReplayProgress> reports;
  opts.on_progress = [&](const ReplayProgress& p) { reports.push_back(p); };
  StreamReplayer replayer(opts);
  const auto events = MakeEvents(500, 60);
  (void)replayer.Replay(events, [](const FeedEvent&) {});
  ASSERT_EQ(reports.size(), 5u);
  for (const ReplayProgress& p : reports) {
    // The windowed rate covers only the events since the previous report
    // (the cumulative rate flattens toward the lifetime mean; the window
    // figure is what per-interval reporting shows).
    EXPECT_GT(p.interval_events_per_second, 0.0);
  }
}

}  // namespace
}  // namespace adrec::feed
