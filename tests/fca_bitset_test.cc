#include "fca/bitset.h"

#include <gtest/gtest.h>

namespace adrec::fca {
namespace {

TEST(BitsetTest, SetResetTest) {
  Bitset b(100);
  EXPECT_FALSE(b.Test(5));
  b.Set(5);
  b.Set(99);
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Test(99));
  EXPECT_EQ(b.Count(), 2u);
  b.Reset(5);
  EXPECT_FALSE(b.Test(5));
  EXPECT_EQ(b.Count(), 1u);
}

TEST(BitsetTest, FullRespectsTailBits) {
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 128u, 130u}) {
    Bitset f = Bitset::Full(n);
    EXPECT_EQ(f.Count(), n) << n;
  }
}

TEST(BitsetTest, SetAlgebra) {
  Bitset a = Bitset::FromIndices(70, {1, 3, 65});
  Bitset b = Bitset::FromIndices(70, {3, 65, 69});
  Bitset i = And(a, b);
  EXPECT_EQ(i.ToVector(), (std::vector<uint32_t>{3, 65}));
  Bitset u = Or(a, b);
  EXPECT_EQ(u.ToVector(), (std::vector<uint32_t>{1, 3, 65, 69}));
  Bitset d = a;
  d.SubtractInPlace(b);
  EXPECT_EQ(d.ToVector(), (std::vector<uint32_t>{1}));
}

TEST(BitsetTest, SubsetAndIntersects) {
  Bitset small = Bitset::FromIndices(70, {3, 65});
  Bitset big = Bitset::FromIndices(70, {1, 3, 65});
  Bitset other = Bitset::FromIndices(70, {2});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(Bitset(70).IsSubsetOf(small));
  EXPECT_TRUE(small.Intersects(big));
  EXPECT_FALSE(small.Intersects(other));
  EXPECT_FALSE(Bitset(70).Intersects(big));
}

TEST(BitsetTest, FindFirstNext) {
  Bitset b = Bitset::FromIndices(130, {0, 64, 129});
  EXPECT_EQ(b.FindFirst(), 0u);
  EXPECT_EQ(b.FindNext(1), 64u);
  EXPECT_EQ(b.FindNext(64), 64u);
  EXPECT_EQ(b.FindNext(65), 129u);
  EXPECT_EQ(b.FindNext(130), 130u);
  EXPECT_EQ(Bitset(130).FindFirst(), 130u);
}

TEST(BitsetTest, IterationViaToVector) {
  std::vector<uint32_t> idx = {0, 7, 63, 64, 65, 127, 128};
  Bitset b = Bitset::FromIndices(200, idx);
  EXPECT_EQ(b.ToVector(), idx);
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a = Bitset::FromIndices(70, {1, 2});
  Bitset b = Bitset::FromIndices(70, {1, 2});
  Bitset c = Bitset::FromIndices(70, {1, 3});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  // Same indices, different universe sizes: not equal.
  EXPECT_FALSE(a == Bitset::FromIndices(71, {1, 2}));
}

TEST(BitsetTest, EmptyUniverse) {
  Bitset b(0);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.FindFirst(), 0u);
  EXPECT_TRUE(b.ToVector().empty());
  EXPECT_EQ(b, Bitset::Full(0));
}

}  // namespace
}  // namespace adrec::fca
