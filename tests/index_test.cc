#include "index/ad_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace adrec::index {
namespace {

text::SparseVector Vec(std::vector<text::SparseEntry> entries) {
  return text::SparseVector::FromUnsorted(std::move(entries));
}

AdQuery Query(text::SparseVector topics, size_t k = 10) {
  AdQuery q;
  q.topics = std::move(topics);
  q.k = k;
  return q;
}

TEST(AdIndexTest, InsertAndTopKBasic) {
  AdIndex idx;
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  ASSERT_TRUE(idx.Insert(AdId(2), Vec({{0, 0.5}, {1, 0.5}}), {}, {}).ok());
  ASSERT_TRUE(idx.Insert(AdId(3), Vec({{1, 1.0}}), {}, {}).ok());
  EXPECT_EQ(idx.size(), 3u);

  auto top = idx.TopK(Query(Vec({{0, 1.0}})));
  ASSERT_EQ(top.size(), 2u);  // ad 3 has zero score and must not appear
  EXPECT_EQ(top[0].ad, AdId(1));
  EXPECT_DOUBLE_EQ(top[0].score, 1.0);
  EXPECT_EQ(top[1].ad, AdId(2));
  EXPECT_DOUBLE_EQ(top[1].score, 0.5);
}

TEST(AdIndexTest, DuplicateInsertRejected) {
  AdIndex idx;
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  EXPECT_EQ(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(AdIndexTest, KLimitsResultCount) {
  AdIndex idx;
  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        idx.Insert(AdId(i), Vec({{0, 1.0 / (i + 1)}}), {}, {}).ok());
  }
  auto top = idx.TopK(Query(Vec({{0, 1.0}}), 5));
  ASSERT_EQ(top.size(), 5u);
  // Highest weight (i=0) first.
  EXPECT_EQ(top[0].ad, AdId(0));
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST(AdIndexTest, BidScalesScores) {
  AdIndex idx;
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 0.5}}), {}, {}, /*bid=*/4.0).ok());
  ASSERT_TRUE(idx.Insert(AdId(2), Vec({{0, 1.0}}), {}, {}, /*bid=*/1.0).ok());
  auto top = idx.TopK(Query(Vec({{0, 1.0}})));
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].ad, AdId(1));  // 0.5*4 = 2 beats 1.0
  EXPECT_DOUBLE_EQ(top[0].score, 2.0);
}

TEST(AdIndexTest, LocationFilter) {
  AdIndex idx;
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {LocationId(5)}, {}).ok());
  ASSERT_TRUE(idx.Insert(AdId(2), Vec({{0, 0.9}}), {}, {}).ok());  // anywhere
  AdQuery q = Query(Vec({{0, 1.0}}));
  q.location = LocationId(7);
  auto top = idx.TopK(q);
  ASSERT_EQ(top.size(), 1u);  // ad 1 targets only location 5
  EXPECT_EQ(top[0].ad, AdId(2));
  q.location = LocationId(5);
  EXPECT_EQ(idx.TopK(q).size(), 2u);
  // No filter matches everything.
  EXPECT_EQ(idx.TopK(Query(Vec({{0, 1.0}}))).size(), 2u);
}

TEST(AdIndexTest, SlotFilter) {
  AdIndex idx;
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {SlotId(1)}).ok());
  AdQuery q = Query(Vec({{0, 1.0}}));
  q.slot = SlotId(2);
  EXPECT_TRUE(idx.TopK(q).empty());
  q.slot = SlotId(1);
  EXPECT_EQ(idx.TopK(q).size(), 1u);
}

TEST(AdIndexTest, RemoveHidesAdAndCompacts) {
  AdIndex idx;
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(idx.Insert(AdId(i), Vec({{0, 0.1 * (i + 1)}}), {}, {}).ok());
  }
  for (uint32_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(idx.Remove(AdId(i)).ok());
  }
  EXPECT_EQ(idx.size(), 1u);
  auto top = idx.TopK(Query(Vec({{0, 1.0}})));
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].ad, AdId(9));
  EXPECT_EQ(idx.Remove(AdId(0)).code(), StatusCode::kNotFound);
}

TEST(AdIndexTest, ReinsertAfterRemove) {
  AdIndex idx;
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  ASSERT_TRUE(idx.Remove(AdId(1)).ok());
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 0.5}}), {}, {}).ok());
  auto top = idx.TopK(Query(Vec({{0, 1.0}})));
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 0.5);
}

TEST(AdIndexTest, EmptyCases) {
  AdIndex idx;
  EXPECT_TRUE(idx.TopK(Query(Vec({{0, 1.0}}))).empty());
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  EXPECT_TRUE(idx.TopK(Query({}, 10)).empty());      // empty query vector
  EXPECT_TRUE(idx.TopK(Query(Vec({{0, 1.0}}), 0)).empty());  // k = 0
  EXPECT_TRUE(idx.TopK(Query(Vec({{9, 1.0}}))).empty());     // unseen topic
}

TEST(AdIndexTest, EarlyTerminationScansFewerPostings) {
  AdIndex idx;
  const size_t n = 2000;
  for (uint32_t i = 0; i < n; ++i) {
    // One shared topic with smoothly decreasing weights.
    ASSERT_TRUE(idx.Insert(AdId(i), Vec({{0, 1.0 / (i + 1.0)}}), {}, {}).ok());
  }
  auto top = idx.TopK(Query(Vec({{0, 1.0}}), 5));
  ASSERT_EQ(top.size(), 5u);
  // TA stops after ~k+1 sorted accesses here; exhaustive touches all n.
  EXPECT_LT(idx.last_postings_scanned(), 50u);
  idx.TopKExhaustive(Query(Vec({{0, 1.0}}), 5));
  EXPECT_EQ(idx.last_postings_scanned(), n);
}

class IndexEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalenceTest, TopKMatchesExhaustiveOnRandomCorpora) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1299721);
  AdIndex idx;
  const size_t num_ads = 50 + rng.NextBounded(150);
  const size_t num_topics = 20;
  const size_t num_locations = 5;
  const size_t num_slots = 4;
  for (uint32_t i = 0; i < num_ads; ++i) {
    std::vector<text::SparseEntry> entries;
    const size_t nnz = 1 + rng.NextBounded(4);
    for (size_t j = 0; j < nnz; ++j) {
      entries.push_back({static_cast<uint32_t>(rng.NextBounded(num_topics)),
                         rng.NextDouble()});
    }
    std::vector<LocationId> locs;
    if (rng.NextBool(0.6)) {
      locs.push_back(LocationId(
          static_cast<uint32_t>(rng.NextBounded(num_locations))));
    }
    std::vector<SlotId> slots;
    if (rng.NextBool(0.6)) {
      slots.push_back(
          SlotId(static_cast<uint32_t>(rng.NextBounded(num_slots))));
    }
    const double bid = 0.5 + rng.NextDouble();
    ASSERT_TRUE(
        idx.Insert(AdId(i), Vec(std::move(entries)), locs, slots, bid).ok());
  }
  // Random churn.
  for (int d = 0; d < 20; ++d) {
    const AdId victim(static_cast<uint32_t>(rng.NextBounded(num_ads)));
    (void)idx.Remove(victim);  // may be NotFound; that's fine
  }
  for (int q = 0; q < 30; ++q) {
    AdQuery query;
    std::vector<text::SparseEntry> entries;
    const size_t nnz = 1 + rng.NextBounded(3);
    for (size_t j = 0; j < nnz; ++j) {
      entries.push_back({static_cast<uint32_t>(rng.NextBounded(num_topics)),
                         rng.NextDouble()});
    }
    query.topics = Vec(std::move(entries));
    query.k = 1 + rng.NextBounded(10);
    if (rng.NextBool(0.5)) {
      query.location = LocationId(
          static_cast<uint32_t>(rng.NextBounded(num_locations)));
    }
    if (rng.NextBool(0.5)) {
      query.slot = SlotId(static_cast<uint32_t>(rng.NextBounded(num_slots)));
    }
    auto fast = idx.TopK(query);
    auto slow = idx.TopKExhaustive(query);
    ASSERT_EQ(fast.size(), slow.size()) << "query " << q;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].ad, slow[i].ad) << "query " << q << " rank " << i;
      EXPECT_NEAR(fast[i].score, slow[i].score, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCorpora, IndexEquivalenceTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace adrec::index
