#include "postings/compressed_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/ad_index.h"
#include "obs/metrics.h"

namespace adrec::postings {
namespace {

text::SparseVector Vec(std::vector<text::SparseEntry> entries) {
  return text::SparseVector::FromUnsorted(std::move(entries));
}

index::AdQuery Query(text::SparseVector topics, size_t k = 10,
                     LocationId loc = LocationId(),
                     SlotId slot = SlotId()) {
  index::AdQuery q;
  q.topics = std::move(topics);
  q.k = k;
  q.location = loc;
  q.slot = slot;
  return q;
}

TEST(CompressedAdIndexTest, BasicTopKMatchesUncompressed) {
  CompressedAdIndex cidx;
  index::AdIndex idx;
  ASSERT_TRUE(cidx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  ASSERT_TRUE(cidx.Insert(AdId(2), Vec({{0, 0.5}, {1, 0.5}}), {}, {}).ok());
  ASSERT_TRUE(cidx.Insert(AdId(3), Vec({{1, 1.0}}), {}, {}).ok());
  ASSERT_TRUE(idx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  ASSERT_TRUE(idx.Insert(AdId(2), Vec({{0, 0.5}, {1, 0.5}}), {}, {}).ok());
  ASSERT_TRUE(idx.Insert(AdId(3), Vec({{1, 1.0}}), {}, {}).ok());
  EXPECT_EQ(cidx.size(), 3u);

  const auto q = Query(Vec({{0, 1.0}}));
  EXPECT_EQ(cidx.TopK(q), idx.TopK(q));
  EXPECT_EQ(cidx.TopKExhaustive(q), idx.TopKExhaustive(q));
}

TEST(CompressedAdIndexTest, StatusParityWithAdIndex) {
  CompressedAdIndex cidx({/*seal_threshold=*/2});
  ASSERT_TRUE(cidx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).ok());
  EXPECT_EQ(cidx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(cidx.Remove(AdId(9)).code(), StatusCode::kNotFound);
  // Force the ad into a sealed epoch; duplicate/missing still detected.
  cidx.Seal();
  EXPECT_EQ(cidx.Insert(AdId(1), Vec({{0, 1.0}}), {}, {}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(cidx.Remove(AdId(1)).ok());
  EXPECT_EQ(cidx.Remove(AdId(1)).code(), StatusCode::kNotFound);
  // A tombstoned sealed id can be re-inserted (it lives in the delta
  // while the dead sealed copy awaits the next reseal).
  ASSERT_TRUE(cidx.Insert(AdId(1), Vec({{0, 0.25}}), {}, {}).ok());
  EXPECT_EQ(cidx.size(), 1u);
  const auto q = Query(Vec({{0, 1.0}}));
  auto top = cidx.TopK(q);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].ad, AdId(1));
  EXPECT_DOUBLE_EQ(top[0].score, 0.25);
}

TEST(CompressedAdIndexTest, SealCountsEpochsAndReclaimsTombstones) {
  obs::MetricRegistry metrics;
  PostingsOptions opts;
  opts.seal_threshold = 4;
  opts.tombstone_reseal_fraction = 0.5;
  CompressedAdIndex cidx(opts, &metrics);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        cidx.Insert(AdId(i), Vec({{i % 3, 1.0 + i}}), {}, {}).ok());
  }
  // Two automatic seals at 4 and 8 delta ads.
  EXPECT_EQ(cidx.stats().epochs, 2u);
  EXPECT_EQ(cidx.stats().sealed_ads, 8u);
  EXPECT_EQ(cidx.stats().delta_ads, 0u);
  EXPECT_GT(cidx.stats().bytes, 0u);
  EXPECT_GT(cidx.stats().lists, 0u);

  // Tombstoning more than half the sealed ads triggers a reseal that
  // drops them from the arrays.
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(cidx.Remove(AdId(i)).ok());
  }
  EXPECT_GE(cidx.stats().epochs, 3u);
  EXPECT_EQ(cidx.stats().sealed_dead, 0u);
  EXPECT_EQ(cidx.size(), 3u);
  EXPECT_EQ(metrics.GetGauge("postings.epochs")->value(),
            static_cast<double>(cidx.stats().epochs));
}

TEST(CompressedAdIndexTest, RandomizedChurnEquivalence) {
  // The core exactness property: under arbitrary insert/remove churn and
  // seal timing, TopK and TopKExhaustive are byte-identical to the
  // uncompressed AdIndex on every query shape (with/without location and
  // slot filters, varying k).
  Rng rng(123457);
  for (int round = 0; round < 12; ++round) {
    PostingsOptions opts;
    opts.seal_threshold = 1 + rng.NextBounded(30);
    CompressedAdIndex cidx(opts);
    index::AdIndex idx;
    std::vector<uint32_t> live;

    const uint32_t topics = 12, cells = 5, slots = 4;
    uint32_t next_id = 0;
    for (int step = 0; step < 400; ++step) {
      const bool remove = !live.empty() && rng.NextBool(0.35);
      if (remove) {
        const size_t pick = rng.NextBounded(live.size());
        const AdId id(live[pick]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
        ASSERT_TRUE(cidx.Remove(id).ok());
        ASSERT_TRUE(idx.Remove(id).ok());
      } else {
        const AdId id(next_id++);
        std::vector<text::SparseEntry> entries;
        const size_t nt = 1 + rng.NextBounded(4);
        for (size_t t = 0; t < nt; ++t) {
          entries.push_back({static_cast<uint32_t>(rng.NextBounded(topics)),
                             0.05 + rng.NextDouble()});
        }
        std::vector<LocationId> locs;
        if (rng.NextBool(0.6)) {
          const size_t nl = 1 + rng.NextBounded(3);
          for (size_t l = 0; l < nl; ++l) {
            locs.push_back(
                LocationId(static_cast<uint32_t>(rng.NextBounded(cells))));
          }
        }
        std::vector<SlotId> slot_ids;
        if (rng.NextBool(0.5)) {
          slot_ids.push_back(
              SlotId(static_cast<uint32_t>(rng.NextBounded(slots))));
        }
        const double bid = 0.1 + rng.NextDouble() * 3.0;
        const text::SparseVector v = Vec(std::move(entries));
        ASSERT_TRUE(cidx.Insert(id, v, locs, slot_ids, bid).ok());
        ASSERT_TRUE(idx.Insert(id, v, locs, slot_ids, bid).ok());
        live.push_back(id.value);
      }
      ASSERT_EQ(cidx.size(), idx.size());

      if (step % 7 != 0) continue;
      // Query with a random shape.
      std::vector<text::SparseEntry> qe;
      const size_t nq = 1 + rng.NextBounded(4);
      for (size_t t = 0; t < nq; ++t) {
        qe.push_back({static_cast<uint32_t>(rng.NextBounded(topics)),
                      0.05 + rng.NextDouble()});
      }
      index::AdQuery q;
      q.topics = Vec(std::move(qe));
      q.k = 1 + rng.NextBounded(12);
      if (rng.NextBool(0.5)) {
        q.location = LocationId(static_cast<uint32_t>(rng.NextBounded(cells)));
      }
      if (rng.NextBool(0.5)) {
        q.slot = SlotId(static_cast<uint32_t>(rng.NextBounded(slots)));
      }
      ASSERT_EQ(cidx.TopK(q), idx.TopK(q))
          << "round " << round << " step " << step;
      ASSERT_EQ(cidx.TopKExhaustive(q), idx.TopKExhaustive(q))
          << "round " << round << " step " << step;
    }
    // End state: a forced seal must not change any answer.
    index::AdQuery q;
    q.topics = Vec({{0, 1.0}, {5, 0.5}});
    q.k = 20;
    const auto before = cidx.TopK(q);
    cidx.Seal();
    EXPECT_EQ(cidx.TopK(q), before);
    EXPECT_EQ(cidx.TopK(q), idx.TopK(q));
    EXPECT_EQ(cidx.stats().delta_ads, 0u);
  }
}

TEST(CompressedAdIndexTest, CandidatePruningIsVisible) {
  // With a selective topic, the conjunction should consider far fewer
  // candidates than the live inventory (the whole point of the index).
  PostingsOptions opts;
  opts.seal_threshold = 4096;
  CompressedAdIndex cidx(opts);
  for (uint32_t i = 0; i < 2000; ++i) {
    // Topic 0 is rare (1 in 100); topic 1 is ubiquitous.
    std::vector<text::SparseEntry> e = {{1, 0.5}};
    if (i % 100 == 0) e.push_back({0, 1.0});
    ASSERT_TRUE(cidx.Insert(AdId(i), Vec(std::move(e)), {}, {}).ok());
  }
  cidx.Seal();
  index::AdQuery q;
  q.topics = Vec({{0, 1.0}});
  q.k = 5;
  const auto top = cidx.TopK(q);
  EXPECT_EQ(top.size(), 5u);
  EXPECT_EQ(cidx.last_candidates(), 20u);  // only the rare-topic ads
  EXPECT_LT(cidx.last_postings_scanned(), 100u);
}

}  // namespace
}  // namespace adrec::postings
