#include "wal/record.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "feed/types.h"

namespace adrec::wal {
namespace {

TEST(Crc32Test, KnownAnswer) {
  // The CRC-32/IEEE check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t chained =
        Crc32(data.substr(split), Crc32(data.substr(0, split)));
    EXPECT_EQ(chained, Crc32(data)) << "split at " << split;
  }
}

/// The property behind incremental hashing across a segment rotation: a
/// CRC chained over ANY split vector of the input — 0 bytes before the
/// boundary, 1 byte, a mid-frame split, or the whole frame, with empty
/// chunks and many boundaries — must equal the one-shot CRC. Random
/// binary data plus real encoded frames.
TEST(Crc32Test, MultiChunkChainingProperty) {
  Rng rng(20260806);
  for (int iter = 0; iter < 200; ++iter) {
    // Random binary data half the time; a real frame the other half,
    // the bytes a rotation boundary actually lands in.
    std::string data;
    if (iter % 2 == 0) {
      data.resize(rng.NextBounded(512));
      for (char& c : data) {
        c = static_cast<char>(rng.NextBounded(256));
      }
    } else {
      data = EncodeFrame(1 + rng.NextBounded(1u << 30),
                         "tweet\t7\t1000\tquick brown fox " +
                             std::to_string(iter));
    }
    const uint32_t one_shot = Crc32(data);

    // A random split vector; 0 and data.size() are always among the
    // candidate cuts, so the 0-byte / all-bytes chunk cases occur.
    std::vector<size_t> cuts = {0, data.size()};
    const size_t extra = rng.NextBounded(7);
    for (size_t i = 0; i < extra; ++i) {
      cuts.push_back(static_cast<size_t>(rng.NextBounded(data.size() + 1)));
    }
    std::sort(cuts.begin(), cuts.end());

    uint32_t chained = 0;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      chained = Crc32(
          std::string_view(data).substr(cuts[i], cuts[i + 1] - cuts[i]),
          chained);
    }
    chained = Crc32(std::string_view(data).substr(cuts.back()), chained);
    EXPECT_EQ(chained, one_shot) << "iter " << iter;
  }

  // The canonical rotation split points, spelled out: 0, 1, mid, all.
  const std::string frame = EncodeFrame(42, "checkin\t3\t500\t17");
  for (const size_t split :
       {size_t{0}, size_t{1}, frame.size() / 2, frame.size()}) {
    EXPECT_EQ(Crc32(std::string_view(frame).substr(split),
                    Crc32(std::string_view(frame).substr(0, split))),
              Crc32(frame))
        << "split " << split;
  }
}

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const std::string frame = EncodeFrame(42, "tweet\t7\t1000\thello world");
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  auto decoded = DecodeFrame(std::string_view(frame).substr(0, frame.size() - 1));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().seqno, 42u);
  EXPECT_EQ(decoded.value().payload, "tweet\t7\t1000\thello world");
}

TEST(FrameTest, AppendFrameToMatchesEncodeFrame) {
  std::string buf = "prefix";
  AppendFrameTo(&buf, 123456789, "checkin\t3\t500\t17");
  EXPECT_EQ(buf, "prefix" + EncodeFrame(123456789, "checkin\t3\t500\t17"));
}

TEST(FrameTest, CrcFieldIsZeroPaddedLowercaseHex) {
  // Pick a payload whose CRC has a high zero nibble so padding matters.
  for (uint64_t seqno = 1; seqno < 200; ++seqno) {
    const std::string frame = EncodeFrame(seqno, "x");
    ASSERT_GE(frame.size(), 9u);
    EXPECT_EQ(frame[8], '\t');
    for (int i = 0; i < 8; ++i) {
      const char c = frame[static_cast<size_t>(i)];
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
          << "seqno " << seqno << " pos " << i;
    }
  }
}

TEST(FrameTest, DecodeRejectsCorruption) {
  std::string frame = EncodeFrame(7, "tweet\t1\t10\thi");
  frame.pop_back();  // strip LF, as ScanLog does before decoding
  // Flip one payload byte: CRC must catch it.
  std::string flipped = frame;
  flipped[frame.size() - 1] ^= 0x01;
  auto r = DecodeFrame(flipped);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("crc"), std::string::npos);
  // Truncated frame: structural or CRC failure, either way not ok.
  EXPECT_FALSE(DecodeFrame(frame.substr(0, frame.size() / 2)).ok());
  // Garbage CRC field.
  EXPECT_FALSE(DecodeFrame("zzzzzzzz\t1\tx").ok());
  // Seqno zero is reserved.
  const std::string zero = EncodeFrame(0, "x");
  EXPECT_FALSE(
      DecodeFrame(std::string_view(zero).substr(0, zero.size() - 1)).ok());
}

TEST(PayloadTest, EventRoundTripsThroughWireGrammar) {
  feed::FeedEvent tweet;
  tweet.kind = feed::EventKind::kTweet;
  tweet.tweet.user = UserId(12);
  tweet.tweet.time = 86400;
  tweet.tweet.text = "coffee downtown";
  tweet.time = tweet.tweet.time;

  feed::FeedEvent checkin;
  checkin.kind = feed::EventKind::kCheckIn;
  checkin.check_in.user = UserId(9);
  checkin.check_in.time = 90000;
  checkin.check_in.location = LocationId(4);
  checkin.time = checkin.check_in.time;

  feed::FeedEvent addel;
  addel.kind = feed::EventKind::kAdDelete;
  addel.ad_id = AdId(77);

  for (const feed::FeedEvent& event : {tweet, checkin, addel}) {
    const std::string payload = EncodeEventPayload(event);
    auto back = DecodeEventPayload(payload);
    ASSERT_TRUE(back.ok()) << payload << ": " << back.status().ToString();
    EXPECT_EQ(back.value().kind, event.kind);
  }
  auto t = DecodeEventPayload(EncodeEventPayload(tweet));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().tweet.user, tweet.tweet.user);
  EXPECT_EQ(t.value().tweet.time, tweet.tweet.time);
  EXPECT_EQ(t.value().tweet.text, tweet.tweet.text);

  EXPECT_FALSE(DecodeEventPayload("launch\tthe\tmissiles").ok());
  EXPECT_FALSE(DecodeEventPayload("addel\tnot-a-number").ok());
  EXPECT_FALSE(DecodeEventPayload("").ok());
}

}  // namespace
}  // namespace adrec::wal
