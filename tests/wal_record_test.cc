#include "wal/record.h"

#include <string>

#include <gtest/gtest.h>

#include "feed/types.h"

namespace adrec::wal {
namespace {

TEST(Crc32Test, KnownAnswer) {
  // The CRC-32/IEEE check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t chained =
        Crc32(data.substr(split), Crc32(data.substr(0, split)));
    EXPECT_EQ(chained, Crc32(data)) << "split at " << split;
  }
}

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const std::string frame = EncodeFrame(42, "tweet\t7\t1000\thello world");
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  auto decoded = DecodeFrame(std::string_view(frame).substr(0, frame.size() - 1));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().seqno, 42u);
  EXPECT_EQ(decoded.value().payload, "tweet\t7\t1000\thello world");
}

TEST(FrameTest, AppendFrameToMatchesEncodeFrame) {
  std::string buf = "prefix";
  AppendFrameTo(&buf, 123456789, "checkin\t3\t500\t17");
  EXPECT_EQ(buf, "prefix" + EncodeFrame(123456789, "checkin\t3\t500\t17"));
}

TEST(FrameTest, CrcFieldIsZeroPaddedLowercaseHex) {
  // Pick a payload whose CRC has a high zero nibble so padding matters.
  for (uint64_t seqno = 1; seqno < 200; ++seqno) {
    const std::string frame = EncodeFrame(seqno, "x");
    ASSERT_GE(frame.size(), 9u);
    EXPECT_EQ(frame[8], '\t');
    for (int i = 0; i < 8; ++i) {
      const char c = frame[static_cast<size_t>(i)];
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
          << "seqno " << seqno << " pos " << i;
    }
  }
}

TEST(FrameTest, DecodeRejectsCorruption) {
  std::string frame = EncodeFrame(7, "tweet\t1\t10\thi");
  frame.pop_back();  // strip LF, as ScanLog does before decoding
  // Flip one payload byte: CRC must catch it.
  std::string flipped = frame;
  flipped[frame.size() - 1] ^= 0x01;
  auto r = DecodeFrame(flipped);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("crc"), std::string::npos);
  // Truncated frame: structural or CRC failure, either way not ok.
  EXPECT_FALSE(DecodeFrame(frame.substr(0, frame.size() / 2)).ok());
  // Garbage CRC field.
  EXPECT_FALSE(DecodeFrame("zzzzzzzz\t1\tx").ok());
  // Seqno zero is reserved.
  const std::string zero = EncodeFrame(0, "x");
  EXPECT_FALSE(
      DecodeFrame(std::string_view(zero).substr(0, zero.size() - 1)).ok());
}

TEST(PayloadTest, EventRoundTripsThroughWireGrammar) {
  feed::FeedEvent tweet;
  tweet.kind = feed::EventKind::kTweet;
  tweet.tweet.user = UserId(12);
  tweet.tweet.time = 86400;
  tweet.tweet.text = "coffee downtown";
  tweet.time = tweet.tweet.time;

  feed::FeedEvent checkin;
  checkin.kind = feed::EventKind::kCheckIn;
  checkin.check_in.user = UserId(9);
  checkin.check_in.time = 90000;
  checkin.check_in.location = LocationId(4);
  checkin.time = checkin.check_in.time;

  feed::FeedEvent addel;
  addel.kind = feed::EventKind::kAdDelete;
  addel.ad_id = AdId(77);

  for (const feed::FeedEvent& event : {tweet, checkin, addel}) {
    const std::string payload = EncodeEventPayload(event);
    auto back = DecodeEventPayload(payload);
    ASSERT_TRUE(back.ok()) << payload << ": " << back.status().ToString();
    EXPECT_EQ(back.value().kind, event.kind);
  }
  auto t = DecodeEventPayload(EncodeEventPayload(tweet));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().tweet.user, tweet.tweet.user);
  EXPECT_EQ(t.value().tweet.time, tweet.tweet.time);
  EXPECT_EQ(t.value().tweet.text, tweet.tweet.text);

  EXPECT_FALSE(DecodeEventPayload("launch\tthe\tmissiles").ok());
  EXPECT_FALSE(DecodeEventPayload("addel\tnot-a-number").ok());
  EXPECT_FALSE(DecodeEventPayload("").ok());
}

}  // namespace
}  // namespace adrec::wal
