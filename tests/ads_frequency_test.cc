#include "ads/frequency_cap.h"

#include <gtest/gtest.h>

#include "core/engine.h"

namespace adrec::ads {
namespace {

TEST(FrequencyCapTest, AllowsUpToCap) {
  FrequencyCapOptions opts;
  opts.max_impressions = 3;
  opts.window = 1000;
  FrequencyCapper cap(opts);
  const UserId u(1);
  const AdId a(7);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cap.TryServe(u, a, 100 + i));
  }
  EXPECT_FALSE(cap.TryServe(u, a, 103));
  EXPECT_EQ(cap.CountInWindow(u, a, 103), 3);
}

TEST(FrequencyCapTest, WindowSlides) {
  FrequencyCapOptions opts;
  opts.max_impressions = 1;
  opts.window = 100;
  FrequencyCapper cap(opts);
  const UserId u(1);
  const AdId a(7);
  EXPECT_TRUE(cap.TryServe(u, a, 0));
  EXPECT_FALSE(cap.Allowed(u, a, 50));
  // At exactly horizon boundary the old impression expires.
  EXPECT_TRUE(cap.Allowed(u, a, 100));
  EXPECT_TRUE(cap.TryServe(u, a, 100));
  EXPECT_FALSE(cap.Allowed(u, a, 150));
}

TEST(FrequencyCapTest, PairsAreIndependent) {
  FrequencyCapOptions opts;
  opts.max_impressions = 1;
  FrequencyCapper cap(opts);
  EXPECT_TRUE(cap.TryServe(UserId(1), AdId(1), 10));
  EXPECT_TRUE(cap.TryServe(UserId(1), AdId(2), 10));  // different ad
  EXPECT_TRUE(cap.TryServe(UserId(2), AdId(1), 10));  // different user
  EXPECT_FALSE(cap.TryServe(UserId(1), AdId(1), 10));
}

TEST(FrequencyCapTest, ExpireDropsStaleState) {
  FrequencyCapOptions opts;
  opts.max_impressions = 5;
  opts.window = 100;
  FrequencyCapper cap(opts);
  for (uint32_t i = 0; i < 10; ++i) {
    cap.Record(UserId(i), AdId(0), 0);
  }
  EXPECT_EQ(cap.tracked_pairs(), 10u);
  cap.Expire(500);
  EXPECT_EQ(cap.tracked_pairs(), 0u);
}

TEST(FrequencyCapTest, EngineHonoursCap) {
  auto analyzer = std::make_shared<text::Analyzer>();
  std::shared_ptr<annotate::KnowledgeBase> kb(
      annotate::BuildDemoKnowledgeBase(analyzer.get()));
  core::EngineOptions eopts;
  eopts.frequency_cap.max_impressions = 2;
  eopts.frequency_cap.window = kSecondsPerDay;
  core::RecommendationEngine engine(
      kb, timeline::TimeSlotScheme::PaperScheme(), eopts);
  feed::Ad ad;
  ad.id = AdId(1);
  ad.copy = "volleyball gear spike";
  ASSERT_TRUE(engine.InsertAd(ad).ok());

  const feed::Tweet tweet{UserId(3), 6 * kSecondsPerHour, "volleyball"};
  EXPECT_EQ(engine.TopKAdsForTweet(tweet, 1).size(), 1u);
  EXPECT_EQ(engine.TopKAdsForTweet(tweet, 1).size(), 1u);
  // Third exposure of the same ad to the same user is capped.
  EXPECT_TRUE(engine.TopKAdsForTweet(tweet, 1).empty());
  // A different user still gets it.
  EXPECT_EQ(engine
                .TopKAdsForTweet({UserId(4), 6 * kSecondsPerHour,
                                  "volleyball"},
                                 1)
                .size(),
            1u);
  // And the same user gets it again the next day.
  EXPECT_EQ(engine
                .TopKAdsForTweet({UserId(3),
                                  6 * kSecondsPerHour + 2 * kSecondsPerDay,
                                  "volleyball"},
                                 1)
                .size(),
            1u);
}

TEST(FrequencyCapTest, EngineCapDisabled) {
  auto analyzer = std::make_shared<text::Analyzer>();
  std::shared_ptr<annotate::KnowledgeBase> kb(
      annotate::BuildDemoKnowledgeBase(analyzer.get()));
  core::EngineOptions eopts;
  eopts.frequency_cap.max_impressions = 0;  // disabled
  core::RecommendationEngine engine(
      kb, timeline::TimeSlotScheme::PaperScheme(), eopts);
  feed::Ad ad;
  ad.id = AdId(1);
  ad.copy = "volleyball gear";
  ASSERT_TRUE(engine.InsertAd(ad).ok());
  const feed::Tweet tweet{UserId(3), 6 * kSecondsPerHour, "volleyball"};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(engine.TopKAdsForTweet(tweet, 1).size(), 1u) << i;
  }
}

}  // namespace
}  // namespace adrec::ads
