#include <memory>

#include <gtest/gtest.h>

#include "annotate/annotator.h"
#include "annotate/knowledge_base.h"
#include "text/analyzer.h"
#include "text/porter_stemmer.h"

namespace adrec::annotate {
namespace {

class AnnotateTest : public ::testing::Test {
 protected:
  AnnotateTest() : kb_(BuildDemoKnowledgeBase(&analyzer_)) {}

  const Annotation* Find(const std::vector<Annotation>& anns,
                         std::string_view uri_suffix) {
    for (const Annotation& a : anns) {
      if (a.uri.ends_with(uri_suffix)) return &a;
    }
    return nullptr;
  }

  text::Analyzer analyzer_;
  std::unique_ptr<KnowledgeBase> kb_;
};

TEST_F(AnnotateTest, KbRejectsDuplicateUri) {
  Entity a;
  a.uri = "http://x/A";
  a.label = "A";
  auto r1 = kb_->AddEntity(a);
  EXPECT_TRUE(r1.ok());
  a.label = "A2";
  auto r2 = kb_->AddEntity(a);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(AnnotateTest, KbRejectsBadTopicIds) {
  EXPECT_FALSE(kb_->AddSurfaceForm(TopicId(9999), "x y").ok());
  EXPECT_FALSE(kb_->AddContextText(TopicId(9999), "x").ok());
}

TEST_F(AnnotateTest, KbRejectsEmptySurfaceForm) {
  auto id = kb_->FindByUri("http://dbpedia.org/resource/Volleyball");
  ASSERT_TRUE(id.ok());
  // "the" is a stopword, so the phrase analyses to nothing.
  EXPECT_FALSE(kb_->AddSurfaceForm(id.value(), "the").ok());
}

TEST_F(AnnotateTest, FindByUri) {
  auto id = kb_->FindByUri("http://dbpedia.org/resource/Volleyball");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(kb_->entity(id.value()).label, "Volleyball");
  EXPECT_FALSE(kb_->FindByUri("http://nope").ok());
}

TEST_F(AnnotateTest, AnnotatesThePaperExampleTweet) {
  SpotlightAnnotator annotator(kb_.get());
  auto anns = annotator.Annotate(
      "The nation's best volleyball returns tomorrow night. Here's how our "
      "coaches think the CW women's teams stack up.");
  EXPECT_NE(Find(anns, "/Volleyball"), nullptr);
  EXPECT_NE(Find(anns, "/Nation"), nullptr);
  EXPECT_NE(Find(anns, "/The_CW"), nullptr);
  EXPECT_NE(Find(anns, "/Team"), nullptr);
  // Scores are valid confidences.
  for (const Annotation& a : anns) {
    EXPECT_GE(a.score, 0.0);
    EXPECT_LE(a.score, 1.0);
  }
  // Volleyball with strong context support should outscore the generic
  // "nation" sense.
  EXPECT_GT(Find(anns, "/Volleyball")->score, Find(anns, "/Nation")->score);
}

TEST_F(AnnotateTest, MultiWordSurfaceFormLongestMatch) {
  SpotlightAnnotator annotator(kb_.get());
  auto anns = annotator.Annotate("playing beach volleyball at sunset");
  const Annotation* v = Find(anns, "/Volleyball");
  ASSERT_NE(v, nullptr);
  // "beach volleyball" matched as one two-token span.
  EXPECT_EQ(v->token_length, 2u);
}

TEST_F(AnnotateTest, DisambiguationPrefersContextuallySupportedSense) {
  SpotlightAnnotator annotator(kb_.get());
  // Tech context: "apple" should resolve to Apple Inc.
  auto tech = annotator.Annotate("apple launch event new iphone and ipad");
  ASSERT_FALSE(tech.empty());
  EXPECT_NE(Find(tech, "/Apple_Inc."), nullptr);
  EXPECT_EQ(Find(tech, "/Apple"), nullptr);  // fruit sense suppressed

  // Food context: "apple" should resolve to the fruit.
  auto food = annotator.Annotate("baked an apple pie from the orchard harvest");
  ASSERT_FALSE(food.empty());
  EXPECT_NE(Find(food, "/Apple"), nullptr);
  EXPECT_EQ(Find(food, "/Apple_Inc."), nullptr);
}

TEST_F(AnnotateTest, PriorBreaksTiesWithoutContext) {
  SpotlightAnnotator annotator(kb_.get());
  // Bare ambiguous mention with no disambiguating words: sports-field
  // "pitch" has the higher prior (0.6 vs 0.4).
  auto anns = annotator.Annotate("what a pitch");
  ASSERT_EQ(anns.size(), 1u);
  EXPECT_TRUE(anns[0].uri.ends_with("Pitch_(sports_field)"));
}

TEST_F(AnnotateTest, AllSensesModeEmitsBoth) {
  AnnotatorOptions opts;
  opts.best_sense_only = false;
  opts.min_score = 0.0;
  SpotlightAnnotator annotator(kb_.get(), opts);
  auto anns = annotator.Annotate("what a pitch");
  EXPECT_EQ(anns.size(), 2u);
}

TEST_F(AnnotateTest, RepeatedMentionAggregatesToMaxScore) {
  SpotlightAnnotator annotator(kb_.get());
  auto anns = annotator.Annotate("volleyball volleyball volleyball");
  // One annotation despite three mentions.
  int volleyball_count = 0;
  for (const Annotation& a : anns) {
    if (a.uri.ends_with("/Volleyball")) ++volleyball_count;
  }
  EXPECT_EQ(volleyball_count, 1);
}

TEST_F(AnnotateTest, NoFalseAnnotationsOnUnrelatedText) {
  SpotlightAnnotator annotator(kb_.get());
  auto anns = annotator.Annotate("completely unrelated verbiage zzz qqq");
  EXPECT_TRUE(anns.empty());
}

TEST_F(AnnotateTest, EmptyTextYieldsNothing) {
  SpotlightAnnotator annotator(kb_.get());
  EXPECT_TRUE(annotator.Annotate("").empty());
}

TEST_F(AnnotateTest, MinScoreFilters) {
  AnnotatorOptions opts;
  opts.min_score = 0.99;  // practically everything is dropped
  SpotlightAnnotator annotator(kb_.get(), opts);
  auto anns = annotator.Annotate("nation team");
  EXPECT_TRUE(anns.empty());
}

TEST_F(AnnotateTest, StemmedVariantsMatchSurfaceForms) {
  SpotlightAnnotator annotator(kb_.get());
  // "teams" and "team" should both hit the Team entity via stemming.
  EXPECT_NE(Find(annotator.Annotate("our teams won"), "/Team"), nullptr);
  EXPECT_NE(Find(annotator.Annotate("our team won"), "/Team"), nullptr);
}

TEST_F(AnnotateTest, FuzzyMatchingCatchesTypos) {
  AnnotatorOptions opts;
  opts.fuzzy_min_similarity = 0.5;
  SpotlightAnnotator fuzzy(kb_.get(), opts);
  SpotlightAnnotator exact(kb_.get());  // fuzzy off by default
  const auto clean_anns = fuzzy.Annotate("playing volleyball tonight");
  const Annotation* exact_a = Find(clean_anns, "/Volleyball");
  ASSERT_NE(exact_a, nullptr);
  for (const char* typo : {"volleybal", "voleyball", "volleyballl"}) {
    const std::string text = std::string("playing ") + typo + " tonight";
    const auto exact_anns = exact.Annotate(text);
    EXPECT_EQ(Find(exact_anns, "/Volleyball"), nullptr) << typo;
    const auto fuzzy_anns = fuzzy.Annotate(text);
    const Annotation* a = Find(fuzzy_anns, "/Volleyball");
    ASSERT_NE(a, nullptr) << typo;
    // Discounted below the exact-match score.
    EXPECT_LT(a->score, exact_a->score) << typo;
  }
}

TEST_F(AnnotateTest, FuzzyDoesNotFireOnUnrelatedWords) {
  AnnotatorOptions opts;
  opts.fuzzy_min_similarity = 0.5;
  SpotlightAnnotator fuzzy(kb_.get(), opts);
  EXPECT_TRUE(fuzzy.Annotate("completely zzz unrelated qqq").empty());
  // Short words share too few trigrams to cross the threshold.
  EXPECT_EQ(Find(fuzzy.Annotate("vol end"), "/Volleyball"), nullptr);
}

TEST_F(AnnotateTest, FuzzyKbCandidates) {
  auto matches = kb_->FuzzyCandidates(
      text::PorterStem("volleybal"), 0.4);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(kb_->entity(matches[0].topic).label, "Volleyball");
  EXPECT_GT(matches[0].similarity, 0.4);
  EXPECT_LE(matches[0].similarity, 1.0);
  // Exact stem similarity is 1.0.
  auto exact = kb_->FuzzyCandidates(text::PorterStem("volleyball"), 0.9);
  ASSERT_FALSE(exact.empty());
  EXPECT_DOUBLE_EQ(exact[0].similarity, 1.0);
  // Nothing for garbage.
  EXPECT_TRUE(kb_->FuzzyCandidates("zzzzqqq", 0.4).empty());
}

TEST_F(AnnotateTest, OutputSortedByTopicId) {
  SpotlightAnnotator annotator(kb_.get());
  auto anns =
      annotator.Annotate("adidas volleyball coffee pizza marathon concert");
  for (size_t i = 1; i < anns.size(); ++i) {
    EXPECT_LT(anns[i - 1].topic.value, anns[i].topic.value);
  }
  EXPECT_GE(anns.size(), 5u);
}

}  // namespace
}  // namespace adrec::annotate
