#include "cache/topk_cache.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/id_types.h"

namespace adrec::cache {
namespace {

TopkKey Key(uint32_t user, Timestamp time, uint32_t k = 5,
            std::string text = "") {
  TopkKey key;
  key.user = user;
  key.time = time;
  key.k = k;
  key.text = std::move(text);
  return key;
}

/// Inserts a canned entry; cell/slot default to "unfiltered".
void Put(TopkCache* cache, const TopkKey& key,
         LocationId cell = LocationId(), SlotId slot = SlotId()) {
  cache->Insert(key, "ADS 1\r\nAD 1 0.5\r\nEND\r\n", {AdId(1)}, cell, slot);
}

uint64_t Counter(const TopkCache& cache, const std::string& name) {
  const auto snapshot = cache.metrics().Snapshot();
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

TEST(TopkCacheTest, CapacityZeroDisablesCleanly) {
  TopkCache cache(TopkCacheOptions{});
  EXPECT_FALSE(cache.enabled());
  Put(&cache, Key(1, 10));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Find(Key(1, 10)), nullptr);
  // Mutators stay no-ops (and must not crash) while disabled.
  cache.OnTweet(UserId(1));
  cache.OnCheckIn(UserId(1), LocationId(2));
  cache.OnAdPut({}, {});
  cache.OnUserCharged(UserId(1), Key(1, 10));
}

TEST(TopkCacheTest, KeyIdentityIsExact) {
  TopkCacheOptions options;
  options.capacity = 8;
  options.admission = TopkCacheOptions::Admission::kAlways;
  TopkCache cache(options);
  Put(&cache, Key(1, 10, 5, "coffee"));
  EXPECT_NE(cache.Find(Key(1, 10, 5, "coffee")), nullptr);
  // Any key component differing means a different query.
  EXPECT_EQ(cache.Find(Key(2, 10, 5, "coffee")), nullptr);
  EXPECT_EQ(cache.Find(Key(1, 11, 5, "coffee")), nullptr);
  EXPECT_EQ(cache.Find(Key(1, 10, 6, "coffee")), nullptr);
  EXPECT_EQ(cache.Find(Key(1, 10, 5, "tea")), nullptr);
}

TEST(TopkCacheTest, StreamClockStampsEntries) {
  TopkCacheOptions options;
  options.capacity = 8;
  TopkCache cache(options);
  EXPECT_EQ(cache.clock(), 0u);
  // Pinned to cell 9 / slot 2 so the ad churn below (targeting cell 7,
  // slot 1) is incompatible and the entry survives to keep its stamp.
  Put(&cache, Key(1, 10), LocationId(9), SlotId(2));
  EXPECT_EQ(cache.Find(Key(1, 10))->stamp, 0u);

  // Every ingest advances the clock, even when nothing it touches is
  // resident; later fills carry the later stamp.
  cache.OnTweet(UserId(99));
  cache.OnCheckIn(UserId(98), LocationId(3));
  cache.OnAdPut({LocationId(7)}, {SlotId(1)});
  EXPECT_EQ(cache.clock(), 3u);
  Put(&cache, Key(2, 10), LocationId(9), SlotId(2));
  EXPECT_EQ(cache.Find(Key(2, 10))->stamp, 3u);
  // The survivor keeps its fill-time stamp.
  ASSERT_NE(cache.Find(Key(1, 10)), nullptr);
  EXPECT_EQ(cache.Find(Key(1, 10))->stamp, 0u);
}

TEST(TopkCacheTest, TweetInvalidatesExactlyTheAuthor) {
  TopkCacheOptions options;
  options.capacity = 8;
  TopkCache cache(options);
  Put(&cache, Key(1, 10));
  Put(&cache, Key(1, 11));
  Put(&cache, Key(2, 10));
  cache.OnTweet(UserId(1));
  EXPECT_EQ(cache.Find(Key(1, 10)), nullptr);
  EXPECT_EQ(cache.Find(Key(1, 11)), nullptr);
  EXPECT_NE(cache.Find(Key(2, 10)), nullptr);
  EXPECT_EQ(Counter(cache, "cache.invalidations"), 2u);
}

TEST(TopkCacheTest, CheckInInvalidatesAuthorAndCell) {
  TopkCacheOptions options;
  options.capacity = 8;
  TopkCache cache(options);
  Put(&cache, Key(1, 10));                          // the author, no cell
  Put(&cache, Key(2, 10), LocationId(7));           // pinned to cell 7
  Put(&cache, Key(3, 10), LocationId(8));           // a different cell
  cache.OnCheckIn(UserId(1), LocationId(7));
  EXPECT_EQ(cache.Find(Key(1, 10)), nullptr);
  EXPECT_EQ(cache.Find(Key(2, 10)), nullptr);
  EXPECT_NE(cache.Find(Key(3, 10)), nullptr);
}

TEST(TopkCacheTest, AdChurnUsesTargetingCompatibility) {
  TopkCacheOptions options;
  options.capacity = 8;
  TopkCache cache(options);
  Put(&cache, Key(1, 10), LocationId(7), SlotId(2));
  Put(&cache, Key(2, 10), LocationId(8), SlotId(2));
  Put(&cache, Key(3, 10), LocationId(), SlotId());  // ran unfiltered

  // Targeted ad: evicts matching-cell entries and every unfiltered entry
  // (the wildcard could have surfaced it), spares the mismatched cell.
  cache.OnAdPut({LocationId(7)}, {SlotId(2)});
  EXPECT_EQ(cache.Find(Key(1, 10)), nullptr);
  EXPECT_NE(cache.Find(Key(2, 10)), nullptr);
  EXPECT_EQ(cache.Find(Key(3, 10)), nullptr);

  // Slot-incompatible churn spares a slot-pinned entry.
  Put(&cache, Key(4, 10), LocationId(8), SlotId(1));
  cache.OnAdRemoved({LocationId(8)}, {SlotId(3)});
  EXPECT_NE(cache.Find(Key(4, 10)), nullptr);

  // Untargeted ad (empty lists = matches everything) evicts everything.
  cache.OnAdPut({}, {});
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TopkCacheTest, OnUserChargedSparesTheServedKey) {
  TopkCacheOptions options;
  options.capacity = 8;
  TopkCache cache(options);
  const TopkKey served = Key(1, 10);
  Put(&cache, served);
  Put(&cache, Key(1, 11));
  Put(&cache, Key(2, 10));
  const uint64_t clock_before = cache.clock();
  cache.OnUserCharged(UserId(1), served);
  // The just-served entry survives (its ads revalidate on every hit);
  // the user's other entry drops; other users are untouched; charging is
  // not an ingest event, so the stream clock holds still.
  EXPECT_NE(cache.Find(served), nullptr);
  EXPECT_EQ(cache.Find(Key(1, 11)), nullptr);
  EXPECT_NE(cache.Find(Key(2, 10)), nullptr);
  EXPECT_EQ(cache.clock(), clock_before);
}

TEST(TopkCacheTest, LruEvictsColdestAndTouchRefreshes) {
  TopkCacheOptions options;
  options.capacity = 2;
  options.admission = TopkCacheOptions::Admission::kAlways;
  TopkCache cache(options);
  Put(&cache, Key(1, 10));
  Put(&cache, Key(2, 10));
  // Touch 1 so 2 becomes the LRU victim.
  cache.RecordHit(cache.Find(Key(1, 10)));
  Put(&cache, Key(3, 10));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Find(Key(1, 10)), nullptr);
  EXPECT_EQ(cache.Find(Key(2, 10)), nullptr);
  EXPECT_NE(cache.Find(Key(3, 10)), nullptr);
  EXPECT_EQ(Counter(cache, "cache.evictions"), 1u);
}

TEST(TopkCacheTest, FrequencyAdmissionRejectsOneHitWondersWhenFull) {
  TopkCacheOptions options;
  options.capacity = 2;  // admission = kFrequency by default
  TopkCache cache(options);
  // Warm-up: free slots admit everything.
  Put(&cache, Key(1, 10));
  Put(&cache, Key(2, 10));
  EXPECT_EQ(cache.size(), 2u);

  // Full: a first-sighted key is turned away without evicting anyone...
  Put(&cache, Key(3, 10));
  EXPECT_EQ(cache.Find(Key(3, 10)), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(Counter(cache, "cache.admission_rejects"), 1u);
  EXPECT_EQ(Counter(cache, "cache.evictions"), 0u);

  // ...but earns a slot on its second sighting.
  Put(&cache, Key(3, 10));
  EXPECT_NE(cache.Find(Key(3, 10)), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(Counter(cache, "cache.evictions"), 1u);
}

TEST(TopkCacheTest, InjectedAlwaysAdmitBypassesTheDoorkeeper) {
  TopkCacheOptions options;
  options.capacity = 1;
  options.admission = TopkCacheOptions::Admission::kFrequency;
  TopkCache cache(options, nullptr, std::make_unique<AlwaysAdmit>());
  Put(&cache, Key(1, 10));
  Put(&cache, Key(2, 10));  // admitted despite first sighting while full
  EXPECT_NE(cache.Find(Key(2, 10)), nullptr);
  EXPECT_EQ(Counter(cache, "cache.admission_rejects"), 0u);
}

TEST(TopkCacheTest, CounterAccounting) {
  TopkCacheOptions options;
  options.capacity = 8;
  TopkCache cache(options);

  cache.RecordMiss();
  Put(&cache, Key(1, 10));
  cache.RecordHit(cache.Find(Key(1, 10)));
  cache.RecordHit(cache.Find(Key(1, 10)));
  // A revalidation miss counts as a miss, bumps its own counter, and
  // drops the entry.
  cache.RecordRevalidationMiss(cache.Find(Key(1, 10)));
  EXPECT_EQ(cache.Find(Key(1, 10)), nullptr);

  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(Counter(cache, "cache.hits"), 2u);
  EXPECT_EQ(Counter(cache, "cache.misses"), 2u);
  EXPECT_EQ(Counter(cache, "cache.revalidation_misses"), 1u);

  const auto snapshot = cache.metrics().Snapshot();
  auto ratio = snapshot.gauges.find("cache.hit_ratio");
  ASSERT_NE(ratio, snapshot.gauges.end());
  EXPECT_DOUBLE_EQ(ratio->second, 0.5);
  auto entries = snapshot.gauges.find("cache.entries");
  ASSERT_NE(entries, snapshot.gauges.end());
  EXPECT_DOUBLE_EQ(entries->second, 0.0);
}

TEST(TopkCacheTest, InsertReplacesExistingKey) {
  TopkCacheOptions options;
  options.capacity = 4;
  TopkCache cache(options);
  Put(&cache, Key(1, 10));
  cache.Insert(Key(1, 10), "ADS 0\r\nEND\r\n", {}, LocationId(3), SlotId(1));
  ASSERT_EQ(cache.size(), 1u);
  TopkCache::Entry* entry = cache.Find(Key(1, 10));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->reply, "ADS 0\r\nEND\r\n");
  EXPECT_TRUE(entry->ads.empty());
  EXPECT_EQ(entry->cell, LocationId(3));
}

}  // namespace
}  // namespace adrec::cache
