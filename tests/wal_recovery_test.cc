#include "wal/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "feed/workload.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace adrec::wal {
namespace {

class WalRecoveryTest : public ::testing::Test {
 protected:
  WalRecoveryTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("adrec_walrec_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);

    feed::WorkloadOptions opts;
    opts.seed = 4242;
    opts.num_users = 8;
    opts.num_places = 6;
    opts.num_ads = 3;
    opts.days = 2;
    workload_ = feed::GenerateWorkload(opts);
    events_ = workload_.MergedEvents();
  }
  ~WalRecoveryTest() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<core::ShardedEngine> NewEngine(size_t shards = 1) {
    return std::make_unique<core::ShardedEngine>(workload_.kb,
                                                 workload_.slots, shards);
  }

  /// Feeds ads + events[0, upto) through `engine`, logging each to `w`.
  void Stream(core::ShardedEngine* engine, WalWriter* w, size_t upto) {
    for (const feed::Ad& ad : workload_.ads) {
      feed::FeedEvent ev;
      ev.kind = feed::EventKind::kAdInsert;
      ev.ad = ad;
      ASSERT_TRUE(w->Append(EncodeEventPayload(ev)).ok());
      (void)engine->InsertAd(ad);
    }
    for (size_t i = 0; i < upto && i < events_.size(); ++i) {
      ASSERT_TRUE(w->Append(EncodeEventPayload(events_[i])).ok());
      engine->OnEvent(events_[i]);
    }
  }

  std::string dir_;
  feed::Workload workload_;
  std::vector<feed::FeedEvent> events_;
};

TEST_F(WalRecoveryTest, EmptyDirectoryRecoversToFreshState) {
  CheckpointManager manager(dir_);
  auto engine = NewEngine();
  auto r = manager.Recover(engine.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().from_checkpoint);
  EXPECT_EQ(r.value().next_seqno, 1u);
  EXPECT_EQ(r.value().window_replayed, 0u);
  EXPECT_EQ(r.value().live_replayed, 0u);
  EXPECT_EQ(engine->Stats().tweets, 0u);
}

TEST_F(WalRecoveryTest, LogOnlyRecoveryRebuildsEverything) {
  const size_t n = events_.size() / 2;
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    auto engine = NewEngine();
    Stream(engine.get(), writer.value().get(), n);
  }  // crash

  CheckpointManager manager(dir_);
  auto recovered = NewEngine();
  auto r = manager.Recover(recovered.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().from_checkpoint);
  EXPECT_EQ(r.value().live_replayed, workload_.ads.size() + n);
  EXPECT_EQ(r.value().window_replayed, 0u);
  EXPECT_EQ(r.value().next_seqno, workload_.ads.size() + n + 1);

  // The recovered engine equals a never-crashed reference.
  auto reference = NewEngine();
  for (const feed::Ad& ad : workload_.ads) (void)reference->InsertAd(ad);
  for (size_t i = 0; i < n; ++i) reference->OnEvent(events_[i]);
  const core::EngineStats a = reference->Stats();
  const core::EngineStats b = recovered->Stats();
  EXPECT_EQ(a.tweets, b.tweets);
  EXPECT_EQ(a.checkins, b.checkins);
  EXPECT_EQ(a.ads_inserted, b.ads_inserted);

  const feed::Tweet& probe = workload_.tweets.back();
  const auto ra = reference->TopKAdsForTweet(probe, 3);
  const auto rb = recovered->TopKAdsForTweet(probe, 3);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].ad, rb[i].ad);
    EXPECT_DOUBLE_EQ(ra[i].score, rb[i].score);
  }
}

TEST_F(WalRecoveryTest, CheckpointSplitsReplayAtTheMark) {
  const size_t mark = events_.size() / 2;
  const size_t crash = events_.size() * 3 / 4;
  CheckpointManager manager(dir_);
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    WalWriter* w = writer.value().get();
    auto engine = NewEngine();
    Stream(engine.get(), w, mark);
    ASSERT_TRUE(manager.Checkpoint(*engine, w, events_[mark].time).ok());
    for (size_t i = mark; i < crash; ++i) {
      ASSERT_TRUE(w->Append(EncodeEventPayload(events_[i])).ok());
      engine->OnEvent(events_[i]);
    }
  }  // crash

  auto recovered = NewEngine();
  auto r = manager.Recover(recovered.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().from_checkpoint);
  EXPECT_EQ(r.value().checkpoint_seqno, workload_.ads.size() + mark);
  // Everything the checkpoint covers is re-fed window-only; the tail goes
  // through live ingest.
  EXPECT_EQ(r.value().window_replayed, workload_.ads.size() + mark);
  EXPECT_EQ(r.value().live_replayed, crash - mark);
  EXPECT_EQ(r.value().next_seqno, workload_.ads.size() + crash + 1);
  EXPECT_GT(r.value().max_event_time, 0);

  auto reference = NewEngine();
  for (const feed::Ad& ad : workload_.ads) (void)reference->InsertAd(ad);
  for (size_t i = 0; i < crash; ++i) reference->OnEvent(events_[i]);
  // Event counters are not part of the snapshot and window-only replay
  // does not count: the recovered engine's counters cover the tail era
  // only (the daemon adds the checkpoint-time stats when reporting).
  uint64_t tail_tweets = 0, tail_checkins = 0;
  for (size_t i = mark; i < crash; ++i) {
    tail_tweets += events_[i].kind == feed::EventKind::kTweet;
    tail_checkins += events_[i].kind == feed::EventKind::kCheckIn;
  }
  EXPECT_EQ(recovered->Stats().tweets, tail_tweets);
  EXPECT_EQ(recovered->Stats().checkins, tail_checkins);

  const feed::Tweet& probe = workload_.tweets.back();
  const auto ra = reference->TopKAdsForTweet(probe, 3);
  const auto rb = recovered->TopKAdsForTweet(probe, 3);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].ad, rb[i].ad);
    EXPECT_DOUBLE_EQ(ra[i].score, rb[i].score);
  }
}

TEST_F(WalRecoveryTest, FallsBackToOldCheckpointAcrossSwapWindow) {
  const size_t mark = events_.size() / 3;
  CheckpointManager manager(dir_);
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    auto engine = NewEngine();
    Stream(engine.get(), writer.value().get(), mark);
    ASSERT_TRUE(
        manager.Checkpoint(*engine, writer.value().get(), 0).ok());
  }
  // Simulate a crash inside the next checkpoint's swap window: the new
  // checkpoint directory is gone, the previous one survives as .old.
  std::filesystem::rename(dir_ + "/checkpoint", dir_ + "/checkpoint.old");

  auto recovered = NewEngine();
  auto r = manager.Recover(recovered.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().from_checkpoint);
  EXPECT_EQ(r.value().checkpoint_seqno, workload_.ads.size() + mark);
  EXPECT_GT(recovered->Stats().ads_inserted, 0u);
}

TEST_F(WalRecoveryTest, ShardCountMismatchIsRejected) {
  const size_t mark = events_.size() / 4;
  CheckpointManager manager(dir_);
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    auto engine = NewEngine(/*shards=*/2);
    Stream(engine.get(), writer.value().get(), mark);
    ASSERT_TRUE(
        manager.Checkpoint(*engine, writer.value().get(), 0).ok());
  }
  auto wrong = NewEngine(/*shards=*/3);
  EXPECT_FALSE(manager.Recover(wrong.get()).ok());
  auto right = NewEngine(/*shards=*/2);
  EXPECT_TRUE(manager.Recover(right.get()).ok());
}

TEST_F(WalRecoveryTest, TornFinalRecordIsCutNotFatal) {
  const size_t n = events_.size() / 2;
  uint64_t next = 0;
  {
    auto writer = WalWriter::Open(dir_);
    ASSERT_TRUE(writer.ok());
    auto engine = NewEngine();
    Stream(engine.get(), writer.value().get(), n);
    next = writer.value()->next_seqno();
  }
  // The record that never got acknowledged tore halfway through.
  const std::string frame = EncodeFrame(next, EncodeEventPayload(events_[n]));
  auto report = ScanLog(dir_, {});
  ASSERT_TRUE(report.ok());
  {
    std::ofstream out(report.value().segments.back().path,
                      std::ios::binary | std::ios::app);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size() / 3));
  }

  CheckpointManager manager(dir_);
  auto recovered = NewEngine();
  auto r = manager.Recover(recovered.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().torn_bytes_truncated, frame.size() / 3);
  EXPECT_EQ(r.value().live_replayed, workload_.ads.size() + n);
  // The torn record is NOT part of the recovered state, and the next
  // writer reuses its seqno.
  EXPECT_EQ(r.value().next_seqno, next);

  // Recovery physically truncated the tail: a fresh scan is clean.
  auto clean = ScanLog(dir_, {});
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean.value().torn_tail);
}

TEST_F(WalRecoveryTest, RetentionTruncatesCoveredSegments) {
  CheckpointOptions options;
  options.analysis_retention = 0;  // keep nothing older than the mark
  CheckpointManager manager(dir_, options);
  WalOptions wal_options;
  wal_options.segment_bytes = 2048;  // force several sealed segments
  {
    auto writer = WalWriter::Open(dir_, wal_options);
    ASSERT_TRUE(writer.ok());
    auto engine = NewEngine();
    Stream(engine.get(), writer.value().get(), events_.size());
    auto before = ScanLog(dir_, {});
    ASSERT_TRUE(before.ok());
    ASSERT_GT(before.value().segments.size(), 2u);
    ASSERT_TRUE(manager
                    .Checkpoint(*engine, writer.value().get(),
                                events_.back().time)
                    .ok());
  }
  auto after = ScanLog(dir_, {});
  ASSERT_TRUE(after.ok());
  // Sealed segments fully covered by the checkpoint and older than the
  // stream time were unlinked; recovery still works off the checkpoint.
  EXPECT_LT(after.value().segments.size(), 3u);
  auto recovered = NewEngine();
  auto r = manager.Recover(recovered.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().from_checkpoint);
  EXPECT_EQ(r.value().live_replayed, 0u);
}

}  // namespace
}  // namespace adrec::wal
