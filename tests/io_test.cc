#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "annotate/annotator.h"
#include "annotate/kb_io.h"
#include "feed/trace_io.h"
#include "feed/workload.h"

namespace adrec {
namespace {

class IoTest : public ::testing::Test {
 protected:
  IoTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("adrec_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~IoTest() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TraceRoundTrip) {
  feed::WorkloadOptions opts;
  opts.seed = 3;
  opts.num_users = 6;
  opts.num_places = 5;
  opts.days = 2;
  feed::Workload w = feed::GenerateWorkload(opts);

  const std::string path = Path("trace.tsv");
  ASSERT_TRUE(feed::WriteTrace(path, w.tweets, w.check_ins).ok());
  auto read = feed::ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const feed::Trace& trace = read.value();
  ASSERT_EQ(trace.tweets.size(), w.tweets.size());
  ASSERT_EQ(trace.check_ins.size(), w.check_ins.size());
  for (size_t i = 0; i < trace.tweets.size(); ++i) {
    EXPECT_EQ(trace.tweets[i].user, w.tweets[i].user);
    EXPECT_EQ(trace.tweets[i].time, w.tweets[i].time);
    EXPECT_EQ(trace.tweets[i].text, w.tweets[i].text);
  }
  for (size_t i = 0; i < trace.check_ins.size(); ++i) {
    EXPECT_EQ(trace.check_ins[i].location, w.check_ins[i].location);
  }
}

TEST_F(IoTest, TraceSanitizesTabsAndNewlines) {
  feed::Tweet t;
  t.user = UserId(1);
  t.time = 5;
  t.text = "line one\ttabbed\nline two";
  const std::string path = Path("tabs.tsv");
  ASSERT_TRUE(feed::WriteTrace(path, {t}, {}).ok());
  auto read = feed::ReadTrace(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().tweets.size(), 1u);
  EXPECT_EQ(read.value().tweets[0].text, "line one tabbed line two");
}

TEST_F(IoTest, AdsRoundTrip) {
  feed::Ad ad;
  ad.id = AdId(7);
  ad.campaign = CampaignId(3);
  ad.copy = "volleyball gear, 20% off";
  ad.target_locations = {LocationId(2), LocationId(9)};
  ad.target_slots = {SlotId(1)};
  ad.budget_impressions = 500;
  ad.bid = 2.5;
  feed::Ad untargeted;
  untargeted.id = AdId(8);
  untargeted.copy = "anything anywhere";

  const std::string path = Path("ads.tsv");
  ASSERT_TRUE(feed::WriteAds(path, {ad, untargeted}).ok());
  auto read = feed::ReadAds(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().size(), 2u);
  const feed::Ad& r = read.value()[0];
  EXPECT_EQ(r.id, ad.id);
  EXPECT_EQ(r.campaign, ad.campaign);
  EXPECT_EQ(r.copy, ad.copy);
  EXPECT_EQ(r.target_locations, ad.target_locations);
  EXPECT_EQ(r.target_slots, ad.target_slots);
  EXPECT_EQ(r.budget_impressions, 500);
  EXPECT_DOUBLE_EQ(r.bid, 2.5);
  EXPECT_TRUE(read.value()[1].target_locations.empty());
  EXPECT_TRUE(read.value()[1].target_slots.empty());
}

TEST_F(IoTest, ReadTraceRejectsMalformedLines) {
  const std::string path = Path("bad.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("T\t1\tnot_a_time\thello\n", f);
    std::fclose(f);
  }
  auto read = feed::ReadTrace(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find(":1:"), std::string::npos);
}

TEST_F(IoTest, ReadTraceRejectsUnknownTag) {
  const std::string path = Path("tag.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("Z\t1\t2\t3\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(feed::ReadTrace(path).ok());
}

TEST_F(IoTest, MissingFilesAreIoErrors) {
  EXPECT_EQ(feed::ReadTrace(Path("nope.tsv")).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(feed::ReadAds(Path("nope.tsv")).status().code(),
            StatusCode::kIoError);
  text::Analyzer analyzer;
  EXPECT_EQ(
      annotate::ReadKnowledgeBase(Path("nope.tsv"), &analyzer).status().code(),
      StatusCode::kIoError);
}

TEST_F(IoTest, KnowledgeBaseRoundTrip) {
  text::Analyzer analyzer;
  auto kb = annotate::BuildDemoKnowledgeBase(&analyzer);
  const std::string path = Path("kb.tsv");
  ASSERT_TRUE(annotate::WriteKnowledgeBase(path, *kb).ok());

  text::Analyzer analyzer2;
  auto loaded = annotate::ReadKnowledgeBase(path, &analyzer2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value()->size(), kb->size());
  for (uint32_t i = 0; i < kb->size(); ++i) {
    const annotate::Entity& a = kb->entity(TopicId(i));
    const annotate::Entity& b = loaded.value()->entity(TopicId(i));
    EXPECT_EQ(a.uri, b.uri);
    EXPECT_EQ(a.label, b.label);
    EXPECT_NEAR(a.prior, b.prior, 1e-9);
    EXPECT_EQ(a.surface_phrases, b.surface_phrases);
    EXPECT_EQ(a.context_texts, b.context_texts);
  }

  // Behavioural equivalence: the loaded KB annotates identically.
  annotate::SpotlightAnnotator orig(kb.get());
  annotate::SpotlightAnnotator copy(loaded.value().get());
  const char* text = "apple launch event new iphone volleyball match";
  auto a1 = orig.Annotate(text);
  auto a2 = copy.Annotate(text);
  ASSERT_EQ(a1.size(), a2.size());
  for (size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].uri, a2[i].uri);
    EXPECT_NEAR(a1[i].score, a2[i].score, 1e-9);
  }
}

TEST_F(IoTest, KbIoRejectsDanglingReference) {
  const std::string path = Path("dangling.tsv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("S\thttp://x/Unknown\tsome phrase\n", f);
    std::fclose(f);
  }
  text::Analyzer analyzer;
  auto r = annotate::ReadKnowledgeBase(path, &analyzer);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("undeclared"), std::string::npos);
}

TEST_F(IoTest, KbIoRejectsNullAnalyzer) {
  EXPECT_EQ(
      annotate::ReadKnowledgeBase(Path("x"), nullptr).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace adrec
