#include <gtest/gtest.h>

#include "core/recommender.h"
#include "core/tfca.h"

namespace adrec::core {
namespace {

// A window where topic 0 ("running shoes") co-occurs with topic 1
// ("marathon") for every user who mentions it, so the stem base contains
// 0 -> 1.
class ExpansionTest : public ::testing::Test {
 protected:
  ExpansionTest()
      : slots_(timeline::TimeSlotScheme::MorningAfternoonEvening()),
        tfca_(&slots_, /*num_topics=*/4) {
    // Users 0,1,2 tweet topics {0,1}; user 3 tweets {1} only; user 4
    // tweets {2}.
    for (uint32_t u : {0u, 1u, 2u}) {
      AddTweet(u, 0, 1.0);
      AddTweet(u, 1, 1.0);
    }
    AddTweet(3, 1, 1.0);
    AddTweet(4, 2, 1.0);
  }

  void AddTweet(uint32_t user, uint32_t topic, double score) {
    AnnotatedTweet t;
    t.user = UserId(user);
    t.time = 9 * kSecondsPerHour;
    annotate::Annotation a;
    a.topic = TopicId(topic);
    a.score = score;
    t.annotations.push_back(a);
    tfca_.AddTweet(t);
  }

  timeline::TimeSlotScheme slots_;
  TimeAwareConceptAnalysis tfca_;
};

TEST_F(ExpansionTest, UserTopicContextReflectsWindow) {
  fca::FormalContext ctx = tfca_.BuildUserTopicContext(0.5);
  EXPECT_EQ(ctx.num_objects(), 5u);
  EXPECT_EQ(ctx.num_attributes(), 4u);
  EXPECT_TRUE(ctx.Incidence(0, 0));
  EXPECT_TRUE(ctx.Incidence(3, 1));
  EXPECT_FALSE(ctx.Incidence(3, 0));
  // Alpha filters low-score cells.
  fca::FormalContext strict = tfca_.BuildUserTopicContext(1.1);
  EXPECT_FALSE(strict.Incidence(0, 0));
}

// Rule thresholds sized for the 5-user fixture.
ExpandOptions FixtureOptions() {
  ExpandOptions opts;
  opts.min_support = 3;
  opts.min_confidence = 0.9;
  opts.min_mentions = 1;  // the fixture has one tweet per (user, topic)
  return opts;
}

TEST_F(ExpansionTest, ImpliedTopicIsAdded) {
  AdContext ad;
  ad.topics = text::SparseVector::FromUnsorted({{0, 1.0}});  // topic 0 only
  AdContext expanded = ExpandAdTopics(tfca_, ad, FixtureOptions());
  // 0 -> 1 holds in the window, so topic 1 joins with the implied weight.
  EXPECT_GT(expanded.topics.Get(1), 0.0);
  EXPECT_DOUBLE_EQ(expanded.topics.Get(1), 0.3);
  // Original weight untouched; unrelated topic 2 not added.
  EXPECT_DOUBLE_EQ(expanded.topics.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(expanded.topics.Get(2), 0.0);
}

TEST_F(ExpansionTest, ExactModeRejectsPartialImplication) {
  // 1 -> 0 is not exact (user 3 has 1 without 0), so the stem-base mode
  // must not fire it.
  AdContext ad;
  ad.topics = text::SparseVector::FromUnsorted({{1, 1.0}});
  ExpandOptions opts = FixtureOptions();
  opts.exact_only = true;
  AdContext expanded = ExpandAdTopics(tfca_, ad, opts);
  EXPECT_DOUBLE_EQ(expanded.topics.Get(0), 0.0);
}

TEST_F(ExpansionTest, PartialModeFiresHighConfidenceRules) {
  // 1 -> 0 has confidence 3/4 = 0.75: fires at threshold 0.6, not 0.8.
  AdContext ad;
  ad.topics = text::SparseVector::FromUnsorted({{1, 1.0}});
  ExpandOptions opts = FixtureOptions();
  opts.min_confidence = 0.6;
  EXPECT_GT(ExpandAdTopics(tfca_, ad, opts).topics.Get(0), 0.0);
  opts.min_confidence = 0.8;
  EXPECT_DOUBLE_EQ(ExpandAdTopics(tfca_, ad, opts).topics.Get(0), 0.0);
}

TEST_F(ExpansionTest, SupportThresholdSuppressesRareRules) {
  // 2 -> nothing and nothing -> 2: topic 2 has a single supporter, below
  // min_support 3 in both directions.
  AdContext ad;
  ad.topics = text::SparseVector::FromUnsorted({{2, 1.0}});
  AdContext expanded = ExpandAdTopics(tfca_, ad, FixtureOptions());
  EXPECT_EQ(expanded.topics.size(), 1u);
}

TEST_F(ExpansionTest, ImpliedWeightConfigurable) {
  AdContext ad;
  ad.topics = text::SparseVector::FromUnsorted({{0, 1.0}});
  ExpandOptions opts = FixtureOptions();
  opts.implied_weight = 0.7;
  AdContext expanded = ExpandAdTopics(tfca_, ad, opts);
  EXPECT_DOUBLE_EQ(expanded.topics.Get(1), 0.7);
}

TEST_F(ExpansionTest, EmptyAdUnchanged) {
  AdContext ad;
  AdContext expanded = ExpandAdTopics(tfca_, ad);
  // The empty premise implication (∅ -> common topics) must not fire for
  // an ad with no topics: premises of size 0 are filtered out.
  EXPECT_TRUE(expanded.topics.empty());
}

TEST_F(ExpansionTest, ExpansionWidensTheMatch) {
  // Add check-ins so the location side matches everyone at m0 morning.
  for (uint32_t u = 0; u < 5; ++u) {
    feed::CheckIn c;
    c.user = UserId(u);
    c.time = 9 * kSecondsPerHour;
    c.location = LocationId(0);
    tfca_.AddCheckIn(c);
  }
  TfcaOptions topts;
  topts.alpha = 0.5;
  ASSERT_TRUE(tfca_.Analyze(topts).ok());

  AdContext ad;
  ad.locations = {LocationId(0)};
  ad.topics = text::SparseVector::FromUnsorted({{0, 1.0}});
  const MatchResult plain = MatchAd(tfca_, ad, MatchOptions{});
  const MatchResult expanded =
      MatchAd(tfca_, ExpandAdTopics(tfca_, ad, FixtureOptions()),
              MatchOptions{});
  // Expansion can only add candidate users.
  EXPECT_GE(expanded.users.size(), plain.users.size());
  EXPECT_GE(expanded.topic_candidates, plain.topic_candidates);
}

}  // namespace
}  // namespace adrec::core
