// E16 — "Continuous operation": the WindowedAnalyzer re-mines the
// triadic contexts on a refresh cadence over a rolling window, instead of
// one ever-growing batch. Expected shape: per-refresh cost is bounded by
// the window size (not the stream length), total work scales with the
// refresh frequency, and E9b already showed bounded windows *improve*
// match quality.

#include <chrono>
#include <cstdio>

#include "common/histogram.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/windowed_analyzer.h"
#include "feed/workload.h"

int main() {
  adrec::feed::WorkloadOptions opts;
  opts.seed = 777;
  opts.num_users = 40;
  opts.num_places = 20;
  opts.num_ads = 0;
  opts.days = 30;
  const adrec::feed::Workload w = adrec::feed::GenerateWorkload(opts);
  adrec::core::SemanticRepresentation semantic(w.kb.get());

  adrec::TableWriter table(
      "E16: windowed re-analysis over a 30-day stream (40 users)",
      {"window", "refresh_every", "refreshes", "p50_ms", "p99_ms",
       "max_ms", "buffered_tweets_at_end"});

  struct Config {
    const char* window_label;
    adrec::DurationSec window;
    const char* cadence_label;
    adrec::DurationSec cadence;
  };
  for (const Config& cfg :
       {Config{"1d", adrec::kSecondsPerDay, "6h", 6 * adrec::kSecondsPerHour},
        Config{"3d", 3 * adrec::kSecondsPerDay, "6h",
               6 * adrec::kSecondsPerHour},
        Config{"3d", 3 * adrec::kSecondsPerDay, "1h",
               adrec::kSecondsPerHour},
        Config{"7d", 7 * adrec::kSecondsPerDay, "6h",
               6 * adrec::kSecondsPerHour}}) {
    adrec::core::WindowedOptions wopts;
    wopts.window = cfg.window;
    wopts.refresh_every = cfg.cadence;
    wopts.alpha = 0.5;
    adrec::core::WindowedAnalyzer analyzer(&w.slots, w.kb->size(), wopts);

    adrec::Histogram refresh_ms;
    size_t ti = 0, ci = 0;
    // Merge-replay tweets and check-ins in time order, with refresh
    // checks on every event.
    while (ti < w.tweets.size() || ci < w.check_ins.size()) {
      const bool take_tweet =
          ci >= w.check_ins.size() ||
          (ti < w.tweets.size() && w.tweets[ti].time <= w.check_ins[ci].time);
      adrec::Timestamp now;
      if (take_tweet) {
        analyzer.OnTweet(semantic.ProcessTweet(w.tweets[ti]));
        now = w.tweets[ti].time;
        ++ti;
      } else {
        analyzer.OnCheckIn(w.check_ins[ci]);
        now = w.check_ins[ci].time;
        ++ci;
      }
      const auto t0 = std::chrono::steady_clock::now();
      auto refreshed = analyzer.MaybeRefresh(now);
      if (!refreshed.ok()) return 1;
      if (refreshed.value()) {
        refresh_ms.Record(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
      }
    }
    table.AddRow({cfg.window_label, cfg.cadence_label,
                  adrec::StringFormat("%zu", analyzer.refresh_count()),
                  adrec::StringFormat("%.1f", refresh_ms.Quantile(0.5)),
                  adrec::StringFormat("%.1f", refresh_ms.Quantile(0.99)),
                  adrec::StringFormat("%.1f", refresh_ms.max()),
                  adrec::StringFormat("%zu", analyzer.buffered_tweets())});
  }
  table.Print();
  return 0;
}
