// E20 — "What replication costs": follower lag under full-speed ingest,
// the read-replica query price, and failover-and-promote recovery time.
//
// Three measurements on one in-process leader/follower pair (two
// serve::Server event loops over real loopback sockets, the follower's
// replica::Follower polled inside its loop — the adrecd wiring, minus
// the processes):
//
//   1. Lag vs ingest rate: one closed-loop client streams tweets and
//      check-ins at the leader full speed while a sampler polls the
//      follower's `metrics` exposition, recording the
//      adrec_replica_lag_records / adrec_replica_lag_ms gauges the whole
//      time. Reported as lag histograms against the achieved ingest
//      rate, plus the catch-up time from last ack to lag zero.
//   2. Read-replica query price: the same topk queries (explicit time +
//      text, so both sides answer at the same stream position) timed
//      against the leader and against the caught-up follower. The
//      acceptance bar: follower p95 within 1.25x of the leader — same
//      engine, same index; replication should charge the read path
//      nothing but an idle streaming fd in the poll set.
//   3. Failover: stop the leader, `promote` the follower, and write to
//      it — the wall time from leader death to the first acknowledged
//      write on the promoted daemon.
//
// Not a google-benchmark binary: the unit of interest is a replication
// session, not a single call, so this is a plain main emitting one
// BENCH_METRICS_JSON line.
//
//   bench_replica [ingest_events] [topk_queries]

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "common/histogram.h"
#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "obs/stats_export.h"
#include "replica/follower.h"
#include "serve/client.h"
#include "serve/server.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace {

using adrec::Histogram;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One in-process daemon: engine + WAL + server (+ follower when it
/// replicates) — the same wiring examples/adrecd.cpp does. Each daemon
/// generates its own workload (deterministic, so all copies are
/// identical): the workload owns the Analyzer whose Vocabulary is
/// mutated on every analyzed tweet, and that structure is
/// single-writer — per-daemon here, per-process in production.
struct Daemon {
  adrec::feed::Workload workload;
  std::string wal_dir;
  std::unique_ptr<adrec::wal::CheckpointManager> checkpointer;
  std::unique_ptr<adrec::wal::WalWriter> wal;
  std::unique_ptr<adrec::core::ShardedEngine> engine;
  std::unique_ptr<adrec::replica::Follower> follower;
  std::unique_ptr<adrec::serve::Server> server;
  std::thread thread;

  bool Start(const adrec::feed::WorkloadOptions& wopts,
             const std::string& dir, uint16_t leader_port) {
    workload = adrec::feed::GenerateWorkload(wopts);
    wal_dir = dir;
    checkpointer = std::make_unique<adrec::wal::CheckpointManager>(dir);
    engine = std::make_unique<adrec::core::ShardedEngine>(
        workload.kb, workload.slots, /*num_shards=*/1);
    auto recovered = checkpointer->Recover(engine.get());
    if (!recovered.ok()) return false;
    auto writer = adrec::wal::WalWriter::Open(
        dir, adrec::wal::WalOptions{}, recovered.value().next_seqno);
    if (!writer.ok()) return false;
    wal = std::move(writer).value();

    adrec::serve::ServerOptions options;
    options.wal = wal.get();
    options.checkpointer = checkpointer.get();
    options.repl_heartbeat_interval = 0.05;  // fast lag_ms resolution
    if (leader_port != 0) {
      adrec::replica::FollowerOptions fopts;
      fopts.port = leader_port;
      fopts.backoff_initial = 0.05;
      follower = std::make_unique<adrec::replica::Follower>(
          engine.get(), wal.get(), fopts);
      options.follower = follower.get();
    }
    server = std::make_unique<adrec::serve::Server>(engine.get(), options);
    if (!server->Start().ok()) return false;
    thread = std::thread([this] { server->Run(); });
    return true;
  }

  void Stop() {
    if (server) {
      server->RequestDrain();
      if (thread.joinable()) thread.join();
      server.reset();
    }
    follower.reset();
    wal.reset();
  }
  ~Daemon() { Stop(); }
};

/// Extracts one `adrec_...` sample value from a Prometheus payload.
bool MetricValue(const std::string& payload, const std::string& name,
                 double* value) {
  const size_t pos = payload.find("\n" + name + " ");
  if (pos == std::string::npos) return false;
  *value = std::strtod(payload.c_str() + pos + 1 + name.size(), nullptr);
  return true;
}

void AddTimer(adrec::obs::StatsReport* report, const std::string& name,
              const Histogram& hist) {
  if (hist.count() == 0) return;
  adrec::obs::TimerStat stat;
  stat.count = hist.count();
  stat.mean = hist.Mean();
  stat.p50 = hist.Quantile(0.50);
  stat.p95 = hist.Quantile(0.95);
  stat.p99 = hist.Quantile(0.99);
  stat.min = hist.min();
  stat.max = hist.max();
  report->timers[name] = stat;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t ingest_events =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 4000;
  const size_t topk_queries =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 400;

  adrec::feed::WorkloadOptions wopts = adrec::feed::CaseStudyOptions();
  wopts.days = 7;
  const adrec::feed::Workload workload =
      adrec::feed::GenerateWorkload(wopts);

  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("adrec_bench_replica_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(base);

  Daemon leader;
  Daemon follower;
  if (!leader.Start(wopts, base + "/leader", 0)) {
    std::fprintf(stderr, "leader start failed\n");
    return 1;
  }
  if (!follower.Start(wopts, base + "/follower",
                      leader.server->port())) {
    std::fprintf(stderr, "follower start failed\n");
    return 1;
  }

  adrec::serve::Client ingest;
  if (!ingest.Connect("127.0.0.1", leader.server->port()).ok()) return 1;
  size_t errors = 0;
  uint64_t acked = 0;
  for (const auto& ad : workload.ads) {
    if (ingest.PutAd(ad).ok()) ++acked; else ++errors;
  }

  // --- 1. Full-speed ingest with a concurrent lag sampler. ---
  Histogram lag_records, lag_ms, ingest_us;
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    adrec::serve::Client probe;
    if (!probe.Connect("127.0.0.1", follower.server->port()).ok()) return;
    while (sampling.load(std::memory_order_relaxed)) {
      auto metrics = probe.Metrics();
      if (metrics.ok()) {
        double v = 0;
        if (MetricValue(metrics.value(), "adrec_replica_lag_records", &v))
          lag_records.Record(v);
        if (MetricValue(metrics.value(), "adrec_replica_lag_ms", &v))
          lag_ms.Record(v);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe.Quit();
  });

  const double ingest_start = NowUs();
  const auto& tweets = workload.tweets;
  const auto& checkins = workload.check_ins;
  for (size_t i = 0; i < ingest_events; ++i) {
    const double start = NowUs();
    const bool ok = (i % 3 != 2)
                        ? ingest.SendTweet(tweets[i % tweets.size()]).ok()
                        : ingest.SendCheckIn(
                              checkins[i % checkins.size()]).ok();
    ingest_us.Record(NowUs() - start);
    if (ok) ++acked; else ++errors;
  }
  const double ingest_secs = (NowUs() - ingest_start) * 1e-6;

  // Catch-up: last ack to applied == acked, on the sampler's probe path.
  const double catchup_start = NowUs();
  double applied = 0;
  {
    adrec::serve::Client probe;
    if (!probe.Connect("127.0.0.1", follower.server->port()).ok()) return 1;
    while (applied < static_cast<double>(acked)) {
      auto metrics = probe.Metrics();
      if (!metrics.ok() ||
          !MetricValue(metrics.value(), "adrec_replica_applied_seqno",
                       &applied)) {
        std::fprintf(stderr, "no applied_seqno gauge on the follower\n");
        return 1;
      }
      if ((NowUs() - catchup_start) * 1e-6 > 30.0) {
        std::fprintf(stderr, "follower stuck at %.0f/%llu\n", applied,
                     static_cast<unsigned long long>(acked));
        return 1;
      }
    }
    probe.Quit();
  }
  const double catchup_ms = (NowUs() - catchup_start) * 1e-3;
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();

  // --- 2. The same topk queries against both sides. ---
  Histogram leader_topk_us, follower_topk_us;
  {
    adrec::serve::Client lq, fq;
    if (!lq.Connect("127.0.0.1", leader.server->port()).ok()) return 1;
    if (!fq.Connect("127.0.0.1", follower.server->port()).ok()) return 1;
    for (int warm = 0; warm < 20; ++warm) {  // connection + cache warmup
      const auto& t = tweets[static_cast<size_t>(warm) % tweets.size()];
      (void)lq.TopK(t.user, 5, t.time, t.text);
      (void)fq.TopK(t.user, 5, t.time, t.text);
    }
    for (size_t i = 0; i < topk_queries; ++i) {
      const auto& t = tweets[i % tweets.size()];
      double start = NowUs();
      if (!lq.TopK(t.user, 5, t.time, t.text).ok()) ++errors;
      leader_topk_us.Record(NowUs() - start);
      start = NowUs();
      if (!fq.TopK(t.user, 5, t.time, t.text).ok()) ++errors;
      follower_topk_us.Record(NowUs() - start);
    }
    lq.Quit();
    fq.Quit();
  }
  const double p95_ratio =
      leader_topk_us.Quantile(0.95) > 0
          ? follower_topk_us.Quantile(0.95) / leader_topk_us.Quantile(0.95)
          : 0.0;

  // --- 3. Failover: leader dies, promote, first acknowledged write. ---
  const double failover_start = NowUs();
  leader.Stop();
  double promote_us = 0;
  {
    adrec::serve::Client admin;
    if (!admin.Connect("127.0.0.1", follower.server->port()).ok()) return 1;
    const double t0 = NowUs();
    auto reply = admin.Command("promote");
    promote_us = NowUs() - t0;
    if (!reply.ok() || reply.value().rfind("OK", 0) != 0) {
      std::fprintf(stderr, "promote failed: %s\n",
                   reply.ok() ? reply.value().c_str()
                              : reply.status().ToString().c_str());
      return 1;
    }
    if (!admin.SendTweet(tweets[0]).ok()) {
      std::fprintf(stderr, "post-promotion write rejected\n");
      return 1;
    }
    admin.Quit();
  }
  const double failover_ms = (NowUs() - failover_start) * 1e-3;

  ingest.Quit();
  follower.Stop();
  std::filesystem::remove_all(base);

  const double rate = ingest_secs > 0 ? ingest_events / ingest_secs : 0.0;
  std::printf("bench_replica: %zu events at %.0f events/s, %zu errors\n",
              ingest_events, rate, errors);
  std::printf("  lag       p50=%.0f p95=%.0f records, p95=%.1fms; "
              "catch-up %.1fms\n",
              lag_records.Quantile(0.5), lag_records.Quantile(0.95),
              lag_ms.Quantile(0.95), catchup_ms);
  std::printf("  topk p95  leader=%.1fus follower=%.1fus (%.2fx, bar 1.25x)\n",
              leader_topk_us.Quantile(0.95),
              follower_topk_us.Quantile(0.95), p95_ratio);
  std::printf("  failover  promote=%.1fus, death-to-first-write %.1fms\n",
              promote_us, failover_ms);

  adrec::obs::StatsReport report;
  AddTimer(&report, "bench.ingest_ack_us", ingest_us);
  AddTimer(&report, "bench.leader_topk_us", leader_topk_us);
  AddTimer(&report, "bench.follower_topk_us", follower_topk_us);
  AddTimer(&report, "bench.lag_records", lag_records);
  AddTimer(&report, "bench.lag_ms", lag_ms);
  report.gauges["bench.topk_p95_ratio"] = p95_ratio;
  report.gauges["bench.ingest_events_per_sec"] = rate;
  report.gauges["bench.catchup_ms"] = catchup_ms;
  report.gauges["bench.promote_us"] = promote_us;
  report.gauges["bench.failover_to_first_write_ms"] = failover_ms;
  report.counters["bench.ingest_events"] = ingest_events;
  report.counters["bench.acked_records"] = acked;
  report.counters["bench.errors"] = errors;
  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());
  return errors == 0 ? 0 : 1;
}
