// E10 — the pinned worked example as a regression harness: five users,
// three locations, three slots, the "Adidas" ad at m2 with topics
// {URI1, URI2}. The harness prints the extracted triadic concepts of both
// contexts and asserts the final match is exactly {Luke} with morning and
// evening as the supporting slots. Exit code 0 iff reproduced.

#include <cstdio>
#include <set>
#include <string>

#include "core/recommender.h"
#include "core/tfca.h"

namespace {

using adrec::LocationId;
using adrec::SlotId;
using adrec::TopicId;
using adrec::UserId;

const char* const kUsers[] = {"Tom", "Luke", "Anna", "Sam", "Lia"};
const char* const kSlots[] = {"t1", "t2", "t3"};

}  // namespace

int main() {
  adrec::timeline::TimeSlotScheme slots =
      adrec::timeline::TimeSlotScheme::MorningAfternoonEvening();
  adrec::core::TimeAwareConceptAnalysis tfca(&slots, 5);

  auto slot_time = [&](uint32_t s) {
    const auto& slot = slots.slot(SlotId(s));
    return (slot.begin_second + slot.end_second) / 2;
  };
  auto check_in = [&](uint32_t u, uint32_t m, uint32_t s) {
    tfca.AddCheckIn({UserId(u), slot_time(s), LocationId(m)});
  };
  auto tweet = [&](uint32_t u, uint32_t topic, uint32_t s, double score) {
    adrec::core::AnnotatedTweet t;
    t.user = UserId(u);
    t.time = slot_time(s);
    adrec::annotate::Annotation a;
    a.topic = TopicId(topic);
    a.score = score;
    t.annotations.push_back(a);
    tfca.AddTweet(t);
  };

  // The two pinned contexts.
  check_in(0, 0, 0); check_in(0, 0, 1); check_in(0, 0, 2);
  check_in(1, 1, 0); check_in(1, 1, 1); check_in(1, 2, 2);
  check_in(3, 0, 2);
  check_in(4, 1, 0); check_in(4, 1, 1); check_in(4, 1, 2);
  tweet(0, 0, 0, 1.0); tweet(1, 0, 0, 1.0); tweet(2, 2, 0, 0.9);
  tweet(3, 1, 0, 1.0); tweet(4, 4, 0, 1.0);
  tweet(0, 0, 1, 1.0); tweet(1, 3, 1, 0.8); tweet(2, 2, 1, 0.8);
  tweet(3, 4, 1, 0.75); tweet(4, 4, 1, 0.8);
  tweet(0, 2, 2, 0.8); tweet(1, 0, 2, 1.0); tweet(2, 2, 2, 1.0);
  tweet(3, 1, 2, 1.0); tweet(4, 4, 2, 1.0);

  adrec::core::TfcaOptions topts;
  topts.alpha = 0.6;
  if (!tfca.Analyze(topts).ok()) return 1;

  std::printf("== E10: case-study triadic concepts ==\n");
  std::printf("Location communities (m-triadic concepts of H):\n");
  for (uint32_t m = 0; m < 3; ++m) {
    for (const auto& c : tfca.LocationCommunities(LocationId(m))) {
      std::string users, when;
      for (UserId u : c.users) {
        users += users.empty() ? "" : ",";
        users += kUsers[u.value];
      }
      for (SlotId s : c.slots) {
        when += when.empty() ? "" : ",";
        when += kSlots[s.value];
      }
      std::printf("  ({%s}, {m%u}, {%s})\n", users.c_str(), m + 1,
                  when.c_str());
    }
  }
  std::printf("Topic communities (uri-triadic concepts of TFC, alpha=0.6):\n");
  for (uint32_t t = 0; t < 5; ++t) {
    for (const auto& c : tfca.TopicCommunities(TopicId(t))) {
      std::string users, when;
      for (UserId u : c.users) {
        users += users.empty() ? "" : ",";
        users += kUsers[u.value];
      }
      for (SlotId s : c.slots) {
        when += when.empty() ? "" : ",";
        when += kSlots[s.value];
      }
      std::printf("  ({%s}, {URI%u}, {%s})\n", users.c_str(), t + 1,
                  when.c_str());
    }
  }

  adrec::core::AdContext ad;
  ad.locations = {LocationId(1)};
  ad.topics = adrec::text::SparseVector::FromUnsorted({{0, 1.0}, {1, 1.0}});
  const auto result =
      adrec::core::MatchAd(tfca, ad, adrec::core::MatchOptions{});

  std::printf("Match for ad(m2, {URI1, URI2}): ");
  for (const auto& mu : result.users) {
    std::printf("%s ", kUsers[mu.user.value]);
  }
  std::printf("\n");

  // The supporting slots of the matched user's topic communities.
  std::set<uint32_t> luke_slots;
  for (const auto& c : tfca.TopicCommunities(TopicId(0))) {
    bool has_luke = false;
    for (UserId u : c.users) has_luke |= (u == UserId(1));
    if (has_luke) {
      for (SlotId s : c.slots) luke_slots.insert(s.value);
    }
  }
  std::printf("Supporting slots for Luke: ");
  for (uint32_t s : luke_slots) std::printf("%s ", kSlots[s]);
  std::printf("\n");

  const bool reproduced = result.users.size() == 1 &&
                          result.users[0].user == UserId(1) &&
                          luke_slots == std::set<uint32_t>{0, 2};
  std::printf("Case study reproduced (ad -> Luke in t1 and t3): %s\n",
              reproduced ? "YES" : "NO");
  return reproduced ? 0 : 1;
}
