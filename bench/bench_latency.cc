// E4 — "Per-feed-event matching latency vs. k": p50/p95/p99 latency of
// the indexed top-k as the requested result size grows. Expected shape:
// latency grows mildly with k (TA must scan deeper before the threshold
// closes), with tail latencies well under a millisecond at this scale.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/ad_index.h"
#include "obs/stats_export.h"

int main() {
  adrec::Rng rng(991);
  adrec::index::AdIndex index;
  const size_t kAds = 20000;
  const size_t kTopics = 500;
  adrec::ZipfSampler zipf(kTopics, 1.0);
  for (uint32_t i = 0; i < kAds; ++i) {
    std::vector<adrec::text::SparseEntry> entries;
    const size_t nnz = 1 + rng.NextBounded(4);
    for (size_t j = 0; j < nnz; ++j) {
      entries.push_back({static_cast<uint32_t>(zipf.Sample(rng)),
                         0.2 + 0.8 * rng.NextDouble()});
    }
    (void)index.Insert(adrec::AdId(i),
                       adrec::text::SparseVector::FromUnsorted(entries), {},
                       {}, 0.5 + rng.NextDouble());
  }

  adrec::TableWriter table(
      "E4: per-query latency vs k (20k ads, indexed TA matcher)",
      {"k", "p50_us", "p95_us", "p99_us", "max_us", "postings_p50"});
  adrec::obs::MetricRegistry metrics;
  for (size_t k : {1u, 5u, 10u, 20u, 50u}) {
    adrec::obs::Timer* timer = metrics.GetTimer(
        adrec::StringFormat("index.topk_us.k%zu", k));
    adrec::obs::Counter* queries = metrics.GetCounter(
        adrec::StringFormat("index.queries.k%zu", k));
    std::vector<double> lat;
    std::vector<size_t> scanned;
    for (int q = 0; q < 2000; ++q) {
      adrec::index::AdQuery query;
      std::vector<adrec::text::SparseEntry> entries;
      const size_t nnz = 1 + rng.NextBounded(3);
      for (size_t j = 0; j < nnz; ++j) {
        entries.push_back({static_cast<uint32_t>(zipf.Sample(rng)),
                           0.2 + 0.8 * rng.NextDouble()});
      }
      query.topics = adrec::text::SparseVector::FromUnsorted(entries);
      query.k = k;
      const auto t0 = std::chrono::steady_clock::now();
      auto result = index.TopK(query);
      const auto t1 = std::chrono::steady_clock::now();
      if (result.size() > k) return 1;  // defensive: k must bound results
      const double micros =
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      lat.push_back(micros);
      timer->Record(micros);
      queries->Inc();
      scanned.push_back(index.last_postings_scanned());
    }
    std::sort(lat.begin(), lat.end());
    std::sort(scanned.begin(), scanned.end());
    auto pct = [&](double p) { return lat[static_cast<size_t>(p * (lat.size() - 1))]; };
    table.AddRow({adrec::StringFormat("%zu", k),
                  adrec::StringFormat("%.1f", pct(0.50)),
                  adrec::StringFormat("%.1f", pct(0.95)),
                  adrec::StringFormat("%.1f", pct(0.99)),
                  adrec::StringFormat("%.1f", lat.back()),
                  adrec::StringFormat("%zu", scanned[scanned.size() / 2])});
  }
  table.Print();
  // Machine-readable companion to the table (same timers, obs exporter).
  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(
                  adrec::obs::BuildReport(metrics.Snapshot()))
                  .c_str());
  return 0;
}
