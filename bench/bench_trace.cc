// E21 — "Overhead of always-on request tracing": what the flight
// recorder charges the serving hot path.
//
// Two configurations of the exact trace lifecycle the daemon's Dispatch
// runs per request (builder acquire → Start → serve.dispatch span →
// active-trace engine stage probes → collector Finish with tail-based
// retention), driven over the top-k query path:
//
//   off — tracing compiled in, ring disabled (TraceCollectorOptions
//         ring_slots=0): the collector's enabled() gate short-circuits
//         the whole lifecycle, exactly as adrecd --trace-ring=0 does.
//   on  — the daemon's defaults: 512-slot ring, 1-in-16 sampling,
//         10ms slow threshold.
//
// Methodology (same shape as bench_wal): one throwaway warm-up pass,
// then the two configurations interleave over several rounds so
// CPU-frequency and cache drift tax both equally; the per-round exact
// p95s are reduced by median and compared. The acceptance bar — traced
// top-k p95 within 2% of untraced — is asserted by the binary itself
// (exit 1), and the absolute timers land in BENCH_METRICS_JSON for the
// scripts/ci_bench_gate.sh baseline diff.
//
//   bench_trace [queries_per_round] [rounds]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "obs/stats_export.h"
#include "obs/trace.h"

namespace {

struct Stats {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Stats ExactStats(std::vector<double> v) {
  Stats s;
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  auto q = [&](double p) {
    return v[std::min(v.size() - 1,
                      static_cast<size_t>(p * static_cast<double>(v.size())))];
  };
  s.p50 = q(0.50);
  s.p95 = q(0.95);
  s.p99 = q(0.99);
  return s;
}

adrec::obs::TimerStat ToTimerStat(const std::vector<double>& samples) {
  const Stats s = ExactStats(samples);
  adrec::obs::TimerStat out;
  out.count = samples.size();
  out.mean = s.mean;
  out.p50 = s.p50;
  out.p95 = s.p95;
  out.p99 = s.p99;
  return out;
}

/// One top-k request through the Dispatch-shaped trace lifecycle.
/// `collector` decides the configuration: a disabled collector takes
/// the exact short-circuit branch the daemon takes. Returns the query
/// latency (µs).
double OneQuery(adrec::core::ShardedEngine* engine,
                const adrec::feed::Tweet& t,
                adrec::obs::TraceCollector* collector,
                adrec::obs::TraceBuilderPool* pool) {
  const bool tracing = collector->enabled();
  const auto t0 = std::chrono::steady_clock::now();

  std::unique_ptr<adrec::obs::TraceBuilder> trace;
  if (tracing) {
    trace = pool->Acquire();
    trace->Start(collector->NextTraceId(), "topk\t<bench>\t3");
  }
  {
    const uint32_t span =
        trace != nullptr ? trace->StartSpan("serve.dispatch") : 0;
    adrec::obs::ScopedActiveTrace active(trace.get());
    const auto ads = engine->TopKAdsForTweet(t, 3);
    if (trace != nullptr) trace->EndSpan(span);
    ADREC_CHECK(ads.size() <= 3);
  }
  if (trace != nullptr) {
    collector->Finish(trace.get());
    pool->Release(std::move(trace));
  }

  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// One round of `queries` PAIRED requests: each query runs both
/// configurations back to back on the same tweet (order alternating),
/// which gives the two arms an identical machine-load profile — the
/// pairing that lets a 2% bar survive a shared runner. Appends per-
/// query latencies to `off_us` / `on_us` and the per-pair deltas
/// (on − off, µs) to `delta_first` (traced ran first, cache-cold) or
/// `delta_second` (traced ran second, cache-warm).
void PairedPass(adrec::core::ShardedEngine* engine,
                const std::vector<adrec::feed::Tweet>& tweets, size_t queries,
                adrec::obs::TraceCollector* off,
                adrec::obs::TraceCollector* on,
                adrec::obs::TraceBuilderPool* pool,
                std::vector<double>* off_us, std::vector<double>* on_us,
                std::vector<double>* delta_first,
                std::vector<double>* delta_second) {
  for (size_t i = 0; i < queries; ++i) {
    const adrec::feed::Tweet& t = tweets[i % tweets.size()];
    double o, n;
    if (i % 2 == 0) {
      o = OneQuery(engine, t, off, pool);
      n = OneQuery(engine, t, on, pool);
      delta_second->push_back(n - o);
    } else {
      n = OneQuery(engine, t, on, pool);
      o = OneQuery(engine, t, off, pool);
      delta_first->push_back(n - o);
    }
    off_us->push_back(o);
    on_us->push_back(n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const size_t queries =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 4000;
  const size_t rounds = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 7;

  // A serving-representative catalogue: the case-study trace is tiny
  // (5 ads), which makes topk so cheap that any fixed per-request cost
  // looks huge in relative terms. Benchmark at the scale tracing is
  // meant for.
  adrec::feed::WorkloadOptions wopts;
  wopts.seed = 606;
  wopts.num_users = 200;
  wopts.num_ads = 100;
  wopts.days = 7;
  const adrec::feed::Workload workload = adrec::feed::GenerateWorkload(wopts);

  adrec::core::ShardedEngine engine(workload.kb, workload.slots, 1);
  for (const auto& ad : workload.ads) ADREC_CHECK(engine.InsertAd(ad).ok());
  for (const auto& c : workload.check_ins) engine.OnCheckIn(c);
  for (const auto& t : workload.tweets) engine.OnTweet(t);

  // off: the daemon's --trace-ring=0 short-circuit. on: its defaults.
  adrec::obs::TraceCollectorOptions off_opts;
  off_opts.ring_slots = 0;
  adrec::obs::TraceCollector off(off_opts);
  adrec::obs::TraceCollector on;  // 512 slots, 1-in-16, 10ms
  adrec::obs::TraceBuilderPool pool;

  // Warm-up: allocator, page cache, branch predictors — and the pool.
  {
    std::vector<double> s1, s2, s3, s4;
    PairedPass(&engine, workload.tweets, queries, &off, &on, &pool, &s1, &s2,
               &s3, &s4);
  }

  std::vector<double> off_all, on_all, delta_first, delta_second;
  for (size_t r = 0; r < rounds; ++r) {
    PairedPass(&engine, workload.tweets, queries, &off, &on, &pool, &off_all,
               &on_all, &delta_first, &delta_second);
  }

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  // The trace lifecycle is a FIXED per-request cost (no stage of it
  // scales with query latency), so the stable way to measure it is the
  // median of the per-pair deltas — tens of thousands of paired samples
  // collapse machine noise that makes raw p95-vs-p95 comparisons swing
  // ±3% on a shared runner. The two arm orders are averaged to cancel
  // the warm-cache advantage of whichever configuration runs second.
  // The gate then asks the p95 question directly: fixed cost relative
  // to the untraced p95.
  const double overhead_us =
      (median(delta_first) + median(delta_second)) / 2.0;
  const double off_p95 = ExactStats(off_all).p95;
  const double on_p95 = ExactStats(on_all).p95;
  const double ratio = off_p95 > 0.0 ? 1.0 + overhead_us / off_p95 : 1.0;

  adrec::obs::StatsReport report;
  report.counters["bench.queries_per_round"] = queries;
  report.counters["bench.rounds"] = rounds;
  report.timers["bench.topk_untraced_us"] = ToTimerStat(off_all);
  report.timers["bench.topk_traced_us"] = ToTimerStat(on_all);
  report.gauges["bench.topk_p95_ratio"] = ratio;
  const auto trace_metrics = on.metrics().Snapshot();
  for (const auto& [name, value] : trace_metrics.counters) {
    report.counters["bench." + name] = static_cast<uint64_t>(value);
  }

  std::printf("bench_trace: topk untraced p50=%.2fus p95=%.2fus\n",
              ExactStats(off_all).p50, off_p95);
  std::printf("bench_trace: topk traced   p50=%.2fus p95=%.2fus\n",
              ExactStats(on_all).p50, on_p95);
  std::printf(
      "bench_trace: per-request trace cost %+.3fus (median of %zu paired "
      "deltas) = %+.2f%% of untraced p95 (bar: +2%%)\n",
      overhead_us, delta_first.size() + delta_second.size(),
      (ratio - 1.0) * 100.0);
  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());

  if (ratio > 1.02) {
    std::fprintf(stderr,
                 "FAIL: tracing overhead %.2f%% exceeds the 2%% bar "
                 "(untraced p95 %.2fus, traced p95 %.2fus)\n",
                 (ratio - 1.0) * 100.0, off_p95, on_p95);
    return 1;
  }
  std::printf("bench_trace: OK (within the 2%% overhead bar)\n");
  return 0;
}
