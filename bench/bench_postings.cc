// E23 — "Compressed inventory index at scale": builds the same synthetic
// ad inventory into the uncompressed AdIndex and the compressed
// posting-list CompressedAdIndex (DESIGN.md §15) at each requested
// inventory size, then drives the identical deterministic query stream
// through both and reports build time, topk latency, candidate pruning
// and index memory. Topics are Zipf-distributed so posting lists have
// the skewed length profile the cheapest-first conjunction exploits;
// queries mix selective and broad topics with optional location/slot
// filters.
//
// Self-gates (exit non-zero): every sampled query must return
// byte-identical results from both indexes; compressed topk p95 must not
// exceed 1.15x the uncompressed p95 at the 10k-ad scale (when run); and
// compressed index memory must be at most 0.5x the uncompressed
// estimate at the largest scale.
//
//   bench_postings [num_ads ...] [--queries=N] [--topics=N] [--seed=N]
//
// Defaults: scales {10000, 100000}, 2000 queries, 2000 topics. The full
// E23 sweep adds 1000000 (see EXPERIMENTS.md); CI runs the quick shape.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "index/ad_index.h"
#include "obs/stats_export.h"
#include "postings/compressed_index.h"
#include "text/sparse_vector.h"

namespace {

using adrec::Histogram;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct AdSpec {
  adrec::AdId id;
  adrec::text::SparseVector topics;
  std::vector<adrec::LocationId> locations;
  std::vector<adrec::SlotId> slots;
  double bid = 1.0;
};

struct ScaleResult {
  size_t num_ads = 0;
  double build_uncompressed_us = 0.0;
  double build_compressed_us = 0.0;
  Histogram uncompressed_us;
  Histogram compressed_us;
  size_t uncompressed_bytes = 0;
  size_t compressed_bytes = 0;
  double avg_candidates = 0.0;
  double avg_scanned = 0.0;
  size_t mismatches = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> scales;
  size_t num_queries = 2000;
  uint32_t num_topics = 2000;
  uint64_t seed = 42;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--queries=", 10) == 0) {
      num_queries = static_cast<size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--topics=", 9) == 0) {
      num_topics = static_cast<uint32_t>(std::atoll(arg + 9));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else {
      scales.push_back(static_cast<size_t>(std::atoll(arg)));
    }
  }
  if (scales.empty()) scales = {10000, 100000};

  constexpr uint32_t kCells = 256;
  constexpr uint32_t kSlots = 16;
  bool gate_failed = false;
  std::vector<ScaleResult> results;

  for (const size_t num_ads : scales) {
    ScaleResult r;
    r.num_ads = num_ads;

    // Deterministic inventory: Zipf topic popularity gives the long-tail
    // posting-length profile; 60% of ads are geo-targeted, 50% slotted.
    adrec::Rng rng(seed * 1000003 + num_ads);
    adrec::ZipfSampler topic_zipf(num_topics, 1.05);
    std::vector<AdSpec> ads;
    ads.reserve(num_ads);
    for (size_t i = 0; i < num_ads; ++i) {
      AdSpec spec;
      spec.id = adrec::AdId(static_cast<uint32_t>(i));
      std::vector<adrec::text::SparseEntry> entries;
      const size_t nt = 2 + rng.NextBounded(5);
      for (size_t t = 0; t < nt; ++t) {
        entries.push_back({static_cast<uint32_t>(topic_zipf.Sample(rng)),
                           0.05 + rng.NextDouble()});
      }
      spec.topics =
          adrec::text::SparseVector::FromUnsorted(std::move(entries));
      if (rng.NextBool(0.6)) {
        const size_t nl = 1 + rng.NextBounded(3);
        for (size_t l = 0; l < nl; ++l) {
          spec.locations.push_back(adrec::LocationId(
              static_cast<uint32_t>(rng.NextBounded(kCells))));
        }
      }
      if (rng.NextBool(0.5)) {
        spec.slots.push_back(
            adrec::SlotId(static_cast<uint32_t>(rng.NextBounded(kSlots))));
      }
      spec.bid = 0.1 + rng.NextDouble() * 3.0;
      ads.push_back(std::move(spec));
    }

    // Query stream shared by both indexes: skewed topic picks (so some
    // queries hit fat lists, some hit selective tails), half filtered.
    std::vector<adrec::index::AdQuery> queries;
    queries.reserve(num_queries);
    for (size_t i = 0; i < num_queries; ++i) {
      adrec::index::AdQuery q;
      std::vector<adrec::text::SparseEntry> entries;
      const size_t nt = 1 + rng.NextBounded(4);
      for (size_t t = 0; t < nt; ++t) {
        entries.push_back({static_cast<uint32_t>(topic_zipf.Sample(rng)),
                           0.05 + rng.NextDouble()});
      }
      q.topics = adrec::text::SparseVector::FromUnsorted(std::move(entries));
      q.k = 10;
      if (rng.NextBool(0.5)) {
        q.location = adrec::LocationId(
            static_cast<uint32_t>(rng.NextBounded(kCells)));
      }
      if (rng.NextBool(0.5)) {
        q.slot =
            adrec::SlotId(static_cast<uint32_t>(rng.NextBounded(kSlots)));
      }
      queries.push_back(std::move(q));
    }

    adrec::index::AdIndex idx;
    double start = NowUs();
    for (const AdSpec& a : ads) {
      if (auto s = idx.Insert(a.id, a.topics, a.locations, a.slots, a.bid);
          !s.ok()) {
        std::fprintf(stderr, "insert: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    r.build_uncompressed_us = NowUs() - start;

    adrec::postings::CompressedAdIndex cidx;
    start = NowUs();
    for (const AdSpec& a : ads) {
      if (auto s = cidx.Insert(a.id, a.topics, a.locations, a.slots, a.bid);
          !s.ok()) {
        std::fprintf(stderr, "insert: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    cidx.Seal();
    r.build_compressed_us = NowUs() - start;
    r.uncompressed_bytes = idx.approx_bytes();
    r.compressed_bytes = cidx.approx_bytes();

    // Interleave the two indexes per query rather than running two
    // separate passes, so cache-warmth drift cannot favour either side.
    uint64_t candidates = 0, scanned = 0;
    for (size_t i = 0; i < num_queries; ++i) {
      start = NowUs();
      const auto plain = idx.TopK(queries[i]);
      r.uncompressed_us.Record(NowUs() - start);
      start = NowUs();
      const auto pruned = cidx.TopK(queries[i]);
      r.compressed_us.Record(NowUs() - start);
      candidates += cidx.last_candidates();
      scanned += cidx.last_postings_scanned();
      if (i % 16 == 0 && plain != pruned) ++r.mismatches;
    }
    r.avg_candidates =
        static_cast<double>(candidates) / static_cast<double>(num_queries);
    r.avg_scanned =
        static_cast<double>(scanned) / static_cast<double>(num_queries);

    std::printf(
        "bench_postings: ads=%-8zu build=%.0f/%.0fms topk p50=%.1f/%.1fus "
        "p95=%.1f/%.1fus mem=%.1f/%.1fMB (ratio %.2f) avg_candidates=%.0f "
        "avg_scanned=%.0f\n",
        num_ads, r.build_uncompressed_us / 1000.0,
        r.build_compressed_us / 1000.0, r.uncompressed_us.Quantile(0.50),
        r.compressed_us.Quantile(0.50), r.uncompressed_us.Quantile(0.95),
        r.compressed_us.Quantile(0.95),
        static_cast<double>(r.uncompressed_bytes) / 1048576.0,
        static_cast<double>(r.compressed_bytes) / 1048576.0,
        static_cast<double>(r.compressed_bytes) /
            static_cast<double>(r.uncompressed_bytes),
        r.avg_candidates, r.avg_scanned);

    if (r.mismatches > 0) {
      std::fprintf(stderr,
                   "bench_postings: GATE %zu sampled queries diverged from "
                   "the uncompressed index at ads=%zu\n",
                   r.mismatches, num_ads);
      gate_failed = true;
    }
    results.push_back(std::move(r));
  }

  // --- Self-gates across scales. ---
  for (const ScaleResult& r : results) {
    if (r.num_ads == 10000) {
      const double plain_p95 = r.uncompressed_us.Quantile(0.95);
      const double pruned_p95 = r.compressed_us.Quantile(0.95);
      if (plain_p95 > 0.0 && pruned_p95 > 1.15 * plain_p95) {
        std::fprintf(stderr,
                     "bench_postings: GATE compressed topk p95 %.1fus > "
                     "1.15x uncompressed %.1fus at 10k ads\n",
                     pruned_p95, plain_p95);
        gate_failed = true;
      }
    }
  }
  const ScaleResult& largest = results.back();
  const double mem_ratio = static_cast<double>(largest.compressed_bytes) /
                           static_cast<double>(largest.uncompressed_bytes);
  if (mem_ratio > 0.5) {
    std::fprintf(stderr,
                 "bench_postings: GATE memory ratio %.3f > 0.5 at %zu ads\n",
                 mem_ratio, largest.num_ads);
    gate_failed = true;
  }

  // One machine-readable line for ci_bench_gate.sh.
  adrec::obs::StatsReport report;
  for (const ScaleResult& r : results) {
    const std::string label = "bench.n" + std::to_string(r.num_ads);
    auto add_timer = [&](const std::string& name, const Histogram& h) {
      adrec::obs::TimerStat stat;
      stat.count = h.count();
      stat.mean = h.Mean();
      stat.p50 = h.Quantile(0.50);
      stat.p95 = h.Quantile(0.95);
      stat.p99 = h.Quantile(0.99);
      stat.min = h.min();
      stat.max = h.max();
      report.timers[name] = stat;
    };
    add_timer(label + "_uncompressed_topk_us", r.uncompressed_us);
    add_timer(label + "_compressed_topk_us", r.compressed_us);
    report.gauges[label + "_uncompressed_bytes"] =
        static_cast<double>(r.uncompressed_bytes);
    report.gauges[label + "_compressed_bytes"] =
        static_cast<double>(r.compressed_bytes);
    report.gauges[label + "_memory_ratio"] =
        static_cast<double>(r.compressed_bytes) /
        static_cast<double>(r.uncompressed_bytes);
    report.gauges[label + "_avg_candidates"] = r.avg_candidates;
    report.gauges[label + "_avg_scanned"] = r.avg_scanned;
    report.gauges[label + "_build_compressed_ms"] =
        r.build_compressed_us / 1000.0;
    report.gauges[label + "_build_uncompressed_ms"] =
        r.build_uncompressed_us / 1000.0;
  }
  report.counters["bench.queries_per_scale"] = num_queries;
  report.counters["bench.topics"] = num_topics;
  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());

  return gate_failed ? 1 : 0;
}
