// E19 — "Durability cost of the write-ahead log": what each sync policy
// charges the ingest path, and how recovery time grows with log length.
//
// Three measurements on one synthetic case-study workload:
//
//   1. Raw append throughput per sync policy (no engine): records/s of
//      framed tweet payloads. kGroup uses the daemon's deferred-append +
//      batched-commit pattern (one fdatasync per ~64 records), the other
//      policies use plain Append.
//   2. Per-event ingest latency — engine only (baseline) vs WAL-logged
//      engine per policy, exact quantiles over raw samples. The deferred
//      append is on the event's path; the once-per-batch commit barrier
//      is a shared cost and is reported separately
//      (bench.commit_barrier_us) with its per-event amortization. The
//      acceptance bar: group-commit per-event p95 within 15% of the
//      no-WAL baseline.
//   3. Recovery wall time vs log length: replaying a cold log of N
//      records into a fresh engine via wal::CheckpointManager::Recover.
//   4. Served ingest: an in-process adrecd under closed-loop ingest-only
//      load, with and without --wal-sync=group. The compared metric is
//      the daemon's own per-request ingest timer (serve.cmd_tweet_us):
//      the WAL moves durability to a once-per-batch fdatasync barrier
//      (wal.fsync_us) executed before any reply is released, so the
//      per-request processing cost is what group commit promises to
//      preserve. Client-observed wire latency is reported alongside —
//      it absorbs the shared fsync wait and is expected to carry the
//      full durability price.
//
// Not a google-benchmark binary: the unit of interest is a whole logged
// stream, not a single call, so this is a plain main emitting one
// BENCH_METRICS_JSON line.
//
//   bench_wal [events]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "obs/stats_export.h"
#include "serve/client.h"
#include "serve/server.h"
#include "wal/checkpoint.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace {

using adrec::Histogram;

/// The daemon commits one event-loop batch per fdatasync; 1024
/// approximates a loaded loop's batch (pipelined clients deliver hundreds
/// to thousands of lines per poll wave). The batch size also bounds how
/// many post-fsync cache-cold events pollute the per-event distribution,
/// so the gated per-event comparison stays a measurement of the append
/// path rather than of fsync recovery effects (the barrier itself is
/// reported separately as bench.commit_barrier_us).
constexpr size_t kCommitBatch = 1024;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "adrec_bench_wal" / name)
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Records/s of pure framed appends under `policy` (no engine work).
double AppendThroughput(adrec::wal::SyncPolicy policy,
                        const std::vector<std::string>& payloads) {
  const std::string dir =
      FreshDir(std::string("append_") +
               std::string(adrec::wal::SyncPolicyName(policy)));
  adrec::wal::WalOptions opts;
  opts.sync = policy;
  auto writer = adrec::wal::WalWriter::Open(dir, opts);
  ADREC_CHECK(writer.ok());
  adrec::wal::WalWriter* w = writer.value().get();

  const double start = NowUs();
  if (policy == adrec::wal::SyncPolicy::kGroup) {
    for (size_t i = 0; i < payloads.size(); ++i) {
      ADREC_CHECK(w->AppendDeferred(payloads[i]).ok());
      if ((i + 1) % kCommitBatch == 0) ADREC_CHECK(w->Commit().ok());
    }
    ADREC_CHECK(w->Commit().ok());
  } else {
    for (const std::string& p : payloads) {
      ADREC_CHECK(w->Append(p).ok());
    }
  }
  const double elapsed_us = NowUs() - start;
  std::filesystem::remove_all(dir);
  return static_cast<double>(payloads.size()) / (elapsed_us * 1e-6);
}

struct IngestResult {
  /// Raw per-event latencies (append-deferred + engine apply), for exact
  /// quantiles — the log-bucketed Histogram quantizes ~19% per bucket,
  /// coarser than the 15% bar this section gates on.
  std::vector<double> event_us;
  /// Once-per-batch commit barrier cost (the fdatasync under kGroup).
  Histogram commit_us;
};

/// Streams the trace through a 1-shard engine, optionally write-ahead
/// logging every event under `policy`, recording per-event latency.
/// A null policy pointer means no WAL at all. Payloads are pre-encoded
/// (`payloads`) — the daemon logs the raw request line, so encoding is
/// not on its hot path either.
IngestResult IngestLatency(const adrec::feed::Workload& workload,
                           const std::vector<adrec::feed::FeedEvent>& events,
                           const std::vector<std::string>& payloads,
                           const adrec::wal::SyncPolicy* policy) {
  adrec::core::ShardedEngine engine(workload.kb, workload.slots,
                                    /*num_shards=*/1);
  for (const auto& ad : workload.ads) {
    (void)engine.InsertAd(ad);
  }
  std::unique_ptr<adrec::wal::WalWriter> writer;
  std::string dir;
  if (policy != nullptr) {
    dir = FreshDir(std::string("ingest_") +
                   std::string(adrec::wal::SyncPolicyName(*policy)));
    adrec::wal::WalOptions opts;
    opts.sync = *policy;
    auto opened = adrec::wal::WalWriter::Open(dir, opts);
    ADREC_CHECK(opened.ok());
    writer = std::move(opened).value();
  }

  IngestResult result;
  result.event_us.reserve(events.size());
  size_t in_batch = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    const double start = NowUs();
    if (writer != nullptr) {
      ADREC_CHECK(writer->AppendDeferred(payloads[i]).ok());
    }
    engine.OnEvent(event);
    result.event_us.push_back(NowUs() - start);
    // The barrier fires once per filled batch — where the daemon's event
    // loop pays it before releasing the batch's replies.
    if (writer != nullptr && ++in_batch == kCommitBatch) {
      const double cstart = NowUs();
      ADREC_CHECK(writer->Commit().ok());
      result.commit_us.Record(NowUs() - cstart);
      in_batch = 0;
    }
  }
  if (writer != nullptr) {
    ADREC_CHECK(writer->Commit().ok());
    writer.reset();
    std::filesystem::remove_all(dir);
  }
  return result;
}

/// Exact quantiles over raw samples (sorts its copy of `v`).
adrec::obs::TimerStat ExactStats(std::vector<double> v) {
  adrec::obs::TimerStat s;
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  s.count = v.size();
  s.min = v.front();
  s.max = v.back();
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  auto q = [&](double p) {
    return v[std::min(v.size() - 1,
                      static_cast<size_t>(p * static_cast<double>(v.size())))];
  };
  s.p50 = q(0.50);
  s.p95 = q(0.95);
  s.p99 = q(0.99);
  return s;
}

/// Writes the first `n` events into a cold log, then times a full
/// checkpoint-less recovery into a fresh engine.
double RecoveryUs(const adrec::feed::Workload& workload,
                  const std::vector<adrec::feed::FeedEvent>& events,
                  size_t n) {
  const std::string dir =
      FreshDir(adrec::StringFormat("recover_%zu", n));
  {
    adrec::wal::WalOptions opts;
    opts.sync = adrec::wal::SyncPolicy::kNone;
    auto writer = adrec::wal::WalWriter::Open(dir, opts);
    ADREC_CHECK(writer.ok());
    for (const auto& ad : workload.ads) {
      adrec::feed::FeedEvent put;
      put.kind = adrec::feed::EventKind::kAdInsert;
      put.ad = ad;
      ADREC_CHECK(writer.value()
                      ->Append(adrec::wal::EncodeEventPayload(put))
                      .ok());
    }
    for (size_t i = 0; i < n; ++i) {
      ADREC_CHECK(writer.value()
                      ->Append(adrec::wal::EncodeEventPayload(events[i]))
                      .ok());
    }
  }
  adrec::core::ShardedEngine engine(workload.kb, workload.slots,
                                    /*num_shards=*/1);
  adrec::wal::CheckpointManager manager(dir);
  const double start = NowUs();
  auto recovered = manager.Recover(&engine);
  const double elapsed = NowUs() - start;
  ADREC_CHECK(recovered.ok());
  ADREC_CHECK(recovered.value().live_replayed == n + workload.ads.size());
  std::filesystem::remove_all(dir);
  return elapsed;
}

/// One served closed-loop ingest run (tweets + check-ins over the wire).
/// Returns the daemon's metric view; `wire_us` receives the merged
/// client-side round-trip latencies.
adrec::obs::StatsReport RunServed(const adrec::feed::Workload& workload,
                                  const std::vector<adrec::feed::FeedEvent>&
                                      events,
                                  bool with_wal, size_t connections,
                                  Histogram* wire_us) {
  adrec::core::ShardedEngine engine(workload.kb, workload.slots,
                                    /*num_shards=*/1);
  for (const auto& ad : workload.ads) {
    (void)engine.InsertAd(ad);
  }
  std::unique_ptr<adrec::wal::WalWriter> writer;
  std::string dir;
  adrec::serve::ServerOptions sopts;
  sopts.max_connections = connections + 4;
  if (with_wal) {
    dir = FreshDir("served_group");
    adrec::wal::WalOptions opts;
    opts.sync = adrec::wal::SyncPolicy::kGroup;
    auto opened = adrec::wal::WalWriter::Open(dir, opts);
    ADREC_CHECK(opened.ok());
    writer = std::move(opened).value();
    sopts.wal = writer.get();
  }
  adrec::serve::Server server(&engine, sopts);
  ADREC_CHECK(server.Start().ok());
  std::thread loop([&server] { server.Run(); });

  const size_t per_conn = events.size() / connections;
  std::vector<Histogram> per_client(connections);
  {
    std::vector<std::thread> clients;
    clients.reserve(connections);
    for (size_t c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        adrec::serve::Client client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) return;
        for (size_t i = 0; i < per_conn; ++i) {
          const auto& e = events[c * per_conn + i];
          const double start = NowUs();
          if (e.kind == adrec::feed::EventKind::kCheckIn) {
            (void)client.SendCheckIn(e.check_in);
          } else if (e.kind == adrec::feed::EventKind::kTweet) {
            (void)client.SendTweet(e.tweet);
          } else {
            continue;
          }
          per_client[c].Record(NowUs() - start);
        }
        client.Quit();
      });
    }
    for (auto& t : clients) t.join();
  }
  server.RequestDrain();
  loop.join();
  const adrec::obs::StatsReport report =
      adrec::obs::BuildReport(server.MergedSnapshot());
  for (const auto& h : per_client) wire_us->Merge(h);
  if (with_wal) {
    writer.reset();
    std::filesystem::remove_all(dir);
  }
  return report;
}

void AddTimer(adrec::obs::StatsReport* report, const std::string& name,
              const Histogram& hist) {
  if (hist.count() == 0) return;
  adrec::obs::TimerStat stat;
  stat.count = hist.count();
  stat.mean = hist.Mean();
  stat.p50 = hist.Quantile(0.50);
  stat.p95 = hist.Quantile(0.95);
  stat.p99 = hist.Quantile(0.99);
  stat.min = hist.min();
  stat.max = hist.max();
  report->timers[name] = stat;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t max_events =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 20000;

  adrec::feed::WorkloadOptions wopts = adrec::feed::CaseStudyOptions();
  wopts.days = 14;
  const adrec::feed::Workload workload = adrec::feed::GenerateWorkload(wopts);
  std::vector<adrec::feed::FeedEvent> events = workload.MergedEvents();
  if (events.size() > max_events) events.resize(max_events);

  std::vector<std::string> payloads;
  payloads.reserve(events.size());
  for (const auto& e : events) {
    payloads.push_back(adrec::wal::EncodeEventPayload(e));
  }

  adrec::obs::StatsReport report;
  report.counters["bench.events"] = events.size();
  report.counters["bench.commit_batch"] = kCommitBatch;

  // --- 1. Raw append throughput per policy. ---
  const adrec::wal::SyncPolicy policies[] = {adrec::wal::SyncPolicy::kNone,
                                             adrec::wal::SyncPolicy::kInterval,
                                             adrec::wal::SyncPolicy::kGroup};
  for (const auto policy : policies) {
    const double per_sec = AppendThroughput(policy, payloads);
    const std::string name(adrec::wal::SyncPolicyName(policy));
    report.counters["bench.append_per_sec_" + name] =
        static_cast<uint64_t>(per_sec);
    std::printf("bench_wal: append throughput %-8s %12.0f records/s\n",
                name.c_str(), per_sec);
  }

  // --- 2. Per-event ingest latency: baseline vs per policy. ---
  // One throwaway pass warms the allocator, the page cache and the CPU
  // before anything is measured. The measured passes interleave the
  // configurations over several rounds — a whole pass takes tens of
  // milliseconds, long enough for CPU-frequency and cache drift to skew
  // any back-to-back comparison, so each round pays the drift equally to
  // every configuration and the pooled samples compare cleanly.
  (void)IngestLatency(workload, events, payloads, nullptr);
  constexpr int kLatencyRounds = 5;
  std::vector<double> baseline_round_p95;
  std::vector<double> baseline_us;
  std::map<std::string, std::vector<double>> policy_round_p95;
  std::map<std::string, std::vector<double>> policy_us;
  Histogram commit_us;
  for (int round = 0; round < kLatencyRounds; ++round) {
    IngestResult base = IngestLatency(workload, events, payloads, nullptr);
    baseline_round_p95.push_back(ExactStats(base.event_us).p95);
    baseline_us.insert(baseline_us.end(), base.event_us.begin(),
                       base.event_us.end());
    for (const auto policy : policies) {
      IngestResult r = IngestLatency(workload, events, payloads, &policy);
      const std::string name(adrec::wal::SyncPolicyName(policy));
      policy_round_p95[name].push_back(ExactStats(r.event_us).p95);
      auto& pool = policy_us[name];
      pool.insert(pool.end(), r.event_us.begin(), r.event_us.end());
      if (policy == adrec::wal::SyncPolicy::kGroup) {
        commit_us.Merge(r.commit_us);
      }
    }
  }
  // Gate on the median of the per-round p95s: one drifted round (CPU
  // frequency, writeback) fattens a pooled distribution's tail but
  // leaves the median round untouched.
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  adrec::obs::TimerStat baseline = ExactStats(std::move(baseline_us));
  const double baseline_p95 = median(baseline_round_p95);
  baseline.p95 = baseline_p95;
  report.timers["bench.ingest_nowal_us"] = baseline;
  std::printf("bench_wal: ingest no-wal    p50=%.2fus p95=%.2fus\n",
              baseline.p50, baseline_p95);
  double group_p95 = 0.0;
  for (const auto policy : policies) {
    const std::string name(adrec::wal::SyncPolicyName(policy));
    adrec::obs::TimerStat stat = ExactStats(policy_us[name]);
    stat.p95 = median(policy_round_p95[name]);
    report.timers["bench.ingest_wal_" + name + "_us"] = stat;
    std::printf("bench_wal: ingest wal=%-8s p50=%.2fus p95=%.2fus\n",
                name.c_str(), stat.p50, stat.p95);
    if (policy == adrec::wal::SyncPolicy::kGroup) group_p95 = stat.p95;
  }
  AddTimer(&report, "bench.commit_barrier_us", commit_us);
  std::printf("bench_wal: commit barrier (group): %zu commits, "
              "mean %.1fus, amortized %.2fus/event\n",
              commit_us.count(), commit_us.Mean(),
              commit_us.Mean() * static_cast<double>(commit_us.count()) /
                  static_cast<double>(events.size() * kLatencyRounds));
  const double p95_ratio = baseline_p95 > 0.0 ? group_p95 / baseline_p95 : 0.0;
  std::printf("bench_wal: group-commit per-event p95 / no-wal p95 = %.3f "
              "(bar <1.15)\n",
              p95_ratio);

  // --- 3. Recovery wall time vs log length. ---
  for (const size_t n :
       {events.size() / 4, events.size() / 2, events.size()}) {
    if (n == 0) continue;
    const double us = RecoveryUs(workload, events, n);
    report.counters[adrec::StringFormat("bench.recovery_us.%zu", n)] =
        static_cast<uint64_t>(us);
    std::printf("bench_wal: recovery of %7zu records: %10.0f us\n", n, us);
  }

  // --- 4. Served ingest with and without group-commit WAL. ---
  const size_t connections = 6;
  Histogram wire_nowal, wire_group;
  const adrec::obs::StatsReport served_nowal =
      RunServed(workload, events, /*with_wal=*/false, connections,
                &wire_nowal);
  const adrec::obs::StatsReport served_group =
      RunServed(workload, events, /*with_wal=*/true, connections,
                &wire_group);
  auto served_timer = [](const adrec::obs::StatsReport& r,
                         const char* name) {
    auto it = r.timers.find(name);
    return it == r.timers.end() ? adrec::obs::TimerStat{} : it->second;
  };
  const adrec::obs::TimerStat ingest_nowal =
      served_timer(served_nowal, "serve.cmd_tweet_us");
  const adrec::obs::TimerStat ingest_group =
      served_timer(served_group, "serve.cmd_tweet_us");
  report.timers["bench.served_ingest_nowal_us"] = ingest_nowal;
  report.timers["bench.served_ingest_wal_group_us"] = ingest_group;
  AddTimer(&report, "bench.served_wire_nowal_us", wire_nowal);
  AddTimer(&report, "bench.served_wire_wal_group_us", wire_group);
  const adrec::obs::TimerStat group_fsync =
      served_timer(served_group, "wal.fsync_us");
  report.timers["bench.served_wal_fsync_us"] = group_fsync;
  // wal.append_us is sampled, so count appends by the counter, not the
  // timer.
  auto served_counter = [](const adrec::obs::StatsReport& r,
                           const char* name) -> uint64_t {
    auto it = r.counters.find(name);
    return it == r.counters.end() ? 0 : it->second;
  };
  std::printf("bench_wal: served execute p95 no-wal=%.1fus wal=group=%.1fus; "
              "wire p95 no-wal=%.1fus wal=group=%.1fus "
              "(the wire number carries the shared fsync wait); "
              "%llu fsyncs for %llu appends\n",
              ingest_nowal.p95, ingest_group.p95,
              wire_nowal.Quantile(0.95), wire_group.Quantile(0.95),
              static_cast<unsigned long long>(group_fsync.count),
              static_cast<unsigned long long>(
                  served_counter(served_group, "wal.appends")));

  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());
  return 0;
}
