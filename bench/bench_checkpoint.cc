// E25 — "Bounded-pause incremental checkpoints": what a delta-chain save
// pauses the daemon for, compared to a classic full snapshot, and what
// delta-chain recovery costs over a compacted log.
//
// Three measurements on one synthetic case-study workload, streamed into
// an 8-shard engine behind a WAL (steady state: a large accumulated
// state, a small churn between checkpoints — the regime delta
// checkpoints exist for; the churn is confined to one user, hence one
// shard, so the other shards carry over by reference):
//
//   1. Save pause, full vs delta, at increasing engine sizes: the wall
//      time of CheckpointManager::Checkpoint after a fixed churn batch.
//      The delta save serializes only dirty shards (mutation-epoch
//      hints) and persists only content-hash-changed files.
//      Self-gate: at the largest benched size, the median delta pause
//      must be <= 0.25x the median full pause.
//   2. Recovery wall time: a log checkpointed three times in delta mode
//      (rebase + two chained deltas) with its sealed tail offline-
//      compacted, recovered into a fresh engine — against the same
//      stream checkpointed once in full mode at the same final mark.
//      Self-gate: delta-chain recovery <= 1.25x full recovery.
//   3. Compaction accounting for the recovery log: segments/records/
//      bytes before and after CompactLogDir, reported as counters.
//
// Not a google-benchmark binary: the unit of interest is a whole save /
// recovery cycle, so this is a plain main emitting one
// BENCH_METRICS_JSON line. Exits non-zero when a self-gate fails.
//
//   bench_checkpoint [events] [churn-events]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "obs/stats_export.h"
#include "wal/checkpoint.h"
#include "wal/delta/compactor.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace {

constexpr size_t kShards = 8;
// 10 rounds per measurement: bench_diff skips timers with fewer than 10
// samples, and the save/recovery timers are exactly what the gate is for.
constexpr int kRounds = 10;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "adrec_bench_ckpt" / name)
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

double Median(std::vector<double> v) {
  ADREC_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

adrec::obs::TimerStat Stats(std::vector<double> v) {
  adrec::obs::TimerStat s;
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  s.count = v.size();
  s.min = v.front();
  s.max = v.back();
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  s.p50 = v[v.size() / 2];
  s.p95 = v[std::min(v.size() - 1, v.size() * 95 / 100)];
  s.p99 = v[std::min(v.size() - 1, v.size() * 99 / 100)];
  return s;
}

/// Feeds one event into engine + log.
void Feed(adrec::core::ShardedEngine* engine, adrec::wal::WalWriter* w,
          const adrec::feed::FeedEvent& ev) {
  ADREC_CHECK(w->Append(adrec::wal::EncodeEventPayload(ev)).ok());
  engine->OnEvent(ev);
}

/// A churn batch confined to one user (one shard): the steady-state
/// trickle between checkpoints. Time advances past `*clock` so the
/// stream stays monotonic.
std::vector<adrec::feed::FeedEvent> ChurnBatch(
    const adrec::feed::Workload& workload, size_t count,
    adrec::Timestamp* clock) {
  adrec::feed::FeedEvent churn_template;
  churn_template.kind = adrec::feed::EventKind::kTweet;
  churn_template.tweet = workload.tweets.front();
  std::vector<adrec::feed::FeedEvent> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    adrec::feed::FeedEvent ev = churn_template;
    ev.time = ++*clock;
    ev.tweet.time = ev.time;
    batch.push_back(ev);
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t max_events =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 20000;
  const size_t churn_events =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 400;

  adrec::feed::WorkloadOptions wopts = adrec::feed::CaseStudyOptions();
  wopts.days = 14;
  const adrec::feed::Workload workload = adrec::feed::GenerateWorkload(wopts);
  std::vector<adrec::feed::FeedEvent> events = workload.MergedEvents();
  if (events.size() > max_events) events.resize(max_events);
  ADREC_CHECK(!events.empty());

  adrec::obs::StatsReport report;
  report.counters["bench.events"] = events.size();
  report.counters["bench.churn_events"] = churn_events;
  report.counters["bench.shards"] = kShards;
  bool gates_ok = true;

  // --- 1. Save pause, full vs delta, at increasing engine sizes. ---
  double full_med_largest = 0.0;
  double delta_med_largest = 0.0;
  for (const size_t n :
       {events.size() / 4, events.size() / 2, events.size()}) {
    if (n == 0) continue;
    const std::string dir = FreshDir(adrec::StringFormat("pause_%zu", n));
    adrec::wal::WalOptions lopts;
    lopts.sync = adrec::wal::SyncPolicy::kNone;
    auto writer = adrec::wal::WalWriter::Open(dir, lopts);
    ADREC_CHECK(writer.ok());
    adrec::wal::WalWriter* w = writer.value().get();
    adrec::core::ShardedEngine engine(workload.kb, workload.slots, kShards);
    for (const auto& ad : workload.ads) {
      adrec::feed::FeedEvent put;
      put.kind = adrec::feed::EventKind::kAdInsert;
      put.ad = ad;
      Feed(&engine, w, put);
    }
    adrec::Timestamp clock = 0;
    for (size_t i = 0; i < n; ++i) {
      Feed(&engine, w, events[i]);
      clock = std::max(clock, events[i].time);
    }

    adrec::wal::CheckpointOptions full_opts;  // mode = kFull
    adrec::wal::CheckpointManager full_mgr(dir, full_opts);
    adrec::wal::CheckpointOptions delta_opts;
    delta_opts.mode = adrec::wal::CheckpointMode::kDelta;
    delta_opts.rebase_every = 1000;  // the bench times steady-state deltas
    adrec::wal::CheckpointManager delta_mgr(dir, delta_opts);

    // Warm both paths: the full save pages everything in, the first
    // delta save is the (full-cost) rebase generation.
    ADREC_CHECK(full_mgr.Checkpoint(engine, w, clock).ok());
    ADREC_CHECK(delta_mgr.Checkpoint(engine, w, clock).ok());

    std::vector<double> full_us, delta_us;
    for (int round = 0; round < kRounds; ++round) {
      for (const auto& ev : ChurnBatch(workload, churn_events, &clock)) {
        Feed(&engine, w, ev);
      }
      double start = NowUs();
      ADREC_CHECK(full_mgr.Checkpoint(engine, w, clock).ok());
      full_us.push_back(NowUs() - start);

      for (const auto& ev : ChurnBatch(workload, churn_events, &clock)) {
        Feed(&engine, w, ev);
      }
      start = NowUs();
      ADREC_CHECK(delta_mgr.Checkpoint(engine, w, clock).ok());
      delta_us.push_back(NowUs() - start);
    }
    const double full_med = Median(full_us);
    const double delta_med = Median(delta_us);
    report.timers[adrec::StringFormat("bench.ckpt_full_save_us.%zu", n)] =
        Stats(full_us);
    report.timers[adrec::StringFormat("bench.ckpt_delta_save_us.%zu", n)] =
        Stats(delta_us);
    std::printf("bench_checkpoint: save pause n=%-7zu full=%9.0fus "
                "delta=%9.0fus ratio=%.3f\n",
                n, full_med, delta_med,
                full_med > 0.0 ? delta_med / full_med : 0.0);
    if (n == events.size()) {
      full_med_largest = full_med;
      delta_med_largest = delta_med;
    }
    std::filesystem::remove_all(dir);
  }
  const double pause_ratio = full_med_largest > 0.0
                                 ? delta_med_largest / full_med_largest
                                 : 1.0;
  std::printf("bench_checkpoint: delta pause / full pause at largest size "
              "= %.3f (bar <=0.25)\n",
              pause_ratio);
  report.counters["bench.pause_ratio_x1000"] =
      static_cast<uint64_t>(pause_ratio * 1000.0);
  if (pause_ratio > 0.25) {
    std::printf("bench_checkpoint: GATE FAILED: delta save pause %.0fus "
                "exceeds 0.25x of full save pause %.0fus\n",
                delta_med_largest, full_med_largest);
    gates_ok = false;
  }

  // --- 2. Recovery: delta chain + compacted tail vs one full save. ---
  // The same stream twice (with ad churn mixed in so compaction has
  // superseded records to drop): three delta checkpoints building a
  // rebase + two chained deltas, tail compacted offline — against one
  // full checkpoint at the same final mark, tail left as written.
  std::vector<adrec::feed::FeedEvent> rec_events;
  rec_events.reserve(events.size() + events.size() / 16);
  for (size_t i = 0; i < events.size(); ++i) {
    rec_events.push_back(events[i]);
    if (i % 16 != 0) continue;
    // Interleaved (not appended) so the superseded puts land in sealed
    // segments compaction may rewrite, not in the excluded newest one.
    adrec::feed::FeedEvent put;
    put.kind = adrec::feed::EventKind::kAdInsert;
    put.ad = workload.ads.front();
    put.ad.id = adrec::AdId(90000 + static_cast<uint32_t>(i % 4));
    put.ad.bid = 1.0 + static_cast<double>(i);
    put.time = events[i].time;
    rec_events.push_back(put);
  }
  const size_t marks[] = {rec_events.size() / 4, rec_events.size() / 2,
                          rec_events.size() * 3 / 4};
  const std::string delta_dir = FreshDir("recover_delta");
  const std::string full_dir = FreshDir("recover_full");
  for (const bool delta_mode : {true, false}) {
    const std::string& dir = delta_mode ? delta_dir : full_dir;
    adrec::wal::WalOptions lopts;
    lopts.sync = adrec::wal::SyncPolicy::kNone;
    lopts.segment_bytes = 256 * 1024;  // several sealed segments
    auto writer = adrec::wal::WalWriter::Open(dir, lopts);
    ADREC_CHECK(writer.ok());
    adrec::wal::WalWriter* w = writer.value().get();
    adrec::core::ShardedEngine engine(workload.kb, workload.slots, kShards);
    adrec::wal::CheckpointOptions copts;
    copts.mode = delta_mode ? adrec::wal::CheckpointMode::kDelta
                            : adrec::wal::CheckpointMode::kFull;
    copts.rebase_every = 8;  // mark 1 rebases, marks 2 and 3 chain
    adrec::wal::CheckpointManager manager(dir, copts);
    for (const auto& ad : workload.ads) {
      adrec::feed::FeedEvent put;
      put.kind = adrec::feed::EventKind::kAdInsert;
      put.ad = ad;
      Feed(&engine, w, put);
    }
    for (size_t i = 0; i < rec_events.size(); ++i) {
      Feed(&engine, w, rec_events[i]);
      if (delta_mode && (i == marks[0] || i == marks[1] || i == marks[2])) {
        ADREC_CHECK(manager.Checkpoint(engine, w, rec_events[i].time).ok());
      }
      if (!delta_mode && i == marks[2]) {
        ADREC_CHECK(manager.Checkpoint(engine, w, rec_events[i].time).ok());
      }
    }
  }  // both daemons die

  auto compact = adrec::wal::delta::CompactLogDir(delta_dir, {});
  ADREC_CHECK(compact.ok());
  report.counters["bench.compact_segments_in"] = compact.value().segments_in;
  report.counters["bench.compact_segments_out"] =
      compact.value().segments_out;
  report.counters["bench.compact_records_dropped"] =
      compact.value().records_dropped;
  report.counters["bench.compact_bytes_reclaimed"] =
      compact.value().bytes_in - compact.value().bytes_out;
  std::printf("bench_checkpoint: compaction %zu -> %zu segments, dropped "
              "%llu records, reclaimed %llu bytes\n",
              compact.value().segments_in, compact.value().segments_out,
              static_cast<unsigned long long>(
                  compact.value().records_dropped),
              static_cast<unsigned long long>(compact.value().bytes_in -
                                              compact.value().bytes_out));

  std::vector<double> delta_rec_us, full_rec_us;
  size_t delta_chain_len = 0;
  for (int round = 0; round < kRounds; ++round) {
    {
      adrec::core::ShardedEngine engine(workload.kb, workload.slots,
                                        kShards);
      adrec::wal::CheckpointOptions copts;
      copts.mode = adrec::wal::CheckpointMode::kDelta;
      adrec::wal::CheckpointManager manager(delta_dir, copts);
      const double start = NowUs();
      auto r = manager.Recover(&engine);
      delta_rec_us.push_back(NowUs() - start);
      ADREC_CHECK(r.ok());
      ADREC_CHECK(r.value().from_delta);
      delta_chain_len = r.value().delta_chain_len;
    }
    {
      adrec::core::ShardedEngine engine(workload.kb, workload.slots,
                                        kShards);
      adrec::wal::CheckpointManager manager(full_dir);
      const double start = NowUs();
      auto r = manager.Recover(&engine);
      full_rec_us.push_back(NowUs() - start);
      ADREC_CHECK(r.ok());
      ADREC_CHECK(r.value().from_checkpoint && !r.value().from_delta);
    }
  }
  const double delta_rec_med = Median(delta_rec_us);
  const double full_rec_med = Median(full_rec_us);
  report.timers["bench.recover_delta_chain_us"] = Stats(delta_rec_us);
  report.timers["bench.recover_full_us"] = Stats(full_rec_us);
  report.counters["bench.recover_delta_chain_len"] = delta_chain_len;
  const double rec_ratio =
      full_rec_med > 0.0 ? delta_rec_med / full_rec_med : 1.0;
  std::printf("bench_checkpoint: recovery full=%9.0fus delta-chain(len=%zu)+"
              "compacted=%9.0fus ratio=%.3f (bar <=1.25)\n",
              full_rec_med, delta_chain_len, delta_rec_med, rec_ratio);
  report.counters["bench.recovery_ratio_x1000"] =
      static_cast<uint64_t>(rec_ratio * 1000.0);
  if (rec_ratio > 1.25) {
    std::printf("bench_checkpoint: GATE FAILED: delta-chain recovery "
                "%.0fus exceeds 1.25x of full recovery %.0fus\n",
                delta_rec_med, full_rec_med);
    gates_ok = false;
  }
  std::filesystem::remove_all(delta_dir);
  std::filesystem::remove_all(full_dir);

  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());
  return gates_ok ? 0 : 1;
}
