// E5 — "Triadic concept mining cost": TRIAS vs. the naive enumerate-and-
// deduplicate baseline on random triadic contexts of growing size, plus
// the concept counts (total and m-triadic). Expected shape: both
// algorithms return identical concept sets; TRIAS's extent-equality
// pruning makes it strictly cheaper, with the gap widening on larger and
// denser contexts.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "fca/triadic_context.h"

namespace {

adrec::fca::TriadicContext RandomContext(size_t g, size_t m, size_t b,
                                         double density, uint64_t seed) {
  adrec::Rng rng(seed);
  adrec::fca::TriadicContext ctx(g, m, b);
  for (size_t i = 0; i < g; ++i)
    for (size_t j = 0; j < m; ++j)
      for (size_t k = 0; k < b; ++k)
        if (rng.NextBool(density)) ctx.Set(i, j, k);
  return ctx;
}

void BM_Trias(benchmark::State& state) {
  const auto ctx = RandomContext(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)),
                                 static_cast<size_t>(state.range(2)), 0.25,
                                 42);
  size_t concepts = 0;
  for (auto _ : state) {
    auto mined = adrec::fca::MineTriConcepts(ctx);
    benchmark::DoNotOptimize(mined);
    concepts = mined.ok() ? mined.value().size() : 0;
  }
  state.counters["concepts"] = static_cast<double>(concepts);
}

void BM_Naive(benchmark::State& state) {
  const auto ctx = RandomContext(static_cast<size_t>(state.range(0)),
                                 static_cast<size_t>(state.range(1)),
                                 static_cast<size_t>(state.range(2)), 0.25,
                                 42);
  for (auto _ : state) {
    auto mined = adrec::fca::MineTriConceptsNaive(ctx);
    benchmark::DoNotOptimize(mined);
  }
}

void ConceptCountTable() {
  adrec::TableWriter table(
      "E5b: concept counts (density 0.25, seed 42)",
      {"context (GxMxB)", "triconcepts", "m-triadic (attr 0)"});
  struct Dim {
    size_t g, m, b;
  };
  for (const Dim& d : {Dim{8, 4, 3}, Dim{16, 6, 4}, Dim{32, 8, 6},
                       Dim{64, 16, 8}}) {
    const auto ctx = RandomContext(d.g, d.m, d.b, 0.25, 42);
    auto mined = adrec::fca::MineTriConcepts(ctx);
    if (!mined.ok()) continue;
    const auto m0 = adrec::fca::FilterMConcepts(mined.value(), 0);
    table.AddRow({adrec::StringFormat("%zux%zux%zu", d.g, d.m, d.b),
                  adrec::StringFormat("%zu", mined.value().size()),
                  adrec::StringFormat("%zu", m0.size())});
  }
  table.Print();
}

}  // namespace

BENCHMARK(BM_Trias)
    ->Args({8, 4, 3})
    ->Args({16, 6, 4})
    ->Args({32, 8, 6})
    ->Args({64, 16, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Naive)
    ->Args({8, 4, 3})
    ->Args({16, 6, 4})
    ->Args({32, 8, 6})
    ->Args({64, 16, 8})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ConceptCountTable();
  return 0;
}
