// E14 — "Online serving simulation": replays the feed and serves one ad
// per tweet under different serving policies, scoring clicks with the
// ground-truth click model. Expected shape: the context-aware engine
// (annotated tweet + profile + location/slot filters) earns the highest
// CTR; a topical-but-context-free policy sits in the middle; random and
// round-robin serving bound the floor. This is the end-to-end business
// metric the offline F-score experiments proxy.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "eval/ab_test.h"
#include "eval/click_model.h"
#include "eval/experiment.h"

int main() {
  adrec::feed::WorkloadOptions opts = adrec::feed::CaseStudyOptions();
  opts.seed = 60601;
  opts.num_ads = 8;
  adrec::eval::ExperimentSetup setup = adrec::eval::BuildExperiment(opts);
  const std::vector<adrec::feed::Tweet>& feed = setup.workload.tweets;

  adrec::TableWriter table(
      "E14: online CTR by serving policy (one ad per tweet)",
      {"policy", "impressions", "clicks", "ctr"});

  std::vector<std::pair<std::string, adrec::eval::ArmStats>> arms;
  auto run_policy = [&](const char* name, auto&& pick_ad) {
    adrec::eval::ClickModel clicks(&setup.workload);
    adrec::eval::ArmStats arm;
    for (const adrec::feed::Tweet& t : feed) {
      const int ad_index = pick_ad(t);
      if (ad_index < 0) continue;
      ++arm.impressions;
      if (clicks.SampleClick(t.user, static_cast<size_t>(ad_index), t.time)) {
        ++arm.clicks;
      }
    }
    table.AddRow({name, adrec::StringFormat("%zu", arm.impressions),
                  adrec::StringFormat("%zu", arm.clicks),
                  adrec::StringFormat("%.4f", arm.Ctr())});
    arms.emplace_back(name, arm);
  };

  // Policy 1: the engine's context-aware top-1 (uses tweet annotations,
  // decayed profile, current location and slot).
  run_policy("context-aware engine", [&](const adrec::feed::Tweet& t) {
    auto ads = setup.engine->TopKAdsForTweetExhaustive(t, 1);
    return ads.empty() ? -1 : static_cast<int>(ads[0].ad.value);
  });

  // Policy 2: topical-only — best ad by tweet-annotation dot product,
  // ignoring profile, location and slot.
  run_policy("topical only", [&](const adrec::feed::Tweet& t) {
    std::vector<adrec::text::SparseEntry> entries;
    for (const auto& a :
         setup.engine->semantic().annotator().Annotate(t.text)) {
      entries.push_back({a.topic.value, a.score});
    }
    const adrec::text::SparseVector v =
        adrec::text::SparseVector::FromUnsorted(std::move(entries));
    int best = -1;
    double best_score = 0.0;
    for (size_t a = 0; a < setup.workload.ads.size(); ++a) {
      const auto* stored =
          setup.engine->ad_store().Find(setup.workload.ads[a].id);
      if (stored == nullptr) continue;
      const double s = v.Dot(stored->topics);
      if (s > best_score) {
        best_score = s;
        best = static_cast<int>(a);
      }
    }
    return best;
  });

  // Policy 3: round-robin over the inventory.
  {
    size_t next = 0;
    run_policy("round-robin", [&](const adrec::feed::Tweet&) {
      return static_cast<int>(next++ % setup.workload.ads.size());
    });
  }

  // Policy 4: uniform random.
  {
    adrec::Rng rng(5);
    run_policy("random", [&](const adrec::feed::Tweet&) {
      return static_cast<int>(rng.NextBounded(setup.workload.ads.size()));
    });
  }

  table.Print();

  // Significance of the context-aware engine's CTR lift over each
  // baseline (two-proportion z-test).
  adrec::TableWriter sig("E14b: CTR lift of context-aware vs baselines",
                         {"baseline", "lift", "z", "p", "significant@95%"});
  for (size_t i = 1; i < arms.size(); ++i) {
    const adrec::eval::AbResult r =
        adrec::eval::TwoProportionZTest(arms[i].second, arms[0].second);
    sig.AddRow({arms[i].first, adrec::StringFormat("%+.1f%%", 100.0 * r.lift),
                adrec::StringFormat("%.2f", r.z),
                adrec::StringFormat("%.4f", r.p_value),
                r.significant_95 ? "yes" : "no"});
  }
  sig.Print();
  return 0;
}
