// E1 + E2 — "F-score vs membership threshold α" in the two daytime slots
// (the reconstruction of the evaluation's two headline figures).
//
// Slot 1 = [05:00, 13:00), slot 2 = [13:00, 20:00). The generator gives
// slot 2 twice the posting intensity, so its curve should dominate — the
// effect the source evaluation attributes to the richer afternoon stream.
// Expected shape: low α is recall-rich but imprecise, high α starves the
// topic context; the best F-band sits at mid-range α.

#include <cstdio>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "eval/experiment.h"

int main() {
  adrec::feed::WorkloadOptions opts = adrec::feed::CaseStudyOptions();
  opts.seed = 424242;
  adrec::eval::ExperimentSetup setup = adrec::eval::BuildExperiment(opts);
  adrec::eval::GroundTruthOracle oracle(&setup.workload);

  std::vector<double> alphas;
  for (int i = 0; i <= 20; ++i) alphas.push_back(0.05 * i);

  adrec::TableWriter table(
      "E1/E2: F-score vs alpha (triadic model, case-study workload)",
      {"alpha", "slot1_P", "slot1_R", "slot1_F", "slot2_P", "slot2_R",
       "slot2_F"});

  auto slot1 = adrec::eval::RunAlphaSweep(setup, oracle, adrec::SlotId(1),
                                          alphas);
  auto slot2 = adrec::eval::RunAlphaSweep(setup, oracle, adrec::SlotId(2),
                                          alphas);
  double best_f1 = 0, best_a1 = 0, best_f2 = 0, best_a2 = 0;
  for (size_t i = 0; i < alphas.size(); ++i) {
    table.AddRow({adrec::StringFormat("%.2f", alphas[i]),
                  adrec::StringFormat("%.3f", slot1[i].prf.precision),
                  adrec::StringFormat("%.3f", slot1[i].prf.recall),
                  adrec::StringFormat("%.3f", slot1[i].prf.f_score),
                  adrec::StringFormat("%.3f", slot2[i].prf.precision),
                  adrec::StringFormat("%.3f", slot2[i].prf.recall),
                  adrec::StringFormat("%.3f", slot2[i].prf.f_score)});
    if (slot1[i].prf.f_score > best_f1) {
      best_f1 = slot1[i].prf.f_score;
      best_a1 = alphas[i];
    }
    if (slot2[i].prf.f_score > best_f2) {
      best_f2 = slot2[i].prf.f_score;
      best_a2 = alphas[i];
    }
  }
  table.Print();
  std::printf("\nBest slot1 F=%.3f at alpha=%.2f; best slot2 F=%.3f at "
              "alpha=%.2f\n",
              best_f1, best_a1, best_f2, best_a2);
  std::printf("Shape check: slot2 (higher tweet intensity) best-F %s "
              "slot1 best-F.\n",
              best_f2 >= best_f1 ? ">=" : "<");
  return 0;
}
