// E15 — "User-sharded analysis cost": triadic concept mining is
// superlinear in the user population (E11), so hash-partitioning users
// across independent shards cuts total analysis work even before any
// parallel hardware is applied; threads then overlap the shards.
// Expected shape: total analysis time drops sharply with shard count
// (superlinearity dividend), while ingest throughput stays flat; match
// quality stays close to the unsharded engine (shard-local communities).

#include <chrono>
#include <cstdio>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/sharded_engine.h"
#include "eval/experiment.h"
#include "obs/stats_export.h"

int main() {
  adrec::feed::WorkloadOptions opts;
  opts.seed = 909;
  opts.num_users = 120;
  opts.num_places = 29;
  opts.num_ads = 5;
  opts.days = 14;
  const adrec::feed::Workload workload = adrec::feed::GenerateWorkload(opts);
  const auto events = workload.MergedEvents();
  adrec::eval::GroundTruthOracle oracle(&workload);

  adrec::TableWriter table(
      "E15: sharded triadic analysis (120 users, 14-day trace)",
      {"shards", "ingest_ms", "analyze_ms", "macroF"});
  adrec::obs::MetricRegistry bench_metrics;

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    adrec::core::ShardedEngine engine(workload.kb, workload.slots, shards);
    for (const auto& ad : workload.ads) (void)engine.InsertAd(ad);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& e : events) engine.OnEvent(e);
    const auto t1 = std::chrono::steady_clock::now();
    if (!engine.RunAnalysis(0.5).ok()) return 1;
    const auto t2 = std::chrono::steady_clock::now();

    // Quality: macro-F over targeted (ad, slot) pairs via the sharded
    // match.
    std::vector<adrec::eval::Prf> per_pair;
    for (uint32_t s : {1u, 2u}) {
      const adrec::SlotId slot(s);
      for (size_t a = 0; a < workload.ads.size(); ++a) {
        const auto& targets = workload.ads[a].target_slots;
        if (!targets.empty() && std::find(targets.begin(), targets.end(),
                                          slot) == targets.end()) {
          continue;
        }
        // Use each shard engine's semantic processor (identical KB).
        adrec::core::AdContext ctx =
            engine.shard(0).semantic().ProcessAd(workload.ads[a]);
        ctx.slots = {slot};
        std::vector<adrec::UserId> predicted;
        for (size_t sh = 0; sh < engine.num_shards(); ++sh) {
          for (const auto& mu :
               adrec::core::MatchAd(engine.shard(sh).analysis(), ctx,
                                    adrec::core::MatchOptions{})
                   .users) {
            predicted.push_back(mu.user);
          }
        }
        per_pair.push_back(adrec::eval::ComputePrf(
            predicted, oracle.RelevantUsers(a, slot)));
      }
    }
    const adrec::eval::Prf prf = adrec::eval::MacroAverage(per_pair);

    // Fold this configuration's merged per-shard engine view into the
    // bench registry (one gauge/timer set per shard count).
    const adrec::core::EngineStats es = engine.Stats();
    const std::string prefix = adrec::StringFormat("shards%zu.", shards);
    bench_metrics.GetGauge(prefix + "events")
        ->Set(static_cast<double>(es.tweets + es.checkins));
    bench_metrics.GetGauge(prefix + "analysis_ms_total")
        ->Set(es.analysis_ms.sum());
    bench_metrics.GetGauge(prefix + "topic_triconcepts")
        ->Set(static_cast<double>(es.topic_triconcepts));
    bench_metrics.GetGauge(prefix + "ingest_ms")
        ->Set(std::chrono::duration<double, std::milli>(t1 - t0).count());
    bench_metrics.GetGauge(prefix + "macro_f")->Set(prf.f_score);

    table.AddRow(
        {adrec::StringFormat("%zu", shards),
         adrec::StringFormat(
             "%.1f", std::chrono::duration<double, std::milli>(t1 - t0)
                         .count()),
         adrec::StringFormat(
             "%.1f", std::chrono::duration<double, std::milli>(t2 - t1)
                         .count()),
         adrec::StringFormat("%.3f", prf.f_score)});
  }
  table.Print();
  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(
                  adrec::obs::BuildReport(bench_metrics.Snapshot()))
                  .c_str());
  return 0;
}
