// E3 — "Feed-processing throughput vs. ad-inventory size": the headline
// high-speed claim. Compares the TA-based inverted index against the
// exhaustive scorer as the number of live ads grows. Expected shape: the
// indexed matcher's cost grows sub-linearly (it touches a bounded prefix
// of the impact-ordered lists), the scan grows linearly, so the gap
// widens with inventory size.

// Additionally measures the cost of the obs instrumentation itself:
// BM_EngineTopK_Instrumented vs BM_EngineTopK_Bare run the identical
// engine hot path with stage timing on/off; the relative delta is the
// instrumentation overhead recorded in EXPERIMENTS.md. The run ends by
// emitting a BENCH_METRICS_JSON line (obs JSON exporter) with the
// instrumented engine's own per-stage view.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/random.h"
#include "eval/experiment.h"
#include "index/ad_index.h"
#include "index/wand_index.h"
#include "obs/stats_export.h"

namespace {

using adrec::Rng;
using adrec::index::AdIndex;
using adrec::index::AdQuery;

constexpr size_t kNumTopics = 500;

/// Builds an index with `n` synthetic ads (Zipf-popular topics, 1-4 topics
/// per ad) and returns it with a pool of realistic queries.
struct Fixture {
  AdIndex index;
  adrec::index::WandIndex wand;
  std::vector<AdQuery> queries;
};

Fixture BuildFixture(size_t num_ads) {
  Fixture f;
  Rng rng(7777);
  adrec::ZipfSampler topic_zipf(kNumTopics, 1.0);
  for (uint32_t i = 0; i < num_ads; ++i) {
    std::vector<adrec::text::SparseEntry> entries;
    const size_t nnz = 1 + rng.NextBounded(4);
    for (size_t j = 0; j < nnz; ++j) {
      entries.push_back({static_cast<uint32_t>(topic_zipf.Sample(rng)),
                         0.2 + 0.8 * rng.NextDouble()});
    }
    std::vector<adrec::LocationId> locs;
    if (rng.NextBool(0.5)) {
      locs.push_back(adrec::LocationId(
          static_cast<uint32_t>(rng.NextBounded(29))));
    }
    std::vector<adrec::SlotId> slots;
    if (rng.NextBool(0.5)) {
      slots.push_back(
          adrec::SlotId(1 + static_cast<uint32_t>(rng.NextBounded(2))));
    }
    const adrec::text::SparseVector topics =
        adrec::text::SparseVector::FromUnsorted(entries);
    const double bid = 0.5 + rng.NextDouble();
    benchmark::DoNotOptimize(
        f.index.Insert(adrec::AdId(i), topics, locs, slots, bid));
    benchmark::DoNotOptimize(
        f.wand.Insert(adrec::AdId(i), topics, locs, slots, bid));
  }
  for (int q = 0; q < 64; ++q) {
    AdQuery query;
    std::vector<adrec::text::SparseEntry> entries;
    const size_t nnz = 1 + rng.NextBounded(3);
    for (size_t j = 0; j < nnz; ++j) {
      entries.push_back({static_cast<uint32_t>(topic_zipf.Sample(rng)),
                         0.2 + 0.8 * rng.NextDouble()});
    }
    query.topics = adrec::text::SparseVector::FromUnsorted(entries);
    query.k = 10;
    query.location =
        adrec::LocationId(static_cast<uint32_t>(rng.NextBounded(29)));
    query.slot = adrec::SlotId(1 + static_cast<uint32_t>(rng.NextBounded(2)));
    f.queries.push_back(std::move(query));
  }
  return f;
}

void BM_IndexedTopK(benchmark::State& state) {
  Fixture f = BuildFixture(static_cast<size_t>(state.range(0)));
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.index.TopK(f.queries[q++ % f.queries.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_WandTopK(benchmark::State& state) {
  Fixture f = BuildFixture(static_cast<size_t>(state.range(0)));
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.wand.TopK(f.queries[q++ % f.queries.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_ExhaustiveTopK(benchmark::State& state) {
  Fixture f = BuildFixture(static_cast<size_t>(state.range(0)));
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.index.TopKExhaustive(f.queries[q++ % f.queries.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

/// A small but full engine (annotation + profiles + index) whose tweets
/// are replayed as the live feed — the end-to-end hot path the
/// instrumentation sits on.
adrec::eval::ExperimentSetup BuildEngineFixture(bool collect_timings) {
  adrec::feed::WorkloadOptions opts;
  opts.seed = 4242;
  opts.num_users = 40;
  opts.num_ads = 30;
  opts.days = 7;
  adrec::core::EngineOptions engine_opts;
  engine_opts.collect_stage_timings = collect_timings;
  return adrec::eval::BuildExperiment(opts, engine_opts);
}

void RunEngineTopK(benchmark::State& state, bool collect_timings) {
  adrec::eval::ExperimentSetup setup = BuildEngineFixture(collect_timings);
  const auto& tweets = setup.workload.tweets;
  size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        setup.engine->TopKAdsForTweet(tweets[t++ % tweets.size()], 5));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_EngineTopK_Instrumented(benchmark::State& state) {
  RunEngineTopK(state, /*collect_timings=*/true);
}

void BM_EngineTopK_Bare(benchmark::State& state) {
  RunEngineTopK(state, /*collect_timings=*/false);
}

/// Replays the fixture once with full instrumentation and prints the
/// engine's metric report as one machine-readable line.
void EmitMetricsBlob() {
  adrec::eval::ExperimentSetup setup = BuildEngineFixture(true);
  for (const auto& tweet : setup.workload.tweets) {
    benchmark::DoNotOptimize(setup.engine->TopKAdsForTweet(tweet, 5));
  }
  const adrec::obs::StatsReport report =
      adrec::obs::BuildReport(setup.engine->metrics().Snapshot());
  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());
}

}  // namespace

BENCHMARK(BM_IndexedTopK)->Arg(1000)->Arg(5000)->Arg(20000)->Arg(50000);
BENCHMARK(BM_WandTopK)->Arg(1000)->Arg(5000)->Arg(20000)->Arg(50000);
BENCHMARK(BM_ExhaustiveTopK)->Arg(1000)->Arg(5000)->Arg(20000)->Arg(50000);
BENCHMARK(BM_EngineTopK_Instrumented);
BENCHMARK(BM_EngineTopK_Bare);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  EmitMetricsBlob();
  return 0;
}
