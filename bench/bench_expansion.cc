// E13 — "Audience expansion via topic association rules": closing each
// ad's topic set under co-interest rules mined from the window's
// (users × topics) context before matching.
//
// Expected shape (and what we measure): expansion is a recall/precision
// *dial*. In micro terms (aggregated hits/predicted/relevant, the
// monotone view) loosening the rule confidence can only grow recall and
// can only shrink precision; whether macro F improves depends on whether
// individual users' interests are genuinely correlated. With strict
// rules expansion stays neutral; with loose rules it floods the match —
// which is why it ships off by default and as an explicit knob.

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/recommender.h"
#include "eval/experiment.h"

namespace {

struct MicroMacro {
  adrec::eval::Prf macro;
  size_t hits = 0, predicted = 0, relevant = 0;

  double MicroP() const {
    return predicted == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(predicted);
  }
  double MicroR() const {
    return relevant == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(relevant);
  }
};

MicroMacro Evaluate(adrec::eval::ExperimentSetup& setup,
                    const adrec::eval::GroundTruthOracle& oracle,
                    const adrec::core::ExpandOptions* expand) {
  std::vector<adrec::eval::Prf> per_pair;
  MicroMacro out;
  for (uint32_t s : {1u, 2u}) {
    const adrec::SlotId slot(s);
    for (size_t a = 0; a < setup.workload.ads.size(); ++a) {
      const auto& targets = setup.workload.ads[a].target_slots;
      if (!targets.empty() &&
          std::find(targets.begin(), targets.end(), slot) == targets.end()) {
        continue;
      }
      adrec::core::AdContext ctx =
          setup.engine->semantic().ProcessAd(setup.workload.ads[a]);
      ctx.slots = {slot};
      if (expand != nullptr) {
        ctx = adrec::core::ExpandAdTopics(setup.engine->analysis(), ctx,
                                          *expand);
      }
      std::vector<adrec::UserId> predicted;
      for (const auto& mu :
           adrec::core::MatchAd(setup.engine->analysis(), ctx,
                                adrec::core::MatchOptions{})
               .users) {
        predicted.push_back(mu.user);
      }
      const adrec::eval::Prf prf =
          adrec::eval::ComputePrf(predicted, oracle.RelevantUsers(a, slot));
      out.hits += prf.hits;
      out.predicted += prf.predicted;
      out.relevant += prf.relevant;
      per_pair.push_back(prf);
    }
  }
  out.macro = adrec::eval::MacroAverage(per_pair);
  return out;
}

}  // namespace

int main() {
  adrec::feed::WorkloadOptions opts = adrec::feed::CaseStudyOptions();
  opts.seed = 8088;
  opts.clustered_interest_probability = 0.9;
  adrec::eval::ExperimentSetup setup = adrec::eval::BuildExperiment(opts);
  adrec::eval::GroundTruthOracle oracle(&setup.workload);
  if (!setup.engine->RunAnalysis(0.45).ok()) return 1;

  adrec::TableWriter table(
      "E13: audience expansion dial (clustered interests, 30d window)",
      {"variant", "macroF", "microP", "microR", "predicted"});

  auto add_row = [&](const char* name, const adrec::core::ExpandOptions* e) {
    const MicroMacro m = Evaluate(setup, oracle, e);
    table.AddRow({name, adrec::StringFormat("%.3f", m.macro.f_score),
                  adrec::StringFormat("%.3f", m.MicroP()),
                  adrec::StringFormat("%.3f", m.MicroR()),
                  adrec::StringFormat("%zu", m.predicted)});
  };

  add_row("no expansion", nullptr);
  adrec::core::ExpandOptions strict;  // defaults: conf 0.85, support 5
  add_row("strict rules (conf 0.85)", &strict);
  adrec::core::ExpandOptions medium = strict;
  medium.min_confidence = 0.6;
  add_row("medium rules (conf 0.60)", &medium);
  adrec::core::ExpandOptions loose = strict;
  loose.min_confidence = 0.4;
  loose.min_support = 3;
  add_row("loose rules (conf 0.40)", &loose);
  table.Print();

  // Monotonicity sanity: looser rules must not lose micro-recall.
  const MicroMacro none = Evaluate(setup, oracle, nullptr);
  const MicroMacro loosest = Evaluate(setup, oracle, &loose);
  if (loosest.MicroR() + 1e-9 < none.MicroR()) {
    std::printf("VIOLATION: expansion reduced micro recall\n");
    return 1;
  }
  std::printf("Micro-recall monotonicity holds (%.3f -> %.3f).\n\n",
              none.MicroR(), loosest.MicroR());

  // --- Part 2: the cold-start scenario expansion exists for. Rules are
  // slowly-varying knowledge mined from the *full* 30-day history; the
  // match runs on a 2-day window whose topic evidence is incomplete.
  // Expected: the short window's plain match loses recall vs. the long
  // window; expansion (using long-history rules) recovers part of it.
  adrec::core::RecommendationEngine short_engine(setup.workload.kb,
                                                 setup.workload.slots);
  for (const auto& ad : setup.workload.ads) {
    (void)short_engine.InsertAd(ad);
  }
  const adrec::Timestamp cutoff =
      static_cast<adrec::Timestamp>(opts.days - 2) * adrec::kSecondsPerDay;
  for (const auto& e : setup.workload.MergedEvents()) {
    if (e.time >= cutoff) short_engine.OnEvent(e);
  }
  if (!short_engine.RunAnalysis(0.45).ok()) return 1;

  adrec::TableWriter cold(
      "E13b: cold-start (2-day match window, rules from 30-day history)",
      {"variant", "macroF", "microP", "microR", "predicted"});
  auto eval_short = [&](const char* name,
                        const adrec::core::ExpandOptions* e) {
    std::vector<adrec::eval::Prf> per_pair;
    MicroMacro m;
    for (uint32_t s : {1u, 2u}) {
      const adrec::SlotId slot(s);
      for (size_t a = 0; a < setup.workload.ads.size(); ++a) {
        const auto& targets = setup.workload.ads[a].target_slots;
        if (!targets.empty() && std::find(targets.begin(), targets.end(),
                                          slot) == targets.end()) {
          continue;
        }
        adrec::core::AdContext ctx =
            short_engine.semantic().ProcessAd(setup.workload.ads[a]);
        ctx.slots = {slot};
        if (e != nullptr) {
          // Rules from the LONG history, applied to the SHORT window's ad
          // context.
          ctx = adrec::core::ExpandAdTopics(setup.engine->analysis(), ctx,
                                            *e);
        }
        std::vector<adrec::UserId> predicted;
        for (const auto& mu :
             adrec::core::MatchAd(short_engine.analysis(), ctx,
                                  adrec::core::MatchOptions{})
                 .users) {
          predicted.push_back(mu.user);
        }
        const adrec::eval::Prf prf = adrec::eval::ComputePrf(
            predicted, oracle.RelevantUsers(a, slot));
        m.hits += prf.hits;
        m.predicted += prf.predicted;
        m.relevant += prf.relevant;
        per_pair.push_back(prf);
      }
    }
    m.macro = adrec::eval::MacroAverage(per_pair);
    cold.AddRow({name, adrec::StringFormat("%.3f", m.macro.f_score),
                 adrec::StringFormat("%.3f", m.MicroP()),
                 adrec::StringFormat("%.3f", m.MicroR()),
                 adrec::StringFormat("%zu", m.predicted)});
  };
  eval_short("no expansion", nullptr);
  eval_short("strict rules (conf 0.85)", &strict);
  eval_short("medium rules (conf 0.60)", &medium);
  eval_short("loose rules (conf 0.40)", &loose);
  cold.Print();
  return 0;
}
