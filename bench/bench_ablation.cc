// E8 — "Context ablation" of the triadic model itself: what does each
// ingredient of the match contribute? Variants:
//   full          — U-L ⋈ U-C with slot filtering (the model)
//   no-time       — slot filtering off
//   topic-side    — U-C match only (no location join)
//   location-side — U-L match only (no topic join)
// Expected shape: full > no-time > either single side on F-score; the
// single sides trade precision for recall in opposite directions.

#include <cstdio>
#include <unordered_set>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/recommender.h"
#include "eval/experiment.h"

namespace {

using adrec::core::AdContext;
using adrec::core::Community;

/// Users of all slot-eligible communities on one side of the match.
std::vector<adrec::UserId> SideUsers(
    const adrec::core::TimeAwareConceptAnalysis& analysis,
    const AdContext& ad, bool topic_side, bool filter_by_slot) {
  std::unordered_set<uint32_t> users;
  auto eligible = [&](const Community& c) {
    if (!filter_by_slot || ad.slots.empty()) return true;
    for (adrec::SlotId s : c.slots) {
      for (adrec::SlotId t : ad.slots) {
        if (s == t) return true;
      }
    }
    return false;
  };
  if (topic_side) {
    for (const auto& e : ad.topics.entries()) {
      if (e.weight < 0.1) continue;
      for (const Community& c :
           analysis.TopicCommunities(adrec::TopicId(e.id))) {
        if (!eligible(c)) continue;
        for (adrec::UserId u : c.users) users.insert(u.value);
      }
    }
  } else {
    for (adrec::LocationId m : ad.locations) {
      for (const Community& c : analysis.LocationCommunities(m)) {
        if (!eligible(c)) continue;
        for (adrec::UserId u : c.users) users.insert(u.value);
      }
    }
  }
  std::vector<adrec::UserId> out;
  for (uint32_t u : users) out.push_back(adrec::UserId(u));
  return out;
}

}  // namespace

int main() {
  adrec::feed::WorkloadOptions opts = adrec::feed::CaseStudyOptions();
  opts.seed = 999;
  adrec::eval::ExperimentSetup setup = adrec::eval::BuildExperiment(opts);
  adrec::eval::GroundTruthOracle oracle(&setup.workload);
  if (!setup.engine->RunAnalysis(0.55).ok()) return 1;

  struct Variant {
    const char* name;
    int mode;  // 0=full, 1=no-time, 2=topic-side, 3=location-side
  };
  const Variant variants[] = {{"full (U-L join U-C, timed)", 0},
                              {"no-time (slot filter off)", 1},
                              {"topic-side only (U-C)", 2},
                              {"location-side only (U-L)", 3}};

  adrec::TableWriter table("E8: ablation of the triadic matching model",
                           {"variant", "precision", "recall", "f-score"});
  for (const Variant& v : variants) {
    std::vector<adrec::eval::Prf> per_pair;
    for (uint32_t s : {1u, 2u}) {
      const adrec::SlotId slot(s);
      for (size_t a = 0; a < setup.workload.ads.size(); ++a) {
        const auto& targets = setup.workload.ads[a].target_slots;
        if (!targets.empty() &&
            std::find(targets.begin(), targets.end(), slot) ==
                targets.end()) {
          continue;
        }
        AdContext ctx =
            setup.engine->semantic().ProcessAd(setup.workload.ads[a]);
        ctx.slots = {slot};
        std::vector<adrec::UserId> predicted;
        if (v.mode == 0 || v.mode == 1) {
          adrec::core::MatchOptions mopts;
          mopts.filter_by_slot = (v.mode == 0);
          for (const auto& mu :
               adrec::core::MatchAd(setup.engine->analysis(), ctx, mopts)
                   .users) {
            predicted.push_back(mu.user);
          }
        } else {
          predicted = SideUsers(setup.engine->analysis(), ctx,
                                /*topic_side=*/v.mode == 2,
                                /*filter_by_slot=*/true);
        }
        per_pair.push_back(adrec::eval::ComputePrf(
            predicted, oracle.RelevantUsers(a, slot)));
      }
    }
    const adrec::eval::Prf prf = adrec::eval::MacroAverage(per_pair);
    table.AddRow({v.name, adrec::StringFormat("%.3f", prf.precision),
                  adrec::StringFormat("%.3f", prf.recall),
                  adrec::StringFormat("%.3f", prf.f_score)});
  }
  table.Print();
  return 0;
}
