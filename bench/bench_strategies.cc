// E12 — "Strategy comparison": the triadic model against the independent
// baselines (content-only, location-only, popularity) and the named
// topic-model comparator (LDA-lite). Expected shape: triadic wins on
// F-score because it is the only strategy that intersects *who* (topics)
// with *where/when* (location communities per slot); content-only has
// high recall / poor precision, location-only the reverse tendency,
// popularity is near-random, LDA suffers from the tiny per-user corpora.

#include <cstdio>

#include <algorithm>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/baselines.h"
#include "core/decay_topic_model.h"
#include "eval/experiment.h"

namespace {

/// Evaluates a decay-topic strategy over the targeted (ad, slot) pairs.
/// For GDTM the model is retrained per slot with the slot midpoint as the
/// kernel anchor (that is the model's notion of "context").
adrec::eval::Prf EvaluateDecayStrategy(
    bool gdtm, const adrec::eval::ExperimentSetup& setup,
    const adrec::eval::GroundTruthOracle& oracle, double threshold) {
  std::vector<adrec::eval::Prf> per_pair;
  const adrec::Timestamp now =
      setup.workload.options.days * adrec::kSecondsPerDay;
  adrec::core::DecayTopicOptions dopts;
  dopts.num_topics = 8;
  dopts.half_life = 7 * adrec::kSecondsPerDay;
  dopts.sigma = 3 * adrec::kSecondsPerHour;

  for (uint32_t s : {1u, 2u}) {
    const adrec::SlotId slot(s);
    adrec::Result<adrec::core::DecayTopicStrategy> strategy =
        gdtm ? adrec::core::DecayTopicStrategy::TrainGdtm(
                   setup.workload.tweets, setup.workload.analyzer.get(),
                   (setup.workload.slots.slot(slot).begin_second +
                    setup.workload.slots.slot(slot).end_second) /
                       2,
                   dopts)
             : adrec::core::DecayTopicStrategy::TrainDtm(
                   setup.workload.tweets, setup.workload.analyzer.get(), now,
                   dopts);
    if (!strategy.ok()) continue;
    for (size_t a = 0; a < setup.workload.ads.size(); ++a) {
      const auto& targets = setup.workload.ads[a].target_slots;
      if (!targets.empty() &&
          std::find(targets.begin(), targets.end(), slot) == targets.end()) {
        continue;
      }
      const auto predicted =
          strategy.value().Predict(setup.workload.ads[a].copy, threshold);
      per_pair.push_back(adrec::eval::ComputePrf(
          predicted, oracle.RelevantUsers(a, slot)));
    }
  }
  return adrec::eval::MacroAverage(per_pair);
}

}  // namespace

int main() {
  const auto kKinds = {adrec::core::StrategyKind::kTriadic,
                           adrec::core::StrategyKind::kContentOnly,
                           adrec::core::StrategyKind::kLocationOnly,
                           adrec::core::StrategyKind::kPopularity,
                           adrec::core::StrategyKind::kLdaLite};
  std::vector<adrec::eval::Prf> sums(7);  // 5 kinds + DTM + GDTM
  const uint64_t seeds[] = {31415, 27182, 16180};
  for (uint64_t seed : seeds) {
    adrec::feed::WorkloadOptions opts = adrec::feed::CaseStudyOptions();
    opts.seed = seed;
    // Diverse interests: with strongly Zipf-skewed topics nearly every
    // co-located user is topically relevant and the location condition
    // alone determines relevance; a flatter topic distribution is the
    // regime where the *context-aware* combination has to earn its keep.
    opts.topic_skew = 0.3;
    adrec::eval::ExperimentSetup setup = adrec::eval::BuildExperiment(opts);
    adrec::eval::GroundTruthOracle oracle(&setup.workload);
    if (!setup.engine->RunAnalysis(0.45).ok()) return 1;

    adrec::core::BaselineOptions bopts;
    bopts.now = opts.days * adrec::kSecondsPerDay;
    auto lda = adrec::core::LdaStrategy::Train(setup.workload.tweets,
                                               setup.workload.analyzer.get());
    if (!lda.ok()) {
      std::fprintf(stderr, "LDA training failed: %s\n",
                   lda.status().ToString().c_str());
      return 1;
    }
    size_t i = 0;
    for (auto kind : kKinds) {
      const adrec::eval::Prf prf = adrec::eval::EvaluateStrategy(
          kind, setup, oracle, bopts, &lda.value());
      sums[i].precision += prf.precision;
      sums[i].recall += prf.recall;
      sums[i].f_score += prf.f_score;
      sums[i].predicted += prf.predicted;
      ++i;
    }
    for (bool gdtm : {false, true}) {
      const adrec::eval::Prf prf =
          EvaluateDecayStrategy(gdtm, setup, oracle, bopts.lda_threshold);
      sums[i].precision += prf.precision;
      sums[i].recall += prf.recall;
      sums[i].f_score += prf.f_score;
      sums[i].predicted += prf.predicted;
      ++i;
    }
  }

  adrec::TableWriter table(
      "E12: strategy comparison (macro avg over targeted ad-slot pairs, "
      "3 seeds, alpha=0.45)",
      {"strategy", "precision", "recall", "f-score", "|U~| avg"});
  const double n = static_cast<double>(std::size(seeds));
  std::vector<std::string> names;
  for (auto kind : kKinds) names.push_back(adrec::core::StrategyName(kind));
  names.push_back("dtm (decay topic model)");
  names.push_back("gdtm (gaussian decay)");
  for (size_t i = 0; i < names.size(); ++i) {
    table.AddRow({names[i],
                  adrec::StringFormat("%.3f", sums[i].precision / n),
                  adrec::StringFormat("%.3f", sums[i].recall / n),
                  adrec::StringFormat("%.3f", sums[i].f_score / n),
                  adrec::StringFormat("%.0f", sums[i].predicted / n)});
  }
  table.Print();
  return 0;
}
