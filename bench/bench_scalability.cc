// E11 — "End-to-end pipeline scalability": total cost of ingesting a
// trace and running the full triadic analysis as the user population
// grows. Reports ingest rate (annotation + profiles + TFCA accumulation)
// and the analysis cost with its concept counts. Expected shape: ingest
// scales linearly with event count; TFCA mining grows with the concept
// count (superlinear in users, which is why the analysis runs windowed /
// periodically rather than per event).

#include <chrono>
#include <cstdio>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "eval/experiment.h"

int main() {
  adrec::TableWriter table(
      "E11: end-to-end scalability (14-day trace, alpha=0.55)",
      {"users", "events", "ingest_ms", "events_per_s", "analyze_ms",
       "loc_concepts", "topic_concepts"});
  for (size_t users : {10u, 25u, 50u, 100u, 200u}) {
    adrec::feed::WorkloadOptions opts;
    opts.seed = 1000 + users;
    opts.num_users = users;
    opts.num_places = 29;
    opts.num_ads = 5;
    opts.days = 14;
    adrec::feed::Workload w = adrec::feed::GenerateWorkload(opts);
    adrec::core::RecommendationEngine engine(w.kb, w.slots);
    for (const auto& ad : w.ads) (void)engine.InsertAd(ad);

    const auto events = w.MergedEvents();
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& e : events) engine.OnEvent(e);
    const auto t1 = std::chrono::steady_clock::now();
    if (!engine.RunAnalysis(0.55).ok()) return 1;
    const auto t2 = std::chrono::steady_clock::now();

    const double ingest_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double analyze_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    table.AddRow(
        {adrec::StringFormat("%zu", users),
         adrec::StringFormat("%zu", events.size()),
         adrec::StringFormat("%.1f", ingest_ms),
         adrec::StringFormat("%.0f", 1000.0 * events.size() / ingest_ms),
         adrec::StringFormat("%.1f", analyze_ms),
         adrec::StringFormat("%zu",
                             engine.analysis().stats().location_triconcepts),
         adrec::StringFormat("%zu",
                             engine.analysis().stats().topic_triconcepts)});
  }
  table.Print();
  return 0;
}
