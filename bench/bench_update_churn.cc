// E6 — "Query throughput under ad churn": the index must absorb
// campaign starts/stops while serving queries. Mixes insert/delete pairs
// into the query stream at increasing rates and reports sustained query
// throughput. Expected shape: throughput degrades gracefully (lazy
// tombstoning + compaction), staying within a small factor of the
// churn-free rate even at 1 update per query.

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/ad_index.h"

namespace {

using adrec::index::AdIndex;

constexpr size_t kTopics = 300;
constexpr size_t kBaseAds = 10000;

adrec::text::SparseVector RandomTopics(adrec::Rng& rng,
                                       const adrec::ZipfSampler& zipf) {
  std::vector<adrec::text::SparseEntry> entries;
  const size_t nnz = 1 + rng.NextBounded(4);
  for (size_t j = 0; j < nnz; ++j) {
    entries.push_back({static_cast<uint32_t>(zipf.Sample(rng)),
                       0.2 + 0.8 * rng.NextDouble()});
  }
  return adrec::text::SparseVector::FromUnsorted(std::move(entries));
}

}  // namespace

int main() {
  adrec::TableWriter table(
      "E6: query throughput under ad churn (10k base ads, k=10)",
      {"updates_per_query", "queries_per_sec", "final_live_ads"});

  for (double churn : {0.0, 0.01, 0.1, 0.5, 1.0}) {
    adrec::Rng rng(31337);
    adrec::ZipfSampler zipf(kTopics, 1.0);
    AdIndex index;
    for (uint32_t i = 0; i < kBaseAds; ++i) {
      (void)index.Insert(adrec::AdId(i), RandomTopics(rng, zipf), {}, {},
                         0.5 + rng.NextDouble());
    }
    uint32_t next_id = kBaseAds;
    std::vector<uint32_t> live;
    for (uint32_t i = 0; i < kBaseAds; ++i) live.push_back(i);

    const int kQueries = 5000;
    double accumulated_updates = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int q = 0; q < kQueries; ++q) {
      accumulated_updates += churn;
      while (accumulated_updates >= 1.0 && !live.empty()) {
        accumulated_updates -= 1.0;
        // One delete + one insert keeps the inventory size stable.
        const size_t victim = rng.NextBounded(live.size());
        (void)index.Remove(adrec::AdId(live[victim]));
        live[victim] = next_id;
        (void)index.Insert(adrec::AdId(next_id++), RandomTopics(rng, zipf),
                           {}, {}, 0.5 + rng.NextDouble());
      }
      adrec::index::AdQuery query;
      query.topics = RandomTopics(rng, zipf);
      query.k = 10;
      auto result = index.TopK(query);
      if (result.size() > 10) return 1;
    }
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    table.AddRow({adrec::StringFormat("%.2f", churn),
                  adrec::StringFormat("%.0f", kQueries / elapsed),
                  adrec::StringFormat("%zu", index.size())});
  }
  table.Print();
  return 0;
}
