// E22 — "Hot-result caching under skewed feed traffic": closed-loop (and
// optionally open-loop) Zipf load against an in-process adrecd with the
// topk result cache on vs off, at configurable user skew. Each run
// drives the identical deterministic op stream (src/feed/loadgen) so the
// cached and uncached numbers answer the same question, and reports the
// client-side topk latency plus the daemon's cache.* counters.
//
// The engine runs with the frequency cap disabled and unlimited ad
// budgets: serving is then read-only, which isolates the cache's effect
// on the query path (the differential tests own the correctness story
// when serving mutates).
//
// Self-gates (exit non-zero): client errors; cached hit ratio must
// exceed 80% at skew >= 0.99; and the cached topk p95 at every skew must
// not exceed 1.25x the *uncached* p95 at skew 0 (the "caching never
// costs you the unskewed baseline" acceptance bar, with cross-run noise
// margin).
//
//   bench_cache [ops_per_run] [skew ...] [--cache=N] [--users=N]
//               [--open-rates=R1,R2,...]
//
// Defaults: 20000 ops, skews {0, 0.99}, 4096 cache entries, 1000 users.
// --open-rates adds open-loop runs (uniform arrivals at R ops/sec, both
// modes, at the *last* listed skew) for latency-vs-throughput curves;
// open-loop numbers are printed but not part of the gated JSON.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "core/sharded_engine.h"
#include "feed/loadgen.h"
#include "feed/workload.h"
#include "obs/stats_export.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using adrec::Histogram;

struct RunResult {
  double skew = 0.0;
  bool cached = false;
  adrec::feed::LoadRunStats stats;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double hit_ratio = 0.0;
};

std::string SkewLabel(double skew) {
  std::string label = "s" + std::to_string(skew);
  // Trim trailing zeros ("0.990000" -> "0.99"), then make it a metric
  // token ("0.99" -> "0_99").
  while (!label.empty() && label.back() == '0') label.pop_back();
  if (!label.empty() && label.back() == '.') label.pop_back();
  std::replace(label.begin(), label.end(), '.', '_');
  return label;
}

void AddTimer(adrec::obs::StatsReport* report, const std::string& name,
              const Histogram& hist) {
  if (hist.count() == 0) return;
  adrec::obs::TimerStat stat;
  stat.count = hist.count();
  stat.mean = hist.Mean();
  stat.p50 = hist.Quantile(0.50);
  stat.p95 = hist.Quantile(0.95);
  stat.p99 = hist.Quantile(0.99);
  stat.min = hist.min();
  stat.max = hist.max();
  report->timers[name] = stat;
}

}  // namespace

int main(int argc, char** argv) {
  size_t ops = 20000;
  size_t cache_entries = 4096;
  size_t users = 1000;
  std::vector<double> skews;
  std::vector<double> open_rates;

  bool ops_set = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--cache=", 8) == 0) {
      cache_entries = static_cast<size_t>(std::atoll(arg + 8));
    } else if (std::strncmp(arg, "--users=", 8) == 0) {
      users = static_cast<size_t>(std::atoll(arg + 8));
    } else if (std::strncmp(arg, "--open-rates=", 13) == 0) {
      for (const char* p = arg + 13; *p != '\0';) {
        open_rates.push_back(std::strtod(p, nullptr));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if (!ops_set) {
      ops = static_cast<size_t>(std::atoll(arg));
      ops_set = true;
    } else {
      skews.push_back(std::atof(arg));
    }
  }
  if (skews.empty()) skews = {0.0, 0.99};

  // One shared workload builds the KB, the priming trace, the inventory
  // and the phrase pool; every run re-derives its engine from it.
  adrec::feed::WorkloadOptions wopts;
  wopts.seed = 7;
  wopts.num_users = users;
  wopts.num_places = 64;
  wopts.num_ads = 200;
  wopts.days = 2;
  const adrec::feed::Workload workload =
      adrec::feed::GenerateWorkload(wopts);

  std::vector<std::string> phrases;
  for (size_t i = 0; i < workload.tweets.size() && phrases.size() < 512;
       i += 7) {
    phrases.push_back(workload.tweets[i].text);
  }

  adrec::Timestamp prime_end = 0;
  for (const auto& t : workload.tweets) prime_end = std::max(prime_end, t.time);
  for (const auto& c : workload.check_ins) {
    prime_end = std::max(prime_end, c.time);
  }

  std::vector<RunResult> results;
  bool gate_failed = false;

  auto run_one = [&](double skew, bool cached, double open_rate,
                     RunResult* out) -> bool {
    adrec::core::EngineOptions eopts;
    eopts.frequency_cap.max_impressions = 0;  // read-only serving
    adrec::core::ShardedEngine engine(workload.kb, workload.slots,
                                      /*num_shards=*/1, eopts);
    for (adrec::feed::Ad ad : workload.ads) {
      ad.budget_impressions = 0;  // unlimited
      if (auto s = engine.InsertAd(ad); !s.ok()) {
        std::fprintf(stderr, "insert ad: %s\n", s.ToString().c_str());
        return false;
      }
    }
    // Warm profiles/locations so topk answers are non-trivial.
    for (const auto& event : workload.MergedEvents()) engine.OnEvent(event);

    adrec::serve::ServerOptions sopts;
    sopts.max_connections = 8;
    sopts.topk_cache.capacity = cached ? cache_entries : 0;
    adrec::serve::Server server(&engine, sopts);
    if (auto s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
      return false;
    }
    server.SeedStreamClock(prime_end);
    std::thread loop([&server] { server.Run(); });

    adrec::feed::LoadGenOptions gopts;
    gopts.seed = 1000 + static_cast<uint64_t>(skew * 1000.0);
    gopts.num_users = users;
    gopts.num_cells = wopts.num_places;
    gopts.user_skew = skew;
    // High-speed feed: many events share each stream-second, so the
    // stream clock (and with it the identity of time-less topk queries)
    // advances slowly relative to the op stream.
    gopts.ingest_fraction = 0.04;
    gopts.checkin_fraction = 0.15;
    gopts.ingests_per_second = 1000;
    gopts.start_time = prime_end + 1;
    adrec::feed::LoadGen gen(gopts, phrases);

    adrec::serve::Client client;
    bool ok = client.Connect("127.0.0.1", server.port()).ok();
    adrec::feed::LoadRunOptions ropts;
    ropts.num_ops = ops;
    ropts.open_loop_rate = open_rate;
    if (ok) {
      out->stats = adrec::feed::RunLoad(&client, &gen, ropts);
      client.Quit();
    }
    server.RequestDrain();
    loop.join();

    out->skew = skew;
    out->cached = cached;
    if (cached) {
      const adrec::obs::MetricsSnapshot view = server.MergedSnapshot();
      auto hit = view.counters.find("cache.hits");
      auto miss = view.counters.find("cache.misses");
      out->cache_hits = hit == view.counters.end()
                            ? 0
                            : static_cast<uint64_t>(hit->second);
      out->cache_misses = miss == view.counters.end()
                              ? 0
                              : static_cast<uint64_t>(miss->second);
      const uint64_t total = out->cache_hits + out->cache_misses;
      out->hit_ratio = total == 0 ? 0.0
                                  : static_cast<double>(out->cache_hits) /
                                        static_cast<double>(total);
    }
    return ok && out->stats.errors == 0;
  };

  for (const double skew : skews) {
    for (const bool cached : {false, true}) {
      RunResult result;
      if (!run_one(skew, cached, /*open_rate=*/0.0, &result)) {
        std::fprintf(stderr, "bench_cache: run failed (skew=%g %s)\n", skew,
                     cached ? "cached" : "uncached");
        return 1;
      }
      std::printf(
          "bench_cache: skew=%-5g %-8s ops=%zu topk p50=%.1fus p95=%.1fus "
          "p99=%.1fus %.0f ops/s%s\n",
          skew, cached ? "cached" : "uncached", result.stats.ops,
          result.stats.topk_latency_us.Quantile(0.50),
          result.stats.topk_latency_us.Quantile(0.95),
          result.stats.topk_latency_us.Quantile(0.99),
          result.stats.achieved_ops_per_sec,
          cached ? (" hit_ratio=" + std::to_string(result.hit_ratio)).c_str()
                 : "");
      results.push_back(std::move(result));
    }
  }

  // Optional latency-vs-throughput sweep at the last listed skew.
  for (const double rate : open_rates) {
    for (const bool cached : {false, true}) {
      RunResult result;
      if (!run_one(skews.back(), cached, rate, &result)) {
        std::fprintf(stderr, "bench_cache: open-loop run failed\n");
        return 1;
      }
      std::printf(
          "bench_cache: open-loop rate=%-7g skew=%g %-8s achieved=%.0f "
          "ops/s topk p50=%.1fus p95=%.1fus p99=%.1fus%s\n",
          rate, skews.back(), cached ? "cached" : "uncached",
          result.stats.achieved_ops_per_sec,
          result.stats.topk_latency_us.Quantile(0.50),
          result.stats.topk_latency_us.Quantile(0.95),
          result.stats.topk_latency_us.Quantile(0.99),
          cached ? (" hit_ratio=" + std::to_string(result.hit_ratio)).c_str()
                 : "");
    }
  }

  // --- Self-gates over the closed-loop runs. ---
  double uncached_p95_s0 = 0.0;
  for (const RunResult& r : results) {
    if (!r.cached && r.skew == 0.0) {
      uncached_p95_s0 = r.stats.topk_latency_us.Quantile(0.95);
    }
  }
  for (const RunResult& r : results) {
    if (r.cached && r.skew >= 0.99 && r.hit_ratio <= 0.80) {
      std::fprintf(stderr,
                   "bench_cache: GATE hit_ratio %.3f <= 0.80 at skew %g\n",
                   r.hit_ratio, r.skew);
      gate_failed = true;
    }
    if (r.cached && uncached_p95_s0 > 0.0) {
      const double p95 = r.stats.topk_latency_us.Quantile(0.95);
      if (p95 > 1.25 * uncached_p95_s0) {
        std::fprintf(stderr,
                     "bench_cache: GATE cached topk p95 %.1fus at skew %g "
                     "> 1.25x uncached-at-skew-0 p95 %.1fus\n",
                     p95, r.skew, uncached_p95_s0);
        gate_failed = true;
      }
    }
  }

  // One machine-readable line for ci_bench_gate.sh. Only bench.* metrics
  // from the closed-loop runs: a focused, stable surface to diff.
  adrec::obs::StatsReport report;
  for (const RunResult& r : results) {
    const std::string label =
        "bench." + SkewLabel(r.skew) + (r.cached ? "_cached" : "_uncached");
    AddTimer(&report, label + "_topk_us", r.stats.topk_latency_us);
    AddTimer(&report, label + "_ingest_us", r.stats.ingest_latency_us);
    if (r.cached) {
      report.counters[label + "_cache_hits"] = r.cache_hits;
      report.counters[label + "_cache_misses"] = r.cache_misses;
      report.gauges[label + "_hit_ratio"] = r.hit_ratio;
    }
    report.gauges[label + "_ops_per_sec"] = r.stats.achieved_ops_per_sec;
  }
  report.counters["bench.ops_per_run"] = ops;
  report.counters["bench.cache_entries"] = cache_entries;
  report.counters["bench.users"] = users;
  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());

  return gate_failed ? 1 : 0;
}
