// E18 — "Wire overhead of the serving daemon": closed-loop load against
// an in-process adrecd, compared with direct engine calls on the same
// workload. N client connections each issue a fixed mix of ingest
// (tweet/checkin) and query (topk) commands synchronously; client-side
// per-verb latency histograms give the end-to-end wire numbers, and the
// same command stream applied straight to a ShardedEngine isolates the
// protocol + loopback + event-loop cost from the engine cost.
//
// Not a google-benchmark binary: the unit of interest is a whole
// closed-loop session (connections x commands), not a single call, so
// this is a plain main emitting one BENCH_METRICS_JSON line with
// per-verb client-side p50/p95/p99 plus the daemon's own serve.* view.
//
//   bench_serve [connections] [commands_per_connection]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "core/sharded_engine.h"
#include "feed/workload.h"
#include "obs/stats_export.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using adrec::Histogram;

/// One client's closed loop: replay its slice of the workload over the
/// wire, timing each verb round-trip.
struct ClientStats {
  Histogram tweet_us;
  Histogram checkin_us;
  Histogram topk_us;
  size_t errors = 0;
};

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RunClient(uint16_t port, const adrec::feed::Workload& workload,
               size_t offset, size_t commands, ClientStats* stats) {
  adrec::serve::Client client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    stats->errors += commands;
    return;
  }
  const auto& tweets = workload.tweets;
  const auto& checkins = workload.check_ins;
  for (size_t i = 0; i < commands; ++i) {
    const size_t n = offset + i;
    // Mix: 2 tweets : 1 check-in : 1 topk, round-robin.
    switch (n % 4) {
      case 0:
      case 1: {
        const auto& t = tweets[n % tweets.size()];
        const double start = NowUs();
        if (!client.SendTweet(t).ok()) ++stats->errors;
        stats->tweet_us.Record(NowUs() - start);
        break;
      }
      case 2: {
        const auto& c = checkins[n % checkins.size()];
        const double start = NowUs();
        if (!client.SendCheckIn(c).ok()) ++stats->errors;
        stats->checkin_us.Record(NowUs() - start);
        break;
      }
      default: {
        const auto& t = tweets[n % tweets.size()];
        const double start = NowUs();
        if (!client.TopK(t.user, 5, t.time, t.text).ok()) ++stats->errors;
        stats->topk_us.Record(NowUs() - start);
        break;
      }
    }
  }
  client.Quit();
}

/// The same command mix applied directly to the engine (no sockets, no
/// parse): the baseline that prices the wire.
void RunDirect(adrec::core::ShardedEngine* engine,
               const adrec::feed::Workload& workload, size_t offset,
               size_t commands, ClientStats* stats) {
  const auto& tweets = workload.tweets;
  const auto& checkins = workload.check_ins;
  for (size_t i = 0; i < commands; ++i) {
    const size_t n = offset + i;
    switch (n % 4) {
      case 0:
      case 1: {
        const auto& t = tweets[n % tweets.size()];
        const double start = NowUs();
        engine->OnTweet(t);
        stats->tweet_us.Record(NowUs() - start);
        break;
      }
      case 2: {
        const auto& c = checkins[n % checkins.size()];
        const double start = NowUs();
        engine->OnCheckIn(c);
        stats->checkin_us.Record(NowUs() - start);
        break;
      }
      default: {
        const auto& t = tweets[n % tweets.size()];
        const double start = NowUs();
        engine->TopKAdsForTweet(t, 5);
        stats->topk_us.Record(NowUs() - start);
        break;
      }
    }
  }
}

void AddTimer(adrec::obs::StatsReport* report, const std::string& name,
              const Histogram& hist) {
  if (hist.count() == 0) return;
  adrec::obs::TimerStat stat;
  stat.count = hist.count();
  stat.mean = hist.Mean();
  stat.p50 = hist.Quantile(0.50);
  stat.p95 = hist.Quantile(0.95);
  stat.p99 = hist.Quantile(0.99);
  stat.min = hist.min();
  stat.max = hist.max();
  report->timers[name] = stat;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t connections =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 8;
  const size_t commands =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 500;

  adrec::feed::WorkloadOptions wopts = adrec::feed::CaseStudyOptions();
  wopts.days = 14;
  const adrec::feed::Workload workload =
      adrec::feed::GenerateWorkload(wopts);

  // --- Served run: daemon + N closed-loop connections. ---
  adrec::core::ShardedEngine served_engine(
      workload.kb, workload.slots, /*num_shards=*/1);
  for (const auto& ad : workload.ads) {
    if (auto s = served_engine.InsertAd(ad); !s.ok()) {
      std::fprintf(stderr, "insert ad: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  adrec::serve::ServerOptions sopts;
  sopts.max_connections = connections + 4;
  adrec::serve::Server server(&served_engine, sopts);
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::thread loop([&server] { server.Run(); });

  std::vector<ClientStats> per_client(connections);
  {
    std::vector<std::thread> clients;
    clients.reserve(connections);
    for (size_t c = 0; c < connections; ++c) {
      clients.emplace_back(RunClient, server.port(), std::cref(workload),
                           c * commands, commands, &per_client[c]);
    }
    for (auto& t : clients) t.join();
  }
  server.RequestDrain();
  loop.join();
  // Loop thread has exited (join gives happens-before): the snapshot is
  // race-free.
  const adrec::obs::MetricsSnapshot serve_view = server.MergedSnapshot();

  ClientStats wire;
  for (const auto& cs : per_client) {
    wire.tweet_us.Merge(cs.tweet_us);
    wire.checkin_us.Merge(cs.checkin_us);
    wire.topk_us.Merge(cs.topk_us);
    wire.errors += cs.errors;
  }

  // --- Direct run: same commands, no wire. ---
  adrec::core::ShardedEngine direct_engine(
      workload.kb, workload.slots, /*num_shards=*/1);
  for (const auto& ad : workload.ads) {
    (void)direct_engine.InsertAd(ad);
  }
  ClientStats direct;
  for (size_t c = 0; c < connections; ++c) {
    RunDirect(&direct_engine, workload, c * commands, commands, &direct);
  }

  std::printf("bench_serve: %zu connections x %zu commands, %zu errors\n",
              connections, commands, wire.errors);
  std::printf("  wire   topk p50=%.1fus p95=%.1fus p99=%.1fus\n",
              wire.topk_us.Quantile(0.5), wire.topk_us.Quantile(0.95),
              wire.topk_us.Quantile(0.99));
  std::printf("  direct topk p50=%.1fus p95=%.1fus p99=%.1fus\n",
              direct.topk_us.Quantile(0.5), direct.topk_us.Quantile(0.95),
              direct.topk_us.Quantile(0.99));

  // Per-verb client-side wire/direct latencies, then the daemon's own
  // serve.* counters and timers, in one machine-readable line.
  adrec::obs::StatsReport report = adrec::obs::BuildReport(serve_view);
  AddTimer(&report, "bench.wire_tweet_us", wire.tweet_us);
  AddTimer(&report, "bench.wire_checkin_us", wire.checkin_us);
  AddTimer(&report, "bench.wire_topk_us", wire.topk_us);
  AddTimer(&report, "bench.direct_tweet_us", direct.tweet_us);
  AddTimer(&report, "bench.direct_checkin_us", direct.checkin_us);
  AddTimer(&report, "bench.direct_topk_us", direct.topk_us);
  report.counters["bench.connections"] = connections;
  report.counters["bench.commands_per_connection"] = commands;
  report.counters["bench.client_errors"] = wire.errors;
  std::printf("BENCH_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());
  return wire.errors == 0 ? 0 : 1;
}
