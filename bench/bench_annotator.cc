// E7 — "Annotator throughput and disambiguation accuracy": the hand-built
// Spotlight stand-in must be fast enough for the high-speed path and must
// pick the right sense of ambiguous surface forms. Expected shape:
// >100k tweets/s annotation throughput; disambiguation accuracy well
// above the commonness-prior-only baseline on context-bearing text.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "annotate/annotator.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "feed/workload.h"

namespace {

void BM_AnnotateTweets(benchmark::State& state) {
  adrec::feed::WorkloadOptions opts;
  opts.seed = 5;
  opts.num_users = 20;
  opts.days = 10;
  adrec::feed::Workload w = adrec::feed::GenerateWorkload(opts);
  adrec::annotate::SpotlightAnnotator annotator(w.kb.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        annotator.Annotate(w.tweets[i++ % w.tweets.size()].text));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_AnnotateTweets);

/// Accuracy probe: sentences with ambiguous mentions whose correct sense
/// is known from the surrounding words.
void AccuracyTable() {
  adrec::text::Analyzer analyzer;
  auto kb = adrec::annotate::BuildDemoKnowledgeBase(&analyzer);

  struct Probe {
    const char* text;
    const char* want_suffix;  // expected URI suffix
  };
  const Probe probes[] = {
      {"apple unveiled the new iphone at the launch event", "Apple_Inc."},
      {"grandma's apple pie fresh from the orchard", "Apple"},
      {"the players walked onto the pitch at the stadium", "Pitch_(sports_field)"},
      {"she hit a pitch two tones above the melody note", "Pitch_(music)"},
      {"apple stock rose after tim cook spoke", "Apple_Inc."},
      {"cider pressing needs ripe apples from the tree", "Apple"},
      {"the football match kicked off on a muddy pitch grass", "Pitch_(sports_field)"},
      {"tuning the pitch of the sound frequency", "Pitch_(music)"},
  };

  adrec::annotate::SpotlightAnnotator context_aware(kb.get());
  adrec::annotate::AnnotatorOptions prior_only_opts;
  prior_only_opts.context_weight = 0.0;  // ablation: prior only
  adrec::annotate::SpotlightAnnotator prior_only(kb.get(), prior_only_opts);

  auto accuracy = [&](const adrec::annotate::SpotlightAnnotator& a) {
    int correct = 0;
    for (const Probe& p : probes) {
      for (const auto& ann : a.Annotate(p.text)) {
        if (ann.uri.ends_with(p.want_suffix)) {
          ++correct;
          break;
        }
      }
    }
    return static_cast<double>(correct) / std::size(probes);
  };

  adrec::TableWriter table("E7b: disambiguation accuracy on ambiguous probes",
                           {"annotator", "accuracy"});
  table.AddRow({"context-aware (full)",
                adrec::StringFormat("%.2f", accuracy(context_aware))});
  table.AddRow({"prior-only ablation",
                adrec::StringFormat("%.2f", accuracy(prior_only))});
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  AccuracyTable();
  return 0;
}
