// E9 — "Quality vs temporal configuration": two sweeps.
//   (a) profile decay half-life vs content-only quality — short half-lives
//       forget the user's interests (recall drops), long ones never forget
//       noise (precision drops);
//   (b) analysis-window length vs triadic quality — one fixed 30-day
//       trace, engines fed only the most recent N days. Expected shape:
//       quality *degrades* as the window grows, for two reasons inherent
//       to the timed-context construction: (i) membership degrees
//       aggregate by max, so one strong off-interest mention pollutes the
//       α-cut for the whole window (precision drops); (ii) denser
//       contexts make attributes co-occur, so singleton-attribute
//       (m-triadic) concepts — the communities — disappear (recall
//       drops). This is the ablation behind the engine's windowed
//       re-analysis design: short windows are not just cheaper, they are
//       better.

#include <cstdio>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/baselines.h"
#include "eval/experiment.h"

namespace {

adrec::feed::WorkloadOptions BaseOptions() {
  adrec::feed::WorkloadOptions opts = adrec::feed::CaseStudyOptions();
  opts.seed = 2718;
  opts.topic_skew = 0.3;  // diverse interests (see bench_strategies)
  return opts;
}

void HalfLifeSweep() {
  adrec::TableWriter table(
      "E9a: content-only quality vs profile decay half-life "
      "(threshold 0.5)",
      {"half_life", "precision", "recall", "f-score"});
  const adrec::feed::WorkloadOptions opts = BaseOptions();
  struct Row {
    const char* label;
    adrec::DurationSec seconds;
  };
  const Row rows[] = {{"2h", 2 * adrec::kSecondsPerHour},
                      {"12h", 12 * adrec::kSecondsPerHour},
                      {"2d", 2 * adrec::kSecondsPerDay},
                      {"7d", 7 * adrec::kSecondsPerDay},
                      {"30d", 30 * adrec::kSecondsPerDay},
                      {"365d", 365 * adrec::kSecondsPerDay}};
  for (const Row& row : rows) {
    adrec::core::EngineOptions eopts;
    eopts.profile_half_life = row.seconds;
    adrec::eval::ExperimentSetup setup =
        adrec::eval::BuildExperiment(opts, eopts);
    adrec::eval::GroundTruthOracle oracle(&setup.workload);
    if (!setup.engine->RunAnalysis(0.45).ok()) return;
    adrec::core::BaselineOptions bopts;
    bopts.now = opts.days * adrec::kSecondsPerDay;
    bopts.content_threshold = 0.5;
    const adrec::eval::Prf prf = adrec::eval::EvaluateStrategy(
        adrec::core::StrategyKind::kContentOnly, setup, oracle, bopts);
    table.AddRow({row.label, adrec::StringFormat("%.3f", prf.precision),
                  adrec::StringFormat("%.3f", prf.recall),
                  adrec::StringFormat("%.3f", prf.f_score)});
  }
  table.Print();
}

void WindowSweep() {
  adrec::TableWriter table(
      "E9b: triadic quality vs analysis-window length "
      "(suffix of one 30-day trace, alpha=0.45)",
      {"window_days", "precision", "recall", "f-score", "topic_concepts"});
  const adrec::feed::WorkloadOptions opts = BaseOptions();
  const adrec::feed::Workload workload = adrec::feed::GenerateWorkload(opts);
  adrec::eval::GroundTruthOracle oracle(&workload);
  for (int days : {1, 3, 7, 14, 30}) {
    const adrec::Timestamp cutoff =
        static_cast<adrec::Timestamp>(opts.days - days) *
        adrec::kSecondsPerDay;
    adrec::core::RecommendationEngine engine(workload.kb, workload.slots);
    for (const auto& ad : workload.ads) (void)engine.InsertAd(ad);
    for (const auto& e : workload.MergedEvents()) {
      if (e.time >= cutoff) engine.OnEvent(e);
    }
    if (!engine.RunAnalysis(0.45).ok()) return;

    std::vector<adrec::eval::Prf> per_pair;
    for (uint32_t s : {1u, 2u}) {
      const adrec::SlotId slot(s);
      for (size_t a = 0; a < workload.ads.size(); ++a) {
        const auto& targets = workload.ads[a].target_slots;
        if (!targets.empty() &&
            std::find(targets.begin(), targets.end(), slot) ==
                targets.end()) {
          continue;
        }
        adrec::core::AdContext ctx =
            engine.semantic().ProcessAd(workload.ads[a]);
        ctx.slots = {slot};
        std::vector<adrec::UserId> predicted;
        for (const auto& mu :
             adrec::core::MatchAd(engine.analysis(), ctx,
                                  adrec::core::MatchOptions{})
                 .users) {
          predicted.push_back(mu.user);
        }
        per_pair.push_back(adrec::eval::ComputePrf(
            predicted, oracle.RelevantUsers(a, slot)));
      }
    }
    const adrec::eval::Prf prf = adrec::eval::MacroAverage(per_pair);
    table.AddRow(
        {adrec::StringFormat("%d", days),
         adrec::StringFormat("%.3f", prf.precision),
         adrec::StringFormat("%.3f", prf.recall),
         adrec::StringFormat("%.3f", prf.f_score),
         adrec::StringFormat("%zu",
                             engine.analysis().stats().topic_triconcepts)});
  }
  table.Print();
}

}  // namespace

int main() {
  HalfLifeSweep();
  WindowSweep();
  return 0;
}
