#!/usr/bin/env bash
# End-to-end smoke test of the adrecd daemon through the CLI client:
# boots the daemon on an ephemeral port, exercises one command of every
# class over the real wire, and verifies a graceful SIGTERM drain.
#
#   ci_serve_smoke.sh <path-to-adrecd> <path-to-adrec_client>
#
# Registered as a tier1 ctest (see tests/CMakeLists.txt), so the default
# gate covers the daemon binary itself, not just the serve library.
#
# Phase 2 reboots the daemon multi-core (--workers=2 --wal-shards=2,
# DESIGN.md §16): worker-tagged conns output, per-shard WAL stream
# directories on disk, and a restart that replays both streams.
set -euo pipefail

ADRECD="${1:?usage: ci_serve_smoke.sh <adrecd> <adrec_client>}"
CLIENT="${2:?usage: ci_serve_smoke.sh <adrecd> <adrec_client>}"

LOG="$(mktemp)"
WALDIR="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -f "$LOG"; rm -rf "$WALDIR"' EXIT

# --port=0 binds an ephemeral port; parse it from the listening line.
# --trace-sample=1 keeps every completed trace so the flight-recorder
# checks below see the topk request regardless of request count.
"$ADRECD" --port=0 --report-interval=1 --trace-sample=1 >"$LOG" 2>&1 &
DAEMON_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/^adrecd listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$LOG"; echo "FAIL: daemon died during startup"; exit 1; }
  sleep 0.2
done
[ -n "$PORT" ] && echo "smoke: daemon up on port $PORT" || { cat "$LOG"; echo "FAIL: no listening line"; exit 1; }

expect() {  # expect <want-substring> <verb> [args...]
  local want="$1"; shift
  local got
  got="$("$CLIENT" 127.0.0.1 "$PORT" "$@")" || true
  case "$got" in
    *"$want"*) echo "smoke: $* -> ok" ;;
    *) echo "FAIL: '$*' returned '$got', wanted '$want'"; exit 1 ;;
  esac
}

expect "PONG" ping
expect "OK" tweet 4 86400 "coffee and live music downtown"
expect "OK" checkin 4 86500 7
expect "OK" adput 1 100 50 1.5 "" "" "coffee and music deals"
expect "ADS" topk 4 3
expect "OK" analyze 0.45
expect "USERS" match 1
expect "STAT engine.tweets 1" stats
expect "adrec_serve_cmd_topk" metrics
expect "adrec_engine_tweets_total 1" metrics
expect "CLIENT_ERROR" frobnicate

# Observability surface: the topk above must have left a trace in the
# flight recorder covering serve -> engine, and the Chrome export must
# be loadable JSON.
expect "TRACE" trace
expect "serve.dispatch" trace
expect "engine.topk" trace
expect "traceEvents" trace chrome
expect "SLOW" slow
expect "CONN" conns
expect "adrec_trace_traces_started_total" metrics

expect "OK" addel 1
expect "NOT_FOUND" addel 1

# Parse-or-reject: a malformed payload must not take the daemon down.
expect "CLIENT_ERROR" topk 4 0
kill -0 "$DAEMON_PID" || { echo "FAIL: daemon died on bad input"; exit 1; }

# Graceful drain: SIGTERM must exit 0 after flushing.
kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
[ "$RC" -eq 0 ] || { cat "$LOG"; echo "FAIL: drain exit code $RC"; exit 1; }
grep -q "drained" "$LOG" || { cat "$LOG"; echo "FAIL: no drain log line"; exit 1; }

# --- Phase 2: multi-core daemon with per-shard WAL streams. ---

boot() {  # boot [extra adrecd flags...]
  : >"$LOG"
  "$ADRECD" --port=0 --shards=2 --workers=2 \
    --wal-dir="$WALDIR/wal" --wal-shards=2 \
    "$@" >"$LOG" 2>&1 &
  DAEMON_PID=$!
  PORT=""
  for _ in $(seq 1 50); do
    PORT="$(sed -n 's/^adrecd listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")"
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$LOG"; echo "FAIL: pool daemon died during startup"; exit 1; }
    sleep 0.2
  done
  [ -n "$PORT" ] || { cat "$LOG"; echo "FAIL: pool daemon printed no listening line"; exit 1; }
}

drain() {
  kill -TERM "$DAEMON_PID"
  local rc=0
  wait "$DAEMON_PID" || rc=$?
  [ "$rc" -eq 0 ] || { cat "$LOG"; echo "FAIL: pool drain exit code $rc"; exit 1; }
}

boot
echo "smoke: pool daemon up on port $PORT (2 workers, 2 WAL streams)"
expect "PONG" ping
# Users 3 and 4 hash to different shards under the 2-shard split, so
# both WAL streams see traffic.
expect "OK" tweet 3 86400 "coffee and live music downtown"
expect "OK" tweet 4 86401 "rooftop jazz tonight"
expect "OK" adput 9 100 50 1.5 "" "" "coffee and music deals"
expect "ADS" topk 4 3
expect "STAT engine.tweets 2" stats
expect "worker=" conns
drain

# Durability landed as one log stream per shard.
for s in 0 1; do
  [ -d "$WALDIR/wal/$s" ] || { ls -R "$WALDIR/wal"; echo "FAIL: no WAL stream dir $s"; exit 1; }
done

# Parallel recovery: a fresh boot over the same log must replay both
# streams and answer from the recovered state.
boot
echo "smoke: pool daemon recovered on port $PORT"
expect "STAT engine.tweets 2" stats
expect "ADS" topk 3 3
drain
grep -q "drained" "$LOG" || { cat "$LOG"; echo "FAIL: no pool drain log line"; exit 1; }

echo "smoke: all serve checks passed"
