#!/usr/bin/env bash
# Kill-and-recover smoke test of the adrecd durability path: boots the
# daemon with a WAL, streams ingest over the real wire, SIGKILLs it
# mid-stream (no drain, no goodbye), verifies the log with `adrec_tool
# wal verify`, restarts the daemon on the same log directory and checks
# the recovered state serves. Runs the loop twice: once recovering from
# the log alone, once through an explicit `checkpoint` + tail replay.
#
# Two more phases cover the incremental-durability paths: a kill landing
# inside a delta checkpoint save (staging wreckage left in
# checkpoint.delta/ and checkpoint.tmp/ must be ignored, the intact
# chain recovered), and a kill landing inside a compaction swap (the
# .clog outputs renamed in but the superseded .log inputs not yet
# unlinked, plus a stray .clog.tmp — restart must detect the stale
# inputs, sweep them, and serve the identical state).
#
#   ci_crash_recovery.sh <path-to-adrecd> <path-to-adrec_client> <path-to-adrec_tool>
#
# Registered as a tier1 ctest (see tests/CMakeLists.txt); the in-process
# equivalents (serve_wal_test, wal_crash_differential_test) prove
# bit-exactness, this proves the shipped binaries wire it all together.
set -euo pipefail

ADRECD="${1:?usage: ci_crash_recovery.sh <adrecd> <adrec_client> <adrec_tool>}"
CLIENT="${2:?usage: ci_crash_recovery.sh <adrecd> <adrec_client> <adrec_tool>}"
TOOL="${3:?usage: ci_crash_recovery.sh <adrecd> <adrec_client> <adrec_tool>}"

LOG="$(mktemp)"
WAL_DIR="$(mktemp -d)"
DAEMON_PID=""
trap 'kill -9 "$DAEMON_PID" 2>/dev/null || true; rm -rf "$LOG" "$WAL_DIR"' EXIT

start_daemon() {  # start_daemon [extra adrecd flags...]
  : >"$LOG"
  "$ADRECD" --port=0 --wal-dir="$WAL_DIR" --wal-sync=group "$@" >"$LOG" 2>&1 &
  DAEMON_PID=$!
  PORT=""
  for _ in $(seq 1 50); do
    PORT="$(sed -n 's/^adrecd listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")"
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$LOG"; echo "FAIL: daemon died during startup"; exit 1; }
    sleep 0.2
  done
  [ -n "$PORT" ] || { cat "$LOG"; echo "FAIL: no listening line"; exit 1; }
}

expect() {  # expect <want-substring> <verb> [args...]
  local want="$1"; shift
  local got
  got="$("$CLIENT" 127.0.0.1 "$PORT" "$@")" || true
  case "$got" in
    *"$want"*) ;;
    *) echo "FAIL: '$*' returned '$got', wanted '$want'"; cat "$LOG"; exit 1 ;;
  esac
}

ingest() {  # ingest <count> <time-base>
  local n="$1" base="$2" i
  for i in $(seq 1 "$n"); do
    expect "OK" tweet "$((i % 7))" "$((base + i * 60))" "coffee and live music downtown $i"
    expect "OK" checkin "$((i % 7))" "$((base + i * 60 + 30))" "$((i % 5))"
  done
}

for ROUND in log-only checkpointed; do
  echo "crash-recovery: round $ROUND"
  rm -rf "$WAL_DIR"; mkdir -p "$WAL_DIR"
  start_daemon

  expect "OK" adput 1 100 0 1.5 "" "" "coffee and music deals"
  expect "OK" adput 2 100 0 1.2 "" "" "late night food trucks"
  ingest 10 86400
  if [ "$ROUND" = checkpointed ]; then
    expect "OK" checkpoint
    [ -f "$WAL_DIR/checkpoint/MANIFEST.tsv" ] || { echo "FAIL: no checkpoint manifest"; exit 1; }
  fi
  ingest 5 88400

  # The crash: SIGKILL, mid-stream, no drain. Group commit has acked
  # every reply above, so nothing acknowledged may be lost.
  kill -9 "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true

  "$TOOL" wal verify "$WAL_DIR" >/dev/null || { echo "FAIL: wal verify after SIGKILL"; exit 1; }
  "$TOOL" wal inspect "$WAL_DIR" >/dev/null || { echo "FAIL: wal inspect"; exit 1; }
  # 2 adputs + 15 tweets + 15 checkins, every one acknowledged pre-kill.
  DUMPED="$("$TOOL" wal dump "$WAL_DIR" | wc -l)"
  [ "$DUMPED" -eq 32 ] || { echo "FAIL: dumped $DUMPED records, wanted 32"; exit 1; }

  start_daemon
  grep -q "adrecd recovered from" "$LOG" || { cat "$LOG"; echo "FAIL: no recovery line"; exit 1; }
  if [ "$ROUND" = checkpointed ]; then
    grep -q "checkpoint_seqno=22" "$LOG" || { cat "$LOG"; echo "FAIL: wrong checkpoint seqno"; exit 1; }
  else
    grep -q "live_replayed=32" "$LOG" || { cat "$LOG"; echo "FAIL: wrong replay count"; exit 1; }
  fi

  # The recovered daemon serves: state is back (tweets counted per era),
  # queries work, and ingest continues on contiguous seqnos.
  expect "PONG" ping
  expect "ADS" topk 1 3
  expect "OK" tweet 1 90000 "one more after recovery"
  expect "STAT" stats
  kill -TERM "$DAEMON_PID"
  wait "$DAEMON_PID" || { echo "FAIL: drain exit after recovery"; exit 1; }
  "$TOOL" wal verify "$WAL_DIR" >/dev/null || { echo "FAIL: wal verify after drain"; exit 1; }
done

echo "crash-recovery: round kill-during-checkpoint-save"
rm -rf "$WAL_DIR"; mkdir -p "$WAL_DIR"
start_daemon --checkpoint-mode=delta
expect "OK" adput 1 100 0 1.5 "" "" "coffee and music deals"
expect "OK" adput 2 100 0 1.2 "" "" "late night food trucks"
ingest 10 86400
expect "OK" checkpoint        # gen 1: the rebase
ingest 5 88400
expect "OK" checkpoint        # gen 2: a delta riding on gen 1
[ -f "$WAL_DIR/checkpoint.delta/CURRENT" ] || { echo "FAIL: no delta CURRENT"; exit 1; }
ingest 5 90400

# The crash lands inside the NEXT save: SIGKILL, then the wreckage a
# death between staging and publish leaves behind — a torn delta staging
# generation and a torn classic checkpoint.tmp. Neither is published, so
# recovery must ignore both and use the intact gen-2 head.
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
STAGING="$WAL_DIR/checkpoint.delta/gen-00000000000000000099.tmp"
mkdir -p "$STAGING"
printf 'K 7 torn-mid-write' >"$STAGING/MANIFEST.tsv"
mkdir -p "$WAL_DIR/checkpoint.tmp/shard0"
printf 'half a snapshot' >"$WAL_DIR/checkpoint.tmp/shard0/snapshot_ads.tsv"

"$TOOL" wal verify "$WAL_DIR" >/dev/null || { echo "FAIL: wal verify after checkpoint-save kill"; exit 1; }
"$TOOL" checkpoint inspect "$WAL_DIR" >/dev/null || { echo "FAIL: checkpoint inspect"; exit 1; }
start_daemon --checkpoint-mode=delta
grep -q "adrecd recovered from delta-checkpoint+wal" "$LOG" \
  || { cat "$LOG"; echo "FAIL: recovery did not use the delta chain"; exit 1; }
expect "PONG" ping
expect "ADS" topk 1 3
expect "OK" tweet 1 92000 "one more after the checkpoint-save kill"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "FAIL: drain exit after checkpoint-save kill"; exit 1; }

echo "crash-recovery: round kill-during-compaction-swap"
# Reuse the log above. Snapshot the directory, compact the original,
# then rebuild the exact mid-swap state in the snapshot: every .clog
# output renamed in, every superseded .log input still present, plus a
# stray .clog.tmp from the torn staging write.
PRE_DIR="$(mktemp -d)"
cp -r "$WAL_DIR/." "$PRE_DIR/"
"$TOOL" wal compact "$WAL_DIR" >/dev/null || { echo "FAIL: wal compact"; exit 1; }
CLOGS="$(find "$WAL_DIR" -maxdepth 1 -name '*.clog' | wc -l)"
[ "$CLOGS" -ge 1 ] || { echo "FAIL: compaction produced no .clog output"; exit 1; }
find "$WAL_DIR" -maxdepth 1 -name '*.clog' -exec cp {} "$PRE_DIR/" \;
printf 'torn compaction staging' >"$PRE_DIR/wal-00000000000000000999.clog.tmp"
rm -rf "$WAL_DIR"; mv "$PRE_DIR" "$WAL_DIR"

"$TOOL" wal verify "$WAL_DIR" >/dev/null || { echo "FAIL: wal verify after compaction-swap kill"; exit 1; }
start_daemon --checkpoint-mode=delta
grep -q "adrecd recovered from delta-checkpoint+wal" "$LOG" \
  || { cat "$LOG"; echo "FAIL: recovery over half-swapped log"; exit 1; }
expect "PONG" ping
expect "ADS" topk 1 3
expect "OK" tweet 1 94000 "one more after the compaction-swap kill"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "FAIL: drain exit after compaction-swap kill"; exit 1; }
# The stale inputs and staging leftovers must be gone after the restart.
STALE="$(find "$WAL_DIR" -maxdepth 1 -name '*.clog.tmp' | wc -l)"
[ "$STALE" -eq 0 ] || { echo "FAIL: $STALE stray .clog.tmp left behind"; exit 1; }
"$TOOL" wal verify "$WAL_DIR" >/dev/null || { echo "FAIL: wal verify after sweep"; exit 1; }

echo "crash-recovery: all checks passed"
