#!/usr/bin/env bash
# Sanitizer gates.
#
#   tsan  — ThreadSanitizer over the concurrency-sensitive subset: the obs
#           metric registry, the logging globals, histogram merge, the
#           sharded engine (shard-parallel RunAnalysis + merged stats),
#           the serve daemon (event loop vs. client threads, self-pipe
#           drain, periodic reporter), the WAL writer (group commit,
#           concurrent appenders batching one fdatasync), and the
#           replication pair (leader and follower event loops streaming
#           over a real socket, promotion under client traffic), the
#           trace flight recorder (seqlock ring under concurrent
#           writers/readers, collector Finish from many threads, traced
#           daemon requests end to end), and the topk result cache
#           (cached daemons under client traffic, the follower's
#           apply-observer invalidation hook, and the 20-seed
#           cached≡uncached differential across restarts and
#           replication), and the compressed posting-list index (codec
#           cursors, epoch seal/swap under engine churn, and the 20-seed
#           compressed≡uncompressed differential with compressed
#           followers tailing live daemons), and the multi-core worker
#           pool (acceptor handing sockets to event-loop workers over
#           SPSC mailboxes, cross-worker stats/trace merge, per-shard
#           WAL streams with group commit, and the per-stream repl
#           handshake), and the incremental-durability subsystem (delta
#           checkpoint saves with shard-parallel serialization, sealed-
#           segment compaction racing appends, checkpoint load
#           rejection, and the 20-seed delta≡full≡reference crash
#           differential with kill-points inside saves and swaps).
#   asan  — AddressSanitizer over the full suite minus the `fuzz` label
#           (the high-volume testkit differential sweeps; instrumented
#           builds run them ~10x slower for no extra memory-bug coverage —
#           the same code paths are exercised by the tier1 tests).
#   ubsan — UndefinedBehaviorSanitizer, same scope as asan, with
#           halt_on_error so a UB report actually fails the gate.
#   all   — tsan + asan + ubsan in sequence.
#
# Usage: scripts/ci_sanitize.sh [tsan|asan|ubsan|all] [build-dir]
#        (default: tsan, build dir build-<mode>)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-tsan}"
JOBS="$(nproc)"

run_tsan() {
  local build_dir="${1:-build-tsan}"
  local tsan_tests='obs_registry_test|obs_trace_test|core_engine_stats_test|core_sharded_test|common_histogram_test|feed_replayer_test|serve_daemon_test|serve_reporter_test|serve_trace_test|wal_log_test|serve_wal_test|serve_replica_test|serve_cache_test|cache_differential_test|postings_codec_test|postings_index_test|postings_differential_test|serve_pool_test|wal_delta_checkpoint_test|wal_compact_test|wal_checkpoint_load_test|wal_delta_differential_test'
  cmake -B "${build_dir}" -S . \
    -DADREC_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}" -j "${JOBS}" --target \
    obs_registry_test obs_trace_test core_engine_stats_test \
    core_sharded_test common_histogram_test feed_replayer_test \
    serve_daemon_test serve_reporter_test serve_trace_test \
    wal_log_test serve_wal_test serve_replica_test \
    serve_cache_test cache_differential_test \
    postings_codec_test postings_index_test postings_differential_test \
    serve_pool_test wal_delta_checkpoint_test wal_compact_test \
    wal_checkpoint_load_test wal_delta_differential_test
  ctest --test-dir "${build_dir}" -R "${tsan_tests}" \
    --output-on-failure -j "${JOBS}"
  echo "TSan gate passed."
}

run_asan() {
  local build_dir="${1:-build-asan}"
  cmake -B "${build_dir}" -S . \
    -DADREC_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}" -j "${JOBS}"
  ASAN_OPTIONS="detect_stack_use_after_return=1" \
    ctest --test-dir "${build_dir}" -LE fuzz --output-on-failure -j "${JOBS}"
  echo "ASan gate passed."
}

run_ubsan() {
  local build_dir="${1:-build-ubsan}"
  cmake -B "${build_dir}" -S . \
    -DADREC_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}" -j "${JOBS}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "${build_dir}" -LE fuzz --output-on-failure -j "${JOBS}"
  echo "UBSan gate passed."
}

case "${MODE}" in
  tsan)  run_tsan  "${2:-build-tsan}" ;;
  asan)  run_asan  "${2:-build-asan}" ;;
  ubsan) run_ubsan "${2:-build-ubsan}" ;;
  all)
    run_tsan
    run_asan
    run_ubsan
    echo "All sanitizer gates passed."
    ;;
  *)
    echo "usage: $0 [tsan|asan|ubsan|all] [build-dir]" >&2
    exit 2
    ;;
esac
