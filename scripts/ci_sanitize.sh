#!/usr/bin/env bash
# ThreadSanitizer gate for the concurrency-sensitive pieces: the obs
# metric registry, the logging globals, histogram merge, and the sharded
# engine (shard-parallel RunAnalysis + merged stats). A clean run here is
# what certifies those paths race-free.
#
# Usage: scripts/ci_sanitize.sh [build-dir]   (default build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
TSAN_TESTS='obs_registry_test|core_engine_stats_test|core_sharded_test|common_histogram_test|feed_replayer_test'

cmake -B "${BUILD_DIR}" -S . \
  -DADREC_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target \
  obs_registry_test core_engine_stats_test core_sharded_test \
  common_histogram_test feed_replayer_test
ctest --test-dir "${BUILD_DIR}" -R "${TSAN_TESTS}" --output-on-failure -j "$(nproc)"
echo "TSan gate passed."
