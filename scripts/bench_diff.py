#!/usr/bin/env python3
"""Compare two benchmark metric exports and gate on p95 regressions.

Each input is either a raw obs::ExportJson blob or a benchmark log
containing one or more ``BENCH_METRICS_JSON {...}`` lines (the last one
wins — reruns overwrite earlier measurements). The export format is
  {"counters": {...}, "gauges": {...},
   "timers": {"name": {"count":..,"mean":..,"p50":..,"p95":..,...}, ...}}

The gate compares every timer present in both exports and fails (exit 1)
when any p95 regresses by more than --threshold (default 10%). Timers
below --min-count samples are skipped as noise. Counters and gauges are
reported informationally, never gated.

Usage:
  scripts/bench_diff.py baseline.log candidate.log [--threshold 0.10]
"""

import argparse
import json
import sys

MARKER = "BENCH_METRICS_JSON"


def load_report(path):
    """Extracts the last metrics blob from a log file (or a raw JSON file)."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    blob = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith(MARKER):
            blob = line[len(MARKER):].strip()
    if blob is None:
        blob = text.strip()  # raw ExportJson file
    if not blob:
        raise ValueError(f"{path}: no {MARKER} line and no raw JSON content")
    try:
        report = json.loads(blob)
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: malformed metrics JSON: {err}") from err
    for section in ("counters", "gauges", "timers"):
        report.setdefault(section, {})
    return report


def relative_delta(base, cand):
    if base == 0:
        return float("inf") if cand > 0 else 0.0
    return (cand - base) / base


def main(argv):
    parser = argparse.ArgumentParser(
        description="Fail on benchmark timer p95 regressions.")
    parser.add_argument("baseline", help="baseline log or ExportJson file")
    parser.add_argument("candidate", help="candidate log or ExportJson file")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated relative p95 regression "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--min-count", type=int, default=10,
                        help="skip timers with fewer samples in either run "
                             "(default 10)")
    args = parser.parse_args(argv)

    try:
        base = load_report(args.baseline)
        cand = load_report(args.candidate)
    except (OSError, ValueError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2

    regressions = []
    shared = sorted(set(base["timers"]) & set(cand["timers"]))
    skipped = []
    print(f"{'timer':40s} {'base p95':>12s} {'cand p95':>12s} {'delta':>8s}")
    for name in shared:
        b, c = base["timers"][name], cand["timers"][name]
        if min(b.get("count", 0), c.get("count", 0)) < args.min_count:
            skipped.append(name)
            continue
        bp95, cp95 = float(b.get("p95", 0.0)), float(c.get("p95", 0.0))
        delta = relative_delta(bp95, cp95)
        flag = ""
        if delta > args.threshold:
            regressions.append((name, bp95, cp95, delta))
            flag = "  << REGRESSION"
        print(f"{name:40s} {bp95:12.3f} {cp95:12.3f} {delta:+7.1%}{flag}")
    for name in skipped:
        print(f"{name:40s}  (skipped: < {args.min_count} samples)")
    only_base = sorted(set(base["timers"]) - set(cand["timers"]))
    only_cand = sorted(set(cand["timers"]) - set(base["timers"]))
    if only_base:
        print(f"timers only in baseline: {', '.join(only_base)}")
    if only_cand:
        print(f"timers only in candidate: {', '.join(only_cand)}")

    changed = {
        name: (base["counters"].get(name), cand["counters"].get(name))
        for name in sorted(set(base["counters"]) | set(cand["counters"]))
        if base["counters"].get(name) != cand["counters"].get(name)
    }
    if changed:
        print("counter changes (informational):")
        for name, (b, c) in changed.items():
            print(f"  {name}: {b} -> {c}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} timer(s) regressed beyond "
              f"{args.threshold:.0%} p95:", file=sys.stderr)
        for name, bp95, cp95, delta in regressions:
            print(f"  {name}: {bp95:.3f} -> {cp95:.3f} ({delta:+.1%})",
                  file=sys.stderr)
        return 1
    print(f"\nOK: no timer p95 regression beyond {args.threshold:.0%} "
          f"({len(shared) - len(skipped)} timers compared).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
