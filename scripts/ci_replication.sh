#!/usr/bin/env bash
# Failover smoke test of the adrecd replication path, through the shipped
# binaries: boots a leader with a WAL, a follower replicating it
# (--follow), streams acknowledged ingest over the real wire, waits for
# the follower to catch up, SIGKILLs the leader (no drain, no goodbye),
# promotes the follower and asserts every acknowledged record survived
# the failover — present in the promoted daemon's own log and served by
# its queries — and that the promoted daemon accepts writes.
#
#   ci_replication.sh <path-to-adrecd> <path-to-adrec_client> <path-to-adrec_tool>
#
# Registered as a tier1 ctest (see tests/CMakeLists.txt); the in-process
# equivalents (serve_replica_test, replica_promotion_differential_test)
# prove bit-exactness, this proves the shipped binaries wire it together.
set -euo pipefail

ADRECD="${1:?usage: ci_replication.sh <adrecd> <adrec_client> <adrec_tool>}"
CLIENT="${2:?usage: ci_replication.sh <adrecd> <adrec_client> <adrec_tool>}"
TOOL="${3:?usage: ci_replication.sh <adrecd> <adrec_client> <adrec_tool>}"

LEADER_LOG="$(mktemp)"
FOLLOWER_LOG="$(mktemp)"
LEADER_WAL="$(mktemp -d)"
FOLLOWER_WAL="$(mktemp -d)"
LEADER_PID=""
FOLLOWER_PID=""
trap 'kill -9 "$LEADER_PID" "$FOLLOWER_PID" 2>/dev/null || true;
      rm -rf "$LEADER_LOG" "$FOLLOWER_LOG" "$LEADER_WAL" "$FOLLOWER_WAL"' EXIT

wait_port() {  # wait_port <logfile> <pid-varname>; sets REPLY to the port
  local log="$1" pid="$2" port=""
  for _ in $(seq 1 50); do
    port="$(sed -n 's/^adrecd listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")"
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$log"; echo "FAIL: daemon died during startup"; exit 1; }
    sleep 0.2
  done
  [ -n "$port" ] || { cat "$log"; echo "FAIL: no listening line"; exit 1; }
  REPLY="$port"
}

expect() {  # expect <want-substring> <port> <verb> [args...]
  local want="$1" port="$2"; shift 2
  local got
  got="$("$CLIENT" 127.0.0.1 "$port" "$@")" || true
  case "$got" in
    *"$want"*) ;;
    *) echo "FAIL: '$*' on :$port returned '$got', wanted '$want'"
       cat "$LEADER_LOG" "$FOLLOWER_LOG"; exit 1 ;;
  esac
}

applied_seqno() {  # applied_seqno <port>
  "$CLIENT" 127.0.0.1 "$1" metrics 2>/dev/null \
    | awk '$1 == "adrec_replica_applied_seqno" { print int($2) }'
}

wait_applied() {  # wait_applied <port> <seqno>
  local port="$1" want="$2" got=""
  for _ in $(seq 1 100); do
    got="$(applied_seqno "$port")"
    [ -n "$got" ] && [ "$got" -ge "$want" ] && return 0
    sleep 0.1
  done
  echo "FAIL: follower stuck at applied_seqno='${got:-?}', wanted >= $want"
  cat "$FOLLOWER_LOG"
  exit 1
}

# --- Leader up, with pre-existing acknowledged records (catch-up material).
"$ADRECD" --port=0 --wal-dir="$LEADER_WAL" --wal-sync=group >"$LEADER_LOG" 2>&1 &
LEADER_PID=$!
wait_port "$LEADER_LOG" "$LEADER_PID"; LEADER_PORT="$REPLY"

ACKED=0
expect "OK" "$LEADER_PORT" adput 1 100 0 1.5 "" "" "coffee and music deals"; ACKED=$((ACKED + 1))
expect "OK" "$LEADER_PORT" adput 2 100 0 1.2 "" "" "late night food trucks"; ACKED=$((ACKED + 1))
for i in $(seq 1 10); do
  expect "OK" "$LEADER_PORT" tweet "$((i % 7))" "$((86400 + i * 60))" "coffee and live music downtown $i"; ACKED=$((ACKED + 1))
  expect "OK" "$LEADER_PORT" checkin "$((i % 7))" "$((86400 + i * 60 + 30))" "$((i % 5))"; ACKED=$((ACKED + 1))
done

# --- Follower up: catches up from the segment files, then streams live.
"$ADRECD" --port=0 --wal-dir="$FOLLOWER_WAL" --follow="127.0.0.1:$LEADER_PORT" \
  >"$FOLLOWER_LOG" 2>&1 &
FOLLOWER_PID=$!
wait_port "$FOLLOWER_LOG" "$FOLLOWER_PID"; FOLLOWER_PORT="$REPLY"
grep -q "adrecd following 127.0.0.1:$LEADER_PORT" "$FOLLOWER_LOG" \
  || { cat "$FOLLOWER_LOG"; echo "FAIL: no following line"; exit 1; }

wait_applied "$FOLLOWER_PORT" "$ACKED"
echo "replication: follower caught up at seqno $ACKED"

# Read replica semantics: queries serve, writes answer READONLY.
expect "ADS" "$FOLLOWER_PORT" topk 1 3
expect "READONLY" "$FOLLOWER_PORT" tweet 1 99999 "not on a replica"

# Live tail: acknowledged while the stream is attached.
for i in $(seq 11 20); do
  expect "OK" "$LEADER_PORT" tweet "$((i % 7))" "$((86400 + i * 60))" "espresso refill round $i"; ACKED=$((ACKED + 1))
done
wait_applied "$FOLLOWER_PORT" "$ACKED"
echo "replication: follower holds live tail at seqno $ACKED"

# --- The failover: SIGKILL the leader, promote the follower.
kill -9 "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true

expect "OK" "$FOLLOWER_PORT" promote
grep -q "promoted" "$FOLLOWER_LOG" \
  || { cat "$FOLLOWER_LOG"; echo "FAIL: no promotion line"; exit 1; }

# Every acknowledged record survived the failover: the promoted daemon's
# own WAL holds all of them (logged before applied), frame-valid...
"$TOOL" wal verify "$FOLLOWER_WAL" >/dev/null || { echo "FAIL: wal verify on promoted log"; exit 1; }
DUMPED="$("$TOOL" wal dump "$FOLLOWER_WAL" | wc -l)"
[ "$DUMPED" -eq "$ACKED" ] || { echo "FAIL: promoted log has $DUMPED records, wanted $ACKED"; exit 1; }

# ...and its serving state answers from them, now accepting writes too.
expect "ADS" "$FOLLOWER_PORT" topk 1 3
expect "OK" "$FOLLOWER_PORT" tweet 1 100000 "first write after promotion"
expect "OK" "$FOLLOWER_PORT" addel 2
expect "STAT" "$FOLLOWER_PORT" stats

# Clean drain; the post-promotion writes are in the log on contiguous seqnos.
kill -TERM "$FOLLOWER_PID"
wait "$FOLLOWER_PID" || { echo "FAIL: drain exit after promotion"; exit 1; }
"$TOOL" wal verify "$FOLLOWER_WAL" >/dev/null || { echo "FAIL: wal verify after drain"; exit 1; }
DUMPED="$("$TOOL" wal dump "$FOLLOWER_WAL" | wc -l)"
[ "$DUMPED" -eq $((ACKED + 2)) ] || { echo "FAIL: drained log has $DUMPED records, wanted $((ACKED + 2))"; exit 1; }

echo "replication: all checks passed"
