#!/usr/bin/env bash
# Benchmark regression gate: runs the quick modes of bench_wal,
# bench_serve, bench_trace, and bench_cache, then diffs their timer p95s
# against the checked-in baselines in bench/baselines/ with
# scripts/bench_diff.py. A timer that regresses beyond the threshold
# fails the gate. bench_trace additionally self-gates: it exits non-zero
# if the traced topk p95 exceeds the untraced one by more than 2%.
# bench_cache self-gates too: cached hit ratio must exceed 80% at
# skew >= 0.99 and the cached topk p95 must stay within 1.25x of the
# uncached skew-0 p95. bench_postings self-gates: sampled results must
# be byte-identical across the two indexes, compressed topk p95 must
# stay within 1.15x of uncompressed at 10k ads, and compressed index
# memory must stay under 0.5x of the uncompressed estimate at the
# largest scale run. bench_pool self-gates the multi-core scaling curve
# (E24): >=1.6x at 2 workers and >=2.5x at 4 workers over the
# single-threaded daemon when the host has that many cores, degrading
# to a non-collapse bound (>=0.3x) on smaller machines. bench_checkpoint
# self-gates the durability bars (E25): the delta save pause must stay
# <=0.25x of a full save at the largest benched size, and recovery from
# a rebase + chained deltas + compacted tail must stay <=1.25x of
# recovery from a single full checkpoint.
#
#   scripts/ci_bench_gate.sh [--update-baseline] [build-dir]
#
#   --update-baseline  rewrite bench/baselines/*.json from this run
#                      instead of gating (do this on the reference
#                      machine after an intentional perf change).
#   build-dir          where the bench binaries live (default: build)
#
# The threshold defaults to 50% — quick modes are short (seconds, not
# minutes) and shared-CI neighbours are noisy, so the gate is tuned to
# catch order-of-magnitude mistakes (an accidental fsync per record, a
# quadratic scan), not single-digit drift. Override with
# ADREC_BENCH_THRESHOLD. Deliberately NOT registered as a ctest: p95s
# under sanitizer builds or loaded runners would flake the tier1 gate.
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
if [ "${1:-}" = "--update-baseline" ]; then
  UPDATE=1
  shift
fi
BUILD_DIR="${1:-build}"
BASELINE_DIR="bench/baselines"
THRESHOLD="${ADREC_BENCH_THRESHOLD:-0.50}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Quick modes: small enough to finish in seconds, large enough that the
# hot timers clear bench_diff's --min-count sample floor.
BENCHES="bench_wal bench_serve bench_trace bench_cache bench_postings bench_pool bench_checkpoint"
args_for() {
  case "$1" in
    bench_wal)      echo "5000" ;;        # max_events
    bench_serve)    echo "4 200" ;;       # connections commands-per-conn
    bench_trace)    echo "2000 5" ;;      # queries-per-round rounds
    bench_cache)    echo "20000 0 0.99 --users=1000" ;;  # ops skews...
    bench_postings) echo "10000 100000 --queries=2000" ;;  # inventory scales
    bench_pool)     echo "6000 8" ;;      # ops connections
    bench_checkpoint) echo "6000 200" ;;  # events churn-events
  esac
}

FAILED=0
for bench in $BENCHES; do
  bin="$BUILD_DIR/bench/$bench"
  [ -x "$bin" ] || { echo "FAIL: $bin not built (cmake --build $BUILD_DIR --target $bench)"; exit 2; }
  log="$TMP/$bench.log"
  # shellcheck disable=SC2046  # args_for output is intentionally split
  echo "== $bench $(args_for "$bench")"
  "$bin" $(args_for "$bench") >"$log" 2>&1 \
    || { cat "$log"; echo "FAIL: $bench exited non-zero"; exit 2; }

  # The baseline blob is the metrics JSON alone, not the whole log —
  # stable to diff in review and immune to incidental output changes.
  metrics="$(sed -n 's/^BENCH_METRICS_JSON //p' "$log" | tail -n 1)"
  [ -n "$metrics" ] || { cat "$log"; echo "FAIL: $bench emitted no BENCH_METRICS_JSON"; exit 2; }

  baseline="$BASELINE_DIR/$bench.json"
  if [ "$UPDATE" -eq 1 ]; then
    mkdir -p "$BASELINE_DIR"
    printf '%s\n' "$metrics" >"$baseline"
    echo "updated $baseline"
    continue
  fi

  [ -f "$baseline" ] || { echo "FAIL: no baseline $baseline (run $0 --update-baseline)"; exit 2; }
  printf '%s\n' "$metrics" >"$TMP/$bench.candidate.json"
  if ! python3 scripts/bench_diff.py "$baseline" "$TMP/$bench.candidate.json" \
         --threshold "$THRESHOLD"; then
    FAILED=1
  fi
done

if [ "$UPDATE" -eq 1 ]; then
  echo "bench gate: baselines updated"
  exit 0
fi
if [ "$FAILED" -ne 0 ]; then
  echo "bench gate: FAILED (threshold $THRESHOLD)"
  exit 1
fi
echo "bench gate: passed (threshold $THRESHOLD)"
