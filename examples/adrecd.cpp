// adrecd — the network serving daemon: an event-driven TCP front end
// (src/serve) over a sharded recommendation engine.
//
//   adrecd [--port=N] [--shards=N] [--workers=N] [--dir=DIR] [--alpha=A]
//          [--report-interval=SEC] [--max-connections=N]
//          [--idle-timeout=SEC] [--snapshot-root=DIR]
//          [--wal-dir=DIR] [--wal-shards=N]
//          [--wal-sync=none|interval|group]
//          [--checkpoint-interval=SEC] [--checkpoint-mode=full|delta]
//          [--checkpoint-rebase-every=N] [--compact-interval=SEC]
//          [--wal-retain=SEC]
//          [--wal-append-sample=N] [--follow=HOST:PORT]
//          [--trace-ring=N] [--trace-slow-ms=MS] [--trace-sample=N]
//          [--topk-cache=N] [--topk-cache-admission=always|frequency]
//          [--compressed-index] [--postings-seal=N]
//
// The `snapshot` verb is disabled unless --snapshot-root names a base
// directory; client-supplied targets are then confined under it.
//
// With --wal-dir, every ingest verb is written ahead to a durable log
// (src/wal) before it executes, and startup runs crash recovery: the
// newest checkpoint under the log directory is restored and the log tail
// replayed (a torn final record is cut). --wal-sync picks the durability
// policy (default group: acked ingests are on disk, one fdatasync per
// event-loop batch). --checkpoint-interval takes periodic coordinated
// checkpoints (the `checkpoint` admin verb does one on demand);
// --wal-retain bounds how much replay history survives a checkpoint
// (default: keep everything — exact analysis-window recovery).
// --checkpoint-mode=delta switches to incremental delta-chain snapshots
// (DESIGN.md §17): each checkpoint writes only the shard snapshots whose
// content changed, bounding the save pause by churn rather than total
// state size; --checkpoint-rebase-every=N (default 8) forces a full
// rebase generation every N saves to bound the chain recovery resolves.
// --compact-interval=SEC periodically rewrites sealed WAL segments
// dropping superseded ad-inventory records (the `compact` admin verb
// does one on demand); segments a connected follower still needs are
// preserved.
//
// With --follow=HOST:PORT (requires --wal-dir), the daemon runs as a
// READ REPLICA of the adrecd at that address: it recovers its local log
// as usual, then streams the leader's WAL tail from where its own log
// ends, writing each record to its own log before applying it. Write
// verbs answer `READONLY`; queries serve from replicated state. The
// `promote` admin verb detaches from the leader, seals the local log and
// starts accepting writes (DESIGN.md §12).
//
// Request tracing (the flight recorder, DESIGN.md §13) is always on:
// every request gets a span tree (serve dispatch -> engine stages -> WAL
// commit wave; replica apply on a follower), retained tail-based —
// errors/sheds and requests slower than --trace-slow-ms (default 10) are
// pinned, the rest sampled 1-in---trace-sample (default 16) — in a
// --trace-ring-slot ring (default 512; 0 disables tracing). Inspect with
// the `trace` (TSV or Chrome JSON), `slow` and `conns` admin verbs, or
// `adrec_tool trace`. --wal-append-sample tunes the wal.append_us timer
// sampling rate (default 16, 0 off).
//
// --topk-cache=N turns on the stream-clock-invalidated topk result cache
// (DESIGN.md §14) with room for N entries (default 0 = off). Cached
// replies are byte-identical to recomputed ones: every ingest (local or
// replicated) evicts the entries it could influence, and hits revalidate
// and charge budgets/frequency caps through the engine. Eviction is LRU;
// --topk-cache-admission picks the fill gate (default `frequency`, a
// doorkeeper that admits a key under pressure only on repeat sighting;
// `always` admits everything). Watch cache.{hits,misses,invalidations,
// evictions} and cache.hit_ratio via the `metrics` verb.
//
// --compressed-index serves ad queries from the compressed posting-list
// inventory index (DESIGN.md §15) instead of the uncompressed AdIndex;
// results are byte-identical, memory is not. --postings-seal=N sets the
// delta-index size that triggers an epoch seal (default 1024). Watch
// postings.{bytes,lists,epochs,delta_ads,sealed_ads,pruned_ratio} and
// index.{ads,postings_bytes} via the `metrics` verb.
//
// Multi-core serving (DESIGN.md §16): --workers=N (default = the shard
// count) runs N shard-affine event-loop workers behind one acceptor
// thread — worker `w` owns the engine shards `s % N == w` and runs the
// full single-threaded machinery over its own connections; cross-shard
// ops forward through lock-free mailboxes, rare admin verbs stop the
// world. --workers=1 is the classic single-threaded server. With a WAL,
// multi-worker mode requires --wal-shards equal to --shards so every
// worker commits, checkpoints and recovers its own log streams
// (wal/<shard>/wal-<seqno>.log); --wal-shards also works with
// --workers=1 (parallel recovery, per-stream replication) and defaults
// to 1 (the flat single-stream layout). --topk-cache is incompatible
// with --workers>1. With --follow and --wal-shards=N>1, the daemon runs
// one replication stream per shard (`repl <shard> <cursor>`), each
// applied by the worker owning that shard.
//
// With --dir, the knowledge base is loaded from DIR/kb.tsv and, when
// present, DIR/ads.tsv and DIR/trace.tsv are preloaded into the engine
// (so the daemon starts warm). Without --dir, a synthetic case-study
// knowledge base is generated — enough to serve the wire protocol
// end-to-end with no files on disk.
//
// Prints `adrecd listening on <host>:<port>` once ready (the smoke test
// and the bench harness parse this line), then serves until SIGTERM or
// SIGINT, which trigger a graceful drain: stop accepting, flush pending
// responses, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include <vector>

#include "annotate/kb_io.h"
#include "core/sharded_engine.h"
#include "obs/trace.h"
#include "feed/trace_io.h"
#include "feed/workload.h"
#include "replica/follower.h"
#include "serve/pool/pool_server.h"
#include "serve/server.h"
#include "wal/checkpoint.h"
#include "wal/sharded_wal.h"
#include "wal/wal.h"

namespace {

adrec::serve::Server* g_server = nullptr;
adrec::serve::pool::PoolServer* g_pool = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
  if (g_pool != nullptr) g_pool->RequestDrain();
}

bool FlagValue(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7311;
  size_t shards = 1;
  size_t workers = 0;  // 0 = default to the shard count
  size_t wal_shards = 1;
  std::string dir;
  double alpha = -1.0;
  std::string wal_dir;
  std::string follow;
  adrec::wal::WalOptions wal_opts;
  adrec::wal::CheckpointOptions ckpt_opts;
  adrec::serve::ServerOptions options;
  adrec::obs::TraceCollectorOptions trace_opts;
  bool compressed_index = false;
  adrec::postings::PostingsOptions postings_opts;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (FlagValue(argv[i], "--port", &v)) {
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--shards", &v)) {
      shards = static_cast<size_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--workers", &v)) {
      workers = static_cast<size_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--wal-shards", &v)) {
      wal_shards = static_cast<size_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--dir", &v)) {
      dir = v;
    } else if (FlagValue(argv[i], "--alpha", &v)) {
      alpha = std::atof(v);
    } else if (FlagValue(argv[i], "--report-interval", &v)) {
      options.report_interval = std::atof(v);
    } else if (FlagValue(argv[i], "--max-connections", &v)) {
      options.max_connections = static_cast<size_t>(std::atoi(v));
    } else if (FlagValue(argv[i], "--idle-timeout", &v)) {
      options.idle_timeout = std::atoll(v);
    } else if (FlagValue(argv[i], "--snapshot-root", &v)) {
      options.snapshot_root = v;
    } else if (FlagValue(argv[i], "--wal-dir", &v)) {
      wal_dir = v;
    } else if (FlagValue(argv[i], "--wal-sync", &v)) {
      auto policy = adrec::wal::ParseSyncPolicy(v);
      if (!policy.ok()) {
        std::fprintf(stderr, "--wal-sync: %s\n",
                     policy.status().ToString().c_str());
        return 2;
      }
      wal_opts.sync = policy.value();
    } else if (FlagValue(argv[i], "--checkpoint-interval", &v)) {
      options.checkpoint_interval = std::atof(v);
    } else if (FlagValue(argv[i], "--checkpoint-mode", &v)) {
      auto mode = adrec::wal::ParseCheckpointMode(v);
      if (!mode.ok()) {
        std::fprintf(stderr, "--checkpoint-mode: %s\n",
                     mode.status().ToString().c_str());
        return 2;
      }
      ckpt_opts.mode = mode.value();
    } else if (FlagValue(argv[i], "--checkpoint-rebase-every", &v)) {
      ckpt_opts.rebase_every = static_cast<size_t>(std::atoll(v));
    } else if (FlagValue(argv[i], "--compact-interval", &v)) {
      options.compact_interval = std::atof(v);
    } else if (FlagValue(argv[i], "--wal-retain", &v)) {
      ckpt_opts.analysis_retention = std::atoll(v);
    } else if (FlagValue(argv[i], "--wal-append-sample", &v)) {
      wal_opts.append_sample_every =
          static_cast<uint64_t>(std::atoll(v));
    } else if (FlagValue(argv[i], "--follow", &v)) {
      follow = v;
    } else if (FlagValue(argv[i], "--trace-ring", &v)) {
      trace_opts.ring_slots = static_cast<size_t>(std::atoll(v));
    } else if (FlagValue(argv[i], "--trace-slow-ms", &v)) {
      trace_opts.slow_us = std::atof(v) * 1000.0;
    } else if (FlagValue(argv[i], "--trace-sample", &v)) {
      trace_opts.sample_every = static_cast<uint64_t>(std::atoll(v));
    } else if (FlagValue(argv[i], "--topk-cache", &v)) {
      options.topk_cache.capacity = static_cast<size_t>(std::atoll(v));
    } else if (FlagValue(argv[i], "--topk-cache-admission", &v)) {
      if (std::strcmp(v, "always") == 0) {
        options.topk_cache.admission =
            adrec::cache::TopkCacheOptions::Admission::kAlways;
      } else if (std::strcmp(v, "frequency") == 0) {
        options.topk_cache.admission =
            adrec::cache::TopkCacheOptions::Admission::kFrequency;
      } else {
        std::fprintf(stderr,
                     "--topk-cache-admission: want always|frequency\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--compressed-index") == 0) {
      compressed_index = true;
    } else if (FlagValue(argv[i], "--postings-seal", &v)) {
      postings_opts.seal_threshold = static_cast<size_t>(std::atoll(v));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--shards=N] [--workers=N] "
                   "[--dir=DIR] "
                   "[--alpha=A] [--report-interval=SEC] "
                   "[--max-connections=N] [--idle-timeout=SEC] "
                   "[--snapshot-root=DIR] [--wal-dir=DIR] "
                   "[--wal-shards=N] "
                   "[--wal-sync=none|interval|group] "
                   "[--checkpoint-interval=SEC] "
                   "[--checkpoint-mode=full|delta] "
                   "[--checkpoint-rebase-every=N] "
                   "[--compact-interval=SEC] [--wal-retain=SEC] "
                   "[--wal-append-sample=N] [--follow=HOST:PORT] "
                   "[--trace-ring=N] [--trace-slow-ms=MS] "
                   "[--trace-sample=N] [--topk-cache=N] "
                   "[--topk-cache-admission=always|frequency] "
                   "[--compressed-index] [--postings-seal=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards == 0) shards = 1;
  if (workers == 0) workers = shards;  // shard-affine by default
  if (wal_shards == 0) wal_shards = 1;
  if (wal_shards != 1 && wal_shards != shards) {
    std::fprintf(stderr,
                 "--wal-shards must be 1 (single stream) or equal "
                 "--shards (%zu), got %zu\n",
                 shards, wal_shards);
    return 2;
  }
  if (workers > 1 && !wal_dir.empty() && wal_shards != shards) {
    std::fprintf(stderr,
                 "--workers=%zu with a WAL requires --wal-shards=%zu "
                 "(one log stream per shard; a single shared stream "
                 "would serialise every worker's commit barrier)\n",
                 workers, shards);
    return 2;
  }
  if (workers > 1 && options.topk_cache.capacity > 0) {
    std::fprintf(stderr,
                 "--topk-cache is incompatible with --workers>1 (the "
                 "cache is invalidated by pool-wide ingest; see "
                 "DESIGN.md §16)\n");
    return 2;
  }
  wal_opts.shards = wal_shards;
  options.port = port;

  // The flight recorder: always on unless --trace-ring=0. The collector
  // outlives the server and the follower, both of which hold a pointer.
  adrec::obs::TraceCollector tracer(trace_opts);
  options.tracer = &tracer;

  adrec::replica::FollowerOptions follow_opts;
  if (!follow.empty()) {
    if (wal_dir.empty()) {
      std::fprintf(stderr,
                   "--follow requires --wal-dir (the follower logs every "
                   "replicated record before applying it)\n");
      return 2;
    }
    const size_t colon = follow.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == follow.size()) {
      std::fprintf(stderr, "--follow wants HOST:PORT, got '%s'\n",
                   follow.c_str());
      return 2;
    }
    follow_opts.host = follow.substr(0, colon);
    follow_opts.port =
        static_cast<uint16_t>(std::atoi(follow.c_str() + colon + 1));
  }

  // Knowledge base: from --dir when given, synthetic otherwise.
  std::shared_ptr<adrec::annotate::KnowledgeBase> kb;
  auto analyzer = std::make_shared<adrec::text::Analyzer>();
  if (!dir.empty()) {
    auto loaded =
        adrec::annotate::ReadKnowledgeBase(dir + "/kb.tsv", analyzer.get());
    if (!loaded.ok()) {
      std::fprintf(stderr, "kb: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    kb = std::shared_ptr<adrec::annotate::KnowledgeBase>(
        std::move(loaded).value().release());
  } else {
    adrec::feed::WorkloadOptions wopts = adrec::feed::CaseStudyOptions();
    wopts.days = 1;  // the KB does not depend on trace length
    kb = adrec::feed::GenerateWorkload(wopts).kb;
  }

  adrec::core::EngineOptions engine_opts;
  if (alpha >= 0.0) engine_opts.alpha = alpha;
  engine_opts.compressed_index = compressed_index;
  engine_opts.postings = postings_opts;
  adrec::core::ShardedEngine engine(
      kb, adrec::timeline::TimeSlotScheme::PaperScheme(), shards,
      engine_opts);

  // Warm start: preload the inventory and trace when the files exist.
  if (!dir.empty()) {
    if (std::filesystem::exists(dir + "/ads.tsv")) {
      auto ads = adrec::feed::ReadAds(dir + "/ads.tsv");
      if (!ads.ok()) {
        std::fprintf(stderr, "ads: %s\n", ads.status().ToString().c_str());
        return 1;
      }
      for (const auto& ad : ads.value()) {
        if (auto s = engine.InsertAd(ad); !s.ok()) {
          std::fprintf(stderr, "insert ad %u: %s\n", ad.id.value,
                       s.ToString().c_str());
          return 1;
        }
      }
      std::printf("adrecd preloaded %zu ads\n", ads.value().size());
    }
    if (std::filesystem::exists(dir + "/trace.tsv")) {
      auto trace = adrec::feed::ReadTrace(dir + "/trace.tsv");
      if (!trace.ok()) {
        std::fprintf(stderr, "trace: %s\n",
                     trace.status().ToString().c_str());
        return 1;
      }
      for (const auto& c : trace.value().check_ins) engine.OnCheckIn(c);
      for (const auto& t : trace.value().tweets) engine.OnTweet(t);
      std::printf("adrecd preloaded %zu tweets, %zu check-ins\n",
                  trace.value().tweets.size(),
                  trace.value().check_ins.size());
    }
  }

  // Durability: recover from the WAL (checkpoint + tail replay), then
  // open the writer at the first unused seqno. Recovery runs after the
  // warm preload, so a preloaded inventory that was also checkpointed or
  // logged re-applies idempotently (AlreadyExists is tolerated).
  std::unique_ptr<adrec::wal::CheckpointManager> checkpointer;
  std::unique_ptr<adrec::wal::WalWriter> wal;
  std::unique_ptr<adrec::wal::ShardedWal> sharded_wal;
  adrec::Timestamp recovered_stream_time = 0;
  if (!wal_dir.empty()) {
    checkpointer =
        std::make_unique<adrec::wal::CheckpointManager>(wal_dir, ckpt_opts);
    // Sharded recovery replays every stream concurrently (one thread per
    // shard); wal_shards == 1 is the classic single-stream path.
    auto recovered = checkpointer->Recover(&engine, wal_shards);
    if (!recovered.ok()) {
      std::fprintf(stderr, "wal recover: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    const adrec::wal::RecoveryResult& r = recovered.value();
    std::printf(
        "adrecd recovered from %s: checkpoint_seqno=%llu next_seqno=%llu "
        "window_replayed=%zu live_replayed=%zu torn_bytes=%llu "
        "streams=%zu\n",
        r.from_delta ? "delta-checkpoint+wal"
                     : (r.from_checkpoint ? "checkpoint+wal" : "wal"),
        static_cast<unsigned long long>(r.checkpoint_seqno),
        static_cast<unsigned long long>(r.next_seqno), r.window_replayed,
        r.live_replayed,
        static_cast<unsigned long long>(r.torn_bytes_truncated),
        wal_shards);
    if (wal_shards > 1) {
      auto opened = adrec::wal::ShardedWal::Open(wal_dir, wal_opts,
                                                 r.stream_next_seqnos);
      if (!opened.ok()) {
        std::fprintf(stderr, "wal open: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      sharded_wal = std::move(opened).value();
      options.sharded_wal = sharded_wal.get();
    } else {
      auto opened =
          adrec::wal::WalWriter::Open(wal_dir, wal_opts, r.next_seqno);
      if (!opened.ok()) {
        std::fprintf(stderr, "wal open: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      wal = std::move(opened).value();
      options.wal = wal.get();
    }
    options.checkpointer = checkpointer.get();
    recovered_stream_time = r.max_event_time;
  }

  // Follower mode: replicate the leader's WAL tail from where the local
  // (just-recovered) log ends. The Follower runs inside the server's
  // event loop; the server starts read-only until `promote`.
  std::vector<std::unique_ptr<adrec::replica::Follower>> followers;
  if (!follow.empty()) {
    follow_opts.tracer = &tracer;
    if (wal_shards > 1) {
      // One replication stream per shard: follower `s` handshakes
      // `repl <s> <cursor>`, logs into its own stream and applies only
      // to engine shard `s` (the worker owning the shard polls it).
      options.followers.assign(wal_shards, nullptr);
      for (size_t s = 0; s < wal_shards; ++s) {
        adrec::replica::FollowerOptions fo = follow_opts;
        fo.shard = s;
        followers.push_back(std::make_unique<adrec::replica::Follower>(
            &engine, sharded_wal->stream(s), fo));
        options.followers[s] = followers.back().get();
      }
      std::printf(
          "adrecd following %s:%u with %zu shard streams (read-only)\n",
          follow_opts.host.c_str(), follow_opts.port, wal_shards);
    } else {
      followers.push_back(std::make_unique<adrec::replica::Follower>(
          &engine, wal.get(), follow_opts));
      options.follower = followers.back().get();
      std::printf("adrecd following %s:%u from cursor %llu (read-only)\n",
                  follow_opts.host.c_str(), follow_opts.port,
                  static_cast<unsigned long long>(wal->last_seqno()));
    }
  }

  std::signal(SIGPIPE, SIG_IGN);
  if (workers > 1) {
    adrec::serve::pool::PoolServer pool(&engine, options, workers);
    if (recovered_stream_time > 0) {
      pool.SeedStreamClock(recovered_stream_time);
    }
    if (auto s = pool.Start(); !s.ok()) {
      std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
      return 1;
    }
    g_pool = &pool;
    std::signal(SIGTERM, HandleSignal);
    std::signal(SIGINT, HandleSignal);
    std::printf("adrecd listening on %s:%u (%zu shard%s, %zu workers)\n",
                options.host.c_str(), pool.port(), shards,
                shards == 1 ? "" : "s", workers);
    std::fflush(stdout);
    pool.Run();
    g_pool = nullptr;
  } else {
    adrec::serve::Server server(&engine, options);
    // Resume the stream clock where the recovered trace left off, so the
    // analysis window and ad expiry pick up where the crashed run was.
    if (recovered_stream_time > 0) {
      server.SeedStreamClock(recovered_stream_time);
    }
    if (auto s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
      return 1;
    }
    g_server = &server;
    std::signal(SIGTERM, HandleSignal);
    std::signal(SIGINT, HandleSignal);
    std::printf("adrecd listening on %s:%u (%zu shard%s)\n",
                options.host.c_str(), server.port(), shards,
                shards == 1 ? "" : "s");
    std::fflush(stdout);
    server.Run();
    g_server = nullptr;
  }
  std::printf("adrecd drained, exiting\n");
  return 0;
}
