// adrec_tool — command-line front end for the library:
//
//   adrec_tool generate <dir> [users] [days] [ads] [seed]
//       Generates a synthetic trace and writes trace.tsv, ads.tsv and
//       kb.tsv into <dir>.
//
//   adrec_tool recommend <dir> [alpha]
//       Loads the files written by `generate`, replays the trace through
//       the engine, runs the triadic analysis and prints the target-user
//       recommendation for every ad. Also writes an engine snapshot back
//       into <dir>.
//
//   adrec_tool resume <dir>
//       Restores the engine from the snapshot written by `recommend`
//       (profiles, ads, impression counters — no replay) and prints the
//       restored serving state.
//
//   adrec_tool stats <dir> [k] [--format=text|prometheus]
//       Replays the trace through a fully instrumented engine, serves
//       top-k ads for every tweet, runs the analysis, then prints the
//       per-stage latency tables and writes the same data as
//       <dir>/stats.json (verified by parsing it back).
//       --format=prometheus instead prints the snapshot in Prometheus
//       text exposition format (the same payload adrecd serves for its
//       `metrics` command) and skips the JSON file.
//
//   adrec_tool trace <host:port> [trace|slow|conns]
//              [--format=tsv|chrome|pretty] [--out=FILE]
//       Fetches the flight recorder of a live adrecd: `trace` (default)
//       dumps the recent-trace ring, `slow` the slow-request log, and
//       `conns` the per-connection diagnostics. --format=chrome converts
//       a trace dump to Chrome trace-event JSON (load the file in
//       Perfetto / chrome://tracing); --format=pretty renders each trace
//       as an indented span tree. --out writes the payload to FILE
//       instead of stdout.
//
//   adrec_tool wal <inspect|verify|dump|compact> <wal-dir>
//       Offline tooling for an adrecd write-ahead log directory.
//       `inspect` prints a per-segment table plus the checkpoint
//       manifest; `verify` checks CRCs, seqno contiguity and payload
//       grammar (exit 0 with a warning for a torn final record, exit 1
//       for any hard corruption); `dump` prints every record as
//       `<seqno>\t<payload>` lines; `compact` rewrites the sealed
//       segments dropping superseded ad-inventory records (the daemon
//       must not have the log open — the newest segment is left alone
//       as the potential torn-tail owner).
//
//   adrec_tool checkpoint inspect <wal-dir>
//       Prints the checkpoint state of a log directory: the classic
//       manifest (when present) and the full delta chain — every
//       generation with its WAL mark, diff base, rebase depth and how
//       many of its files are physically written vs carried by
//       reference (DESIGN.md §17).
//
// The subcommands communicate only through the files, demonstrating that
// the on-disk formats round-trip the full pipeline.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "annotate/kb_io.h"
#include "core/engine.h"
#include "core/snapshot.h"
#include "feed/trace_io.h"
#include "feed/workload.h"
#include "obs/stats_export.h"
#include "serve/client.h"
#include "wal/delta/compactor.h"
#include "wal/delta/delta_checkpoint.h"
#include "wal/sharded_wal.h"
#include "wal/wal.h"

namespace {

int Generate(const std::string& dir, int argc, char** argv) {
  adrec::feed::WorkloadOptions opts = adrec::feed::CaseStudyOptions();
  if (argc > 3) opts.num_users = static_cast<size_t>(std::atoi(argv[3]));
  if (argc > 4) opts.days = std::atoi(argv[4]);
  if (argc > 5) opts.num_ads = static_cast<size_t>(std::atoi(argv[5]));
  if (argc > 6) opts.seed = static_cast<uint64_t>(std::atoll(argv[6]));

  std::filesystem::create_directories(dir);
  adrec::feed::Workload w = adrec::feed::GenerateWorkload(opts);
  auto check = [](const adrec::Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  check(adrec::feed::WriteTrace(dir + "/trace.tsv", w.tweets, w.check_ins));
  check(adrec::feed::WriteAds(dir + "/ads.tsv", w.ads));
  check(adrec::annotate::WriteKnowledgeBase(dir + "/kb.tsv", *w.kb));
  std::printf("Wrote %zu tweets, %zu check-ins, %zu ads, %zu KB entities "
              "to %s/\n",
              w.tweets.size(), w.check_ins.size(), w.ads.size(),
              w.kb->size(), dir.c_str());
  return 0;
}

int Recommend(const std::string& dir, int argc, char** argv) {
  const double alpha = argc > 3 ? std::atof(argv[3]) : 0.45;

  auto analyzer = std::make_shared<adrec::text::Analyzer>();
  auto kb_loaded =
      adrec::annotate::ReadKnowledgeBase(dir + "/kb.tsv", analyzer.get());
  if (!kb_loaded.ok()) {
    std::fprintf(stderr, "kb: %s\n", kb_loaded.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<adrec::annotate::KnowledgeBase> kb(
      std::move(kb_loaded).value().release());
  auto trace = adrec::feed::ReadTrace(dir + "/trace.tsv");
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  auto ads = adrec::feed::ReadAds(dir + "/ads.tsv");
  if (!ads.ok()) {
    std::fprintf(stderr, "ads: %s\n", ads.status().ToString().c_str());
    return 1;
  }

  adrec::core::RecommendationEngine engine(
      kb, adrec::timeline::TimeSlotScheme::PaperScheme());
  for (const auto& ad : ads.value()) {
    if (auto s = engine.InsertAd(ad); !s.ok()) {
      std::fprintf(stderr, "insert ad %u: %s\n", ad.id.value,
                   s.ToString().c_str());
      return 1;
    }
  }
  for (const auto& t : trace.value().tweets) engine.OnTweet(t);
  for (const auto& c : trace.value().check_ins) engine.OnCheckIn(c);
  if (auto s = engine.RunAnalysis(alpha); !s.ok()) {
    std::fprintf(stderr, "analysis: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Replayed %zu tweets, %zu check-ins; alpha=%.2f\n",
              engine.tweets_ingested(), engine.checkins_ingested(), alpha);
  if (auto s = adrec::core::SaveEngineSnapshot(engine, dir); !s.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Snapshot written to %s/snapshot_*.tsv\n", dir.c_str());
  for (const auto& ad : ads.value()) {
    auto r = engine.RecommendUsers(ad.id);
    if (!r.ok()) {
      std::fprintf(stderr, "recommend %u: %s\n", ad.id.value,
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("ad %u (%.48s...): %zu target users:", ad.id.value,
                ad.copy.c_str(), r.value().users.size());
    size_t shown = 0;
    for (const auto& mu : r.value().users) {
      if (shown++ >= 8) {
        std::printf(" ...");
        break;
      }
      std::printf(" u%u(%.0f)", mu.user.value, mu.score);
    }
    std::printf("\n");
  }
  return 0;
}

// Replays <dir>'s trace through an instrumented engine, exercising the
// full hot path (annotate → profile update → index maintenance → top-k
// match) plus the batch analysis, then prints the per-stage latency
// tables and round-trips the same report through the JSON exporter.
int Stats(const std::string& dir, int argc, char** argv) {
  size_t k = 3;
  std::string format = "text";
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::string("--format=").size());
      if (format != "text" && format != "prometheus") {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return 2;
      }
    } else {
      k = static_cast<size_t>(std::atoi(argv[i]));
    }
  }

  auto analyzer = std::make_shared<adrec::text::Analyzer>();
  auto kb_loaded =
      adrec::annotate::ReadKnowledgeBase(dir + "/kb.tsv", analyzer.get());
  if (!kb_loaded.ok()) {
    std::fprintf(stderr, "kb: %s\n", kb_loaded.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<adrec::annotate::KnowledgeBase> kb(
      std::move(kb_loaded).value().release());
  auto trace = adrec::feed::ReadTrace(dir + "/trace.tsv");
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  auto ads = adrec::feed::ReadAds(dir + "/ads.tsv");
  if (!ads.ok()) {
    std::fprintf(stderr, "ads: %s\n", ads.status().ToString().c_str());
    return 1;
  }

  adrec::core::RecommendationEngine engine(
      kb, adrec::timeline::TimeSlotScheme::PaperScheme());
  for (const auto& ad : ads.value()) {
    if (auto s = engine.InsertAd(ad); !s.ok()) {
      std::fprintf(stderr, "insert ad %u: %s\n", ad.id.value,
                   s.ToString().c_str());
      return 1;
    }
  }
  for (const auto& c : trace.value().check_ins) engine.OnCheckIn(c);
  size_t impressions = 0;
  for (const auto& t : trace.value().tweets) {
    engine.OnTweet(t);
    impressions += engine.TopKAdsForTweet(t, k).size();
  }
  if (auto s = engine.RunAnalysis(); !s.ok()) {
    std::fprintf(stderr, "analysis: %s\n", s.ToString().c_str());
    return 1;
  }

  if (format == "prometheus") {
    std::printf("%s", adrec::obs::ExportPrometheus(
                          engine.metrics().Snapshot()).c_str());
    return 0;
  }

  const adrec::obs::StatsReport report =
      adrec::obs::BuildReport(engine.metrics().Snapshot());
  std::printf("%s\n", adrec::obs::ExportText(report, "adrec engine").c_str());
  std::printf("Served %zu impressions at k=%zu.\n", impressions, k);

  const std::string json = adrec::obs::ExportJson(report);
  const std::string json_path = dir + "/stats.json";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json << "\n";
  }
  // Round-trip check: the file must parse back to the identical report.
  std::ifstream in(json_path);
  std::string read_back((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  auto parsed = adrec::obs::ParseJson(read_back);
  if (!parsed.ok()) {
    std::fprintf(stderr, "stats.json re-parse: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  if (adrec::obs::ExportJson(parsed.value()) != json) {
    std::fprintf(stderr, "stats.json round-trip mismatch\n");
    return 1;
  }
  std::printf("Wrote %s (JSON round-trip verified).\n", json_path.c_str());
  return 0;
}

int Resume(const std::string& dir) {
  auto analyzer = std::make_shared<adrec::text::Analyzer>();
  auto kb_loaded =
      adrec::annotate::ReadKnowledgeBase(dir + "/kb.tsv", analyzer.get());
  if (!kb_loaded.ok()) {
    std::fprintf(stderr, "kb: %s\n", kb_loaded.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<adrec::annotate::KnowledgeBase> kb(
      std::move(kb_loaded).value().release());
  adrec::core::RecommendationEngine engine(
      kb, adrec::timeline::TimeSlotScheme::PaperScheme());
  if (auto s = adrec::core::LoadEngineSnapshot(dir, &engine); !s.ok()) {
    std::fprintf(stderr, "restore: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Restored %zu user profiles and %zu ads (no replay).\n",
              engine.profiles().size(), engine.ad_store().size());
  int64_t impressions = 0;
  engine.ad_store().ForEach([&](const adrec::ads::StoredAd& stored) {
    impressions += stored.impressions_served;
  });
  std::printf("Cumulative impressions restored: %lld\n",
              static_cast<long long>(impressions));
  std::printf("Note: re-ingest the last analysis window from trace.tsv "
              "before RunAnalysis(); the streaming top-k path is live "
              "immediately.\n");
  return 0;
}

// Offline WAL tooling: inspect / verify / dump a log directory without
// touching it (none of the modes truncate a torn tail — recovery does).
// All three modes understand both layouts: a classic single-stream
// directory, and the per-shard layout (`<dir>/<shard>/wal-*.log`) a
// multi-worker daemon writes; seqnos are per stream.

// `stream` is SIZE_MAX for the single-stream layout (no prefix column).
int WalDumpOne(const std::string& dir, size_t stream) {
  auto report = adrec::wal::ScanLog(
      dir, {.truncate_torn_tail = false, .decode_payloads = false},
      [stream](const adrec::wal::Record& r) {
        if (stream == SIZE_MAX) {
          std::printf("%llu\t%s\n", static_cast<unsigned long long>(r.seqno),
                      r.payload.c_str());
        } else {
          std::printf("%zu\t%llu\t%s\n", stream,
                      static_cast<unsigned long long>(r.seqno),
                      r.payload.c_str());
        }
        return adrec::Status::OK();
      });
  if (!report.ok()) {
    std::fprintf(stderr, "wal dump: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (report.value().torn_tail) {
    std::fprintf(stderr, "warning: torn tail (%llu bytes): %s\n",
                 static_cast<unsigned long long>(report.value().torn_bytes),
                 report.value().torn_detail.c_str());
  }
  return 0;
}

int WalVerifyOne(const std::string& dir, const std::string& label) {
  auto report = adrec::wal::VerifyLog(dir);
  if (!report.ok()) {
    std::fprintf(stderr, "wal verify%s FAILED: %s\n", label.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  const adrec::wal::LogReport& r = report.value();
  if (r.torn_tail) {
    std::fprintf(stderr,
                 "warning:%s torn tail (%llu bytes, recovery will cut it): "
                 "%s\n",
                 label.c_str(), static_cast<unsigned long long>(r.torn_bytes),
                 r.torn_detail.c_str());
  }
  std::printf("wal verify%s OK: %zu segments, %zu records, seqnos "
              "%llu..%llu%s\n",
              label.c_str(), r.segments.size(), r.records,
              static_cast<unsigned long long>(r.first_seqno),
              static_cast<unsigned long long>(r.last_seqno),
              r.torn_tail ? " (torn tail)" : "");
  return 0;
}

int WalInspectOne(const std::string& dir, const std::string& label) {
  auto report = adrec::wal::ScanLog(dir, {});
  if (!report.ok()) {
    std::fprintf(stderr, "wal inspect%s: %s\n", label.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  const adrec::wal::LogReport& r = report.value();
  std::printf("%-32s %20s %20s %10s %12s\n", "segment", "first_seqno",
              "last_seqno", "records", "bytes");
  for (const auto& seg : r.segments) {
    std::printf("%-32s %20llu %20llu %10zu %12llu\n",
                std::filesystem::path(seg.path).filename().c_str(),
                static_cast<unsigned long long>(seg.first_seqno),
                static_cast<unsigned long long>(seg.last_seqno),
                seg.records, static_cast<unsigned long long>(seg.bytes));
  }
  std::printf("total%s: %zu records, seqnos %llu..%llu%s\n", label.c_str(),
              r.records, static_cast<unsigned long long>(r.first_seqno),
              static_cast<unsigned long long>(r.last_seqno),
              r.torn_tail ? " (TORN TAIL)" : "");
  if (r.torn_tail) {
    std::printf("torn tail: %llu bytes — %s\n",
                static_cast<unsigned long long>(r.torn_bytes),
                r.torn_detail.c_str());
  }
  return 0;
}

void WalPrintManifest(const std::string& dir) {
  const std::string manifest = dir + "/checkpoint/MANIFEST.tsv";
  std::ifstream in(manifest);
  if (!in) {
    std::printf("checkpoint manifest: (none)\n");
    return;
  }
  // The K line carries the engine-wide marks; a sharded checkpoint adds
  // one S line per stream (its high-water seqno).
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::printf("checkpoint manifest%s: %s\n", first ? "" : " (stream)",
                line.c_str());
    first = false;
  }
}

int WalCompactOne(const std::string& dir, const std::string& label) {
  auto report = adrec::wal::delta::CompactLogDir(dir, {});
  if (!report.ok()) {
    std::fprintf(stderr, "wal compact%s: %s\n", label.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  const adrec::wal::delta::CompactionReport& r = report.value();
  if (!r.ran) {
    std::printf("wal compact%s: nothing to compact\n", label.c_str());
    return 0;
  }
  std::printf("wal compact%s: %zu -> %zu segments, dropped %llu of %llu "
              "records, %llu -> %llu bytes\n",
              label.c_str(), r.segments_in, r.segments_out,
              static_cast<unsigned long long>(r.records_dropped),
              static_cast<unsigned long long>(r.records_in),
              static_cast<unsigned long long>(r.bytes_in),
              static_cast<unsigned long long>(r.bytes_out));
  return 0;
}

// `checkpoint inspect`: the classic manifest plus the delta chain.
int CheckpointInspect(const std::string& dir) {
  WalPrintManifest(dir);
  auto gens = adrec::wal::delta::ListGenerations(dir);
  if (!gens.ok()) {
    std::fprintf(stderr, "checkpoint inspect: %s\n",
                 gens.status().ToString().c_str());
    return 1;
  }
  if (gens.value().empty()) {
    std::printf("delta chain: (none)\n");
    return 0;
  }
  auto head = adrec::wal::delta::ResolveHead(dir);
  const uint64_t head_gen = head.ok() ? head.value().gen : 0;
  std::printf("%-24s %12s %8s %6s %14s %14s %6s\n", "generation",
              "wal_seqno", "base", "depth", "files(own/all)",
              "bytes(own/all)", "head");
  for (const adrec::wal::delta::DeltaManifest& m : gens.value()) {
    size_t own_files = 0;
    uint64_t own_bytes = 0;
    uint64_t all_bytes = 0;
    for (const adrec::wal::delta::FileRef& f : m.files) {
      all_bytes += f.bytes;
      if (f.src_gen == m.gen) {
        ++own_files;
        own_bytes += f.bytes;
      }
    }
    std::printf("%-24s %12llu %8llu %6llu %7zu/%-6zu %7llu/%-6llu %6s\n",
                adrec::wal::delta::GenDirName(m.gen).c_str(),
                static_cast<unsigned long long>(m.wal_seqno),
                static_cast<unsigned long long>(m.base_gen),
                static_cast<unsigned long long>(m.depth), own_files,
                m.files.size(), static_cast<unsigned long long>(own_bytes),
                static_cast<unsigned long long>(all_bytes),
                m.gen == head_gen ? "*" : "");
  }
  if (head.ok()) {
    std::printf("head: %s chain_len=%zu shards=%zu stream_time=%lld\n",
                adrec::wal::delta::GenDirName(head.value().gen).c_str(),
                head.value().ChainLength(), head.value().num_shards,
                static_cast<long long>(head.value().stream_time));
  } else {
    std::printf("head: (unresolvable: %s)\n",
                head.status().ToString().c_str());
  }
  return 0;
}

int Checkpoint(int argc, char** argv) {
  if (argc < 4 || std::string(argv[2]) != "inspect") {
    std::fprintf(stderr, "usage: %s checkpoint inspect <wal-dir>\n",
                 argv[0]);
    return 2;
  }
  return CheckpointInspect(argv[3]);
}

int Wal(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s wal <inspect|verify|dump|compact> <wal-dir>\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[2];
  const std::string dir = argv[3];

  auto layout = adrec::wal::DetectStreamLayout(dir);
  const size_t streams = layout.ok() ? layout.value() : 1;

  if (mode == "dump") {
    if (streams <= 1) return WalDumpOne(dir, SIZE_MAX);
    int rc = 0;
    for (size_t s = 0; s < streams; ++s) {
      rc |= WalDumpOne(adrec::wal::StreamDir(dir, s, streams), s);
    }
    return rc;
  }

  if (mode == "compact") {
    if (streams <= 1) return WalCompactOne(dir, "");
    int rc = 0;
    for (size_t s = 0; s < streams; ++s) {
      rc |= WalCompactOne(adrec::wal::StreamDir(dir, s, streams),
                          " stream " + std::to_string(s));
    }
    return rc;
  }

  if (mode == "verify") {
    if (streams <= 1) return WalVerifyOne(dir, "");
    int rc = 0;
    for (size_t s = 0; s < streams; ++s) {
      rc |= WalVerifyOne(adrec::wal::StreamDir(dir, s, streams),
                         " stream " + std::to_string(s));
    }
    if (rc == 0) std::printf("wal verify OK: %zu streams\n", streams);
    return rc;
  }

  if (mode == "inspect") {
    if (streams > 1) std::printf("per-shard layout: %zu streams\n", streams);
    int rc = 0;
    if (streams <= 1) {
      rc = WalInspectOne(dir, "");
    } else {
      for (size_t s = 0; s < streams; ++s) {
        std::printf("--- stream %zu ---\n", s);
        rc |= WalInspectOne(adrec::wal::StreamDir(dir, s, streams),
                            " stream " + std::to_string(s));
      }
    }
    WalPrintManifest(dir);
    return rc;
  }

  std::fprintf(stderr, "unknown wal mode '%s'\n", mode.c_str());
  return 2;
}

// Client-side pretty printer for the TSV of the `trace`/`slow` verbs:
// one header line per trace, spans as an indented tree (the SPAN lines
// carry 1-based indices and parent indices, parent 0 = the request).
void PrintTraceTreeTsv(FILE* out, const std::string& tsv) {
  struct Span {
    uint32_t index = 0;
    uint32_t parent = 0;
    std::string name;
    std::string start_us;
    std::string dur_us;
  };
  auto split = [](std::string_view line, size_t max_fields) {
    std::vector<std::string> fields;
    while (!line.empty() && fields.size() + 1 < max_fields) {
      const size_t tab = line.find('\t');
      if (tab == std::string_view::npos) break;
      fields.emplace_back(line.substr(0, tab));
      line.remove_prefix(tab + 1);
    }
    fields.emplace_back(line);
    return fields;
  };
  std::vector<Span> spans;
  std::string header;
  auto flush = [&] {
    if (header.empty()) return;
    std::fprintf(out, "%s\n", header.c_str());
    // Depth-first over the parent links; spans arrive in start order, so
    // a simple child scan preserves chronology.
    auto walk = [&](auto&& self, uint32_t parent, int depth) -> void {
      for (const Span& s : spans) {
        if (s.parent != parent) continue;
        std::fprintf(out, "  %*s- %-24s %8sus  @%sus\n", depth * 2, "",
                     s.name.c_str(), s.dur_us.c_str(), s.start_us.c_str());
        self(self, s.index, depth + 1);
      }
    };
    walk(walk, 0, 0);
    header.clear();
    spans.clear();
  };
  std::string_view rest = tsv;
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    const std::string_view line =
        rest.substr(0, nl == std::string_view::npos ? rest.size() : nl);
    rest.remove_prefix(nl == std::string_view::npos ? rest.size() : nl + 1);
    if (line.rfind("TRACE\t", 0) == 0) {
      flush();
      // TRACE <id> <wall_start_us> <dur_us> <outcome> <spans> <worker>
      //       <reason> <detail...>
      const auto f = split(line, 9);
      if (f.size() < 9) continue;
      header = "trace " + f[1] + "  " + f[4] + "  " + f[3] + "us  [" + f[8] +
               "]";
      if (f[6] != "0") header += "  worker=" + f[6];
      if (f[7] != "-") header += "  reason=" + f[7];
    } else if (line.rfind("SPAN\t", 0) == 0) {
      // SPAN <id> <index> <parent> <name> <start_us> <dur_us>
      const auto f = split(line, 7);
      if (f.size() < 7) continue;
      Span s;
      s.index = static_cast<uint32_t>(std::atoi(f[2].c_str()));
      s.parent = static_cast<uint32_t>(std::atoi(f[3].c_str()));
      s.name = f[4];
      s.start_us = f[5];
      s.dur_us = f[6];
      spans.push_back(std::move(s));
    }
  }
  flush();
}

// Live-daemon flight-recorder front end (see the file comment).
int Trace(int argc, char** argv) {
  std::string what = "trace";
  std::string format;
  std::string out_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::string("--format=").size());
      if (format != "tsv" && format != "chrome" && format != "pretty") {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return 2;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::string("--out=").size());
    } else if (arg == "trace" || arg == "slow" || arg == "conns") {
      what = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (format.empty()) format = what == "conns" ? "tsv" : "pretty";
  if (what == "conns" && format != "tsv") {
    std::fprintf(stderr, "conns has no %s form\n", format.c_str());
    return 2;
  }
  const std::string target = argv[2];
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "expected <host:port>, got '%s'\n", target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const uint16_t port =
      static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1));

  adrec::serve::Client client;
  if (auto s = client.Connect(host, port); !s.ok()) {
    std::fprintf(stderr, "connect %s: %s\n", target.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  adrec::Result<std::string> payload = [&]() -> adrec::Result<std::string> {
    if (what == "conns") return client.Command("conns");
    if (what == "slow") return client.Slow();
    return client.Trace(/*chrome=*/format == "chrome");
  }();
  client.Quit();
  if (!payload.ok()) {
    std::fprintf(stderr, "%s: %s\n", what.c_str(),
                 payload.status().ToString().c_str());
    return 1;
  }

  FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  if (format == "pretty" && what != "conns") {
    PrintTraceTreeTsv(out, payload.value());
  } else {
    std::fprintf(out, "%s", payload.value().c_str());
    if (!payload.value().empty() && payload.value().back() != '\n') {
      std::fprintf(out, "\n");
    }
  }
  if (out != stdout) {
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s generate <dir> [users] [days] [ads] [seed]\n"
                 "  %s recommend <dir> [alpha]\n"
                 "  %s resume <dir>\n"
                 "  %s stats <dir> [k] [--format=text|prometheus]\n"
                 "  %s trace <host:port> [trace|slow|conns] "
                 "[--format=tsv|chrome|pretty] [--out=FILE]\n"
                 "  %s wal <inspect|verify|dump|compact> <wal-dir>\n"
                 "  %s checkpoint inspect <wal-dir>\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0],
                 argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "wal") return Wal(argc, argv);
  if (command == "checkpoint") return Checkpoint(argc, argv);
  if (command == "trace") return Trace(argc, argv);
  const std::string dir = argv[2];
  if (command == "generate") return Generate(dir, argc, argv);
  if (command == "recommend") return Recommend(dir, argc, argv);
  if (command == "resume") return Resume(dir);
  if (command == "stats") return Stats(dir, argc, argv);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
