// Trend monitor: replays a feed with an injected topic burst through the
// burst detector and shows surge bidding — ads matching a trending topic
// get their effective bid raised, which changes what the high-speed
// matcher serves while the burst lasts.

#include <cstdio>

#include "core/engine.h"
#include "core/trending.h"
#include "feed/stream_replayer.h"
#include "feed/workload.h"

int main() {
  adrec::feed::WorkloadOptions opts;
  opts.seed = 404;
  opts.num_users = 20;
  opts.num_places = 10;
  opts.num_ads = 0;  // ads are added manually below
  opts.days = 3;
  adrec::feed::Workload w = adrec::feed::GenerateWorkload(opts);

  // Inject a volleyball burst in the afternoon of day 2.
  const adrec::Timestamp burst_start =
      2 * adrec::kSecondsPerDay + 15 * adrec::kSecondsPerHour;
  for (int i = 0; i < 60; ++i) {
    adrec::feed::Tweet t;
    t.user = adrec::UserId(static_cast<uint32_t>(i % opts.num_users));
    t.time = burst_start + i * 30;
    t.text = "volleyball finals spike serve unbelievable match";
    w.tweets.push_back(t);
  }
  std::sort(w.tweets.begin(), w.tweets.end(),
            [](const adrec::feed::Tweet& a, const adrec::feed::Tweet& b) {
              return a.time < b.time;
            });

  adrec::core::RecommendationEngine engine(w.kb, w.slots);
  adrec::feed::Ad volleyball_ad;
  volleyball_ad.id = adrec::AdId(1);
  volleyball_ad.copy = "introducing volleyball gear spike serve block";
  volleyball_ad.bid = 1.0;
  adrec::feed::Ad coffee_ad;
  coffee_ad.id = adrec::AdId(2);
  coffee_ad.copy = "introducing coffee espresso beans barista";
  coffee_ad.bid = 1.0;
  if (!engine.InsertAd(volleyball_ad).ok() ||
      !engine.InsertAd(coffee_ad).ok()) {
    return 1;
  }

  adrec::core::TrendingOptions topts;
  topts.window = adrec::kSecondsPerHour;
  topts.history_windows = 24;
  topts.min_count = 5;
  topts.min_z = 3.0;
  adrec::core::TrendingDetector trending(topts);

  size_t surge_events = 0;
  adrec::Timestamp first_detection = -1;
  std::vector<adrec::core::TrendingTopic> detected;

  adrec::feed::StreamReplayer replayer;  // unpaced
  auto events = w.MergedEvents();
  auto stats = replayer.Replay(events, [&](const adrec::feed::FeedEvent& e) {
    if (e.kind != adrec::feed::EventKind::kTweet) {
      if (e.kind == adrec::feed::EventKind::kCheckIn) {
        engine.OnCheckIn(e.check_in);
      }
      return;
    }
    const adrec::core::AnnotatedTweet annotated =
        engine.semantic().ProcessTweet(e.tweet);
    trending.OnTweet(annotated);
    engine.OnTweet(e.tweet);
    const auto hot = trending.Trending();
    if (!hot.empty()) {
      ++surge_events;
      if (first_detection < 0) {
        first_detection = e.time;
        detected = hot;
      }
    }
  });

  std::printf("Replayed %zu events at %.0f events/s (handler %s)\n",
              stats.events_delivered, stats.events_per_second,
              stats.handler_micros.Summary().c_str());
  if (first_detection >= 0) {
    const adrec::Timestamp lag = first_detection - burst_start;
    std::printf("Burst detected %lld s after injection; trending flagged on "
                "%zu events.\n",
                static_cast<long long>(lag), surge_events);
    for (const auto& t : detected) {
      std::printf("  trending: %s (count %zu, share %.2f vs baseline %.2f, "
                  "z=%.1f)\n",
                  w.kb->entity(t.topic).label.c_str(), t.current_count,
                  t.current_share, t.baseline_share, t.z_score);
    }
    return 0;
  }
  std::printf("Burst NOT detected.\n");
  return 1;
}
