// Quickstart: the smallest end-to-end use of the adrec public API.
//
// Builds the demo knowledge base, streams a handful of tweets and
// check-ins through the engine, registers one ad, runs the triadic
// time-aware concept analysis and asks who should see the ad.

#include <cstdio>

#include "core/engine.h"

using adrec::LocationId;
using adrec::SlotId;
using adrec::UserId;
using adrec::kSecondsPerHour;

int main() {
  // 1. Shared NLP machinery: analyzer + offline knowledge base.
  auto analyzer = std::make_shared<adrec::text::Analyzer>();
  std::shared_ptr<adrec::annotate::KnowledgeBase> kb(
      adrec::annotate::BuildDemoKnowledgeBase(analyzer.get()));

  // 2. The engine, with the evaluation's day partition (night / morning /
  //    afternoon / late).
  adrec::core::RecommendationEngine engine(
      kb, adrec::timeline::TimeSlotScheme::PaperScheme());

  // 3. Stream some social activity. User 0 is a volleyball fan who hangs
  //    out at location 7 in the morning; user 1 drinks coffee at 8.
  const adrec::Timestamp morning = 8 * kSecondsPerHour;
  for (int day = 0; day < 3; ++day) {
    const adrec::Timestamp t = day * adrec::kSecondsPerDay + morning;
    engine.OnTweet({UserId(0), t, "great volleyball match spike serve"});
    engine.OnCheckIn({UserId(0), t + 600, LocationId(7)});
    engine.OnTweet({UserId(1), t, "espresso at my favourite cafe"});
    engine.OnCheckIn({UserId(1), t + 600, LocationId(8)});
  }

  // 4. An advertiser targets volleyball fans around location 7 in the
  //    morning slot (slot index 1 in the paper scheme).
  adrec::feed::Ad ad;
  ad.id = adrec::AdId(1);
  ad.copy = "introducing new volleyball gear spike serve block";
  ad.target_locations = {LocationId(7)};
  ad.target_slots = {SlotId(1)};
  if (auto s = engine.InsertAd(ad); !s.ok()) {
    std::fprintf(stderr, "InsertAd failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 5. Macro-phase 2: mine the triadic timed contexts (alpha = 0.3).
  if (auto s = engine.RunAnalysis(0.3); !s.ok()) {
    std::fprintf(stderr, "RunAnalysis failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 6. Macro-phase 3: who should see the ad?
  auto result = engine.RecommendUsers(ad.id);
  if (!result.ok()) {
    std::fprintf(stderr, "RecommendUsers failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Ad %u target users (triadic match):\n", ad.id.value);
  for (const auto& mu : result.value().users) {
    std::printf("  user %u  score=%.1f (topic support %d, location support %d)\n",
                mu.user.value, mu.score, mu.topic_support,
                mu.location_support);
  }

  // 7. The dual, high-speed question: which ads belong on a fresh tweet?
  adrec::feed::Tweet tweet{UserId(0), 3 * adrec::kSecondsPerDay + morning,
                           "volleyball finals tonight"};
  auto ads = engine.TopKAdsForTweet(tweet, 3);
  std::printf("Top ads for user 0's new tweet:\n");
  for (const auto& sa : ads) {
    std::printf("  ad %u  score=%.3f\n", sa.ad.value, sa.score);
  }
  return 0;
}
