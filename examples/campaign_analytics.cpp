// Campaign analytics: for an advertiser planning a campaign, compares all
// recommendation strategies on a synthetic trace with known ground truth
// and prints per-strategy precision / recall / F-score — the model-choice
// table a campaign manager would look at.

#include <cstdio>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/baselines.h"
#include "eval/experiment.h"

int main() {
  adrec::feed::WorkloadOptions opts;
  opts.seed = 77;
  opts.num_users = 31;
  opts.num_places = 29;
  opts.num_ads = 5;
  opts.days = 20;

  std::printf("Building campaign workspace (31 users, 29 places, 5 ads)...\n");
  adrec::eval::ExperimentSetup setup = adrec::eval::BuildExperiment(opts);
  adrec::eval::GroundTruthOracle oracle(&setup.workload);

  if (auto s = setup.engine->RunAnalysis(0.55); !s.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", s.ToString().c_str());
    return 1;
  }

  adrec::core::BaselineOptions bopts;
  bopts.now = opts.days * adrec::kSecondsPerDay;

  // Train the LDA comparator once.
  auto lda = adrec::core::LdaStrategy::Train(
      setup.workload.tweets, setup.workload.analyzer.get());
  if (!lda.ok()) {
    std::fprintf(stderr, "lda training failed: %s\n",
                 lda.status().ToString().c_str());
    return 1;
  }

  adrec::TableWriter table("Strategy comparison (macro avg over targeted ad-slot pairs)",
                           {"strategy", "precision", "recall", "f-score"});
  for (auto kind :
       {adrec::core::StrategyKind::kTriadic,
        adrec::core::StrategyKind::kContentOnly,
        adrec::core::StrategyKind::kLocationOnly,
        adrec::core::StrategyKind::kPopularity,
        adrec::core::StrategyKind::kLdaLite}) {
    const adrec::eval::Prf prf = adrec::eval::EvaluateStrategy(
        kind, setup, oracle, bopts, &lda.value());
    table.AddRow({adrec::core::StrategyName(kind),
                  adrec::StringFormat("%.3f", prf.precision),
                  adrec::StringFormat("%.3f", prf.recall),
                  adrec::StringFormat("%.3f", prf.f_score)});
  }
  table.Print();
  return 0;
}
