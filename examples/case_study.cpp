// The worked example of the methodology: five users (Tom, Luke, Anna,
// Sam, Lia), three locations, three time slots (morning / afternoon /
// evening), five topic URIs and an "Adidas" ad targeting location m2 with
// topics URI1 + URI2. Prints both triadic contexts' communities and the
// final matched user set (expected: exactly Luke, supported in morning
// and evening).

#include <cstdio>
#include <string>

#include "core/recommender.h"
#include "core/tfca.h"

namespace {

using adrec::LocationId;
using adrec::SlotId;
using adrec::Timestamp;
using adrec::TopicId;
using adrec::UserId;

const char* const kUsers[] = {"Tom", "Luke", "Anna", "Sam", "Lia"};
const char* const kSlots[] = {"morning", "afternoon", "evening"};

std::string UserList(const adrec::core::Community& c) {
  std::string out;
  for (UserId u : c.users) {
    if (!out.empty()) out += ", ";
    out += kUsers[u.value];
  }
  return out;
}

std::string SlotList(const adrec::core::Community& c) {
  std::string out;
  for (SlotId s : c.slots) {
    if (!out.empty()) out += ", ";
    out += kSlots[s.value];
  }
  return out;
}

}  // namespace

int main() {
  adrec::timeline::TimeSlotScheme slots =
      adrec::timeline::TimeSlotScheme::MorningAfternoonEvening();
  adrec::core::TimeAwareConceptAnalysis tfca(&slots, /*num_topics=*/5);

  auto slot_time = [&](uint32_t s) -> Timestamp {
    const auto& slot = slots.slot(SlotId(s));
    return (slot.begin_second + slot.end_second) / 2;
  };
  auto check_in = [&](uint32_t user, uint32_t loc, uint32_t slot) {
    tfca.AddCheckIn({UserId(user), slot_time(slot), LocationId(loc)});
  };
  auto tweet = [&](uint32_t user, uint32_t topic, uint32_t slot,
                   double score) {
    adrec::core::AnnotatedTweet t;
    t.user = UserId(user);
    t.time = slot_time(slot);
    adrec::annotate::Annotation a;
    a.topic = TopicId(topic);
    a.score = score;
    t.annotations.push_back(a);
    tfca.AddTweet(t);
  };

  // Check-in context H = (U, M, T, I).
  check_in(0, 0, 0); check_in(0, 0, 1); check_in(0, 0, 2);  // Tom @ m1
  check_in(1, 1, 0); check_in(1, 1, 1);                     // Luke @ m2
  check_in(1, 2, 2);                                        // Luke @ m3
  check_in(3, 0, 2);                                        // Sam @ m1
  check_in(4, 1, 0); check_in(4, 1, 1); check_in(4, 1, 2);  // Lia @ m2

  // Fuzzy topic context TFC = (U, URIs, T, I).
  tweet(0, 0, 0, 1.0);  tweet(1, 0, 0, 1.0);  tweet(2, 2, 0, 0.9);
  tweet(3, 1, 0, 1.0);  tweet(4, 4, 0, 1.0);
  tweet(0, 0, 1, 1.0);  tweet(1, 3, 1, 0.8);  tweet(2, 2, 1, 0.8);
  tweet(3, 4, 1, 0.75); tweet(4, 4, 1, 0.8);
  tweet(0, 2, 2, 0.8);  tweet(1, 0, 2, 1.0);  tweet(2, 2, 2, 1.0);
  tweet(3, 1, 2, 1.0);  tweet(4, 4, 2, 1.0);

  adrec::core::TfcaOptions opts;
  opts.alpha = 0.6;
  if (auto s = tfca.Analyze(opts); !s.ok()) {
    std::fprintf(stderr, "Analyze failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("=== Location-based communities Comm(H, m) ===\n");
  for (uint32_t m = 0; m < 3; ++m) {
    for (const auto& c : tfca.LocationCommunities(LocationId(m))) {
      std::printf("  m%u: ({%s}, {%s})\n", m + 1, UserList(c).c_str(),
                  SlotList(c).c_str());
    }
  }
  std::printf("=== Context-based communities Comm(TFC, uri), alpha=0.6 ===\n");
  for (uint32_t t = 0; t < 5; ++t) {
    for (const auto& c : tfca.TopicCommunities(TopicId(t))) {
      std::printf("  URI%u: ({%s}, {%s})\n", t + 1, UserList(c).c_str(),
                  SlotList(c).c_str());
    }
  }

  // The Adidas ad: location m2, topics URI1 + URI2.
  adrec::core::AdContext ad;
  ad.id = adrec::AdId(0);
  ad.locations = {LocationId(1)};
  ad.topics = adrec::text::SparseVector::FromUnsorted({{0, 1.0}, {1, 1.0}});
  adrec::core::MatchResult result =
      adrec::core::MatchAd(tfca, ad, adrec::core::MatchOptions{});

  std::printf("=== Adidas ad @ m2, topics {URI1, URI2} ===\n");
  std::printf("U-L candidates: %zu, U-C candidates: %zu\n",
              result.location_candidates, result.topic_candidates);
  for (const auto& mu : result.users) {
    std::printf("MATCH: %s (topic support %d, location support %d)\n",
                kUsers[mu.user.value], mu.topic_support,
                mu.location_support);
  }
  if (result.users.size() == 1 && result.users[0].user == UserId(1)) {
    std::printf("Expected result reproduced: the ad goes to Luke.\n");
    return 0;
  }
  std::printf("UNEXPECTED result!\n");
  return 1;
}
