// adrec_client — command-line client for adrecd:
//
//   adrec_client [--retry] <host> <port> <verb> [args...]
//
// The verb and arguments are joined with tabs into one protocol line
// (so `adrec_client 127.0.0.1 7311 topk 4 3` sends "topk\t4\t3"), the
// framed response is printed one line per row. Exit status: 0 on OK-class
// replies, 1 on NOT_FOUND / CLIENT_ERROR / SERVER_ERROR, 2 on usage or
// connection errors.
//
// --retry enables automatic reconnect with capped exponential backoff on
// transport failures (connection refused/reset mid-command), riding
// through a daemon restart or a follower promotion. At-least-once: a
// mutation whose reply was lost may execute twice.
//
//   adrec_client 127.0.0.1 7311 ping
//   adrec_client 127.0.0.1 7311 tweet 4 86400 "coffee downtown"
//   adrec_client 127.0.0.1 7311 topk 4 3
//   adrec_client 127.0.0.1 7311 metrics

#include <cstdio>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "serve/client.h"

int main(int argc, char** argv) {
  int argi = 1;
  bool retry = false;
  if (argi < argc && std::strcmp(argv[argi], "--retry") == 0) {
    retry = true;
    ++argi;
  }
  if (argc - argi < 3) {
    std::fprintf(stderr, "usage: %s [--retry] <host> <port> <verb> [args...]\n",
                 argv[0]);
    return 2;
  }
  const std::string host = argv[argi];
  const int port = std::atoi(argv[argi + 1]);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port '%s'\n", argv[argi + 1]);
    return 2;
  }

  std::string line;
  for (int i = argi + 2; i < argc; ++i) {
    if (!line.empty()) line.push_back('\t');
    line += argv[i];
  }

  adrec::serve::Client client;
  if (retry) {
    adrec::serve::ReconnectOptions ropts;
    ropts.enabled = true;
    client.SetReconnect(ropts);
  }
  if (auto s = client.Connect(host, static_cast<uint16_t>(port)); !s.ok()) {
    // With --retry, Command() below reconnects; tolerate a server that is
    // not up yet at connect time instead of bailing before the first try.
    if (!retry) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }
  if (line == "quit") {
    client.Quit();
    return 0;
  }
  auto reply = client.Command(line);
  if (!reply.ok()) {
    std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", reply.value().c_str());
  const bool error = adrec::StartsWith(reply.value(), "CLIENT_ERROR") ||
                     adrec::StartsWith(reply.value(), "SERVER_ERROR") ||
                     reply.value() == "NOT_FOUND" ||
                     reply.value() == "READONLY";
  return error ? 1 : 0;
}
