// High-speed social news feeding: streams a month-long synthetic Twitter
// trace through the engine and attaches top-k ads to every tweet in real
// time, reporting sustained throughput and which ads were served most.
//
// Usage: streaming_ads [num_users] [num_ads] [days]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/engine.h"
#include "eval/experiment.h"
#include "feed/workload.h"
#include "obs/stats_export.h"

int main(int argc, char** argv) {
  adrec::feed::WorkloadOptions opts;
  opts.seed = 2024;
  opts.num_users = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 50;
  opts.num_ads = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 40;
  opts.days = argc > 3 ? std::atoi(argv[3]) : 14;
  opts.num_places = 29;

  std::printf("Generating workload: %zu users, %zu ads, %d days...\n",
              opts.num_users, opts.num_ads, opts.days);
  adrec::eval::ExperimentSetup setup = adrec::eval::BuildExperiment(opts);
  adrec::core::RecommendationEngine& engine = *setup.engine;
  std::printf("Ingested %zu tweets, %zu check-ins, %zu ads.\n",
              engine.tweets_ingested(), engine.checkins_ingested(),
              engine.ad_store().size());

  // Replay the tweets again as the "live" feed and attach ads.
  std::map<uint32_t, size_t> served;
  size_t impressions = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const adrec::feed::Tweet& tweet : setup.workload.tweets) {
    for (const auto& sa : engine.TopKAdsForTweet(tweet, 2)) {
      ++served[sa.ad.value];
      ++impressions;
    }
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const double rate =
      static_cast<double>(setup.workload.tweets.size()) / elapsed;
  std::printf("Served %zu impressions over %zu feed events in %.3f s "
              "(%.0f events/s).\n",
              impressions, setup.workload.tweets.size(), elapsed, rate);

  std::printf("Most-served ads:\n");
  size_t shown = 0;
  for (auto it = served.begin(); it != served.end() && shown < 5;
       ++it, ++shown) {
    const auto* stored = engine.ad_store().Find(adrec::AdId(it->first));
    std::printf("  ad %u: %zu impressions (%s)\n", it->first, it->second,
                stored ? stored->ad.copy.substr(0, 48).c_str() : "?");
  }

  // Engine-side observability: per-stage latency breakdown of everything
  // the run just did, plus the machine-readable blob for tooling.
  const adrec::obs::StatsReport report =
      adrec::obs::BuildReport(engine.metrics().Snapshot());
  std::printf("\n%s\n", adrec::obs::ExportText(report, "streaming_ads").c_str());
  std::printf("STREAMING_ADS_METRICS_JSON %s\n",
              adrec::obs::ExportJson(report).c_str());
  return 0;
}
