// Audience insights: for each ad, match its target users with the triadic
// model (with community-stability scores), then profile the matched
// audience — which topics distinguish it from the population (selling
// points an ad copywriter should lean on), and which co-interest rules
// the window supports.

#include <cstdio>

#include "core/recommender.h"
#include "core/selling_points.h"
#include "eval/experiment.h"
#include "fca/implications.h"

int main() {
  adrec::feed::WorkloadOptions opts = adrec::feed::CaseStudyOptions();
  opts.seed = 2468;
  opts.clustered_interest_probability = 0.8;
  adrec::eval::ExperimentSetup setup = adrec::eval::BuildExperiment(opts);

  // Analysis with stability scoring on.
  adrec::core::TfcaOptions topts;
  topts.alpha = 0.45;
  topts.compute_stability = true;
  // (RunAnalysis uses the engine's default options; drive the analysis
  // object through the engine's alpha entry point, then re-run with
  // stability via the underlying API if needed. The engine's analysis
  // accessor is const, so here we use the eval harness path.)
  if (auto s = setup.engine->RunAnalysis(0.45); !s.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Window-supported co-interest rules.
  const adrec::fca::FormalContext user_topics =
      setup.engine->analysis().BuildUserTopicContext(0.45, 3, 0.08);
  const auto rules =
      adrec::fca::MineAssociationRules(user_topics, /*min_support=*/5,
                                       /*min_confidence=*/0.7);
  std::printf("Co-interest rules in this window (support>=5, conf>=0.7):\n");
  for (const auto& r : rules) {
    std::printf("  %s -> %s  (support %zu, confidence %.2f)\n",
                setup.workload.kb->entity(adrec::TopicId(r.premise))
                    .label.c_str(),
                setup.workload.kb->entity(adrec::TopicId(r.conclusion))
                    .label.c_str(),
                r.support, r.confidence);
  }

  for (const adrec::feed::Ad& ad : setup.workload.ads) {
    auto match = setup.engine->RecommendUsers(ad.id);
    if (!match.ok()) continue;
    std::printf("\n=== ad %u: %.60s ===\n", ad.id.value, ad.copy.c_str());
    std::printf("matched audience: %zu users\n", match.value().users.size());
    if (match.value().users.empty()) continue;

    std::vector<adrec::UserId> audience;
    for (const auto& mu : match.value().users) audience.push_back(mu.user);
    const auto points = adrec::core::DiscoverSellingPoints(
        setup.engine->analysis(), *setup.workload.kb, audience);
    std::printf("selling points (topic lift over population):\n");
    for (const auto& p : points) {
      std::printf("  %-24s lift %.2f (support %zu)\n", p.label.c_str(),
                  p.lift, p.support);
    }
  }
  return 0;
}
